"""Every fenced ``python`` block in the docs must stay valid.

Two checks per block, cheap enough for a dedicated CI docs job:

* the block compiles (no syntax rot as the docs drift from the code);
* every top-level import statement in the block executes (the modules
  and names the docs reference actually exist).

Blocks are written to be import-safe: expensive calls (full experiment
runs) are commented out, so executing just the import lines never
simulates anything.
"""

from __future__ import annotations

import ast
import re
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
DOC_FILES = ["README.md", "OBSERVABILITY.md", "RESILIENCE.md"]

_BLOCK_RE = re.compile(r"```python\n(.*?)```", re.S)


def _doc_blocks():
    for doc in DOC_FILES:
        text = (REPO_ROOT / doc).read_text()
        for index, block in enumerate(_BLOCK_RE.findall(text)):
            yield pytest.param(doc, index, block, id=f"{doc}[{index}]")


PARAMS = list(_doc_blocks())


def test_docs_contain_snippets():
    assert len(PARAMS) >= 4, "docs lost their python examples"


@pytest.mark.parametrize("doc,index,block", PARAMS)
def test_block_compiles(doc, index, block):
    compile(block, f"{doc}[{index}]", "exec")


@pytest.mark.parametrize("doc,index,block", PARAMS)
def test_block_imports_resolve(doc, index, block):
    tree = ast.parse(block, filename=f"{doc}[{index}]")
    imports = [
        node
        for node in tree.body
        if isinstance(node, (ast.Import, ast.ImportFrom))
    ]
    for node in imports:
        module = ast.Module(body=[node], type_ignores=[])
        code = compile(module, f"{doc}[{index}]", "exec")
        exec(code, {})  # raises ImportError/AttributeError on stale names
