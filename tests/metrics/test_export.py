"""Tests for CSV/JSON exporters and ASCII charts."""

import csv
import json

import pytest

from repro.metrics import ascii_chart, ascii_sparkline, write_csv, write_json


class TestWriteCsv:
    def test_roundtrip(self, tmp_path):
        path = tmp_path / "out" / "data.csv"
        write_csv(str(path), ["a", "b"], [[1, 2], [3, 4]])
        with open(path) as handle:
            rows = list(csv.reader(handle))
        assert rows == [["a", "b"], ["1", "2"], ["3", "4"]]

    def test_ragged_rows_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            write_csv(str(tmp_path / "x.csv"), ["a", "b"], [[1]])

    def test_failed_write_preserves_previous_file(self, tmp_path):
        """A failing row iterator must not truncate an existing export."""
        path = tmp_path / "data.csv"
        write_csv(str(path), ["a", "b"], [[1, 2]])
        before = path.read_text()

        def exploding_rows():
            yield [3, 4]
            raise RuntimeError("source died mid-iteration")

        with pytest.raises(RuntimeError):
            write_csv(str(path), ["a", "b"], exploding_rows())
        assert path.read_text() == before

    def test_failed_write_leaves_no_temp_files(self, tmp_path):
        with pytest.raises(ValueError):
            write_csv(str(tmp_path / "x.csv"), ["a", "b"], [[1]])
        assert list(tmp_path.iterdir()) == []

    def test_successful_write_leaves_only_target(self, tmp_path):
        path = tmp_path / "data.csv"
        write_csv(str(path), ["a"], [[1]])
        assert list(tmp_path.iterdir()) == [path]


class TestWriteJson:
    def test_roundtrip(self, tmp_path):
        path = tmp_path / "nested" / "r.json"
        write_json(str(path), {"series": [1, 2, 3], "name": "fig8"})
        with open(path) as handle:
            assert json.load(handle) == {"series": [1, 2, 3], "name": "fig8"}

    def test_dataclass_coercion(self, tmp_path):
        import dataclasses

        @dataclasses.dataclass
        class Point:
            x: int
            y: int

        path = tmp_path / "d.json"
        write_json(str(path), {"point": Point(1, 2)})
        with open(path) as handle:
            assert json.load(handle)["point"] == {"x": 1, "y": 2}

    def test_unserializable_payload_preserves_previous_file(self, tmp_path):
        path = tmp_path / "r.json"
        write_json(str(path), {"ok": 1})
        before = path.read_text()
        with pytest.raises(TypeError):
            write_json(str(path), {"bad": object()})
        assert path.read_text() == before
        assert list(tmp_path.iterdir()) == [path]


class TestSparkline:
    def test_shape_reflects_values(self):
        line = ascii_sparkline([0, 0, 5, 10])
        assert len(line) == 4
        assert line[0] == "▁"
        assert line[-1] == "█"

    def test_flat_series(self):
        assert ascii_sparkline([3, 3, 3]) == "▁▁▁"

    def test_empty(self):
        assert ascii_sparkline([]) == ""

    def test_downsampling(self):
        line = ascii_sparkline(list(range(1000)), width=10)
        assert len(line) == 10

    def test_invalid_width(self):
        with pytest.raises(ValueError):
            ascii_sparkline([1.0], width=0)


class TestAsciiChart:
    def test_renders_header_and_rows(self):
        chart = ascii_chart([(0, 0.0), (1, 1.0), (2, 2.0)], height=4, label="rate")
        lines = chart.splitlines()
        assert lines[0].startswith("rate")
        assert len(lines) == 5
        # The highest column is filled near the top, the lowest is not.
        assert "█" in lines[1]

    def test_empty_series(self):
        assert ascii_chart([]) == "(no data)"

    def test_invalid_dimensions(self):
        with pytest.raises(ValueError):
            ascii_chart([(0, 1.0)], height=1)
