"""Unit tests for delay tracking and percentiles."""

import pytest

from repro.metrics import DelaySample, DelayTracker, percentile
from repro.metrics.delay import DelayStats


def sample(pub_id, published, delivered, n=1):
    return DelaySample(pub_id, published, delivered, n)


def test_percentile_interpolation():
    values = [0.0, 10.0, 20.0, 30.0]
    assert percentile(values, 0.0) == 0.0
    assert percentile(values, 1.0) == 30.0
    assert percentile(values, 0.5) == pytest.approx(15.0)
    assert percentile(values, 0.25) == pytest.approx(7.5)


def test_percentile_invalid_inputs():
    with pytest.raises(ValueError):
        percentile([], 0.5)
    with pytest.raises(ValueError):
        percentile([1.0], 1.5)


def test_tracker_collects_and_computes_stats():
    tracker = DelayTracker()
    for i, delay in enumerate([0.1, 0.2, 0.3, 0.4]):
        tracker.add(sample(i, 10.0, 10.0 + delay))
    stats = tracker.stats()
    assert stats.count == 4
    assert stats.mean == pytest.approx(0.25)
    assert stats.minimum == pytest.approx(0.1)
    assert stats.maximum == pytest.approx(0.4)
    assert stats.p50 == pytest.approx(0.25)


def test_tracker_window_filtering():
    tracker = DelayTracker()
    tracker.add(sample(1, 0.0, 5.0))
    tracker.add(sample(2, 10.0, 15.0))
    assert tracker.delays(since=0.0, until=10.0) == [5.0]
    assert tracker.stats(since=100.0) is None


def test_percentile_stack():
    tracker = DelayTracker()
    for i in range(101):
        tracker.add(sample(i, 0.0, i / 100.0))
    stack = tracker.percentile_stack([0.25, 0.5, 0.75])
    assert stack[0] == (0.25, pytest.approx(0.25))
    assert stack[1] == (0.5, pytest.approx(0.50))
    assert stack[2] == (0.75, pytest.approx(0.75))
    assert DelayTracker().percentile_stack([0.5]) == []


def test_total_notifications():
    tracker = DelayTracker()
    tracker.add(sample(1, 0.0, 1.0, n=100))
    tracker.add(sample(2, 0.0, 1.0, n=250))
    assert tracker.total_notifications() == 350


def test_delay_stats_std():
    stats = DelayStats.from_values([1.0, 1.0, 1.0])
    assert stats.std == 0.0
    stats = DelayStats.from_values([0.0, 2.0])
    assert stats.std == pytest.approx(1.0)
