"""Unit tests for report formatting."""

import pytest

from repro.metrics import format_series, format_table


def test_format_table_alignment():
    table = format_table(
        ["name", "value"],
        [["alpha", 1], ["b", 22.5]],
    )
    lines = table.splitlines()
    assert lines[0].startswith("name")
    assert set(lines[1]) <= {"-", " "}
    assert "alpha" in lines[2]
    assert "22.5" in lines[3]


def test_format_table_rejects_ragged_rows():
    with pytest.raises(ValueError):
        format_table(["a", "b"], [[1]])


def test_float_rendering():
    table = format_table(["v"], [[0.000123], [1234.5], [0.25], [0.0]])
    assert "0.000123" in table
    assert "1.23e+03" in table or "1234" in table
    assert "0.25" in table
    assert "\n0" in table


def test_format_series():
    text = format_series("hosts", [(0, 1), (30, 2)], unit="count")
    assert "hosts [count]:" in text
    assert "0" in text and "30" in text
