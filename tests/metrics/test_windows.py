"""Unit tests for windowed aggregation, throughput and backlog probes."""

import pytest

from repro.metrics import BacklogProbe, ThroughputMeter, WindowedSeries


class TestWindowedSeries:
    def test_windows_aggregate_by_fixed_intervals(self):
        series = WindowedSeries(window_s=30.0)
        series.add(5.0, 10.0)
        series.add(10.0, 20.0)
        series.add(35.0, 40.0)
        windows = series.windows()
        assert len(windows) == 2
        first, second = windows
        assert first.window_start == 0.0
        assert first.count == 2
        assert first.mean == pytest.approx(15.0)
        assert first.minimum == 10.0
        assert first.maximum == 20.0
        assert second.window_start == 30.0
        assert second.mean == pytest.approx(40.0)

    def test_std_within_window(self):
        series = WindowedSeries(window_s=10.0)
        series.add(1.0, 0.0)
        series.add(2.0, 2.0)
        assert series.windows()[0].std == pytest.approx(1.0)

    def test_empty_series(self):
        assert WindowedSeries().windows() == []

    def test_invalid_window(self):
        with pytest.raises(ValueError):
            WindowedSeries(window_s=0)

    def test_len_and_samples(self):
        series = WindowedSeries()
        series.add(1.0, 2.0)
        assert len(series) == 1
        assert series.samples == [(1.0, 2.0)]


class TestThroughputMeter:
    def test_rate_over_interval(self):
        meter = ThroughputMeter()
        for t in range(10):
            meter.record(float(t))
        assert meter.total == 10
        assert meter.rate(0.0, 10.0) == pytest.approx(1.0)
        assert meter.rate(5.0, 10.0) == pytest.approx(1.0)

    def test_batch_record(self):
        meter = ThroughputMeter()
        meter.record(1.0, count=5)
        assert meter.total == 5

    def test_empty_interval_rejected(self):
        with pytest.raises(ValueError):
            ThroughputMeter().rate(5.0, 5.0)


class TestBacklogProbe:
    def test_stable_when_backlog_stays_bounded(self):
        queue = {"q": lambda: 3}
        probe = BacklogProbe(queue)
        for t in range(10):
            probe.sample(float(t))
        assert probe.is_stable(bound=5)
        assert probe.max_backlog() == 3

    def test_unstable_when_backlog_grows(self):
        state = {"n": 0}

        def growing():
            state["n"] += 50
            return state["n"]

        probe = BacklogProbe({"q": growing})
        for t in range(10):
            probe.sample(float(t))
        assert not probe.is_stable(bound=100)

    def test_no_samples_is_stable(self):
        assert BacklogProbe({}).is_stable()
