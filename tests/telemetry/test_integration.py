"""End-to-end telemetry: traces and metrics from real simulation runs.

Covers the PR's acceptance criteria: a Fig. 7-style migration run whose
per-phase span durations sum to the measured migration delay, heartbeat
sampling into the registry gauges, enforcer decision records, trace
determinism, and telemetry being a pure observer (identical notifications
with it on, off, or disabled).
"""

import pytest

from repro.elastic import (
    ElasticityEnforcer,
    ElasticityPolicy,
    HostProbe,
    ProbeCollector,
    ProbeSet,
    SliceProbe,
    Violation,
    ViolationKind,
)
from repro.experiments import Deployment, ExperimentSetup
from repro.telemetry import Telemetry, read_jsonl

MIGRATED_SLICES = ("AP:0", "M:1", "EP:0")
PHASE_NAMES = [
    "migration.pre",
    "migration.sync",
    "migration.pause",
    "migration.copy",
    "migration.post",
]


def small_setup(telemetry):
    return ExperimentSetup(
        subscriptions=400,
        matching_rate=0.05,
        ap_slices=2,
        m_slices=4,
        ep_slices=2,
        sink_slices=1,
        parallelism=4,
        max_hosts=8,
        telemetry=telemetry,
    )


def run_traced_migrations(telemetry):
    """A small Figure 7-style run: constant flow + three live migrations."""
    deployment = Deployment(small_setup(telemetry))
    deployment.deploy_groups(1, 2, 1)
    deployment.preload_subscriptions()
    env = deployment.env
    runtime = deployment.hub.runtime
    reports = []

    def plan():
        yield env.timeout(1.0)
        for slice_id in MIGRATED_SLICES:
            current = runtime.host_of(slice_id)
            destination = next(
                h for h in deployment.engine_hosts if h is not current
            )
            report = yield runtime.migrate(slice_id, destination)
            reports.append(report)
            yield env.timeout(0.5)

    deployment.source.publish_constant(50.0, duration_s=4.0)
    env.process(plan())
    env.run()
    return deployment, reports


@pytest.fixture(scope="module")
def traced_run():
    telemetry = Telemetry()
    deployment, reports = run_traced_migrations(telemetry)
    return telemetry, deployment, reports


class TestMigrationTrace:
    def test_one_root_span_per_migration(self, traced_run):
        telemetry, _, reports = traced_run
        roots = telemetry.tracer.find("migration")
        assert len(roots) == len(reports) == len(MIGRATED_SLICES)
        assert [r.attrs["slice"] for r in roots] == list(MIGRATED_SLICES)

    def test_phases_tile_the_migration(self, traced_run):
        """Per-phase durations sum to the measured migration delay."""
        telemetry, _, reports = traced_run
        for root, report in zip(telemetry.tracer.find("migration"), reports):
            phases = [
                s for s in telemetry.tracer.spans
                if s.parent_id == root.span_id
            ]
            assert [p.name for p in phases] == PHASE_NAMES
            assert sum(p.duration_s for p in phases) == pytest.approx(
                report.duration_s
            )
            # Contiguous tiling: each phase starts where the previous ended.
            assert phases[0].start == report.started_at
            for before, after in zip(phases, phases[1:]):
                assert before.end == after.start
            assert phases[-1].end == report.completed_at

    def test_pause_plus_copy_equals_interruption(self, traced_run):
        telemetry, _, reports = traced_run
        for root, report in zip(telemetry.tracer.find("migration"), reports):
            by_name = {
                s.name: s for s in telemetry.tracer.spans
                if s.parent_id == root.span_id
            }
            interruption = (
                by_name["migration.pause"].duration_s
                + by_name["migration.copy"].duration_s
            )
            assert interruption == pytest.approx(report.interruption_s)

    def test_root_attrs_match_report(self, traced_run):
        telemetry, _, reports = traced_run
        for root, report in zip(telemetry.tracer.find("migration"), reports):
            assert root.attrs["from_host"] == report.source_host
            assert root.attrs["to_host"] == report.destination_host
            assert root.attrs["state_bytes"] == report.state_bytes
            assert root.attrs["duration_s"] == pytest.approx(report.duration_s)

    def test_phase_sum_survives_jsonl_roundtrip(self, traced_run, tmp_path):
        telemetry, _, reports = traced_run
        path = tmp_path / "trace.jsonl"
        telemetry.tracer.write_jsonl(str(path))
        records = read_jsonl(str(path))
        roots = [r for r in records if r["name"] == "migration"]
        assert len(roots) == len(reports)
        for root, report in zip(roots, reports):
            phase_sum = sum(
                r["duration_s"] for r in records
                if r["parent_id"] == root["span_id"]
            )
            assert phase_sum == pytest.approx(report.duration_s)

    def test_migration_metrics_recorded(self, traced_run):
        telemetry, _, reports = traced_run
        assert telemetry.migrations.value == len(reports)
        assert telemetry.migration_duration.count == len(reports)
        assert telemetry.migration_duration.sum == pytest.approx(
            sum(r.duration_s for r in reports)
        )
        # The M slice carries stored subscriptions, so state moved.
        assert telemetry.migration_state_bytes.value > 0


class TestEventPlaneTrace:
    def test_hop_spans_cover_the_pipeline(self, traced_run):
        telemetry, _, _ = traced_run
        for operator in ("AP", "M", "EP", "SINK"):
            hops = telemetry.tracer.find(f"hop.{operator}")
            assert hops, f"no hop spans for {operator}"
            assert all(h.end is not None for h in hops)

    def test_hops_correlated_by_pub_id(self, traced_run):
        telemetry, _, _ = traced_run
        ap_pubs = {
            s.attrs.get("pub_id") for s in telemetry.tracer.find("hop.AP")
        }
        m_pubs = {
            s.attrs.get("pub_id") for s in telemetry.tracer.find("hop.M")
        }
        assert ap_pubs - {None}  # publications are identified
        assert (m_pubs - {None}) <= (ap_pubs - {None})

    def test_event_plane_metrics_recorded(self, traced_run):
        telemetry, deployment, _ = traced_run
        processed = telemetry.events_processed
        assert processed.labels(operator="M").value > 0
        assert telemetry.matcher_publications.value > 0
        assert telemetry.matcher_matches.value > 0
        assert telemetry.net_messages.value > 0
        delivered = len(deployment.hub.delay_tracker.samples)
        assert telemetry.notification_delay.count == delivered > 0


class TestDeterminism:
    def test_identical_runs_produce_identical_traces(self, tmp_path):
        paths = []
        for i in range(2):
            telemetry = Telemetry()
            run_traced_migrations(telemetry)
            path = tmp_path / f"trace{i}.jsonl"
            telemetry.tracer.write_jsonl(str(path))
            paths.append(path)
        assert paths[0].read_bytes() == paths[1].read_bytes()

    def test_telemetry_is_a_pure_observer(self, traced_run):
        """Enabled, disabled and absent telemetry deliver identically."""
        _, traced, traced_reports = traced_run
        results = {}
        for key, telemetry in (
            ("off", None), ("disabled", Telemetry.disabled()),
        ):
            deployment, reports = run_traced_migrations(telemetry)
            results[key] = (deployment, reports)

        def notifications(deployment):
            return [
                (s.delivered_at, s.delay)
                for s in deployment.hub.delay_tracker.samples
            ]

        baseline = notifications(traced)
        assert baseline
        for deployment, reports in results.values():
            assert notifications(deployment) == baseline
            assert [r.duration_s for r in reports] == [
                r.duration_s for r in traced_reports
            ]


class TestHeartbeatSampling:
    def test_probe_rounds_fill_the_gauges(self):
        telemetry = Telemetry(tracing=False)
        deployment = Deployment(small_setup(telemetry))
        deployment.deploy_groups(1, 2, 1)
        deployment.preload_subscriptions()
        runtime = deployment.hub.runtime
        managed = [f"M:{i}" for i in range(4)]
        collector = ProbeCollector(
            runtime,
            managed_slices=managed,
            hosts_fn=lambda: deployment.engine_hosts,
            interval_s=1.0,
            telemetry=telemetry,
        )
        collector.start()
        deployment.source.publish_constant(50.0, duration_s=3.0)
        deployment.env.run(until=3.5)

        assert telemetry.heartbeats.value >= 3
        for slice_id in managed:
            child = telemetry.slice_state_bytes.labels(slice=slice_id)
            assert child.value > 0  # preloaded subscriptions have weight
        host_ids = {h.host_id for h in deployment.engine_hosts}
        sampled_hosts = {
            labels["host"]
            for labels, _ in telemetry.host_cpu_utilization.samples()
        }
        assert sampled_hosts == host_ids


def _probe_set(now=100.0, window_s=5.0):
    """A hand-built heartbeat round with one clearly overloaded host."""
    hosts = {
        "host-0": HostProbe(
            host_id="host-0", cores=8, cpu_utilization=0.9,
            memory_bytes=0, net_bytes_sent=0, net_bytes_received=0,
        ),
        "host-1": HostProbe(
            host_id="host-1", cores=8, cpu_utilization=0.2,
            memory_bytes=0, net_bytes_sent=0, net_bytes_received=0,
        ),
    }
    slices = {
        "M:0": SliceProbe("M:0", "host-0", cpu_cores=3.0,
                          memory_bytes=1 << 20, queue_length=0),
        "M:1": SliceProbe("M:1", "host-0", cpu_cores=2.5,
                          memory_bytes=1 << 20, queue_length=0),
        "M:2": SliceProbe("M:2", "host-0", cpu_cores=1.7,
                          memory_bytes=1 << 20, queue_length=0),
        "M:3": SliceProbe("M:3", "host-1", cpu_cores=1.6,
                          memory_bytes=1 << 20, queue_length=0),
    }
    return ProbeSet(time=now, window_s=window_s, hosts=hosts, slices=slices)


class TestEnforcerDecisionRecord:
    def test_decision_event_carries_full_context(self):
        telemetry = Telemetry()
        enforcer = ElasticityEnforcer(
            ElasticityPolicy(), host_cores=8, telemetry=telemetry
        )
        probes = _probe_set()
        violation = Violation(
            kind=ViolationKind.GLOBAL_OVERLOAD, measured=0.9
        )
        decision = enforcer.resolve(probes, violation)
        assert decision is not None and decision.migrations

        events = telemetry.tracer.find("enforcer.decision")
        assert len(events) == 1
        attrs = events[0].attrs
        assert attrs["rule"] == "global_overload"
        assert attrs["measured"] == 0.9
        assert attrs["window_time"] == probes.time
        assert attrs["window_s"] == probes.window_s
        assert attrs["avg_utilization"] == pytest.approx(0.55)
        assert attrs["hosts"] == 2
        assert attrs["actionable"] is True
        assert "host_id" not in attrs  # global rule: no single host
        assert attrs["selected_slices"] == [
            m.slice_id for m in decision.migrations
        ]
        assert attrs["placement"] == {
            m.slice_id: m.to_host for m in decision.migrations
        }
        assert attrs["new_hosts"] == decision.new_hosts

        rule = telemetry.rule_firings.labels(rule="global_overload")
        assert rule.value == 1
        kind = telemetry.scaling_decisions.labels(kind="global_overload")
        assert kind.value == 1

    def test_local_rule_records_host_id(self):
        telemetry = Telemetry()
        enforcer = ElasticityEnforcer(
            ElasticityPolicy(), host_cores=8, telemetry=telemetry
        )
        violation = Violation(
            kind=ViolationKind.LOCAL_OVERLOAD, measured=0.95,
            host_id="host-0",
        )
        enforcer.resolve(_probe_set(), violation)
        (event,) = telemetry.tracer.find("enforcer.decision")
        assert event.attrs["host_id"] == "host-0"

    def test_unactionable_decision_still_fires_rule_counter(self):
        telemetry = Telemetry()
        enforcer = ElasticityEnforcer(
            ElasticityPolicy(min_hosts=2), host_cores=8, telemetry=telemetry
        )
        violation = Violation(
            kind=ViolationKind.GLOBAL_UNDERLOAD, measured=0.1
        )
        decision = enforcer.resolve(_probe_set(), violation)
        assert decision is None
        (event,) = telemetry.tracer.find("enforcer.decision")
        assert event.attrs["actionable"] is False
        assert telemetry.rule_firings.labels(rule="global_underload").value == 1
        assert (
            telemetry.scaling_decisions.labels(kind="global_underload").value
            == 0
        )


class TestDisabledBundle:
    def test_disabled_bundle_records_nothing(self):
        telemetry = Telemetry.disabled()
        deployment, reports = run_traced_migrations(telemetry)
        assert reports
        assert telemetry.metrics is None
        assert telemetry.tracer.spans == ()
