"""Unit tests for the metric registry and the Prometheus exporter."""

import pytest

from repro.telemetry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    Telemetry,
    to_prometheus,
    write_prometheus,
)


class TestInstruments:
    def test_counter_accumulates(self):
        counter = Counter()
        counter.inc()
        counter.inc(41)
        assert counter.value == 42

    def test_counter_rejects_negative(self):
        with pytest.raises(ValueError):
            Counter().inc(-1)

    def test_gauge_set_and_add(self):
        gauge = Gauge()
        gauge.set(5.0)
        gauge.add(-2.0)
        assert gauge.value == 3.0

    def test_histogram_buckets_and_mean(self):
        hist = Histogram(buckets=(0.1, 1.0))
        for value in (0.05, 0.5, 2.0):
            hist.observe(value)
        assert hist.count == 3
        assert hist.sum == pytest.approx(2.55)
        assert hist.mean == pytest.approx(0.85)
        assert hist.cumulative_buckets() == [(0.1, 1), (1.0, 2)]

    def test_histogram_boundary_value_counts_into_bucket(self):
        hist = Histogram(buckets=(1.0,))
        hist.observe(1.0)  # le="1.0" is inclusive, Prometheus-style
        assert hist.cumulative_buckets() == [(1.0, 1)]


class TestFamilies:
    def test_labelled_family_children_are_independent(self):
        registry = MetricsRegistry()
        family = registry.counter("events_total", labels=("operator",))
        family.labels(operator="AP").inc(2)
        family.labels(operator="M").inc(3)
        assert family.labels(operator="AP").value == 2
        assert family.labels(operator="M").value == 3

    def test_labelless_family_delegates(self):
        registry = MetricsRegistry()
        family = registry.counter("total")
        family.inc(7)
        assert family.value == 7

    def test_wrong_labels_rejected(self):
        registry = MetricsRegistry()
        family = registry.counter("events_total", labels=("operator",))
        with pytest.raises(ValueError):
            family.labels(host="x")
        with pytest.raises(ValueError):
            family.inc()  # labelled family has no default child

    def test_reregistration_is_idempotent(self):
        registry = MetricsRegistry()
        a = registry.counter("x_total", labels=("k",))
        b = registry.counter("x_total", labels=("k",))
        assert a is b
        with pytest.raises(ValueError):
            registry.gauge("x_total")  # kind mismatch
        with pytest.raises(ValueError):
            registry.counter("x_total", labels=("other",))  # label mismatch

    def test_samples_sorted_by_label_values(self):
        registry = MetricsRegistry()
        family = registry.gauge("depth", labels=("slice",))
        for name in ("M:2", "AP:0", "M:1"):
            family.labels(slice=name).set(1)
        assert [labels["slice"] for labels, _ in family.samples()] == [
            "AP:0", "M:1", "M:2",
        ]


class TestSnapshotAndRender:
    def test_snapshot_shape(self):
        registry = MetricsRegistry()
        registry.counter("a_total", help="things", unit="bytes").inc(5)
        registry.histogram("h_seconds", buckets=(1.0,)).observe(0.5)
        snapshot = registry.snapshot()
        assert snapshot["a_total"]["kind"] == "counter"
        assert snapshot["a_total"]["samples"] == [{"labels": {}, "value": 5}]
        hist = snapshot["h_seconds"]["samples"][0]
        assert hist["count"] == 1 and hist["buckets"] == [[1.0, 1]]

    def test_render_mentions_every_family(self):
        registry = MetricsRegistry()
        registry.counter("a_total").inc()
        registry.gauge("b", labels=("host",)).labels(host="h0").set(2)
        text = registry.render()
        assert "a_total" in text and "host=h0" in text


class TestPrometheusExport:
    def test_counter_and_gauge_lines(self):
        registry = MetricsRegistry()
        registry.counter("events_total", help="all events").inc(3)
        registry.gauge("hosts").set(2)
        text = to_prometheus(registry)
        assert "# HELP events_total all events" in text
        assert "# TYPE events_total counter" in text
        assert "\nevents_total 3\n" in text
        assert "\nhosts 2" in text

    def test_histogram_exposition(self):
        registry = MetricsRegistry()
        hist = registry.histogram("delay_seconds", buckets=(0.1, 1.0))
        hist.observe(0.05)
        hist.observe(5.0)
        text = to_prometheus(registry)
        assert 'delay_seconds_bucket{le="0.1"} 1' in text
        assert 'delay_seconds_bucket{le="1"} 1' in text
        assert 'delay_seconds_bucket{le="+Inf"} 2' in text
        assert "delay_seconds_sum 5.05" in text
        assert "delay_seconds_count 2" in text

    def test_label_escaping(self):
        registry = MetricsRegistry()
        registry.counter("c_total", labels=("k",)).labels(k='a"b\\c').inc()
        assert 'c_total{k="a\\"b\\\\c"} 1' in to_prometheus(registry)

    def test_unit_rendered_in_help(self):
        registry = MetricsRegistry()
        registry.counter("x_total", help="bytes moved", unit="bytes").inc()
        assert "# HELP x_total bytes moved [bytes]" in to_prometheus(registry)

    def test_write_prometheus_atomic(self, tmp_path):
        registry = MetricsRegistry()
        registry.counter("a_total").inc()
        path = tmp_path / "scrape.prom"
        write_prometheus(str(path), registry)
        assert path.read_text() == to_prometheus(registry)
        assert list(tmp_path.iterdir()) == [path]  # no temp litter

    def test_deterministic_output(self):
        def build():
            registry = MetricsRegistry()
            registry.counter("z_total").inc(1)
            family = registry.gauge("depth", labels=("slice",))
            family.labels(slice="M:1").set(4)
            family.labels(slice="AP:0").set(2)
            return to_prometheus(registry)

        assert build() == build()


class TestTelemetryBundle:
    def test_enabled_bundle_declares_instruments(self):
        telemetry = Telemetry()
        assert telemetry.enabled
        assert telemetry.tracer.enabled
        assert telemetry.events_routed is not None
        assert telemetry.metrics.get("engine_events_routed_total") is not None

    def test_disabled_bundle_is_inert(self):
        telemetry = Telemetry.disabled()
        assert not telemetry.enabled
        assert not telemetry.tracer.enabled
        assert telemetry.metrics is None
        assert telemetry.events_routed is None
        assert telemetry.migration_duration is None

    def test_metrics_only_bundle(self):
        telemetry = Telemetry(tracing=False)
        assert telemetry.enabled
        assert not telemetry.tracer.enabled
        assert telemetry.heartbeats is not None

    def test_bind_env_drives_tracer_clock(self):
        from repro.sim import Environment

        telemetry = Telemetry()
        env = Environment()
        telemetry.bind_env(env)
        env.call_later(5.0, lambda: None)
        env.run()
        assert telemetry.tracer.now == 5.0
