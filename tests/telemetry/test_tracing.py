"""Unit tests for the span tracer and its JSONL persistence."""

import pytest

from repro.telemetry import NULL_TRACER, NullTracer, Tracer, read_jsonl


class FakeClock:
    def __init__(self):
        self.time = 0.0

    def __call__(self):
        return self.time


@pytest.fixture
def clock():
    return FakeClock()


@pytest.fixture
def tracer(clock):
    return Tracer(clock)


class TestSpanLifecycle:
    def test_start_finish_measures_interval(self, tracer, clock):
        span = tracer.start_span("migration.pre")
        clock.time = 0.25
        tracer.finish_span(span)
        assert span.start == 0.0
        assert span.end == 0.25
        assert span.duration_s == 0.25

    def test_open_span_has_zero_duration(self, tracer):
        span = tracer.start_span("open")
        assert span.end is None
        assert span.duration_s == 0.0

    def test_sequential_span_ids(self, tracer):
        first = tracer.start_span("a")
        second = tracer.start_span("b")
        assert (first.span_id, second.span_id) == (1, 2)

    def test_parenting(self, tracer):
        root = tracer.start_span("migration")
        child = tracer.start_span("migration.pre", parent=root)
        assert child.parent_id == root.span_id
        assert root.parent_id is None

    def test_finish_merges_attributes(self, tracer):
        span = tracer.start_span("migration", slice="M:1")
        tracer.finish_span(span, state_bytes=512)
        assert span.attrs == {"slice": "M:1", "state_bytes": 512}

    def test_context_manager_closes_span(self, tracer, clock):
        with tracer.span("hop.AP", pub_id=7) as span:
            clock.time = 0.5
        assert span.end == 0.5
        assert span.attrs["pub_id"] == 7

    def test_add_span_records_premeasured_interval(self, tracer):
        span = tracer.add_span("hop.M", 1.0, 1.4, pub_id=3)
        assert span.duration_s == pytest.approx(0.4)

    def test_event_is_instant(self, tracer, clock):
        clock.time = 2.0
        span = tracer.event("enforcer.decision", rule="global_overload")
        assert span.start == span.end == 2.0
        assert span.duration_s == 0.0


class TestReadout:
    def test_find_returns_in_start_order(self, tracer, clock):
        tracer.add_span("hop.AP", 0.0, 0.1)
        tracer.add_span("hop.M", 0.1, 0.2)
        tracer.add_span("hop.AP", 0.2, 0.3)
        assert [s.start for s in tracer.find("hop.AP")] == [0.0, 0.2]

    def test_breakdown_sorted_by_total_descending(self, tracer):
        tracer.add_span("hop.M", 0.0, 0.3)
        tracer.add_span("hop.AP", 0.0, 0.1)
        tracer.add_span("hop.AP", 0.1, 0.2)
        tracer.start_span("open")  # excluded: still open
        rows = tracer.breakdown()
        assert [row[0] for row in rows] == ["hop.M", "hop.AP"]
        name, count, total, mean, maximum = rows[1]
        assert count == 2
        assert total == pytest.approx(0.2)
        assert mean == pytest.approx(0.1)
        assert maximum == pytest.approx(0.1)


class TestJsonl:
    def _sample(self, tracer, clock):
        root = tracer.start_span("migration", slice="M:1")
        clock.time = 0.5
        tracer.add_span("migration.pre", 0.0, 0.1, parent=root)
        tracer.finish_span(root, state_bytes=64)
        return tracer

    def test_roundtrip(self, tracer, clock, tmp_path):
        self._sample(tracer, clock)
        path = tmp_path / "trace.jsonl"
        tracer.write_jsonl(str(path))
        records = read_jsonl(str(path))
        assert len(records) == 2
        root = records[0]
        assert root["name"] == "migration"
        assert root["span_id"] == 1
        assert root["duration_s"] == pytest.approx(0.5)
        assert root["attrs"] == {"slice": "M:1", "state_bytes": 64}
        assert records[1]["parent_id"] == root["span_id"]

    def test_byte_identical_for_identical_traces(self, tmp_path):
        paths = []
        for i in range(2):
            fresh_clock = FakeClock()
            tracer = Tracer(fresh_clock)
            self._sample(tracer, fresh_clock)
            path = tmp_path / f"trace{i}.jsonl"
            tracer.write_jsonl(str(path))
            paths.append(path)
        assert paths[0].read_bytes() == paths[1].read_bytes()

    def test_write_is_atomic(self, tracer, clock, tmp_path):
        self._sample(tracer, clock)
        path = tmp_path / "trace.jsonl"
        tracer.write_jsonl(str(path))
        assert list(tmp_path.iterdir()) == [path]  # no temp litter


def generate_workload(tracer, clock, spans=200):
    """A deterministic mix of closed, nested and open-crossing spans."""
    for i in range(spans):
        clock.time = i * 0.01
        if i % 7 == 0:
            root = tracer.start_span("migration", slice=f"M:{i % 4}")
            clock.time += 0.004
            tracer.add_span("migration.pre", clock.time - 0.002, clock.time,
                            parent=root)
            tracer.finish_span(root)
        else:
            tracer.add_span(f"hop.{'AP' if i % 2 else 'M'}",
                            clock.time, clock.time + 0.003, pub_id=i)


class TestStreaming:
    def test_streamed_bytes_equal_unstreamed(self, tmp_path):
        plain_clock, stream_clock = FakeClock(), FakeClock()
        plain, streamed = Tracer(plain_clock), Tracer(stream_clock)
        stream_path = tmp_path / "streamed.jsonl"
        streamed.stream_to(str(stream_path), window_spans=16)
        generate_workload(plain, plain_clock)
        generate_workload(streamed, stream_clock)
        plain_path = tmp_path / "plain.jsonl"
        plain.write_jsonl(str(plain_path))
        streamed.write_jsonl(str(stream_path))
        assert plain_path.read_bytes() == stream_path.read_bytes()

    def test_memory_stays_flat(self, clock, tmp_path):
        tracer = Tracer(clock)
        tracer.stream_to(str(tmp_path / "flat.jsonl"), window_spans=32)
        peak = 0
        for i in range(500):
            clock.time = i * 0.01
            tracer.add_span("hop.M", clock.time, clock.time + 0.001)
            peak = max(peak, len(tracer.spans))
        assert peak <= 32
        assert tracer.flushed_spans >= 500 - 32

    def test_open_span_holds_back_the_prefix(self, tracer, clock, tmp_path):
        tracer.stream_to(str(tmp_path / "open.jsonl"), window_spans=4)
        open_span = tracer.start_span("migration")
        for i in range(10):
            tracer.add_span("hop.M", 0.0, 0.001)
        # Everything sits behind the open span: nothing may leave memory,
        # because spans stream strictly in start order.
        assert tracer.flushed_spans == 0
        assert len(tracer.spans) == 11
        tracer.finish_span(open_span)
        assert tracer.flushed_spans == 11

    def test_breakdown_covers_flushed_spans(self, tmp_path, clock):
        streamed = Tracer(clock)
        plain = Tracer(clock)
        streamed.stream_to(str(tmp_path / "t.jsonl"), window_spans=8)
        generate_workload(streamed, clock, spans=100)
        fresh = FakeClock()
        plain_tracer = Tracer(fresh)
        generate_workload(plain_tracer, fresh, spans=100)
        assert streamed.flushed_spans > 0  # stats really are merged
        assert streamed.breakdown() == plain_tracer.breakdown()

    def test_finalize_requires_the_streamed_path(self, tmp_path, tracer):
        tracer.stream_to(str(tmp_path / "a.jsonl"))
        with pytest.raises(ValueError):
            tracer.write_jsonl(str(tmp_path / "b.jsonl"))

    def test_stream_to_twice_refuses(self, tmp_path, tracer):
        tracer.stream_to(str(tmp_path / "a.jsonl"))
        with pytest.raises(RuntimeError):
            tracer.stream_to(str(tmp_path / "b.jsonl"))

    def test_window_must_be_positive(self, tmp_path, tracer):
        with pytest.raises(ValueError):
            tracer.stream_to(str(tmp_path / "a.jsonl"), window_spans=0)

    def test_finalize_is_atomic_and_complete(self, tmp_path, clock):
        tracer = Tracer(clock)
        path = tmp_path / "trace.jsonl"
        tracer.stream_to(str(path), window_spans=8)
        generate_workload(tracer, clock, spans=50)
        still_open = tracer.start_span("unfinished")
        assert not path.exists()  # nothing visible until finalize
        tracer.write_jsonl(str(path))
        assert not tracer.streaming
        records = read_jsonl(str(path))
        # Open spans serialize with end=None, like the non-streamed path.
        assert records[-1]["name"] == "unfinished"
        assert records[-1]["end"] is None
        assert len(records) == still_open.span_id
        assert [r["span_id"] for r in records] == list(
            range(1, still_open.span_id + 1)
        )
        assert list(tmp_path.iterdir()) == [path]  # no temp litter


class TestNullTracer:
    def test_disabled_flag(self):
        assert NULL_TRACER.enabled is False
        assert isinstance(NULL_TRACER, NullTracer)

    def test_records_nothing(self):
        span = NULL_TRACER.start_span("x", key="v")
        NULL_TRACER.finish_span(span)
        NULL_TRACER.event("y")
        NULL_TRACER.add_span("z", 0.0, 1.0)
        with NULL_TRACER.span("w"):
            pass
        assert NULL_TRACER.spans == ()
        assert NULL_TRACER.find("x") == []
        assert NULL_TRACER.breakdown() == []

    def test_write_jsonl_refuses(self, tmp_path):
        with pytest.raises(RuntimeError):
            NULL_TRACER.write_jsonl(str(tmp_path / "trace.jsonl"))
