"""Session-wide chaos wiring: the CI standing fault plan (RESILIENCE.md §6).

CI's chaos leg exports ``REPRO_CHAOS_SEED`` and re-runs tier-1.  The
``standing_fault_plan`` fixture below is how that seed reaches the
recovery-aware tests: they call ``arm(...)`` against their deployment
and get a scripted background fault schedule — a single host crash plus
an optional partition/heal window — whose victims and timing derive
from the seed.  Without the variable the default seed (0) is used, so
the schedule is always exercised and stays deterministic either way.
"""

import random

import pytest

from repro.cluster import FaultPlan, chaos_seed_from_env


@pytest.fixture(scope="session")
def chaos_seed():
    """The standing chaos seed from ``REPRO_CHAOS_SEED``, or ``None``."""
    return chaos_seed_from_env()


@pytest.fixture
def standing_fault_plan(chaos_seed):
    """Factory arming the standing background fault plan on a deployment.

    ``arm(env, cloud=..., hosts=victim_pool)`` scripts a seed-picked
    single-host crash inside ``[crash_window_s)``; passing
    ``partition_with=`` another host group additionally cuts the fabric
    between the victims' group and that group for ``partition_window_s``
    and heals it.  Returns the armed :class:`FaultPlan` so the test can
    assert against ``plan.injected`` afterwards.
    """

    def arm(
        env,
        *,
        cloud,
        hosts,
        detector=None,
        telemetry=None,
        crash_window_s=(0.2, 1.0),
        partition_with=None,
        partition_window_s=(1.5, 3.0),
    ):
        seed = 0 if chaos_seed is None else chaos_seed
        plan = FaultPlan(
            env, cloud=cloud, detector=detector, telemetry=telemetry,
            seed=seed,
        )
        plan.group("standing", hosts)
        rng = random.Random(seed)
        lo, hi = crash_window_s
        plan.crash_host_at(lo + rng.random() * (hi - lo))
        if partition_with is not None:
            cut, heal = partition_window_s
            plan.partition_at(cut, "standing", list(partition_with))
            plan.heal_at(heal)
        return plan

    return arm
