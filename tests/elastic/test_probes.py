"""Tests for the probe collector."""

import pytest

from repro.elastic import ProbeCollector
from repro.filtering import CostModel
from tests.engine.helpers import Harness, Recorder


def make_collector(h, interval=5.0):
    return ProbeCollector(
        h.runtime,
        managed_slices=h.runtime.slice_ids(),
        hosts_fn=lambda: h.hosts,
        cost_model=CostModel(),
        interval_s=interval,
    )


def test_collect_now_reports_hosts_and_slices():
    h = Harness(hosts=2, cores=4)
    h.runtime.add_operator("M", 2, lambda i: Recorder(cost_s=1.0))
    h.runtime.deploy_operator("M", h.hosts)
    collector = make_collector(h)
    collector.collect_now()  # prime snapshots

    def load():
        for _ in range(4):
            h.runtime.inject("client", "M", "e", 1, 100, key=0)
        yield h.env.timeout(8.0)

    h.env.process(load())
    h.env.run()
    probes = collector.collect_now()
    assert set(probes.hosts) == {h.hosts[0].host_id, h.hosts[1].host_id}
    assert set(probes.slices) == {"M:0", "M:1"}
    # M:0 (on host 0) consumed 4 CPU-seconds over an 8 s window on 4 cores.
    host0 = probes.hosts[h.hosts[0].host_id]
    assert host0.cpu_utilization == pytest.approx(4.0 / (4 * 8.0), rel=0.05)
    assert probes.slices["M:0"].cpu_cores == pytest.approx(0.5, rel=0.05)
    assert probes.slices["M:1"].cpu_cores == 0.0


def test_probe_set_aggregates():
    h = Harness(hosts=2, cores=4)
    h.runtime.add_operator("M", 2, lambda i: Recorder())
    h.runtime.deploy_operator("M", h.hosts)
    collector = make_collector(h)
    probes = collector.collect_now()
    assert probes.average_utilization() == 0.0
    assert probes.total_load_cores() == 0.0
    assert probes.slices_on(h.hosts[0].host_id)[0].slice_id == "M:0"


def test_memory_probe_includes_state_and_base():
    h = Harness(hosts=1)
    from tests.engine.helpers import CountingState

    h.runtime.add_operator("S", 1, lambda i: CountingState(bytes_per_entry=1000))
    h.runtime.deploy_operator("S", h.hosts)
    for i in range(5):
        h.runtime.inject("client", "S", "add", (i, i), 100, key=0)
    h.env.run()
    collector = ProbeCollector(
        h.runtime, ["S:0"], lambda: h.hosts, CostModel(), interval_s=5.0
    )
    probes = collector.collect_now()
    assert probes.slices["S:0"].memory_bytes == 5 * 1000 + CostModel().slice_base_bytes


def test_periodic_collection_notifies_subscribers():
    h = Harness(hosts=1)
    h.runtime.add_operator("M", 1, lambda i: Recorder())
    h.runtime.deploy_operator("M", h.hosts)
    collector = make_collector(h, interval=5.0)
    received = []
    collector.subscribe(received.append)
    collector.start()
    h.env.run(until=26.0)
    assert len(received) == 5
    assert [p.time for p in received] == [5.0, 10.0, 15.0, 20.0, 25.0]
    assert all(p.window_s == 5.0 for p in received)


def test_double_start_rejected():
    h = Harness(hosts=1)
    h.runtime.add_operator("M", 1, lambda i: Recorder())
    h.runtime.deploy_operator("M", h.hosts)
    collector = make_collector(h)
    collector.start()
    with pytest.raises(RuntimeError):
        collector.start()


def test_invalid_interval():
    h = Harness(hosts=1)
    with pytest.raises(ValueError):
        ProbeCollector(h.runtime, [], lambda: [], CostModel(), interval_s=0)
