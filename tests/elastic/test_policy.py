"""Tests for the elasticity policy rules."""

import pytest

from repro.elastic import ElasticityPolicy, ViolationKind
from repro.elastic.probes import HostProbe, ProbeSet


def probe_set(utils, slices=None):
    hosts = {
        f"h{i}": HostProbe(f"h{i}", 8, u, 0, 0, 0) for i, u in enumerate(utils)
    }
    return ProbeSet(time=0.0, window_s=5.0, hosts=hosts, slices=slices or {})


def test_defaults_match_paper():
    policy = ElasticityPolicy()
    assert policy.target_utilization == 0.50
    assert policy.scale_out_threshold == 0.70
    assert policy.grace_period_s == 30.0


def test_global_overload_detected():
    policy = ElasticityPolicy()
    violation = policy.check(probe_set([0.74, 0.73]))
    assert violation.kind is ViolationKind.GLOBAL_OVERLOAD
    assert violation.measured == pytest.approx(0.735)


def test_global_underload_detected():
    policy = ElasticityPolicy()
    violation = policy.check(probe_set([0.1, 0.2]))
    assert violation.kind is ViolationKind.GLOBAL_UNDERLOAD


def test_underload_ignored_at_min_hosts():
    policy = ElasticityPolicy(min_hosts=1)
    assert policy.check(probe_set([0.05])) is None


def test_in_band_average_is_fine():
    policy = ElasticityPolicy()
    assert policy.check(probe_set([0.5, 0.5])) is None


def test_local_overload_detected_when_global_ok():
    policy = ElasticityPolicy()
    violation = policy.check(probe_set([0.9, 0.2, 0.2]))
    assert violation.kind is ViolationKind.LOCAL_OVERLOAD
    assert violation.host_id == "h0"


def test_global_takes_priority_over_local():
    policy = ElasticityPolicy()
    violation = policy.check(probe_set([0.95, 0.95]))
    assert violation.kind is ViolationKind.GLOBAL_OVERLOAD


def test_empty_probe_set_is_fine():
    assert ElasticityPolicy().check(probe_set([])) is None


def test_threshold_validation():
    with pytest.raises(ValueError):
        ElasticityPolicy(scale_in_threshold=0.6, target_utilization=0.5)
    with pytest.raises(ValueError):
        ElasticityPolicy(scale_out_threshold=0.4)
    with pytest.raises(ValueError):
        ElasticityPolicy(local_overload_threshold=0.5)
    with pytest.raises(ValueError):
        ElasticityPolicy(grace_period_s=-1)
    with pytest.raises(ValueError):
        ElasticityPolicy(min_hosts=0)
