"""Tests for shard-split scaling decisions and their execution."""

from repro.cluster import CloudProvider, HostSpec
from repro.coord import CoordinationKernel
from repro.elastic import (
    ElasticityEnforcer,
    ElasticityManager,
    ElasticityPolicy,
    PlannedShardOp,
    ScalingDecision,
    ViolationKind,
)
from repro.elastic.policy import Violation
from repro.elastic.probes import HostProbe, ProbeSet, SliceProbe
from repro.filtering import CostModel, ExactBackend, ShardedAspeLibrary
from repro.pubsub import HubConfig, StreamHub, Subscription
from repro.sim import Environment
from repro.workloads import ScaleWorkload

GIB = 1024 ** 3


def make_probes(host_slices):
    """host_slices: {host: [(slice, cpu, mem, shard_count), ...]}"""
    hosts = {}
    slices = {}
    for host_id, entries in host_slices.items():
        load = sum(cpu for _, cpu, _, _ in entries)
        hosts[host_id] = HostProbe(host_id, 8, load / 8.0, 0, 0, 0)
        for slice_id, cpu, mem, shards in entries:
            slices[slice_id] = SliceProbe(
                slice_id, host_id, cpu, mem, 0, shard_count=shards
            )
    return ProbeSet(time=0.0, window_s=5.0, hosts=hosts, slices=slices)


def enforcer():
    return ElasticityEnforcer(
        ElasticityPolicy(), host_cores=8, host_memory_bytes=8 * GIB
    )


class TestSplitFallback:
    def test_single_unmovable_hot_slice_splits(self):
        # The hot slice's subscription state is larger than any host can
        # take, so no placement exists — the enforcer falls back to
        # cutting its key range in place.
        probes = make_probes({"h1": [("M:0", 7.5, 20 * GIB, 1)]})
        decision = enforcer().resolve(
            probes, Violation(ViolationKind.LOCAL_OVERLOAD, 0.94, host_id="h1")
        )
        assert decision is not None
        assert not decision.migrations and decision.new_hosts == 0
        assert decision.shard_ops == [PlannedShardOp("M:0", "split", "h1")]
        assert not decision.is_empty

    def test_hottest_shardable_slice_is_chosen(self):
        probes = make_probes({
            "h1": [
                ("M:0", 3.9, 100, 2),
                ("M:1", 3.8, 100, 1),
                ("AP:0", 0.1, 10, 0),  # not shardable: never picked
            ]
        })
        decision = enforcer()._split_fallback(probes, "h1")
        assert decision.shard_ops == [PlannedShardOp("M:0", "split", "h1")]

    def test_no_shardable_slice_yields_none(self):
        probes = make_probes({"h1": [("AP:0", 7.5, 100, 0)]})
        assert enforcer()._split_fallback(probes, "h1") is None

    def test_empty_decision_accounting(self):
        assert ScalingDecision(kind=ViolationKind.LOCAL_OVERLOAD).is_empty
        assert not ScalingDecision(
            kind=ViolationKind.LOCAL_OVERLOAD,
            shard_ops=[PlannedShardOp("M:0", "split", "h1")],
        ).is_empty


class ManagerHarness:
    def __init__(self, subs=40):
        self.env = Environment()
        self.cloud = CloudProvider(self.env, spec=HostSpec(cores=8),
                                   max_hosts=10)
        self.engine_hosts = [self.cloud.provision_now()]
        sink = self.cloud.provision_now()
        config = HubConfig(
            ap_slices=1, m_slices=2, ep_slices=1, sink_slices=1,
            cost_model=CostModel(aspe_match_op_s=1e-6),
            backend_factory=lambda index: ExactBackend(ShardedAspeLibrary()),
        )
        self.hub = StreamHub(self.env, self.cloud.network, config)
        self.hub.deploy_all_on(self.engine_hosts, [sink])
        self.manager = ElasticityManager(
            self.hub, self.cloud, self.engine_hosts,
            policy=ElasticityPolicy(), coord=CoordinationKernel(),
            probe_interval_s=5.0,
        )
        workload = ScaleWorkload(seed=6)
        for batch in workload.subscription_batches(subs):
            for sub_id, payload in batch:
                self.hub.subscribe(Subscription(sub_id, sub_id, payload))
        self.env.run()

    def execute(self, decision):
        self.env.process(self.manager._execute(decision))
        self.env.run()


def test_manager_executes_planned_shard_ops():
    h = ManagerHarness()
    host_id = h.engine_hosts[0].host_id
    h.execute(ScalingDecision(
        kind=ViolationKind.LOCAL_OVERLOAD,
        shard_ops=[PlannedShardOp("M:0", "split", host_id),
                   PlannedShardOp("M:1", "split", host_id)],
    ))
    assert h.hub.runtime.shard_ops_completed == 2
    assert h.hub.runtime.slice_stats("M:0")["shards"] == 2
    assert h.hub.runtime.slice_stats("M:1")["shards"] == 2
    assert len(h.manager.shard_op_reports) == 2
    assert {r.op for r in h.manager.shard_op_reports} == {"split"}
    record = h.manager.history[-1]
    assert record.shard_ops == 2
    assert record.failures == 0


def test_manager_counts_inapplicable_shard_op_as_failure():
    h = ManagerHarness(subs=0)  # empty matchers: split not applicable
    host_id = h.engine_hosts[0].host_id
    h.execute(ScalingDecision(
        kind=ViolationKind.LOCAL_OVERLOAD,
        shard_ops=[PlannedShardOp("M:0", "split", host_id)],
    ))
    assert h.hub.runtime.shard_ops_completed == 0
    assert not h.manager.shard_op_reports
    record = h.manager.history[-1]
    assert record.shard_ops == 0
    assert record.failures == 1


def test_probe_collector_reports_shard_counts():
    h = ManagerHarness()
    h.hub.runtime.reshard("M:0", "split")
    h.env.run()
    probes = h.manager.collector.collect_now()
    assert probes.slices["M:0"].shard_count == 2
    assert probes.slices["M:1"].shard_count == 1
    assert probes.slices["AP:0"].shard_count == 0
