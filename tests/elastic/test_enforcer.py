"""Tests for the two-step elasticity enforcer."""

import pytest

from repro.elastic import (
    ElasticityEnforcer,
    ElasticityPolicy,
    ViolationKind,
)
from repro.elastic.policy import Violation
from repro.elastic.probes import HostProbe, ProbeSet, SliceProbe

GIB = 1024 ** 3
MIB = 1024 ** 2


def make_probes(host_slices):
    """host_slices: {host_id: [(slice_id, cpu_cores, memory_bytes), ...]}"""
    hosts = {}
    slices = {}
    for host_id, entries in host_slices.items():
        load = sum(cpu for _, cpu, _ in entries)
        hosts[host_id] = HostProbe(host_id, 8, load / 8.0, 0, 0, 0)
        for slice_id, cpu, mem in entries:
            slices[slice_id] = SliceProbe(slice_id, host_id, cpu, mem, 0)
    return ProbeSet(time=0.0, window_s=5.0, hosts=hosts, slices=slices)


@pytest.fixture
def enforcer():
    return ElasticityEnforcer(ElasticityPolicy(), host_cores=8, host_memory_bytes=8 * GIB)


class TestScaleOut:
    def test_figure5_example(self, enforcer):
        """Paper Figure 5: hosts at 74% and 73%; the min-memory slices (APs
        on host 1, EPs on host 2) move to one new host."""
        probes = make_probes({
            "host1": [
                ("AP:1", 1.0, 16 * MIB),
                ("AP:2", 1.0, 16 * MIB),
                ("M:1", 1.96, 400 * MIB),
                ("M:2", 1.96, 400 * MIB),
            ],
            "host2": [
                ("EP:1", 0.92, 20 * MIB),
                ("EP:2", 0.92, 20 * MIB),
                ("M:3", 2.0, 400 * MIB),
                ("M:4", 2.0, 400 * MIB),
            ],
        })
        violation = ElasticityPolicy().check(probes)
        assert violation.kind is ViolationKind.GLOBAL_OVERLOAD
        decision = enforcer.resolve(probes, violation)
        moved = {m.slice_id for m in decision.migrations}
        assert moved == {"AP:1", "AP:2", "EP:1", "EP:2"}
        assert decision.new_hosts == 1
        assert all(m.to_host == "new-0" for m in decision.migrations)

    def test_scale_out_uses_existing_headroom_first(self, enforcer):
        probes = make_probes({
            "busy": [("M:0", 3.0, 100), ("M:1", 3.0, 100), ("AP:0", 0.8, 10)],
            "idle": [("EP:0", 0.4, 10)],
        })
        decision = enforcer.resolve(
            probes, Violation(ViolationKind.GLOBAL_OVERLOAD, 0.45)
        )
        # busy at 85%: ~2.8 cores must leave; idle has 3.6 cores headroom
        # below target, so no new host should be needed.
        assert decision.new_hosts == 0
        assert all(m.to_host == "idle" for m in decision.migrations)
        assert all(m.from_host == "busy" for m in decision.migrations)

    def test_no_overloaded_host_yields_none(self, enforcer):
        probes = make_probes({"h": [("M:0", 2.0, 100)]})  # 25% util
        assert enforcer.resolve(
            probes, Violation(ViolationKind.GLOBAL_OVERLOAD, 0.9)
        ) is None

    def test_migrations_never_target_origin_host(self, enforcer):
        probes = make_probes({
            "h1": [(f"M:{i}", 0.8, 100) for i in range(8)],  # 80% util
        })
        decision = enforcer.resolve(
            probes, Violation(ViolationKind.GLOBAL_OVERLOAD, 0.8)
        )
        assert decision is not None
        assert all(m.to_host != "h1" for m in decision.migrations)


class TestScaleIn:
    def test_releases_least_loaded_host(self, enforcer):
        probes = make_probes({
            "h1": [("M:0", 1.2, 100)],
            "h2": [("M:1", 1.0, 100)],
            "h3": [("AP:0", 0.2, 10)],
        })
        decision = enforcer.resolve(
            probes, Violation(ViolationKind.GLOBAL_UNDERLOAD, 0.1)
        )
        # Total 2.4 cores needs ceil(2.4/4) = 1 host; two can go; the least
        # loaded (h3 then h2) are chosen.
        assert set(decision.release_hosts) == {"h3", "h2"}
        assert {m.slice_id for m in decision.migrations} == {"AP:0", "M:1"}
        for migration in decision.migrations:
            assert migration.to_host not in decision.release_hosts

    def test_no_release_when_load_requires_all_hosts(self, enforcer):
        probes = make_probes({
            "h1": [("M:0", 3.2, 100)],
            "h2": [("M:1", 3.2, 100)],
        })
        # 6.4 cores / 4-core target capacity = 2 hosts: no excess.
        assert enforcer.resolve(
            probes, Violation(ViolationKind.GLOBAL_UNDERLOAD, 0.4)
        ) is None

    def test_never_goes_below_min_hosts(self):
        policy = ElasticityPolicy(min_hosts=2)
        enforcer = ElasticityEnforcer(policy, host_cores=8, host_memory_bytes=8 * GIB)
        probes = make_probes({
            "h1": [("M:0", 0.1, 10)],
            "h2": [("M:1", 0.1, 10)],
            "h3": [("AP:0", 0.1, 10)],
        })
        decision = enforcer.resolve(
            probes, Violation(ViolationKind.GLOBAL_UNDERLOAD, 0.0125)
        )
        assert len(decision.release_hosts) == 1

    def test_empty_host_released_without_migrations(self, enforcer):
        probes = make_probes({
            "h1": [("M:0", 1.0, 100)],
            "h2": [],
        })
        decision = enforcer.resolve(
            probes, Violation(ViolationKind.GLOBAL_UNDERLOAD, 0.0625)
        )
        assert decision.release_hosts == ["h2"]
        assert decision.migrations == []


class TestLocalRule:
    def test_local_overload_rebalances_to_existing_hosts(self, enforcer):
        probes = make_probes({
            "hot": [("M:0", 4.0, 100), ("M:1", 3.3, 100)],  # ≈ 91%
            "cold": [("AP:0", 0.4, 10)],  # 5%
        })
        decision = enforcer.resolve(
            probes, Violation(ViolationKind.LOCAL_OVERLOAD, 0.9125, host_id="hot")
        )
        assert decision.kind is ViolationKind.LOCAL_OVERLOAD
        assert decision.new_hosts == 0
        assert all(m.from_host == "hot" and m.to_host == "cold"
                   for m in decision.migrations)

    def test_local_overload_opens_new_host_as_last_resort(self, enforcer):
        probes = make_probes({
            "hot": [("M:0", 4.0, 100), ("M:1", 3.2, 100)],
            "alsohot": [("M:2", 3.9, 100)],
        })
        decision = enforcer.resolve(
            probes, Violation(ViolationKind.LOCAL_OVERLOAD, 0.9, host_id="hot")
        )
        assert decision.new_hosts == 1

    def test_unknown_host_yields_none(self, enforcer):
        probes = make_probes({"h": [("M:0", 1.0, 100)]})
        assert enforcer.resolve(
            probes, Violation(ViolationKind.LOCAL_OVERLOAD, 0.9, host_id="ghost")
        ) is None


def test_invalid_construction():
    with pytest.raises(ValueError):
        ElasticityEnforcer(ElasticityPolicy(), host_cores=0)
