"""Manager failover: a standby takes over from shared coordination state.

The paper stores the whole manager state in ZooKeeper so that the manager
"can easily be restarted in case of failure" (§IV-B).  These tests promote
a standby through the leader-election recipe and verify it resumes elastic
control from the stored configuration.
"""

import pytest

from repro.cluster import CloudProvider, HostSpec
from repro.coord import CoordinationKernel, LeaderElection
from repro.elastic import ElasticityManager, ElasticityPolicy
from repro.filtering import CostModel
from repro.pubsub import HubConfig, StreamHub, Subscription
from repro.pubsub.source import SourceDriver
from repro.sim import Environment

HEAVY_COST = CostModel(aspe_match_op_s=100e-6)


def build_deployment(subs=4000):
    env = Environment()
    cloud = CloudProvider(env, spec=HostSpec(cores=8), max_hosts=20,
                          provisioning_delay_s=1.0)
    engine_hosts = [cloud.provision_now()]
    sink_host = cloud.provision_now()
    config = HubConfig.sampled(
        0.01, ap_slices=2, m_slices=4, ep_slices=2, sink_slices=1,
        cost_model=HEAVY_COST,
    )
    hub = StreamHub(env, cloud.network, config)
    hub.deploy_all_on(engine_hosts, [sink_host])
    for sub_id in range(subs):
        hub.subscribe(Subscription(sub_id, sub_id, None))
    env.run()
    return env, cloud, hub, engine_hosts


def test_recover_rebuilds_manager_from_coordination_state():
    env, cloud, hub, engine_hosts = build_deployment()
    coord = CoordinationKernel()
    primary = ElasticityManager(hub, cloud, engine_hosts, coord=coord)
    primary.start()
    SourceDriver(hub).publish_constant(rate_per_s=15.0, duration_s=80.0)
    env.run(until=85.0)
    assert primary.host_count >= 2  # it scaled out

    primary.stop()
    recovered = ElasticityManager.recover(hub, cloud, coord)
    # The recovered manager sees exactly the hosts the primary managed.
    assert {h.host_id for h in recovered.engine_hosts} == {
        h.host_id for h in primary.engine_hosts
    }
    assert recovered.stored_placement() == primary.stored_placement()


def test_standby_takes_over_via_leader_election():
    env, cloud, hub, engine_hosts = build_deployment()
    coord = CoordinationKernel()
    managers = {}

    # Primary manager process.
    primary_session = coord.session()
    primary_election = LeaderElection(coord, primary_session, candidate_id="primary")

    def start_primary():
        managers["primary"] = ElasticityManager(hub, cloud, engine_hosts, coord=coord)
        managers["primary"].start()

    primary_election.on_elected(start_primary)
    primary_election.join()
    assert "primary" in managers

    # Standby joins and waits.
    standby_session = coord.session()
    standby_election = LeaderElection(coord, standby_session, candidate_id="standby")

    def start_standby():
        managers["standby"] = ElasticityManager.recover(hub, cloud, coord)
        managers["standby"].start()

    standby_election.on_elected(start_standby)
    standby_election.join()
    assert "standby" not in managers  # not leader yet

    # Rising load so the standby must keep scaling after the takeover.
    SourceDriver(hub).publish_profile(
        lambda t: 15.0 if t < 100.0 else 28.0, duration_s=230.0
    )

    def crash_primary():
        yield env.timeout(70.0)
        managers["primary"].stop()
        primary_session.close()  # ephemeral election node disappears

    env.process(crash_primary())
    env.run(until=220.0)
    assert standby_election.is_leader
    assert managers["standby"].host_count >= 2
    env.run(until=250.0)  # drain the tail

    # The standby was promoted and continued managing the system.
    assert standby_election.is_leader
    assert "standby" in managers
    standby = managers["standby"]
    primary = managers["primary"]
    # Scaling decisions happened on both sides of the failover.
    assert primary.history, "primary never acted"
    assert standby.history, "standby never acted after takeover"
    assert all(r.time > 70.0 for r in standby.history)
    live = {
        k: v for k, v in hub.runtime.placement().items()
        if k in hub.engine_slice_ids()
    }
    stored = {
        k: v for k, v in standby.stored_placement().items()
        if k in hub.engine_slice_ids()
    }
    assert stored == live
    assert hub.published_count == hub.notified_publications


def test_stopped_manager_takes_no_further_decisions():
    env, cloud, hub, engine_hosts = build_deployment()
    manager = ElasticityManager(hub, cloud, engine_hosts, coord=CoordinationKernel())
    manager.start()
    manager.stop()
    SourceDriver(hub).publish_constant(rate_per_s=20.0, duration_s=60.0)
    env.run(until=70.0)
    assert manager.history == []
    assert manager.host_count == 1
