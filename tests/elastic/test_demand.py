"""Tests for backlog-aware demand estimation and the scale-out step cap."""

import pytest

from repro.elastic import ElasticityEnforcer, ElasticityPolicy, ViolationKind
from repro.elastic.policy import Violation
from repro.elastic.probes import HostProbe, ProbeSet, SliceProbe

GIB = 1024 ** 3


def probe(slice_id, host, cpu, queue=0, processed=0, mem=100):
    return SliceProbe(slice_id, host, cpu, mem, queue, processed)


def probes_for(host_slices):
    hosts = {}
    slices = {}
    for host_id, entries in host_slices.items():
        load = sum(p.cpu_cores for p in entries)
        hosts[host_id] = HostProbe(host_id, 8, min(1.0, load / 8.0), 0, 0, 0)
        for p in entries:
            slices[p.slice_id] = p
    return ProbeSet(time=0.0, window_s=5.0, hosts=hosts, slices=slices)


class TestDemandCores:
    def test_no_queue_returns_measured_cpu(self):
        p = probe("M:0", "h", 1.5)
        assert p.demand_cores(5.0) == 1.5

    def test_backlog_adds_drain_cores(self):
        # 1000 queued events; 500 processed in a 5 s window at 2 cores:
        # per-event cost 0.02 core-s → drain over 3 windows = 20/15 cores.
        p = probe("M:0", "h", 2.0, queue=1000, processed=500)
        expected = 2.0 + 1000 * (2.0 * 5.0 / 500) / (5.0 * 3.0)
        assert p.demand_cores(5.0) == pytest.approx(expected)

    def test_demand_capped(self):
        p = probe("M:0", "h", 8.0, queue=10 ** 6, processed=1)
        assert p.demand_cores(5.0, cap_cores=16.0) == 16.0

    def test_no_progress_with_backlog_at_least_doubles(self):
        p = probe("M:0", "h", 1.0, queue=50, processed=0)
        assert p.demand_cores(5.0) == 2.0

    def test_drain_windows_temper_the_estimate(self):
        p = probe("M:0", "h", 2.0, queue=1000, processed=500)
        fast = p.demand_cores(5.0, drain_windows=1.0)
        slow = p.demand_cores(5.0, drain_windows=5.0)
        assert fast > slow > 2.0


class TestScaleOutStepCap:
    def make_enforcer(self, factor=4.0, backlog=True):
        policy = ElasticityPolicy(
            backlog_aware_scaling=backlog, max_scale_out_factor=factor
        )
        return ElasticityEnforcer(policy, host_cores=8, host_memory_bytes=8 * GIB)

    def test_extreme_backlog_bounded_by_step_factor(self):
        # One saturated host with an absurd backlog on every slice.
        entries = [
            probe(f"M:{i}", "h", 1.0, queue=100_000, processed=10) for i in range(8)
        ]
        probes = probes_for({"h": entries})
        enforcer = self.make_enforcer(factor=2.0)
        decision = enforcer.resolve(
            probes, Violation(ViolationKind.GLOBAL_OVERLOAD, 1.0)
        )
        # Fleet may at most double: 1 host → at most 1 extra.
        assert decision.new_hosts <= 2

    def test_larger_factor_allows_bigger_jump(self):
        entries = [
            probe(f"M:{i}", "h", 1.0, queue=100_000, processed=10) for i in range(8)
        ]
        probes = probes_for({"h": entries})
        small = self.make_enforcer(factor=2.0).resolve(
            probes, Violation(ViolationKind.GLOBAL_OVERLOAD, 1.0)
        )
        large = self.make_enforcer(factor=6.0).resolve(
            probes, Violation(ViolationKind.GLOBAL_OVERLOAD, 1.0)
        )
        assert large.new_hosts > small.new_hosts

    def test_cpu_only_ignores_queues(self):
        busy = [probe(f"M:{i}", "h", 0.74, queue=10_000, processed=10)
                for i in range(8)]
        probes = probes_for({"h": busy})
        backlog_aware = self.make_enforcer(backlog=True).resolve(
            probes, Violation(ViolationKind.GLOBAL_OVERLOAD, 0.74)
        )
        cpu_only = self.make_enforcer(backlog=False).resolve(
            probes, Violation(ViolationKind.GLOBAL_OVERLOAD, 0.74)
        )
        assert backlog_aware.new_hosts > cpu_only.new_hosts

    def test_policy_validates_step_factor(self):
        with pytest.raises(ValueError):
            ElasticityPolicy(max_scale_out_factor=1.0)
