"""Integration tests: the full elastic loop (probes → enforcer → migrations).

These use a deliberately heavy per-operation cost model so that a handful
of publications per second saturates a host — small event counts keep the
tests fast while exercising the same control loop as the paper-scale
experiments.
"""

import pytest

from repro.cluster import CloudProvider, HostSpec
from repro.coord import CoordinationKernel
from repro.elastic import ElasticityManager, ElasticityPolicy
from repro.filtering import CostModel
from repro.pubsub import HubConfig, StreamHub, Subscription
from repro.pubsub.source import SourceDriver
from repro.sim import Environment

HEAVY_COST = CostModel(aspe_match_op_s=100e-6)


def build(env=None, subs=4000, initial_hosts=1, policy=None):
    env = env or Environment()
    cloud = CloudProvider(env, spec=HostSpec(cores=8), max_hosts=20,
                          provisioning_delay_s=2.0)
    engine_hosts = [cloud.provision_now() for _ in range(initial_hosts)]
    sink_host = cloud.provision_now()
    config = HubConfig.sampled(
        0.01,
        ap_slices=2, m_slices=4, ep_slices=2, sink_slices=1,
        cost_model=HEAVY_COST,
    )
    hub = StreamHub(env, cloud.network, config)
    hub.deploy_all_on(engine_hosts, [sink_host])
    manager = ElasticityManager(
        hub, cloud, engine_hosts,
        policy=policy or ElasticityPolicy(),
        coord=CoordinationKernel(),
        probe_interval_s=5.0,
    )
    for sub_id in range(subs):
        hub.subscribe(Subscription(sub_id, sub_id, None))
    env.run()  # drain the storage phase
    return env, cloud, hub, manager


def test_scale_out_under_sustained_load():
    env, cloud, hub, manager = build()
    manager.start()
    driver = SourceDriver(hub)
    # ≈ 15 pub/s × (4 × 0.1 s matching) ≈ 6 busy cores on one 8-core host.
    driver.publish_constant(rate_per_s=15.0, duration_s=120.0)
    env.run(until=125.0)
    assert manager.host_count >= 2
    assert any(r.kind == "global_overload" for r in manager.history)
    assert manager.migration_reports  # slices actually moved
    # The pipeline kept working through the migrations.
    assert hub.notified_publications == driver.publications_sent


def test_scale_out_lowers_average_utilization():
    env, cloud, hub, manager = build()
    utilizations = []
    manager.probe_listeners.append(
        lambda p: utilizations.append((p.time, p.average_utilization()))
    )
    manager.start()
    SourceDriver(hub).publish_constant(rate_per_s=15.0, duration_s=200.0)
    env.run(until=205.0)
    late = [u for t, u in utilizations if t > 150.0]
    assert late, "no probes in the settled phase"
    average = sum(late) / len(late)
    assert 0.25 < average < 0.70  # inside the policy band around the target


def test_scale_in_after_load_drops():
    env, cloud, hub, manager = build(initial_hosts=3)
    manager.start()
    driver = SourceDriver(hub)
    driver.publish_constant(rate_per_s=15.0, duration_s=60.0)
    env.run(until=300.0)  # long idle tail
    assert manager.host_count == 1
    assert any(r.kind == "global_underload" for r in manager.history)
    released = [r for r in manager.history if r.released_hosts > 0]
    assert released


def test_grace_period_spaces_actions():
    policy = ElasticityPolicy(grace_period_s=30.0)
    env, cloud, hub, manager = build(policy=policy)
    manager.start()
    SourceDriver(hub).publish_constant(rate_per_s=20.0, duration_s=150.0)
    env.run(until=155.0)
    times = [r.time for r in manager.history]
    assert all(b - a >= 29.9 for a, b in zip(times, times[1:]))


def test_released_hosts_returned_to_cloud():
    env, cloud, hub, manager = build(initial_hosts=3)
    start_active = cloud.active_count
    manager.start()
    env.run(until=200.0)  # no load at all: scale in to min_hosts
    assert manager.host_count == 1
    # 2 engine hosts released (the sink host stays).
    assert cloud.active_count == start_active - 2
    placement_hosts = set(hub.runtime.placement().values())
    active_ids = {h.host_id for h in cloud.active_hosts}
    assert placement_hosts <= active_ids


def test_configuration_mirrored_in_coordination_kernel():
    env, cloud, hub, manager = build()
    manager.start()
    SourceDriver(hub).publish_constant(rate_per_s=15.0, duration_s=100.0)
    env.run(until=105.0)
    stored = manager.stored_placement()
    live = hub.runtime.placement()
    engine = set(hub.engine_slice_ids())
    assert {k: v for k, v in stored.items() if k in engine} == {
        k: v for k, v in live.items() if k in engine
    }
    assert set(manager.stored_hosts()) == {h.host_id for h in manager.engine_hosts}
    # Migration log survives in the kernel for a restarted manager.
    migrations = manager.coord.get_children("/estreamhub/migrations")
    assert len(migrations) == len(manager.migration_reports)


def test_manager_requires_initial_host():
    env = Environment()
    cloud = CloudProvider(env)
    config = HubConfig.sampled(0.01, ap_slices=1, m_slices=1, ep_slices=1, sink_slices=1)
    hub = StreamHub(env, cloud.network, config)
    with pytest.raises(ValueError):
        ElasticityManager(hub, cloud, [], coord=CoordinationKernel())


def test_double_start_rejected():
    env, cloud, hub, manager = build()
    manager.start()
    with pytest.raises(RuntimeError):
        manager.start()
