"""Policy signals: evaluation, sustain streaks, vetoes, arbitration."""

import pytest

from repro.elastic import (
    CpuBandSignal,
    DelaySloSignal,
    ElasticityPolicy,
    ElasticityEnforcer,
    ScalingAction,
    SignalStack,
    SpillPressureSignal,
    Violation,
    ViolationKind,
)
from repro.elastic.probes import DelayWindow, HostProbe, ProbeSet, SliceProbe
from repro.elastic.signals import DelaySloEvidence, SpillEvidence
from repro.telemetry import Telemetry


def probe_set(utils, slices=None, delay=None, time=0.0):
    hosts = {
        f"h{i}": HostProbe(f"h{i}", 8, u, 0, 0, 0) for i, u in enumerate(utils)
    }
    return ProbeSet(
        time=time, window_s=5.0, hosts=hosts, slices=slices or {}, delay=delay
    )


def window(p99, count=100, window_s=30.0):
    return DelayWindow(
        window_s=window_s, count=count, p50_s=p99 / 2, p99_s=p99, max_s=p99
    )


def spill_slice(slice_id="M:0", host="h0", depth=0, starved=0):
    return SliceProbe(
        slice_id, host, 0.5, 1000, 0, spill_depth=depth,
        starved_channels=starved,
    )


# -- CpuBandSignal --------------------------------------------------------


class TestCpuBandSignal:
    def test_matches_policy_check_on_every_band(self):
        policy = ElasticityPolicy()
        signal = CpuBandSignal(policy)
        for utils in ([0.9, 0.9], [0.1, 0.1], [0.9, 0.2, 0.2], [0.5, 0.5], []):
            probes = probe_set(utils)
            expected = policy.check(probes)
            found = signal.evaluate(probes)
            if expected is None:
                assert found == []
            else:
                assert len(found) == 1
                assert found[0].kind is expected.kind
                assert found[0].measured == expected.measured
                assert found[0].host_id == expected.host_id

    def test_produces_cpu_tagged_evidence(self):
        (violation,) = CpuBandSignal(ElasticityPolicy()).evaluate(
            probe_set([0.9, 0.9])
        )
        assert violation.signal == "cpu"
        assert violation.evidence.utilization == pytest.approx(0.9)
        assert violation.evidence.threshold == 0.70
        assert violation.evidence_attrs()["cpu_hosts"] == 2

    def test_never_vetoes(self):
        assert CpuBandSignal(ElasticityPolicy()).vetoes_scale_in(
            probe_set([0.1])
        ) is None


# -- DelaySloSignal -------------------------------------------------------


class TestDelaySloSignal:
    def test_breach_fires_with_enough_samples(self):
        policy = ElasticityPolicy(signals=("cpu", "slo"), slo_p99_s=1.0)
        signal = DelaySloSignal(policy)
        (violation,) = signal.evaluate(probe_set([0.5], delay=window(2.5)))
        assert violation.kind is ViolationKind.SLO_BREACH
        assert violation.signal == "slo"
        assert violation.measured == pytest.approx(2.5)
        assert isinstance(violation.evidence, DelaySloEvidence)
        assert violation.evidence.slo_s == 1.0

    def test_quiet_without_window_or_samples(self):
        policy = ElasticityPolicy(signals=("cpu", "slo"), slo_min_samples=20)
        signal = DelaySloSignal(policy)
        assert signal.evaluate(probe_set([0.5], delay=None)) == []
        assert signal.evaluate(
            probe_set([0.5], delay=window(9.9, count=5))
        ) == []

    def test_sustain_rounds_gate_the_breach(self):
        policy = ElasticityPolicy(
            signals=("cpu", "slo"), slo_sustain_rounds=3
        )
        signal = DelaySloSignal(policy)
        assert signal.evaluate(probe_set([0.5], delay=window(2.0))) == []
        assert signal.evaluate(probe_set([0.5], delay=window(2.0))) == []
        (violation,) = signal.evaluate(probe_set([0.5], delay=window(2.0)))
        assert violation.evidence.sustained_rounds == 3

    def test_recovery_resets_the_streak(self):
        policy = ElasticityPolicy(
            signals=("cpu", "slo"), slo_sustain_rounds=2
        )
        signal = DelaySloSignal(policy)
        assert signal.evaluate(probe_set([0.5], delay=window(2.0))) == []
        assert signal.evaluate(probe_set([0.5], delay=window(0.2))) == []
        assert signal.evaluate(probe_set([0.5], delay=window(2.0))) == []

    def test_vetoes_scale_in_until_release_floor(self):
        policy = ElasticityPolicy(
            signals=("cpu", "slo"), slo_p99_s=1.0, slo_release_fraction=0.5
        )
        signal = DelaySloSignal(policy)
        probes = probe_set([0.5], delay=window(0.8))
        signal.evaluate(probes)
        assert "0.800" in signal.vetoes_scale_in(probes)
        probes = probe_set([0.5], delay=window(0.3))
        signal.evaluate(probes)
        assert signal.vetoes_scale_in(probes) is None

    def test_veto_expires_after_the_configured_budget(self):
        policy = ElasticityPolicy(
            signals=("cpu", "slo"), slo_p99_s=1.0,
            slo_release_fraction=0.5, slo_veto_max_rounds=2,
        )
        signal = DelaySloSignal(policy)
        # p99 parked above the floor but below the SLO: no breach, so the
        # veto budget is never re-armed and must run out.
        probes = probe_set([0.5], delay=window(0.8))
        signal.evaluate(probes)
        assert signal.vetoes_scale_in(probes) is not None
        assert signal.vetoes_scale_in(probes) is not None
        assert signal.vetoes_scale_in(probes) is None  # expired
        # A fresh breach re-arms the budget.
        signal.evaluate(probe_set([0.5], delay=window(2.0)))
        signal.evaluate(probes)
        assert signal.vetoes_scale_in(probes) is not None

    def test_clear_release_only_in_cpu_free_stacks(self):
        policy = ElasticityPolicy(signals=("slo",), slo_sustain_rounds=1)
        withheld = DelaySloSignal(policy, emit_release=False)
        emitting = DelaySloSignal(policy, emit_release=True)
        probes = probe_set([0.2, 0.2], delay=window(0.1))
        assert withheld.evaluate(probes) == []
        (violation,) = emitting.evaluate(probes)
        assert violation.kind is ViolationKind.SLO_CLEAR
        # Never releases below min_hosts.
        single = probe_set([0.2], delay=window(0.1))
        assert emitting.evaluate(single) == []


# -- SpillPressureSignal --------------------------------------------------


class TestSpillPressureSignal:
    def test_fires_on_sustained_depth(self):
        policy = ElasticityPolicy(
            signals=("cpu", "spill"), spill_depth_limit=50,
            spill_sustain_rounds=2,
        )
        signal = SpillPressureSignal(policy)
        slices = {"M:0": spill_slice(depth=60)}
        assert signal.evaluate(probe_set([0.5], slices=slices)) == []
        (violation,) = signal.evaluate(probe_set([0.5], slices=slices))
        assert violation.kind is ViolationKind.SPILL_PRESSURE
        assert violation.signal == "spill"
        assert isinstance(violation.evidence, SpillEvidence)
        assert violation.evidence.worst_slice == "M:0"
        assert violation.measured == 60.0

    def test_fires_on_starved_channels(self):
        policy = ElasticityPolicy(
            signals=("cpu", "spill"), spill_starved_limit=2,
            spill_sustain_rounds=1,
        )
        signal = SpillPressureSignal(policy)
        slices = {
            "M:0": spill_slice("M:0", starved=1),
            "M:1": spill_slice("M:1", starved=1),
        }
        (violation,) = signal.evaluate(probe_set([0.5], slices=slices))
        assert violation.evidence.starved_channels == 2

    def test_calm_rounds_reset_the_streak_and_the_veto(self):
        policy = ElasticityPolicy(
            signals=("cpu", "spill"), spill_sustain_rounds=2,
            spill_hold_rounds=0,
        )
        signal = SpillPressureSignal(policy)
        pressured = {"M:0": spill_slice(depth=60)}
        calm = {"M:0": spill_slice(depth=0)}
        signal.evaluate(probe_set([0.5], slices=pressured))
        assert signal.vetoes_scale_in(probe_set([0.5])) is not None
        signal.evaluate(probe_set([0.5], slices=calm))
        assert signal.vetoes_scale_in(probe_set([0.5])) is None
        signal.evaluate(probe_set([0.5], slices=pressured))
        assert signal.evaluate(probe_set([0.5], slices=pressured)) != []

    def test_hold_rounds_bridge_bursty_pressure(self):
        # Spill queues drain to zero between flush epochs, so one calm
        # probe round must not hide a sustained overload.
        policy = ElasticityPolicy(
            signals=("cpu", "spill"), spill_sustain_rounds=2,
            spill_hold_rounds=1,
        )
        signal = SpillPressureSignal(policy)
        pressured = {"M:0": spill_slice(depth=60)}
        calm = {"M:0": spill_slice(depth=0)}
        signal.evaluate(probe_set([0.5], slices=pressured))
        signal.evaluate(probe_set([0.5], slices=calm))  # within the hold
        reason = signal.vetoes_scale_in(probe_set([0.5]))
        assert reason is not None and "hold" in reason
        # The streak survived the gap: the next pressured round sustains.
        (violation,) = signal.evaluate(probe_set([0.5], slices=pressured))
        assert violation.kind is ViolationKind.SPILL_PRESSURE
        # A second calm round exceeds the hold: streak and veto reset.
        signal.evaluate(probe_set([0.5], slices=calm))
        signal.evaluate(probe_set([0.5], slices=calm))
        assert signal.vetoes_scale_in(probe_set([0.5])) is None


# -- arbitration ----------------------------------------------------------


class TestSignalStackArbitration:
    def test_cpu_only_stack_matches_legacy_check(self):
        policy = ElasticityPolicy()
        stack = policy.signal_stack()
        probes = probe_set([0.9, 0.9])
        verdict = stack.evaluate(probes)
        expected = policy.check(probes)
        assert verdict.winner.kind is expected.kind
        assert verdict.winner.measured == expected.measured
        assert verdict.legacy_shape
        assert verdict.contending == []

    def test_two_scale_outs_resolve_by_stack_order(self):
        policy = ElasticityPolicy(
            signals=("cpu", "spill"), spill_sustain_rounds=1
        )
        stack = policy.signal_stack()
        slices = {"M:0": spill_slice(depth=999)}
        verdict = stack.evaluate(probe_set([0.9, 0.9], slices=slices))
        assert len(verdict.violations) == 2
        assert verdict.winner.signal == "cpu"  # earlier in the stack
        assert verdict.contending == [("spill", "spill_pressure")]
        assert not verdict.legacy_shape

        reordered = ElasticityPolicy(
            signals=("spill", "cpu"), spill_sustain_rounds=1
        ).signal_stack()
        verdict = reordered.evaluate(probe_set([0.9, 0.9], slices=slices))
        assert verdict.winner.signal == "spill"

    def test_scale_out_outranks_scale_in_across_signals(self):
        policy = ElasticityPolicy(
            signals=("cpu", "spill"), spill_sustain_rounds=1,
            spill_starved_limit=1,
        )
        stack = policy.signal_stack()
        # cpu wants to scale in (avg 0.1), spill wants to scale out; the
        # cpu request is also vetoed by the pressure — either way the
        # spill scale-out must win.
        slices = {"M:0": spill_slice(starved=1)}
        verdict = stack.evaluate(probe_set([0.1, 0.1], slices=slices))
        assert verdict.winner.kind is ViolationKind.SPILL_PRESSURE
        assert verdict.winner.kind.action is ScalingAction.SCALE_OUT

    def test_slo_vetoes_cpu_scale_in(self):
        policy = ElasticityPolicy(signals=("cpu", "slo"))
        stack = policy.signal_stack()
        probes = probe_set([0.1, 0.1], delay=window(0.9))
        verdict = stack.evaluate(probes)
        assert verdict.winner is None
        ((violation, vetoer, reason),) = verdict.suppressed
        assert violation.kind is ViolationKind.GLOBAL_UNDERLOAD
        assert vetoer == "slo"
        assert "release floor" in reason
        assert not verdict.legacy_shape

    def test_scale_in_flows_once_the_tail_recovers(self):
        policy = ElasticityPolicy(signals=("cpu", "slo"))
        stack = policy.signal_stack()
        probes = probe_set([0.1, 0.1], delay=window(0.2))
        verdict = stack.evaluate(probes)
        assert verdict.winner.kind is ViolationKind.GLOBAL_UNDERLOAD

    def test_determinism_two_identical_stacks_agree(self):
        rounds = [
            probe_set([0.9, 0.9], slices={"M:0": spill_slice(depth=80)}),
            probe_set([0.5, 0.5], slices={"M:0": spill_slice(depth=80)}),
            probe_set([0.1, 0.1], delay=window(0.9)),
            probe_set([0.1, 0.1], delay=window(0.1)),
        ]
        policy = ElasticityPolicy(signals=("cpu", "slo", "spill"))
        a, b = policy.signal_stack(), policy.signal_stack()
        for probes in rounds:
            va, vb = a.evaluate(probes), b.evaluate(probes)
            assert [
                (v.signal, v.kind, v.measured) for v in va.violations
            ] == [(v.signal, v.kind, v.measured) for v in vb.violations]
            assert (va.winner is None) == (vb.winner is None)

    def test_telemetry_counts_every_violation_and_veto(self):
        telemetry = Telemetry()
        policy = ElasticityPolicy(signals=("cpu", "slo"))
        stack = policy.signal_stack(telemetry=telemetry)
        stack.evaluate(probe_set([0.1, 0.1], delay=window(0.9)))
        assert telemetry.signal_violations.labels(
            signal="cpu", kind="global_underload"
        ).value == 1
        assert telemetry.scale_in_vetoes.labels(signal="slo").value == 1
        assert telemetry.slo_margin.value == pytest.approx(0.1)


# -- Violation compat shim ------------------------------------------------


class TestViolationCompat:
    def test_positional_construction_still_works(self):
        violation = Violation(ViolationKind.GLOBAL_OVERLOAD, 0.9)
        assert violation.kind is ViolationKind.GLOBAL_OVERLOAD
        assert violation.measured == 0.9
        assert violation.host_id == ""
        assert violation.signal == "cpu"
        assert violation.evidence is None
        assert violation.evidence_attrs() == {}

    def test_positional_host_id_still_works(self):
        violation = Violation(ViolationKind.LOCAL_OVERLOAD, 0.95, "host-3")
        assert violation.host_id == "host-3"

    def test_kind_action_mapping(self):
        assert ViolationKind.GLOBAL_OVERLOAD.action is ScalingAction.SCALE_OUT
        assert ViolationKind.GLOBAL_UNDERLOAD.action is ScalingAction.SCALE_IN
        assert ViolationKind.LOCAL_OVERLOAD.action is ScalingAction.REBALANCE
        assert ViolationKind.SLO_BREACH.action is ScalingAction.SCALE_OUT
        assert ViolationKind.SLO_CLEAR.action is ScalingAction.SCALE_IN
        assert ViolationKind.SPILL_PRESSURE.action is ScalingAction.SCALE_OUT


# -- decision-span shape --------------------------------------------------


def _enforcer_probes(slices=None):
    hosts = {
        "h0": HostProbe("h0", 8, 0.9, 0, 0, 0),
        "h1": HostProbe("h1", 8, 0.9, 0, 0, 0),
    }
    slices = slices or {
        f"M:{i}": SliceProbe(f"M:{i}", "h0" if i < 2 else "h1", 1.8, 10_000, 0)
        for i in range(4)
    }
    return ProbeSet(time=10.0, window_s=5.0, hosts=hosts, slices=slices)


LEGACY_ATTRS = {
    "rule", "measured", "window_time", "window_s", "avg_utilization",
    "hosts", "actionable", "selected_slices", "placement", "new_hosts",
    "release_hosts", "shard_ops",
}


class TestDecisionSpanShape:
    def test_cpu_round_keeps_the_historical_attribute_set(self):
        telemetry = Telemetry()
        policy = ElasticityPolicy()
        enforcer = ElasticityEnforcer(policy, host_cores=8, telemetry=telemetry)
        probes = _enforcer_probes()
        verdict = policy.signal_stack().evaluate(probes)
        enforcer.resolve(probes, verdict.winner, verdict=verdict)
        (event,) = telemetry.tracer.find("enforcer.decision")
        assert set(event.attrs) == LEGACY_ATTRS

    def test_multi_signal_round_records_winner_and_contenders(self):
        telemetry = Telemetry()
        policy = ElasticityPolicy(
            signals=("cpu", "spill"), spill_sustain_rounds=1
        )
        enforcer = ElasticityEnforcer(policy, host_cores=8, telemetry=telemetry)
        slices = {
            "M:0": SliceProbe("M:0", "h0", 1.8, 10_000, 0, spill_depth=90),
            "M:1": SliceProbe("M:1", "h1", 1.8, 10_000, 0),
        }
        probes = _enforcer_probes(slices)
        verdict = policy.signal_stack().evaluate(probes)
        assert len(verdict.violations) == 2
        decision = enforcer.resolve(probes, verdict.winner, verdict=verdict)
        assert decision.signal == "cpu"
        (event,) = telemetry.tracer.find("enforcer.decision")
        assert event.attrs["signal"] == "cpu"
        assert event.attrs["contending"] == [("spill", "spill_pressure")]
        assert event.attrs["cpu_threshold"] == 0.70

    def test_symptom_scale_out_uses_reduced_target(self):
        policy = ElasticityPolicy(
            signals=("spill",), spill_sustain_rounds=1,
            symptom_target_fraction=0.75,
        )
        enforcer = ElasticityEnforcer(policy, host_cores=8)
        # One host at 55% — inside the CPU band, so the paper's rules
        # would not act; spill pressure must still offload toward the
        # reduced 37.5% target.
        hosts = {"h0": HostProbe("h0", 8, 0.55, 0, 0, 0)}
        slices = {
            f"M:{i}": SliceProbe(
                f"M:{i}", "h0", 1.1, 10_000, 0, spill_depth=60
            )
            for i in range(4)
        }
        probes = ProbeSet(time=0.0, window_s=5.0, hosts=hosts, slices=slices)
        verdict = policy.signal_stack().evaluate(probes)
        assert verdict.winner.kind is ViolationKind.SPILL_PRESSURE
        decision = enforcer.resolve(probes, verdict.winner, verdict=verdict)
        assert decision is not None
        assert decision.kind is ViolationKind.SPILL_PRESSURE
        assert decision.signal == "spill"
        assert decision.new_hosts >= 1
