"""Tests for subset-sum slice selection."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.elastic import SliceLoad, select_slices


def sl(name, cpu, mem):
    return SliceLoad(name, cpu, mem)


def test_nothing_required_selects_nothing():
    assert select_slices([sl("a", 1.0, 10)], 0.0) == []
    assert select_slices([sl("a", 1.0, 10)], -1.0) == []


def test_insufficient_candidates_selects_all():
    candidates = [sl("a", 0.5, 10), sl("b", 0.5, 10)]
    assert select_slices(candidates, 5.0) == candidates


def test_exact_single_slice():
    candidates = [sl("a", 1.0, 10), sl("b", 2.0, 20)]
    selected = select_slices(candidates, 2.0)
    assert [s.slice_id for s in selected] == ["b"]


def test_minimal_memory_among_feasible_sets():
    # Both {heavy} and {light1, light2} reach the requirement; the pair has
    # less total memory and must win.
    candidates = [
        sl("heavy", 2.0, 1000),
        sl("light1", 1.0, 100),
        sl("light2", 1.0, 100),
    ]
    selected = select_slices(candidates, 2.0)
    assert sorted(s.slice_id for s in selected) == ["light1", "light2"]


def test_figure5_style_min_memory_selection():
    """The paper's Figure 5: AP slices with low memory are preferred over
    M slices with equal CPU but heavy state."""
    candidates = [
        sl("AP:1", 1.0, 50),
        sl("AP:2", 1.0, 50),
        sl("M:1", 1.0, 10_000),
        sl("M:2", 1.0, 10_000),
    ]
    selected = select_slices(candidates, 2.0)
    assert sorted(s.slice_id for s in selected) == ["AP:1", "AP:2"]


def test_requirement_met_even_with_discretization():
    candidates = [sl(f"s{i}", 0.333, 10) for i in range(10)]
    selected = select_slices(candidates, 1.0)
    assert sum(s.cpu_cores for s in selected) >= 1.0 - 0.011


def test_invalid_granularity():
    with pytest.raises(ValueError):
        select_slices([sl("a", 1.0, 1)], 1.0, granularity_cores=0)


@settings(max_examples=60, deadline=None)
@given(
    loads=st.lists(
        st.tuples(
            st.floats(0.05, 4.0, allow_nan=False),
            st.integers(1, 10_000),
        ),
        min_size=1,
        max_size=12,
    ),
    required_fraction=st.floats(0.1, 1.0),
)
def test_selection_properties(loads, required_fraction):
    candidates = [sl(f"s{i}", cpu, mem) for i, (cpu, mem) in enumerate(loads)]
    total = sum(c.cpu_cores for c in candidates)
    required = total * required_fraction
    selected = select_slices(candidates, required)
    # Feasibility: requirement met up to discretization slack.
    slack = 0.011 * len(candidates)
    assert sum(s.cpu_cores for s in selected) >= required - slack
    # Selection is a subset without duplicates.
    ids = [s.slice_id for s in selected]
    assert len(ids) == len(set(ids))
    assert all(s in candidates for s in selected)


def test_brute_force_agreement_on_memory_optimality():
    rng = random.Random(4)
    for _ in range(30):
        n = rng.randint(1, 8)
        candidates = [
            sl(f"s{i}", rng.uniform(0.1, 2.0), rng.randint(1, 100)) for i in range(n)
        ]
        required = rng.uniform(0.1, sum(c.cpu_cores for c in candidates))
        selected = select_slices(candidates, required)
        best_mem = None
        for mask in range(1, 2 ** n):
            subset = [candidates[i] for i in range(n) if mask >> i & 1]
            if sum(s.cpu_cores for s in subset) >= required:
                mem = sum(s.memory_bytes for s in subset)
                best_mem = mem if best_mem is None else min(best_mem, mem)
        got_mem = sum(s.memory_bytes for s in selected)
        assert best_mem is not None
        # Discretization may admit slightly different sets; allow the DP to
        # match or beat brute force within one smallest item.
        assert got_mem <= best_mem + max(c.memory_bytes for c in candidates)
