"""Manager crash *mid-decision*: persistence, fencing, and settlement.

test_failover.py covers the takeover of an idle manager; these tests
crash the active manager at a chosen phase of an operation it is
driving (via ``FaultPlan.crash_manager_at_phase``) and verify the
promoted standby settles the interrupted decision — completed or rolled
back, never half-applied — per RESILIENCE.md §4.
"""

import pytest

from repro.cluster import CloudProvider, FaultPlan, HostSpec
from repro.elastic import (
    ManagerFailover,
    PlannedMigration,
    PlannedShardOp,
    ScalingDecision,
    ViolationKind,
)
from repro.engine import CheckpointStore
from repro.filtering import CostModel, ExactBackend, ShardedAspeLibrary
from repro.pubsub import HubConfig, StreamHub, Subscription
from repro.sim import Environment
from repro.workloads import ScaleWorkload


class FailoverHarness:
    """Two-host hub with a primary + standby manager pair."""

    def __init__(self, subs=40):
        self.env = Environment()
        self.cloud = CloudProvider(self.env, spec=HostSpec(cores=8),
                                   max_hosts=10)
        self.engine_hosts = [self.cloud.provision_now(),
                             self.cloud.provision_now()]
        sink = self.cloud.provision_now()
        config = HubConfig(
            ap_slices=1, m_slices=2, ep_slices=1, sink_slices=1,
            cost_model=CostModel(aspe_match_op_s=1e-6),
            # Key-range-sharded store: migratable *and* shardable, so one
            # harness covers both protocols.
            backend_factory=lambda index: ExactBackend(ShardedAspeLibrary()),
        )
        self.hub = StreamHub(self.env, self.cloud.network, config)
        self.hub.deploy_all_on(self.engine_hosts, [sink])
        workload = ScaleWorkload(seed=6)
        for batch in workload.subscription_batches(subs):
            for sub_id, payload in batch:
                self.hub.subscribe(Subscription(sub_id, sub_id, payload))
        self.env.run()  # drain subscriptions before any manager starts
        self.store = CheckpointStore()
        self.failover = ManagerFailover(
            self.hub, self.cloud, checkpoint_store=self.store,
            probe_interval_s=1000.0,  # decisions are driven explicitly
        )
        self.failover.start_primary(self.engine_hosts)
        self.failover.add_standby("standby")

    def settle(self):
        """Run well past the decision but short of the probe loops."""
        self.env.run(until=self.env.now + 500.0)

    def migration_decision(self):
        placement = self.hub.runtime.placement()
        src = placement["M:0"]
        dst = next(
            h.host_id for h in self.engine_hosts if h.host_id != src
        )
        return ScalingDecision(
            kind=ViolationKind.LOCAL_OVERLOAD,
            migrations=[PlannedMigration("M:0", src, dst)],
        ), src, dst

    def split_decision(self):
        host = self.hub.runtime.placement()["M:0"]
        return ScalingDecision(
            kind=ViolationKind.LOCAL_OVERLOAD,
            shard_ops=[PlannedShardOp("M:0", "split", host)],
        )

    def crash_target(self, kill_inflight):
        failover = self.failover

        class Target:
            @staticmethod
            def crash():
                failover.crash_active(kill_inflight=kill_inflight)

        return Target


def test_decision_persisted_before_acting():
    h = FailoverHarness()
    decision, src, _ = h.migration_decision()
    h.failover.active.execute_decision(decision)
    # On stable storage while the protocol is still in flight: a step
    # later the decision record is durable, the migration is not done.
    h.env.run(until=h.env.now + 0.001)
    stored = h.store.get("__manager__")
    inflight = stored.state["inflight"]
    assert inflight is not None
    assert [m["slice"] for m in inflight["migrations"]] == ["M:0"]
    h.settle()
    # Completed without a crash: the in-flight marker is cleared.
    assert h.store.get("__manager__").state["inflight"] is None
    assert h.store.get("__manager__").epoch > stored.epoch


def test_crash_mid_migration_rolls_back_and_promotes_standby():
    h = FailoverHarness()
    decision, src, _ = h.migration_decision()
    plan = FaultPlan(h.env)
    plan.crash_manager_at_phase(
        h.hub.runtime, h.crash_target(kill_inflight=True),
        phase="copy", protocol="migration",
    )
    h.failover.active.execute_decision(decision)
    h.settle()
    assert h.failover.failovers == 1
    assert h.failover.active is h.failover.managers["standby"]
    assert plan.injected[0][1] == "manager_crash"
    assert h.hub.runtime.migrations_aborted == 1
    # The slice never moved, and the standby recorded exactly that.
    assert h.hub.runtime.placement()["M:0"] == src
    assert h.failover.active.failover_outcomes == [("M:0", "rolled_back")]


def test_crash_with_surviving_orphan_classified_completed():
    h = FailoverHarness()
    decision, src, dst = h.migration_decision()
    plan = FaultPlan(h.env)
    plan.crash_manager_at_phase(
        h.hub.runtime, h.crash_target(kill_inflight=False),
        phase="copy", protocol="migration",
    )
    h.failover.active.execute_decision(decision)
    h.settle()
    assert h.failover.failovers == 1
    # The orphaned migration ran to completion; the standby awaited it
    # and settled the decision as completed.
    assert h.hub.runtime.placement()["M:0"] == dst
    assert h.hub.runtime.migrations_aborted == 0
    assert h.failover.active.failover_outcomes == [("M:0", "completed")]


def test_crash_mid_reshard_rolls_back_the_split():
    h = FailoverHarness()
    plan = FaultPlan(h.env)
    plan.crash_manager_at_phase(
        h.hub.runtime, h.crash_target(kill_inflight=True),
        phase="copy", protocol="reshard",
    )
    h.failover.active.execute_decision(h.split_decision())
    h.settle()
    assert h.failover.failovers == 1
    assert h.hub.runtime.shard_ops_aborted == 1
    # Rollback reversed the already-applied split on the shared library.
    assert h.hub.runtime.slice_stats("M:0")["shards"] == 1
    assert h.failover.active.failover_outcomes == [("M:0", "rolled_back")]


def test_crash_mid_reshard_orphan_classified_by_shard_count():
    h = FailoverHarness()
    plan = FaultPlan(h.env)
    plan.crash_manager_at_phase(
        h.hub.runtime, h.crash_target(kill_inflight=False),
        phase="copy", protocol="reshard",
    )
    h.failover.active.execute_decision(h.split_decision())
    h.settle()
    assert h.failover.failovers == 1
    assert h.hub.runtime.slice_stats("M:0")["shards"] == 2
    assert h.failover.active.failover_outcomes == [("M:0", "completed")]


def test_crashed_manager_is_fenced_off_stable_storage():
    h = FailoverHarness()
    decision, _, _ = h.migration_decision()
    plan = FaultPlan(h.env)
    plan.crash_manager_at_phase(
        h.hub.runtime, h.crash_target(kill_inflight=True),
        phase="copy", protocol="migration",
    )
    h.failover.active.execute_decision(decision)
    primary = h.failover.active
    h.settle()
    assert primary.crashed
    epoch = h.store.get("__manager__").epoch
    # A zombie write from the crashed instance must be a no-op: the
    # promoted standby owns the epoch chain now.
    primary._persist_state(inflight=None)
    assert h.store.get("__manager__").epoch == epoch


def test_crash_without_active_manager_rejected():
    h = FailoverHarness(subs=0)
    h.failover.crash_active()  # promotes the standby synchronously
    h.failover.crash_active()  # kills the standby; nobody is left
    with pytest.raises(RuntimeError):
        h.failover.crash_active()
