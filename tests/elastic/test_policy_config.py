"""PolicyConfig: env knobs, CLI override precedence, provenance."""

import pytest

from repro.elastic import ElasticityPolicy, PolicyConfig
from repro.elastic.policy import _POLICY_ENV_VARS
from repro.pubsub import HubConfig

#: Every knob with an env var, a non-default raw string, and the value
#: it must resolve to (exercises the per-type env parsers).
ENV_CASES = [
    ("signals", "cpu,slo,spill", ("cpu", "slo", "spill")),
    ("target_utilization", "0.6", 0.6),
    ("scale_out_threshold", "0.8", 0.8),
    ("scale_in_threshold", "0.2", 0.2),
    ("local_overload_threshold", "0.9", 0.9),
    ("grace_period_s", "45", 45.0),
    ("min_hosts", "2", 2),
    ("backlog_aware_scaling", "0", False),
    ("max_scale_out_factor", "2.5", 2.5),
    ("slo_p99_s", "0.75", 0.75),
    ("slo_window_s", "60", 60.0),
    ("slo_min_samples", "5", 5),
    ("slo_sustain_rounds", "3", 3),
    ("slo_release_fraction", "0.4", 0.4),
    ("slo_veto_max_rounds", "6", 6),
    ("spill_depth_limit", "100", 100),
    ("spill_starved_limit", "3", 3),
    ("spill_sustain_rounds", "4", 4),
    ("spill_hold_rounds", "2", 2),
    ("symptom_target_fraction", "0.8", 0.8),
]


def test_env_case_table_covers_every_knob():
    assert {name for name, _, _ in ENV_CASES} == set(_POLICY_ENV_VARS)


@pytest.mark.parametrize("knob,raw,expected", ENV_CASES)
def test_every_env_knob_is_read(monkeypatch, knob, raw, expected):
    monkeypatch.setenv(_POLICY_ENV_VARS[knob], raw)
    assert getattr(PolicyConfig.from_env(), knob) == expected


@pytest.mark.parametrize("knob,raw,expected", ENV_CASES)
def test_unset_env_keeps_the_default(monkeypatch, knob, raw, expected):
    monkeypatch.delenv(_POLICY_ENV_VARS[knob], raising=False)
    assert getattr(PolicyConfig.from_env(), knob) == getattr(
        PolicyConfig, knob
    )


def test_cli_override_beats_env(monkeypatch):
    monkeypatch.setenv("REPRO_POLICY_SLO_P99_S", "2.0")
    monkeypatch.setenv("REPRO_POLICY_SIGNALS", "cpu,slo")
    config = PolicyConfig.from_env(slo_p99_s=0.5, signals="cpu,spill")
    assert config.slo_p99_s == 0.5
    assert config.signals == ("cpu", "spill")


def test_none_override_falls_through_to_env(monkeypatch):
    monkeypatch.setenv("REPRO_POLICY_MIN_HOSTS", "3")
    assert PolicyConfig.from_env(min_hosts=None).min_hosts == 3


def test_unknown_override_is_rejected():
    with pytest.raises(TypeError, match="unknown policy knob"):
        PolicyConfig.from_env(not_a_knob=1)


def test_invalid_env_value_fails_policy_validation(monkeypatch):
    monkeypatch.setenv("REPRO_POLICY_SIGNALS", "cpu,bogus")
    with pytest.raises(ValueError, match="unknown policy signal"):
        PolicyConfig.from_env()
    monkeypatch.delenv("REPRO_POLICY_SIGNALS")
    monkeypatch.setenv("REPRO_POLICY_SCALE_IN_THRESHOLD", "0.9")
    with pytest.raises(ValueError):
        PolicyConfig.from_env()


def test_policy_builds_the_matching_elasticity_policy():
    config = PolicyConfig(signals=("cpu", "slo"), slo_p99_s=0.8, min_hosts=2)
    policy = config.policy()
    assert isinstance(policy, ElasticityPolicy)
    assert policy.signals == ("cpu", "slo")
    assert policy.slo_p99_s == 0.8
    assert policy.min_hosts == 2
    # Untouched knobs keep the paper defaults.
    assert policy.scale_out_threshold == 0.70


def test_signals_accept_csv_string():
    assert PolicyConfig(signals="spill, cpu").signals == ("spill", "cpu")


class TestProvenance:
    def test_sources_reflect_where_each_value_came_from(self, monkeypatch):
        monkeypatch.setenv("REPRO_POLICY_SLO_WINDOW_S", "45")
        rows = {
            knob: (value, source)
            for knob, value, source in PolicyConfig.provenance(
                slo_p99_s=0.25
            )
        }
        assert rows["slo_p99_s"] == (0.25, "cli")
        assert rows["slo_window_s"] == (
            45.0, "env:REPRO_POLICY_SLO_WINDOW_S"
        )
        assert rows["min_hosts"] == (1, "default")
        assert rows["signals"] == ("cpu", "default")

    def test_every_knob_has_a_row(self):
        rows = PolicyConfig.provenance()
        assert {knob for knob, _, _ in rows} == set(_POLICY_ENV_VARS)


class TestHubConfigPrecedence:
    def test_hub_defaults_pick_up_the_environment(self, monkeypatch):
        monkeypatch.setenv("REPRO_POLICY_SIGNALS", "cpu,slo")
        monkeypatch.setenv("REPRO_POLICY_SLO_P99_S", "0.9")
        config = HubConfig()
        assert config.policy.signals == ("cpu", "slo")
        assert config.policy.slo_p99_s == 0.9

    def test_explicit_policy_group_wins_over_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_POLICY_SIGNALS", "cpu,slo,spill")
        config = HubConfig(policy=PolicyConfig(signals=("cpu",)))
        assert config.policy.signals == ("cpu",)

    def test_default_policy_group_is_the_paper_policy(self):
        config = HubConfig()
        assert config.policy.policy() == ElasticityPolicy()
