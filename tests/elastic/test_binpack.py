"""Tests for First Fit Decreasing placement."""

import pytest

from repro.elastic import HostBin, SliceLoad, first_fit_decreasing

GIB = 1024 ** 3


def item(name, cpu, mem=1):
    return SliceLoad(name, cpu, mem)


def host_bin(name, capacity=4.0, used=0.0, mem_capacity=8 * GIB, mem_used=0):
    return HostBin(name, capacity, mem_capacity, used, mem_used)


def test_places_into_first_fitting_bin():
    bins = [host_bin("h1", used=3.5), host_bin("h2")]
    placement = first_fit_decreasing([item("s", 1.0)], bins, 4.0, 8 * GIB)
    assert placement.assignments == {"s": "h2"}
    assert placement.new_hosts == 0


def test_decreasing_order_packs_big_items_first():
    bins = [host_bin("h1", capacity=3.0)]
    placement = first_fit_decreasing(
        [item("small", 1.0), item("big", 2.0)], bins, 3.0, 8 * GIB
    )
    # big first into h1 (2.0), then small fits alongside (3.0 total).
    assert placement.assignments == {"big": "h1", "small": "h1"}


def test_opens_new_hosts_when_needed():
    bins = [host_bin("h1", used=4.0)]
    placement = first_fit_decreasing(
        [item("a", 1.5), item("b", 2.5)], bins, 4.0, 8 * GIB
    )
    assert placement.new_hosts == 1
    assert placement.assignments["a"] == "new-0"
    assert placement.assignments["b"] == "new-0"
    assert placement.uses_new_hosts


def test_second_new_host_opened_when_first_is_full():
    bins = [host_bin("h1", used=4.0)]
    placement = first_fit_decreasing(
        [item("a", 2.0), item("b", 2.5)], bins, 4.0, 8 * GIB
    )
    assert placement.new_hosts == 2


def test_new_hosts_disallowed_returns_none():
    bins = [host_bin("h1", used=4.0)]
    placement = first_fit_decreasing(
        [item("a", 2.0)], bins, 4.0, 8 * GIB, allow_new_hosts=False
    )
    assert placement is None


def test_max_new_hosts_respected():
    placement = first_fit_decreasing(
        [item("a", 4.0), item("b", 4.0)], [], 4.0, 8 * GIB, max_new_hosts=1
    )
    assert placement is None


def test_item_larger_than_any_host_unplaceable():
    placement = first_fit_decreasing([item("a", 9.0)], [], 4.0, 8 * GIB)
    assert placement is None


def test_memory_constraint_blocks_placement():
    bins = [host_bin("h1", mem_capacity=100, mem_used=90)]
    placement = first_fit_decreasing(
        [SliceLoad("a", 0.1, 50)], bins, 4.0, 200
    )
    assert placement.assignments == {"a": "new-0"}


def test_empty_items_is_trivial():
    placement = first_fit_decreasing([], [host_bin("h1")], 4.0, 8 * GIB)
    assert placement.assignments == {}
    assert placement.new_hosts == 0


def test_bins_mutated_reflect_cumulative_usage():
    bins = [host_bin("h1", capacity=4.0)]
    first_fit_decreasing(
        [item("a", 2.0), item("b", 2.0)], bins, 4.0, 8 * GIB
    )
    assert bins[0].cpu_used_cores == pytest.approx(4.0)
