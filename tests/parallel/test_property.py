"""Property test: serial and parallel matching are the same function.

Hypothesis drives arbitrary churn streams — stores, removes (tombstones),
enough removals to trigger compaction, and export/import migrations —
and after every mutation burst checks that a parallel ``submit().result()``
equals the serial ``match_batch`` answer exactly: same subscriber ids,
same per-publication order.  One executor per process-backed backend is
shared across examples (module-scoped), so examples also exercise stale
worker caches left behind by *previous* examples' libraries.
"""

import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.filtering import AspeLibrary
from repro.parallel import InlineMatchExecutor

from .conftest import encrypted_publications, random_filter

SUB_IDS = 24

#: One churn step: (action, subject). Action 0/1 → store, 2 → remove,
#: 3 → migrate (export/import into a fresh library), 4 → compaction
#: pressure (remove half the stored ids).  Stores outweigh removes so
#: libraries keep content to match against.
STEPS = st.lists(
    st.tuples(st.integers(min_value=0, max_value=4), st.integers(0, SUB_IDS - 1)),
    min_size=4,
    max_size=40,
)


def apply_step(library, stored, pool, step):
    action, subject = step
    if action in (0, 1):
        library.store(subject, pool[subject])
        stored.add(subject)
        return library
    if action == 2:
        if subject in stored:
            library.remove(subject)
            stored.discard(subject)
        return library
    if action == 3:
        clone = AspeLibrary()
        clone.import_state(library.export_state())
        return clone
    for sub_id in sorted(stored)[: len(stored) // 2]:
        library.remove(sub_id)
        stored.discard(sub_id)
    return library


def run_property(cipher, executor, steps, seed):
    rng = random.Random(seed)
    pool = {
        i: cipher.encrypt_subscription(random_filter(rng)) for i in range(SUB_IDS)
    }
    library = AspeLibrary()
    stored = set()
    channel = executor.open_channel("P")
    try:
        for step in steps:
            library = apply_step(library, stored, pool, step)
            pubs = encrypted_publications(cipher, rng, 3)
            parallel = channel.submit(library, pubs).result()
            serial = library.match_batch(pubs)
            assert parallel == serial
    finally:
        channel.close()


@settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(steps=STEPS, seed=st.integers(0, 2**16))
def test_inline_equals_serial_under_churn(cipher, steps, seed):
    executor = InlineMatchExecutor(workers=3, chunk_rows=4)
    try:
        run_property(cipher, executor, steps, seed)
    finally:
        executor.shutdown()


@settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(steps=STEPS, seed=st.integers(0, 2**16))
def test_workers_equal_serial_under_churn(cipher, process_executor, steps, seed):
    run_property(cipher, process_executor, steps, seed)
