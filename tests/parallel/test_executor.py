"""Unit and equivalence tests for the parallel matching executors.

The contract under test: for any library state and publication batch,
``channel.submit(library, payloads).result()`` equals
``library.match_batch(payloads)`` — same ids, same order — on every
backend, across epoch bumps (store/remove), appended-row deltas and
compaction-forced resyncs.
"""

import random

import numpy as np
import pytest

from repro.filtering import AspeLibrary
from repro.parallel import (
    BACKENDS,
    CompletionRendezvous,
    InlineMatchExecutor,
    ProcessPoolMatchExecutor,
    SharedMemoryMatchExecutor,
    available_backends,
    create_executor,
    plan_chunks,
    resolve_backend,
    shared_executor,
)

from .conftest import encrypted_publications, random_filter


def spans(rows_per_span, count):
    starts = np.arange(count) * rows_per_span
    return starts, starts + rows_per_span


# -- chunk planning -----------------------------------------------------------


def test_plan_chunks_single_chunk_when_matrix_is_small():
    starts, stops = spans(3, 10)
    assert plan_chunks(starts, stops, workers=4, chunk_rows=4096) == [(0, 10)]


def test_plan_chunks_covers_all_spans_contiguously():
    starts, stops = spans(5, 37)
    chunks = plan_chunks(starts, stops, workers=4, chunk_rows=10)
    assert chunks[0][0] == 0 and chunks[-1][1] == 37
    for (_, hi), (lo, _) in zip(chunks, chunks[1:]):
        assert hi == lo


def test_plan_chunks_targets_at_most_about_workers_chunks():
    starts, stops = spans(2, 1000)
    chunks = plan_chunks(starts, stops, workers=4, chunk_rows=1)
    assert len(chunks) <= 5  # ceil rounding may add one
    # Every chunk but the last reaches the per-worker row target.
    target = 2000 // 4
    for lo, hi in chunks[:-1]:
        assert int(stops[hi - 1]) - int(starts[lo]) >= target


def test_plan_chunks_respects_chunk_rows_floor():
    starts, stops = spans(2, 100)
    chunks = plan_chunks(starts, stops, workers=100, chunk_rows=50)
    for lo, hi in chunks[:-1]:
        assert int(stops[hi - 1]) - int(starts[lo]) >= 50


# -- construction and validation ----------------------------------------------


def test_create_executor_rejects_bad_knobs():
    with pytest.raises(ValueError, match="workers"):
        create_executor(-1)
    with pytest.raises(ValueError, match="chunk rows"):
        create_executor(2, chunk_rows=0)
    with pytest.raises(ValueError, match="unknown match backend"):
        resolve_backend("bogus")


def test_zero_workers_resolves_to_inline():
    executor = create_executor(0, "auto")
    assert isinstance(executor, InlineMatchExecutor)
    executor.shutdown()


def test_process_backends_require_a_worker():
    with pytest.raises(ValueError):
        ProcessPoolMatchExecutor(0)
    with pytest.raises(ValueError):
        SharedMemoryMatchExecutor(0)


def test_backend_names_are_consistent():
    assert set(available_backends()) <= set(BACKENDS)
    assert resolve_backend("auto") in available_backends()


def test_shared_executor_is_memoized_per_knobs():
    a = shared_executor(0, "inline", 64)
    b = shared_executor(0, "inline", 64)
    c = shared_executor(0, "inline", 128)
    assert a is b
    assert a is not c


# -- submit fast paths --------------------------------------------------------


def test_submit_empty_batch_and_empty_library(cipher):
    executor = InlineMatchExecutor()
    channel = executor.open_channel("T")
    library = AspeLibrary()
    pubs = encrypted_publications(cipher, random.Random(1), 3)
    assert channel.submit(library, []).result() == []
    assert channel.submit(library, pubs).result() == [[], [], []]
    executor.shutdown()


def test_submit_on_closed_channel_raises(cipher):
    executor = InlineMatchExecutor()
    channel = executor.open_channel("T")
    channel.close()
    with pytest.raises(RuntimeError, match="closed"):
        channel.submit(AspeLibrary(), [])
    executor.shutdown()


def test_channel_names_never_alias():
    executor = InlineMatchExecutor()
    first = executor.open_channel("M:0")
    second = executor.open_channel("M:0")
    assert first.key != second.key
    executor.shutdown()


# -- inline equivalence -------------------------------------------------------


def churn_script(cipher, channel, library, rng, checks=6):
    """Drive store/remove churn and compare parallel vs serial each step."""
    pool = {i: cipher.encrypt_subscription(random_filter(rng)) for i in range(40)}
    stored = set()
    for step in range(checks):
        for _ in range(10):
            sub_id = rng.randrange(40)
            if sub_id in stored and rng.random() < 0.6:
                library.remove(sub_id)
                stored.discard(sub_id)
            else:
                library.store(sub_id, pool[sub_id])
                stored.add(sub_id)
        pubs = encrypted_publications(cipher, rng, 5)
        assert channel.submit(library, pubs).result() == library.match_batch(pubs)
    # Removal-heavy tail forces tombstone-dominated rows → compaction.
    for sub_id in sorted(stored)[: len(stored) - 2]:
        library.remove(sub_id)
    pubs = encrypted_publications(cipher, rng, 4)
    assert channel.submit(library, pubs).result() == library.match_batch(pubs)


def test_inline_channel_matches_serial_across_churn(cipher):
    executor = InlineMatchExecutor(workers=2, chunk_rows=8)
    channel = executor.open_channel("T")
    churn_script(cipher, channel, AspeLibrary(), random.Random(5))
    executor.shutdown()


# -- process-backed equivalence (pool + shm) ----------------------------------


def test_process_channel_matches_serial_across_churn(cipher, process_executor):
    channel = process_executor.open_channel("T")
    library = AspeLibrary()
    churn_script(cipher, channel, library, random.Random(9))
    # Churn bumps epochs every round: the matrix was re-shipped (or
    # delta-shipped) rather than reused stale.
    assert process_executor.resync_count >= 1
    if process_executor.backend_name == "shm":
        assert process_executor.delta_count >= 1
    channel.close()


def test_migration_import_triggers_full_resync(cipher, process_executor):
    rng = random.Random(11)
    library = AspeLibrary()
    for sub_id in range(12):
        library.store(sub_id, cipher.encrypt_subscription(random_filter(rng)))
    channel = process_executor.open_channel("T")
    pubs = encrypted_publications(cipher, rng, 4)
    assert channel.submit(library, pubs).result() == library.match_batch(pubs)
    before = process_executor.resync_count
    # A migrated slice rebuilds its library from exported state: new
    # generation, so the worker-side matrix must be fully re-shipped.
    clone = AspeLibrary()
    clone.import_state(library.export_state())
    assert channel.submit(clone, pubs).result() == library.match_batch(pubs)
    assert process_executor.resync_count > before
    channel.close()


def test_cancel_settles_queue_accounting(cipher, process_executor):
    rng = random.Random(13)
    library = AspeLibrary()
    for sub_id in range(8):
        library.store(sub_id, cipher.encrypt_subscription(random_filter(rng)))
    channel = process_executor.open_channel("T")
    future = channel.submit(library, encrypted_publications(cipher, rng, 3))
    future.cancel()
    assert future.result() == []
    assert process_executor._inflight_batches == 0
    assert process_executor._queued_tasks == 0
    # The channel remains usable after a cancelled batch.
    pubs = encrypted_publications(cipher, rng, 2)
    assert channel.submit(library, pubs).result() == library.match_batch(pubs)
    channel.close()


# -- completion rendezvous ----------------------------------------------------


class _Event:
    pass


def test_rendezvous_post_take_cancel():
    rendezvous = CompletionRendezvous()
    executor = InlineMatchExecutor()
    channel = executor.open_channel("T")
    head, other = _Event(), _Event()
    future = channel.submit(AspeLibrary(), [])
    rendezvous.post(head, future)
    assert len(rendezvous) == 1
    assert rendezvous.take(other) is None
    assert rendezvous.take(head) is future
    assert rendezvous.take(head) is None

    rendezvous.post(head, channel.submit(AspeLibrary(), []))
    assert rendezvous.cancel_all() == 1
    assert len(rendezvous) == 0
    executor.shutdown()
