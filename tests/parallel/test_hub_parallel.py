"""Hub-level determinism of parallel matching execution.

Full pipeline runs (AP → M → EP → SINK) must emit *byte-identical*
notification logs whether matching executes inline or on worker
processes — including with a live M-slice migration mid-run, which tears
the old channel down (cancelling in-flight futures) and resyncs the new
instance's matrix from scratch.
"""

import random

import pytest

from repro.cluster import CloudProvider, HostSpec
from repro.filtering import AspeCipher, AspeKey, AspeLibrary, ExactBackend
from repro.parallel import create_executor
from repro.pubsub import HubConfig, Publication, StreamHub, Subscription
from repro.sim import Environment

from .conftest import PARALLEL_BACKENDS, random_filter

SUBSCRIPTIONS = 48
PUBLICATIONS = 120


def workload(cipher):
    rng = random.Random(3)
    subs = [
        cipher.encrypt_subscription(random_filter(rng))
        for _ in range(SUBSCRIPTIONS)
    ]
    pubs = [
        cipher.encrypt_publication([rng.uniform(0.0, 100.0) for _ in range(4)])
        for _ in range(PUBLICATIONS)
    ]
    return subs, pubs


def run_hub(cipher, executor=None, workers=0, migrate=False):
    encrypted_subs, encrypted_pubs = workload(cipher)
    env = Environment()
    cloud = CloudProvider(env, spec=HostSpec(cores=8), max_hosts=8)
    hosts = [cloud.provision_now() for _ in range(4)]
    knobs = dict(
        ap_slices=2,
        m_slices=4,
        ep_slices=2,
        sink_slices=1,
        encrypted=False,
        backend_factory=lambda index: ExactBackend(AspeLibrary()),
        matcher_batch_limit=4,
        match_chunk_rows=8,
        match_executor=executor,
    )
    if workers is not None:
        # None leaves the field on its default factory (REPRO_MATCH_WORKERS).
        knobs["match_workers"] = workers
    config = HubConfig(**knobs)
    hub = StreamHub(env, cloud.network, config)
    hub.deploy_all_on(hosts[:2], [hosts[2]])
    for sub_id, encrypted in enumerate(encrypted_subs):
        hub.subscribe(Subscription(sub_id, 1000 + sub_id, encrypted))
    env.run()

    def publish_all():
        for pub_id, encrypted in enumerate(encrypted_pubs):
            hub.publish(Publication(pub_id, payload=encrypted, published_at=env.now))
            yield env.timeout(0.0005)

    env.process(publish_all())
    if migrate:

        def migrate_m1():
            yield env.timeout(0.02)
            report = yield hub.runtime.migrate("M:1", hosts[3])
            assert report.destination_host == hosts[3].host_id

        env.process(migrate_m1())
    env.run()
    offloaded = sum(
        hub.runtime.handler_of(f"M:{i}").batches_offloaded
        for i in range(config.m_slices)
    )
    return (
        sorted(
            (n.pub_id, n.count, tuple(sorted(n.subscriber_ids)))
            for n in hub.notification_log
        ),
        offloaded,
    )


@pytest.fixture(scope="module")
def inline_log(cipher):
    log, offloaded = run_hub(cipher)
    assert offloaded == 0
    return log


@pytest.fixture(scope="module")
def inline_migrated_log(cipher):
    log, _ = run_hub(cipher, migrate=True)
    return log


def test_parallel_run_is_byte_identical(cipher, process_executor, inline_log):
    log, offloaded = run_hub(cipher, executor=process_executor, workers=2)
    assert offloaded > 0
    assert log == inline_log


def test_parallel_run_with_live_migration_is_byte_identical(
    cipher, process_executor, inline_migrated_log
):
    before = process_executor.resync_count
    log, offloaded = run_hub(
        cipher, executor=process_executor, workers=2, migrate=True
    )
    assert offloaded > 0
    assert log == inline_migrated_log
    # The migrated M:1 rebuilt its handler → fresh channel → full resync
    # on its first post-migration batch (plus the other slices' firsts).
    assert process_executor.resync_count > before


def test_inline_executor_pipeline_matches_backend_only_run(cipher, inline_log):
    """workers>0 with the inline executor runs the snapshot/chunk/merge
    pipeline in-process — same notifications as the plain backend path."""
    executor = create_executor(0, "inline", 8)
    log, offloaded = run_hub(cipher, executor=executor, workers=0)
    # An injected executor engages the offload path even at workers=0.
    assert offloaded > 0
    assert log == inline_log
    executor.shutdown()


@pytest.mark.skipif(not PARALLEL_BACKENDS, reason="no process backends here")
def test_shared_env_knob_smoke(cipher, monkeypatch):
    """The REPRO_MATCH_WORKERS env default engages the executor path."""
    monkeypatch.setenv("REPRO_MATCH_WORKERS", "1")
    monkeypatch.setenv("REPRO_MATCH_CHUNK_ROWS", "8")
    log, offloaded = run_hub(cipher, executor=None, workers=None)
    assert offloaded > 0
    baseline, _ = run_hub(cipher)
    assert log == baseline
