"""Shared fixtures for parallel-matching tests.

Process-backed executors (pool/shm) fork real workers, so they are
module-scoped and shared across the tests of a module; the inline
executor is free to build per test.
"""

import random

import pytest

from repro.filtering import (
    AspeCipher,
    AspeKey,
    Op,
    Predicate,
    PredicateSet,
)
from repro.parallel import available_backends, create_executor

#: Backends exercised by equivalence tests on this platform ("inline"
#: always; "pool" always; "shm" on POSIX).
PARALLEL_BACKENDS = tuple(b for b in available_backends() if b != "inline")


@pytest.fixture(scope="module")
def cipher():
    key = AspeKey.generate(dimensions=4, rng=random.Random(42))
    return AspeCipher(key, rng=random.Random(17))


def random_filter(rng):
    predicates = []
    for _ in range(rng.randint(1, 3)):
        attribute = rng.randrange(4)
        op = rng.choice([Op.LT, Op.LE, Op.GT, Op.GE, Op.EQ])
        predicates.append(Predicate(attribute, op, rng.uniform(0.0, 100.0)))
    return PredicateSet.of(*predicates)


def encrypted_publications(cipher, rng, count):
    return [
        cipher.encrypt_publication([rng.uniform(0.0, 100.0) for _ in range(4)])
        for _ in range(count)
    ]


@pytest.fixture(scope="module", params=PARALLEL_BACKENDS)
def process_executor(request):
    """One started process-backed executor per backend, shared per module."""
    executor = create_executor(2, request.param, chunk_rows=8)
    yield executor
    executor.shutdown()
