"""Unit tests for Resource / Container."""

import pytest

from repro.sim import Environment, Resource, Container


def test_resource_grants_up_to_capacity():
    env = Environment()
    res = Resource(env, capacity=2)
    grants = []

    def user(name, hold):
        with res.request() as req:
            yield req
            grants.append((name, env.now))
            yield env.timeout(hold)

    env.process(user("a", 5.0))
    env.process(user("b", 5.0))
    env.process(user("c", 5.0))
    env.run()
    # a and b start immediately, c waits for the first release at t=5.
    assert grants == [("a", 0.0), ("b", 0.0), ("c", 5.0)]


def test_resource_fifo_order():
    env = Environment()
    res = Resource(env, capacity=1)
    order = []

    def user(name):
        with res.request() as req:
            yield req
            order.append(name)
            yield env.timeout(1.0)

    for name in ["u1", "u2", "u3"]:
        env.process(user(name))
    env.run()
    assert order == ["u1", "u2", "u3"]


def test_resource_count_tracks_usage():
    env = Environment()
    res = Resource(env, capacity=3)
    samples = []

    def user():
        with res.request() as req:
            yield req
            yield env.timeout(2.0)

    def sampler():
        yield env.timeout(1.0)
        samples.append(res.count)
        yield env.timeout(2.0)
        samples.append(res.count)

    env.process(user())
    env.process(user())
    env.process(sampler())
    env.run()
    assert samples == [2, 0]


def test_capacity_increase_unblocks_queued_requests():
    env = Environment()
    res = Resource(env, capacity=1)
    starts = []

    def user(name):
        with res.request() as req:
            yield req
            starts.append((name, env.now))
            yield env.timeout(10.0)

    def grower():
        yield env.timeout(3.0)
        res.set_capacity(2)

    env.process(user("a"))
    env.process(user("b"))
    env.process(grower())
    env.run()
    assert starts == [("a", 0.0), ("b", 3.0)]


def test_invalid_capacity_rejected():
    env = Environment()
    with pytest.raises(ValueError):
        Resource(env, capacity=0)
    res = Resource(env, capacity=1)
    with pytest.raises(ValueError):
        res.set_capacity(-1)


def test_queued_request_can_be_withdrawn():
    env = Environment()
    res = Resource(env, capacity=1)
    served = []

    def holder():
        with res.request() as req:
            yield req
            yield env.timeout(10.0)

    def impatient():
        req = res.request()
        yield env.timeout(1.0)  # still queued at this point
        req.cancel()
        served.append("gave up")

    def patient():
        with res.request() as req:
            yield req
            served.append(("patient", env.now))

    env.process(holder())
    env.process(impatient())
    env.process(patient())
    env.run()
    assert ("patient", 10.0) in served
    assert "gave up" in served


def test_priority_request_order():
    env = Environment()
    res = Resource(env, capacity=1)
    order = []

    def holder():
        with res.request() as req:
            yield req
            yield env.timeout(5.0)

    def user(name, priority):
        with res.priority_request(priority=priority) as req:
            yield req
            order.append(name)
            yield env.timeout(1.0)

    env.process(holder())
    env.process(user("low", 10))
    env.process(user("high", 0))
    env.run()
    assert order == ["high", "low"]


def test_double_release_is_noop():
    env = Environment()
    res = Resource(env, capacity=1)

    def user():
        req = res.request()
        yield req
        req.cancel()
        req.cancel()  # second cancel must not corrupt state

    env.process(user())
    env.run()
    assert res.count == 0


def test_container_put_get():
    env = Environment()
    tank = Container(env, capacity=100.0, init=10.0)
    got = []

    def consumer():
        yield tank.get(30.0)
        got.append(env.now)

    def producer():
        yield env.timeout(2.0)
        tank.put(25.0)

    env.process(consumer())
    env.process(producer())
    env.run()
    assert got == [2.0]
    assert tank.level == pytest.approx(5.0)


def test_container_overflow_rejected():
    env = Environment()
    tank = Container(env, capacity=10.0, init=5.0)
    with pytest.raises(ValueError):
        tank.put(6.0)


def test_container_invalid_init():
    env = Environment()
    with pytest.raises(ValueError):
        Container(env, capacity=10.0, init=11.0)
