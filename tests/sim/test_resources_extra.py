"""Additional Resource/Store API coverage."""

import pytest

from repro.sim import Environment, Resource, Store


def test_explicit_release_event():
    env = Environment()
    res = Resource(env, capacity=1)
    order = []

    def holder():
        req = res.request()
        yield req
        yield env.timeout(2.0)
        release = res.release(req)
        yield release
        order.append(("released", env.now))

    def waiter():
        req = res.request()
        yield req
        order.append(("granted", env.now))
        req.cancel()

    env.process(holder())
    env.process(waiter())
    env.run()
    assert ("granted", 2.0) in order
    assert ("released", 2.0) in order


def test_store_get_cancel_before_item():
    env = Environment()
    store = Store(env)
    got = []

    def impatient():
        get_event = store.get()
        yield env.timeout(1.0)
        get_event.cancel()
        get_event.cancel()  # idempotent

    def patient():
        item = yield store.get()
        got.append(item)

    def producer():
        yield env.timeout(2.0)
        yield store.put("x")

    env.process(impatient())
    env.process(patient())
    env.process(producer())
    env.run()
    # The cancelled getter never consumed the item; the patient one did.
    assert got == ["x"]


def test_put_nowait_rejected_on_bounded_store():
    env = Environment()
    store = Store(env, capacity=2)
    with pytest.raises(RuntimeError):
        store.put_nowait("x")


def test_try_get_respects_predicate():
    env = Environment()
    store = Store(env)
    store.put_nowait(1)
    store.put_nowait(10)
    assert store.try_get(lambda item: item > 5) == 10
    assert store.try_get(lambda item: item > 5) is None
    assert store.try_get() == 1
    assert store.try_get() is None


def test_put_nowait_wakes_waiting_getter():
    env = Environment()
    store = Store(env)
    got = []

    def consumer():
        item = yield store.get()
        got.append((env.now, item))

    env.process(consumer())

    def producer():
        yield env.timeout(3.0)
        store.put_nowait("direct")

    env.process(producer())
    env.run()
    assert got == [(3.0, "direct")]
