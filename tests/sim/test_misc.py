"""Determinism, call_later, and RNG-registry tests for the sim kernel."""

import pytest

from repro.sim import Environment, RngRegistry, derive_seed


class TestCallLater:
    def test_invokes_function_at_time(self):
        env = Environment()
        calls = []
        env.call_later(5.0, calls.append, "x")
        env.run()
        assert calls == ["x"]
        assert env.now == 5.0

    def test_ordering_among_same_time_callbacks(self):
        env = Environment()
        order = []
        env.call_later(1.0, order.append, "first")
        env.call_later(1.0, order.append, "second")
        env.run()
        assert order == ["first", "second"]

    def test_zero_delay_runs_before_later_events(self):
        env = Environment()
        order = []
        env.call_later(1.0, order.append, "later")
        env.call_later(0.0, order.append, "now")
        env.run()
        assert order == ["now", "later"]


class TestDeterminism:
    def test_identical_runs_produce_identical_traces(self):
        def run_once():
            env = Environment()
            trace = []

            def worker(name, delay):
                while env.now < 50.0:
                    yield env.timeout(delay)
                    trace.append((round(env.now, 6), name))

            env.process(worker("a", 1.7))
            env.process(worker("b", 2.3))
            env.process(worker("c", 0.9))
            env.run(until=50.0)
            return trace

        assert run_once() == run_once()


class TestRngRegistry:
    def test_streams_are_deterministic_per_name(self):
        a = RngRegistry(root_seed=1).stream("x").random()
        b = RngRegistry(root_seed=1).stream("x").random()
        assert a == b

    def test_streams_are_independent(self):
        registry = RngRegistry(root_seed=1)
        assert registry.stream("x").random() != registry.stream("y").random()

    def test_same_stream_returned_for_same_name(self):
        registry = RngRegistry(root_seed=1)
        assert registry.stream("x") is registry.stream("x")

    def test_reseed_resets_streams(self):
        registry = RngRegistry(root_seed=1)
        first = registry.stream("x").random()
        registry.reseed(1)
        assert registry.stream("x").random() == first
        registry.reseed(2)
        assert registry.stream("x").random() != first

    def test_derive_seed_stable_and_distinct(self):
        assert derive_seed(1, "a") == derive_seed(1, "a")
        assert derive_seed(1, "a") != derive_seed(1, "b")
        assert derive_seed(1, "a") != derive_seed(2, "a")
        assert 0 <= derive_seed(3, "z") < 2 ** 64
