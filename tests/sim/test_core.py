"""Unit tests for the simulation kernel event loop."""

import pytest

from repro.sim import Environment, Interrupt


def test_clock_starts_at_initial_time():
    assert Environment().now == 0.0
    assert Environment(initial_time=42.5).now == 42.5


def test_timeout_advances_clock():
    env = Environment()
    log = []

    def proc():
        yield env.timeout(3.0)
        log.append(env.now)
        yield env.timeout(1.5)
        log.append(env.now)

    env.process(proc())
    env.run()
    assert log == [3.0, 4.5]


def test_timeout_value_is_delivered():
    env = Environment()
    seen = []

    def proc():
        value = yield env.timeout(1.0, value="hello")
        seen.append(value)

    env.process(proc())
    env.run()
    assert seen == ["hello"]


def test_negative_timeout_rejected():
    env = Environment()
    with pytest.raises(ValueError):
        env.timeout(-1)


def test_run_until_time_stops_exactly():
    env = Environment()

    def ticker():
        while True:
            yield env.timeout(1.0)

    env.process(ticker())
    env.run(until=10.0)
    assert env.now == 10.0


def test_run_until_time_in_past_rejected():
    env = Environment(initial_time=5.0)
    with pytest.raises(ValueError):
        env.run(until=5.0)


def test_run_until_event_returns_its_value():
    env = Environment()

    def proc():
        yield env.timeout(2.0)
        return "done"

    result = env.run(until=env.process(proc()))
    assert result == "done"
    assert env.now == 2.0


def test_events_fire_in_time_order_with_fifo_ties():
    env = Environment()
    order = []

    def proc(name, delay):
        yield env.timeout(delay)
        order.append(name)

    env.process(proc("b", 2.0))
    env.process(proc("a", 1.0))
    env.process(proc("a2", 1.0))
    env.run()
    assert order == ["a", "a2", "b"]


def test_manual_event_succeed():
    env = Environment()
    gate = env.event()
    log = []

    def waiter():
        value = yield gate
        log.append((env.now, value))

    def opener():
        yield env.timeout(5.0)
        gate.succeed("open")

    env.process(waiter())
    env.process(opener())
    env.run()
    assert log == [(5.0, "open")]


def test_event_cannot_trigger_twice():
    env = Environment()
    event = env.event()
    event.succeed(1)
    with pytest.raises(RuntimeError):
        event.succeed(2)
    with pytest.raises(RuntimeError):
        event.fail(ValueError("x"))


def test_event_value_before_trigger_raises():
    env = Environment()
    event = env.event()
    with pytest.raises(RuntimeError):
        _ = event.value
    with pytest.raises(RuntimeError):
        _ = event.ok


def test_failed_event_raises_in_waiting_process():
    env = Environment()
    gate = env.event()
    caught = []

    def waiter():
        try:
            yield gate
        except ValueError as exc:
            caught.append(str(exc))

    env.process(waiter())
    gate.fail(ValueError("boom"))
    env.run()
    assert caught == ["boom"]


def test_unhandled_process_exception_crashes_simulation():
    env = Environment()

    def bad():
        yield env.timeout(1.0)
        raise RuntimeError("unhandled")

    env.process(bad())
    with pytest.raises(RuntimeError, match="unhandled"):
        env.run()


def test_process_return_value_propagates_to_waiter():
    env = Environment()
    seen = []

    def child():
        yield env.timeout(1.0)
        return 99

    def parent():
        value = yield env.process(child())
        seen.append(value)

    env.process(parent())
    env.run()
    assert seen == [99]


def test_waiting_on_already_processed_event():
    env = Environment()
    seen = []

    def child():
        yield env.timeout(1.0)
        return "early"

    def parent(child_proc):
        yield env.timeout(5.0)
        value = yield child_proc  # already finished at t=1
        seen.append((env.now, value))

    proc = env.process(child())
    env.process(parent(proc))
    env.run()
    assert seen == [(5.0, "early")]


def test_interrupt_raises_in_target_with_cause():
    env = Environment()
    log = []

    def victim():
        try:
            yield env.timeout(100.0)
        except Interrupt as exc:
            log.append((env.now, exc.cause))

    def attacker(target):
        yield env.timeout(3.0)
        target.interrupt(cause="stop now")

    target = env.process(victim())
    env.process(attacker(target))
    env.run()
    assert log == [(3.0, "stop now")]


def test_interrupting_dead_process_raises():
    env = Environment()

    def short():
        yield env.timeout(1.0)

    def late(target):
        yield env.timeout(2.0)
        target.interrupt()

    target = env.process(short())
    env.process(late(target))
    with pytest.raises(RuntimeError):
        env.run()


def test_process_is_alive_lifecycle():
    env = Environment()

    def proc():
        yield env.timeout(2.0)

    p = env.process(proc())
    assert p.is_alive
    env.run()
    assert not p.is_alive


def test_all_of_waits_for_every_event():
    env = Environment()
    times = []

    def proc():
        t1 = env.timeout(1.0, value="a")
        t2 = env.timeout(3.0, value="b")
        result = yield env.all_of([t1, t2])
        times.append(env.now)
        assert list(result.values()) == ["a", "b"]

    env.process(proc())
    env.run()
    assert times == [3.0]


def test_any_of_fires_on_first():
    env = Environment()
    times = []

    def proc():
        t1 = env.timeout(1.0, value="fast")
        t2 = env.timeout(3.0, value="slow")
        result = yield env.any_of([t1, t2])
        times.append(env.now)
        assert "fast" in result.values()

    env.process(proc())
    env.run()
    assert times == [1.0]


def test_all_of_empty_fires_immediately():
    env = Environment()
    fired = []

    def proc():
        yield env.all_of([])
        fired.append(env.now)

    env.process(proc())
    env.run()
    assert fired == [0.0]


def test_peek_reports_next_event_time():
    env = Environment()
    assert env.peek() == float("inf")
    env.timeout(7.0)
    assert env.peek() == 7.0


def test_step_on_empty_schedule_raises():
    env = Environment()
    with pytest.raises(IndexError):
        env.step()


def test_yielding_non_event_is_an_error():
    env = Environment()

    def bad():
        yield 42

    env.process(bad())
    with pytest.raises(TypeError):
        env.run()


def test_pooled_timeout_fires_like_a_timeout():
    from repro.sim import ReusableTimeout

    env = Environment()
    log = []

    def proc():
        value = yield env.pooled_timeout(2.0, value="v")
        log.append((env.now, value))

    env.process(proc())
    env.run()
    assert log == [(2.0, "v")]


def test_pooled_timeout_recycles_and_rearms():
    env = Environment()
    fired = []

    def proc():
        first = env.pooled_timeout(1.0)
        yield first
        env.recycle_timeout(first)
        second = env.pooled_timeout(1.0)
        # The pool handed the same (reset) event object back.
        assert second is first
        yield second
        fired.append(env.now)

    env.process(proc())
    env.run()
    assert fired == [2.0]


def test_pooled_timeout_cannot_rearm_while_scheduled():
    from repro.sim import ReusableTimeout

    env = Environment()
    timeout = env.pooled_timeout(5.0)
    with pytest.raises(RuntimeError):
        timeout.fire(1.0)
    with pytest.raises(ValueError):
        ReusableTimeout(env).fire(-1.0)


def test_recycle_refuses_still_scheduled_timeout():
    env = Environment()
    timeout = env.pooled_timeout(5.0)
    env.recycle_timeout(timeout)  # no-op: not processed yet
    assert env.pooled_timeout(1.0) is not timeout


def test_process_and_events_use_slots():
    from repro.sim import Process, ReusableTimeout, Timeout

    env = Environment()

    def proc():
        yield env.timeout(1.0)

    for obj in (env.process(proc()), env.timeout(1.0), ReusableTimeout(env)):
        with pytest.raises(AttributeError):
            obj.ad_hoc_attribute = 1
