"""Unit tests for Store."""

import pytest

from repro.sim import Environment, Store


def test_put_then_get_fifo():
    env = Environment()
    store = Store(env)
    got = []

    def producer():
        for i in range(3):
            yield store.put(i)

    def consumer():
        for _ in range(3):
            item = yield store.get()
            got.append(item)

    env.process(producer())
    env.process(consumer())
    env.run()
    assert got == [0, 1, 2]


def test_get_blocks_until_put():
    env = Environment()
    store = Store(env)
    got = []

    def consumer():
        item = yield store.get()
        got.append((env.now, item))

    def producer():
        yield env.timeout(4.0)
        yield store.put("x")

    env.process(consumer())
    env.process(producer())
    env.run()
    assert got == [(4.0, "x")]


def test_bounded_store_blocks_put():
    env = Environment()
    store = Store(env, capacity=1)
    events = []

    def producer():
        yield store.put("a")
        events.append(("put-a", env.now))
        yield store.put("b")
        events.append(("put-b", env.now))

    def consumer():
        yield env.timeout(5.0)
        item = yield store.get()
        events.append(("got", item, env.now))

    env.process(producer())
    env.process(consumer())
    env.run()
    assert ("put-a", 0.0) in events
    assert ("put-b", 5.0) in events


def test_filtered_get_skips_non_matching():
    env = Environment()
    store = Store(env)
    got = []

    def run():
        yield store.put({"kind": "a", "v": 1})
        yield store.put({"kind": "b", "v": 2})
        item = yield store.get(lambda it: it["kind"] == "b")
        got.append(item["v"])
        item = yield store.get()
        got.append(item["v"])

    env.process(run())
    env.run()
    assert got == [2, 1]


def test_filtered_get_waits_for_matching_item():
    env = Environment()
    store = Store(env)
    got = []

    def consumer():
        item = yield store.get(lambda it: it > 10)
        got.append((env.now, item))

    def producer():
        yield store.put(1)
        yield env.timeout(3.0)
        yield store.put(42)

    env.process(consumer())
    env.process(producer())
    env.run()
    assert got == [(3.0, 42)]
    assert store.peek_all() == [1]


def test_len_and_peek_all():
    env = Environment()
    store = Store(env)

    def run():
        yield store.put("x")
        yield store.put("y")

    env.process(run())
    env.run()
    assert len(store) == 2
    assert store.peek_all() == ["x", "y"]


def test_invalid_capacity():
    env = Environment()
    with pytest.raises(ValueError):
        Store(env, capacity=0)


def test_multiple_consumers_fifo_service():
    env = Environment()
    store = Store(env)
    got = []

    def consumer(name):
        item = yield store.get()
        got.append((name, item))

    def producer():
        yield env.timeout(1.0)
        yield store.put("first")
        yield store.put("second")

    env.process(consumer("c1"))
    env.process(consumer("c2"))
    env.process(producer())
    env.run()
    assert got == [("c1", "first"), ("c2", "second")]
