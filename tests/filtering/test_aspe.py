"""Correctness and security-property tests for ASPE encrypted filtering."""

import random

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.filtering import (
    AspeCipher,
    AspeKey,
    AspeLibrary,
    Op,
    Predicate,
    PredicateSet,
    match_encrypted,
)


@pytest.fixture
def cipher():
    key = AspeKey.generate(dimensions=4, rng=random.Random(42))
    return AspeCipher(key, rng=random.Random(17))


def band(attribute, low, high):
    return PredicateSet.of(
        Predicate(attribute, Op.GE, low), Predicate(attribute, Op.LE, high)
    )


def test_key_generation_shapes():
    key = AspeKey.generate(dimensions=4, rng=random.Random(1))
    assert key.matrix.shape == (7, 7)
    assert key.inverse.shape == (7, 7)
    assert np.allclose(key.matrix @ key.inverse, np.eye(7), atol=1e-9)
    assert key.cipher_dimensions == 7


def test_key_invalid_dimensions():
    with pytest.raises(ValueError):
        AspeKey.generate(dimensions=0)


def test_encrypted_match_agrees_with_plaintext_basic(cipher):
    sub = band(0, 10.0, 20.0)
    enc_sub = cipher.encrypt_subscription(sub)
    inside = cipher.encrypt_publication([15.0, 0.0, 0.0, 0.0])
    outside = cipher.encrypt_publication([25.0, 0.0, 0.0, 0.0])
    assert match_encrypted(inside, enc_sub)
    assert not match_encrypted(outside, enc_sub)


@pytest.mark.parametrize("op", [Op.LT, Op.LE, Op.GT, Op.GE, Op.EQ])
def test_each_operator_encrypted(cipher, op):
    sub = PredicateSet.of(Predicate(1, op, 50.0))
    enc_sub = cipher.encrypt_subscription(sub)
    for value in [49.0, 50.0, 51.0]:
        pub = [0.0, value, 0.0, 0.0]
        enc_pub = cipher.encrypt_publication(pub)
        assert match_encrypted(enc_pub, enc_sub) == sub.matches(pub), (op, value)


def test_encrypted_match_agrees_with_plaintext_randomized(cipher):
    rng = random.Random(99)
    for _ in range(200):
        attribute = rng.randrange(4)
        op = rng.choice([Op.LT, Op.LE, Op.GT, Op.GE])
        constant = rng.uniform(0.0, 1000.0)
        sub = PredicateSet.of(Predicate(attribute, op, constant))
        enc_sub = cipher.encrypt_subscription(sub)
        pub = [rng.uniform(0.0, 1000.0) for _ in range(4)]
        enc_pub = cipher.encrypt_publication(pub)
        assert match_encrypted(enc_pub, enc_sub) == sub.matches(pub)


def test_conjunction_encrypted(cipher):
    sub = PredicateSet.of(
        Predicate(0, Op.GE, 10.0),
        Predicate(1, Op.LT, 5.0),
        Predicate(2, Op.GT, 100.0),
    )
    enc_sub = cipher.encrypt_subscription(sub)
    assert match_encrypted(cipher.encrypt_publication([10.0, 4.0, 101.0, 0.0]), enc_sub)
    assert not match_encrypted(cipher.encrypt_publication([10.0, 5.0, 101.0, 0.0]), enc_sub)


def test_equality_becomes_two_ciphertext_predicates(cipher):
    enc = cipher.encrypt_subscription(PredicateSet.of(Predicate(0, Op.EQ, 7.0)))
    assert len(enc.predicates) == 2


def test_encryption_is_randomized(cipher):
    a = cipher.encrypt_publication([1.0, 2.0, 3.0, 4.0])
    b = cipher.encrypt_publication([1.0, 2.0, 3.0, 4.0])
    assert not np.allclose(a.vector, b.vector)


def test_ciphertext_hides_attributes(cipher):
    """No ciphertext coordinate equals a plaintext attribute value."""
    pub = [123.0, 456.0, 789.0, 321.0]
    enc = cipher.encrypt_publication(pub)
    for value in pub:
        assert not np.any(np.isclose(enc.vector, value, rtol=1e-3))


def test_scalar_products_between_same_side_ciphertexts_are_blinded(cipher):
    """pub·pub ciphertext products do not reveal plaintext products."""
    x = [1.0, 0.0, 0.0, 0.0]
    y = [0.0, 1.0, 0.0, 0.0]
    ex = cipher.encrypt_publication(x).vector
    ey = cipher.encrypt_publication(y).vector
    # Plaintext x·y = 0 but ciphertext product is mixed by MᵀM ≠ I.
    assert abs(float(ex @ ey)) > 1e-6


def test_wrong_dimension_rejected(cipher):
    with pytest.raises(ValueError):
        cipher.encrypt_publication([1.0, 2.0])
    with pytest.raises(ValueError):
        cipher.encrypt_predicate(Predicate(9, Op.LT, 1.0))


def test_different_keys_do_not_interoperate():
    key_a = AspeKey.generate(4, rng=random.Random(1))
    key_b = AspeKey.generate(4, rng=random.Random(2))
    cipher_a = AspeCipher(key_a, rng=random.Random(3))
    cipher_b = AspeCipher(key_b, rng=random.Random(4))
    sub = band(0, 0.0, 1000.0)  # matches everything under the right key
    enc_sub_b = cipher_b.encrypt_subscription(sub)
    mismatches = 0
    for i in range(20):
        pub = [float(i * 50), 0.0, 0.0, 0.0]
        enc_pub_a = cipher_a.encrypt_publication(pub)
        if match_encrypted(enc_pub_a, enc_sub_b) != sub.matches(pub):
            mismatches += 1
    assert mismatches > 0


@settings(max_examples=50, deadline=None)
@given(
    value=st.floats(0, 1000, allow_nan=False),
    constant=st.floats(0, 1000, allow_nan=False),
    op=st.sampled_from([Op.LT, Op.LE, Op.GT, Op.GE]),
)
def test_encrypted_decision_matches_plaintext_property(value, constant, op):
    # Skip adversarially close pairs where float tolerance legitimately
    # differs from exact comparison (the workload uses well-separated values).
    if 0 < abs(value - constant) < 1e-4 * max(1.0, abs(constant)):
        return
    key = AspeKey.generate(dimensions=2, rng=random.Random(5))
    cipher = AspeCipher(key, rng=random.Random(6))
    sub = PredicateSet.of(Predicate(0, op, constant))
    enc_sub = cipher.encrypt_subscription(sub)
    enc_pub = cipher.encrypt_publication([value, 0.0])
    assert match_encrypted(enc_pub, enc_sub) == sub.matches([value, 0.0])


class TestAspeLibrary:
    def test_store_match_remove(self, cipher):
        library = AspeLibrary()
        library.store(1, cipher.encrypt_subscription(band(0, 10.0, 20.0)))
        library.store(2, cipher.encrypt_subscription(band(0, 15.0, 30.0)))
        enc_pub = cipher.encrypt_publication([18.0, 0.0, 0.0, 0.0])
        assert sorted(library.match(enc_pub)) == [1, 2]
        library.remove(1)
        assert library.match(enc_pub) == [2]
        assert library.subscription_count() == 1

    def test_match_empty_library(self, cipher):
        library = AspeLibrary()
        assert library.match(cipher.encrypt_publication([0.0] * 4)) == []

    def test_type_checks(self, cipher):
        library = AspeLibrary()
        with pytest.raises(TypeError):
            library.store(1, band(0, 0.0, 1.0))
        with pytest.raises(TypeError):
            library.match([1.0, 2.0, 3.0, 4.0])

    def test_state_roundtrip(self, cipher):
        library = AspeLibrary()
        for i in range(5):
            library.store(i, cipher.encrypt_subscription(band(0, i * 10.0, i * 10.0 + 5.0)))
        clone = AspeLibrary()
        clone.import_state(library.export_state())
        enc_pub = cipher.encrypt_publication([12.0, 0.0, 0.0, 0.0])
        assert clone.match(enc_pub) == library.match(enc_pub)
        assert clone.state_size_bytes() == library.state_size_bytes()

    def test_library_agrees_with_pairwise_matching(self, cipher):
        rng = random.Random(11)
        library = AspeLibrary()
        subs = {}
        for sub_id in range(50):
            ps = band(rng.randrange(4), rng.uniform(0, 500), rng.uniform(500, 1000))
            subs[sub_id] = cipher.encrypt_subscription(ps)
            library.store(sub_id, subs[sub_id])
        for _ in range(20):
            enc_pub = cipher.encrypt_publication([rng.uniform(0, 1000) for _ in range(4)])
            expected = sorted(
                sub_id for sub_id, enc in subs.items() if match_encrypted(enc_pub, enc)
            )
            assert sorted(library.match(enc_pub)) == expected
