"""Tests for exact/sampled matching backends and the binomial sampler."""

import math
import random

import pytest

from repro.filtering import (
    BruteForceLibrary,
    ExactBackend,
    Op,
    Predicate,
    PredicateSet,
    SampledBackend,
    sample_binomial,
)


def band(attribute, low, high):
    return PredicateSet.of(
        Predicate(attribute, Op.GE, low), Predicate(attribute, Op.LE, high)
    )


class TestExactBackend:
    def test_match_returns_ids_and_count(self):
        backend = ExactBackend(BruteForceLibrary())
        backend.store(1, band(0, 0.0, 10.0))
        backend.store(2, band(0, 5.0, 15.0))
        result = backend.match(pub_id=1, payload=[7.0])
        assert result.count == 2
        assert sorted(result.ids) == [1, 2]

    def test_remove_and_count(self):
        backend = ExactBackend(BruteForceLibrary())
        backend.store(1, band(0, 0.0, 10.0))
        assert backend.subscription_count() == 1
        backend.remove(1)
        assert backend.subscription_count() == 0

    def test_state_roundtrip(self):
        backend = ExactBackend(BruteForceLibrary())
        backend.store(1, band(0, 0.0, 10.0))
        clone = ExactBackend(BruteForceLibrary())
        clone.import_state(backend.export_state())
        assert clone.match(0, [5.0]).ids == [1]


class TestSampledBackend:
    def test_count_statistics_follow_rate(self):
        backend = SampledBackend(matching_rate=0.01, seed=3)
        for i in range(10_000):
            backend.store(i, None)
        counts = [backend.match(p, None).count for p in range(300)]
        mean = sum(counts) / len(counts)
        # Binomial(10000, 0.01): mean 100, σ ≈ 10; 300 draws → ±2 on mean.
        assert 95 < mean < 105
        assert backend.match(0, None).ids is None

    def test_zero_rate_never_matches(self):
        backend = SampledBackend(matching_rate=0.0)
        backend.store(1, None)
        assert backend.match(5, None).count == 0

    def test_full_rate_matches_everything(self):
        backend = SampledBackend(matching_rate=1.0)
        for i in range(50):
            backend.store(i, None)
        assert backend.match(5, None).count == 50

    def test_invalid_rate_rejected(self):
        with pytest.raises(ValueError):
            SampledBackend(matching_rate=1.5)
        with pytest.raises(ValueError):
            SampledBackend(matching_rate=-0.1)

    def test_store_remove_and_state(self):
        backend = SampledBackend(matching_rate=0.5, seed=1)
        backend.store(1, "payload")
        backend.store(2, "payload")
        backend.remove(1)
        assert backend.subscription_count() == 1
        clone = SampledBackend(matching_rate=0.5, seed=1)
        clone.import_state(backend.export_state())
        assert clone.subscription_count() == 1

    def test_deterministic_given_seed_and_call_order(self):
        def run():
            backend = SampledBackend(matching_rate=0.1, seed=42)
            for i in range(100):
                backend.store(i, None)
            return [backend.match(p, None).count for p in range(20)]

        assert run() == run()


class TestBinomialSampler:
    def test_edge_cases(self):
        rng = random.Random(0)
        assert sample_binomial(rng, 0, 0.5) == 0
        assert sample_binomial(rng, 10, 0.0) == 0
        assert sample_binomial(rng, 10, 1.0) == 10

    def test_small_mean_exact_distribution(self):
        rng = random.Random(1)
        n, p, draws = 100, 0.02, 4000
        samples = [sample_binomial(rng, n, p) for _ in range(draws)]
        mean = sum(samples) / draws
        assert abs(mean - n * p) < 0.15
        assert all(0 <= s <= n for s in samples)

    def test_large_mean_normal_approximation(self):
        rng = random.Random(2)
        n, p, draws = 10_000, 0.5, 2000
        samples = [sample_binomial(rng, n, p) for _ in range(draws)]
        mean = sum(samples) / draws
        var = sum((s - mean) ** 2 for s in samples) / draws
        assert abs(mean - n * p) < 10
        assert abs(math.sqrt(var) - math.sqrt(n * p * (1 - p))) < 5
        assert all(0 <= s <= n for s in samples)
