"""Tests for key-range sharding with runtime split/merge."""

import random

import pytest

from repro.filtering import (
    AspeCipher,
    AspeKey,
    AspeLibrary,
    Op,
    Predicate,
    PredicateSet,
    ShardedAspeLibrary,
    StoreConfig,
)


@pytest.fixture(scope="module")
def cipher():
    key = AspeKey.generate(dimensions=4, rng=random.Random(42))
    return AspeCipher(key, rng=random.Random(17))


@pytest.fixture(scope="module")
def workload(cipher):
    """24 band subscriptions and 8 publications, pre-encrypted."""
    rng = random.Random(3)
    subs = {}
    for sub_id in range(24):
        low = rng.uniform(0, 80)
        subs[sub_id] = cipher.encrypt_subscription(
            PredicateSet.of(
                Predicate(0, Op.GE, low), Predicate(0, Op.LE, low + 20)
            )
        )
    pubs = [
        cipher.encrypt_publication([rng.uniform(0, 100), 0.0, 0.0, 0.0])
        for _ in range(8)
    ]
    return subs, pubs


def fill(library, subs, order=None):
    for sub_id in order if order is not None else subs:
        library.store(sub_id, subs[sub_id])


def test_sharded_matches_single_library_order(workload):
    subs, pubs = workload
    order = list(subs)
    random.Random(9).shuffle(order)
    single = AspeLibrary()
    sharded = ShardedAspeLibrary(store_config=StoreConfig(backend="chunked",
                                                          chunk_rows=8))
    fill(single, subs, order)
    fill(sharded, subs, order)
    sharded.split_shard()
    sharded.split_shard()
    assert sharded.shard_count() == 3
    for pub in pubs:
        assert sharded.match(pub) == single.match(pub)
    assert sharded.match_batch(pubs) == single.match_batch(pubs)
    assert sharded.subscription_count() == single.subscription_count()


def test_split_defaults_most_populated_median(workload):
    subs, _ = workload
    sharded = ShardedAspeLibrary()
    fill(sharded, subs)
    result = sharded.split_shard()
    assert result.op == "split"
    assert result.shards_before == 1 and result.shards_after == 2
    assert result.pivot_key == sorted(subs)[len(subs) // 2]
    bounds = sharded.shard_bounds()
    assert bounds[0][:2] == (None, result.pivot_key)
    assert bounds[1][:2] == (result.pivot_key, None)
    assert bounds[0][2] + bounds[1][2] == len(subs)
    # The next default split cuts whichever shard is now biggest.
    second = sharded.split_shard()
    assert second.shards_after == 3
    cuts = [b[0] for b in sharded.shard_bounds()[1:]]
    assert cuts == sorted(cuts)


def test_split_validation_errors(workload):
    subs, _ = workload
    sharded = ShardedAspeLibrary()
    with pytest.raises(ValueError, match="at least 2"):
        sharded.split_shard()  # empty
    fill(sharded, subs)
    with pytest.raises(ValueError, match="outside"):
        sharded.split_shard(index=3)
    with pytest.raises(ValueError, match="does not separate"):
        sharded.split_shard(pivot_key=min(subs))  # nothing would stay
    with pytest.raises(ValueError, match="does not separate"):
        sharded.split_shard(pivot_key=max(subs) + 1)


def test_ordered_load_split_is_boundary_detach(workload):
    subs, pubs = workload
    config = StoreConfig(backend="chunked", chunk_rows=8)
    sharded = ShardedAspeLibrary(store_config=config)
    sharded.store_many(sorted(subs.items()))  # key-ordered bulk load
    result = sharded.split_shard()
    # The moving rows are a contiguous suffix: at most the one chunk the
    # boundary cuts through is copied, never the whole moving set.
    assert result.rows_rewritten <= config.chunk_rows
    assert result.moved_subscriptions == 12
    single = AspeLibrary()
    fill(single, subs, sorted(subs))
    assert sharded.match_batch(pubs) == single.match_batch(pubs)


def test_interleaved_load_split_falls_back_to_rebuild(workload):
    subs, pubs = workload
    sharded = ShardedAspeLibrary()
    order = list(subs)
    random.Random(5).shuffle(order)
    fill(sharded, subs, order)
    result = sharded.split_shard()
    # No clean row boundary: every moving subscription's rows rewrite.
    assert result.rows_rewritten == 2 * result.moved_subscriptions
    single = AspeLibrary()
    fill(single, subs, order)
    assert sharded.match_batch(pubs) == single.match_batch(pubs)


def test_merge_adopts_chunks_zero_rewrites(workload):
    subs, pubs = workload
    sharded = ShardedAspeLibrary(store_config=StoreConfig(backend="chunked",
                                                          chunk_rows=8))
    sharded.store_many(sorted(subs.items()))
    sharded.split_shard()
    sharded.split_shard()
    baseline = sharded.match_batch(pubs)
    result = sharded.merge_shards(index=0)
    assert result.op == "merge"
    assert result.rows_rewritten == 0 and result.bytes_rewritten == 0
    assert result.shards_after == 2
    assert sharded.match_batch(pubs) == baseline
    # Bounds joined seamlessly: left keeps lo, absorbs right's hi.
    result = sharded.merge_shards()
    assert sharded.shard_count() == 1
    assert sharded.shard_bounds()[0][:2] == (None, None)
    assert sharded.match_batch(pubs) == baseline


def test_merge_default_picks_smallest_pair(workload):
    subs, _ = workload
    sharded = ShardedAspeLibrary()
    fill(sharded, subs)
    keys = sorted(subs)
    # Uneven thirds: [0, 4), [4, 8), [8, 24).
    sharded.split_shard(pivot_key=keys[8])
    sharded.split_shard(index=0, pivot_key=keys[4])
    result = sharded.merge_shards()
    assert result.shard_index == 0  # 4 + 4 < 4 + 16
    with pytest.raises(ValueError, match="outside"):
        sharded.merge_shards(index=1)
    sharded.merge_shards()
    with pytest.raises(ValueError, match="at least 2"):
        sharded.merge_shards()


def test_can_split_can_merge_transitions(workload):
    subs, _ = workload
    sharded = ShardedAspeLibrary()
    assert not sharded.can_split() and not sharded.can_merge()
    items = list(subs.items())
    sharded.store(*items[0])
    assert not sharded.can_split()
    sharded.store(*items[1])
    assert sharded.can_split()
    sharded.split_shard()
    assert sharded.can_merge()
    assert not sharded.can_split()  # both shards now hold one sub each


def test_remove_and_restore_across_shards(workload):
    subs, pubs = workload
    single = AspeLibrary()
    sharded = ShardedAspeLibrary()
    fill(single, subs)
    fill(sharded, subs)
    sharded.split_shard()
    victim = sorted(subs)[18]  # lives in the right shard
    single.remove(victim)
    sharded.remove(victim)
    assert sharded.match_batch(pubs) == single.match_batch(pubs)
    with pytest.raises(KeyError):
        sharded.remove(victim)
    # Re-storing moves the id to the end of the result order — in both.
    single.store(victim, subs[victim])
    sharded.store(victim, subs[victim])
    assert sharded.match_batch(pubs) == single.match_batch(pubs)


def test_export_import_roundtrip(workload):
    subs, pubs = workload
    sharded = ShardedAspeLibrary()
    order = list(subs)
    random.Random(11).shuffle(order)
    fill(sharded, subs, order)
    sharded.split_shard()
    state = sharded.export_state()
    restored = ShardedAspeLibrary()
    restored.import_state(state)
    assert restored.shard_count() == 2
    assert restored.match_batch(pubs) == sharded.match_batch(pubs)
    # A plain {sub_id: subscription} export (non-sharded peer) is adopted
    # as one full-range shard with its insertion order.
    single = AspeLibrary()
    fill(single, subs, order)
    adopter = ShardedAspeLibrary()
    adopter.import_state(single.export_state())
    assert adopter.shard_count() == 1
    assert adopter.match_batch(pubs) == single.match_batch(pubs)


def test_store_stats_aggregates_across_shards(workload):
    subs, _ = workload
    sharded = ShardedAspeLibrary(store_config=StoreConfig(backend="chunked",
                                                          chunk_rows=8))
    sharded.store_many(sorted(subs.items()))
    sharded.split_shard()
    stats = sharded.store_stats()
    assert stats["backend"] == "chunked"
    assert stats["shards"] == 2
    assert stats["rows"] == 2 * len(subs)
    assert stats["chunks"] >= 2
