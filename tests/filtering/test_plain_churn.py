"""Churn regression tests for the counting index's lazy removals.

`_AttributeIndex.discard_subscription` used to rebuild every op list on
each removal (O(total entries) per remove).  It now tombstones lazily and
purges only when dead entries outnumber live ones — these tests pin the
correctness of the tombstone filtering and the amortized purge behavior.
"""

import random

from repro.filtering import BruteForceLibrary, CountingIndexLibrary
from repro.filtering.plain import _AttributeIndex
from repro.filtering.predicates import Op, Predicate, PredicateSet


def random_filter(rng):
    predicates = []
    for _ in range(rng.randint(1, 3)):
        attribute = rng.randrange(4)
        op = rng.choice([Op.LT, Op.LE, Op.GT, Op.GE, Op.EQ])
        predicates.append(Predicate(attribute, op, rng.uniform(0.0, 1000.0)))
    return PredicateSet.of(*predicates)


def test_removal_is_lazy_until_dead_dominate():
    index = _AttributeIndex()
    for sub_id in range(100):
        index.add(float(sub_id), sub_id, 0, Op.LE)
    assert index.entry_count() == 100
    # Removing a minority tombstones without purging.
    for sub_id in range(40):
        index.discard_subscription(sub_id, 1)
    assert index.purge_count == 0
    assert index.entry_count() == 60
    # Tombstoned entries no longer appear in scans.
    hits = {sub_id for sub_id, _ in index.satisfied(0.0)}
    assert hits == set(range(40, 100))
    # Crossing the half-dead threshold triggers exactly one purge.
    for sub_id in range(40, 61):
        index.discard_subscription(sub_id, 1)
    assert index.purge_count == 1
    assert index.entry_count() == 39


def test_readding_tombstoned_id_purges_stale_entries():
    index = _AttributeIndex()
    index.add(10.0, 7, 0, Op.LE)
    index.add(20.0, 8, 0, Op.LE)
    index.discard_subscription(7, 1)
    # Re-adding id 7 with a different constant must not resurrect the old
    # 10.0 entry.
    index.add(500.0, 7, 0, Op.LE)
    hits = sorted(index.satisfied(15.0))
    assert hits == [(7, 0), (8, 0)]
    assert (7, 0) not in index.satisfied(600.0)


def test_counting_index_matches_brute_force_through_churn():
    rng = random.Random(31)
    filters = [random_filter(rng) for _ in range(400)]
    index = CountingIndexLibrary()
    reference = BruteForceLibrary()
    for sub_id, predicate_set in enumerate(filters):
        index.store(sub_id, predicate_set)
        reference.store(sub_id, predicate_set)
    stored = set(range(400))
    for step in range(2500):
        sub_id = rng.randrange(400)
        if sub_id in stored:
            index.remove(sub_id)
            reference.remove(sub_id)
            stored.discard(sub_id)
        else:
            index.store(sub_id, filters[sub_id])
            reference.store(sub_id, filters[sub_id])
            stored.add(sub_id)
        if step % 250 == 0:
            publication = [rng.uniform(0.0, 1000.0) for _ in range(4)]
            assert sorted(index.match(publication)) == sorted(
                reference.match(publication)
            )
    assert index.subscription_count() == len(stored)


def test_state_roundtrip_after_churn():
    rng = random.Random(32)
    library = CountingIndexLibrary()
    filters = [random_filter(rng) for _ in range(50)]
    for sub_id, predicate_set in enumerate(filters):
        library.store(sub_id, predicate_set)
    for sub_id in range(0, 50, 2):
        library.remove(sub_id)
    clone = CountingIndexLibrary()
    clone.import_state(library.export_state())
    publication = [rng.uniform(0.0, 1000.0) for _ in range(4)]
    assert sorted(clone.match(publication)) == sorted(library.match(publication))
