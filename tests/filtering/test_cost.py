"""Tests for the calibrated cost model."""

import pytest

from repro.filtering import CostModel


def test_match_cost_scales_linearly_with_subscriptions():
    model = CostModel()
    base = model.match_cost_s(0)
    cost_10k = model.match_cost_s(10_000)
    cost_20k = model.match_cost_s(20_000)
    assert cost_20k - base == pytest.approx(2 * (cost_10k - base))


def test_match_cost_quadratic_in_attributes():
    d4 = CostModel(attributes=4).match_cost_s(1000) - CostModel(attributes=4).m_base_s
    d8 = CostModel(attributes=8).match_cost_s(1000) - CostModel(attributes=8).m_base_s
    assert d8 == pytest.approx(4 * d4)


def test_calibration_reproduces_figure6_capacity():
    """48 matching cores at 1.14 µs/op sustain ≈ 422 pub/s with 100 K subs."""
    model = CostModel()
    cores = 48
    subs_per_slice = 100_000 / 16
    slices = 16
    cost_per_pub = slices * model.match_cost_s(int(subs_per_slice))
    max_rate = cores / cost_per_pub
    assert 380 < max_rate < 470


def test_plain_matching_is_cheaper_than_encrypted():
    model = CostModel()
    assert model.match_cost_s(1000, encrypted=False) < model.match_cost_s(1000)


def test_state_and_message_sizes():
    model = CostModel()
    assert model.m_state_bytes(0) == model.slice_base_bytes
    assert (
        model.m_state_bytes(100) - model.m_state_bytes(0)
        == 100 * model.subscription_bytes
    )
    assert model.match_list_bytes(0) == model.frame_bytes
    assert model.match_list_bytes(10) == model.frame_bytes + 10 * model.match_entry_bytes


def test_migration_serialization_cost():
    model = CostModel()
    assert model.migration_serialize_s(0) == 0.0
    assert model.migration_serialize_s(50_000) == pytest.approx(
        50_000 * model.migration_serialize_sub_s
    )
