"""Property suite: every store backend is observationally identical.

Random churn sequences (store / remove / bulk-store, with the compaction
threshold lowered so compactions actually fire) drive a dense, a chunked
and an mmap :class:`AspeLibrary` in lockstep — plus an mmap
:class:`ShardedAspeLibrary` that additionally splits and merges shards
mid-sequence.  After every operation the libraries must agree on match
results, and the three ``AspeLibrary`` variants must walk *identical*
``packed_view`` epoch/generation sequences (the contract the parallel
executors cache on).
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.filtering import (
    AspeCipher,
    AspeKey,
    AspeLibrary,
    Op,
    Predicate,
    PredicateSet,
    ShardedAspeLibrary,
    StoreConfig,
)

_KEY = AspeKey.generate(dimensions=2, rng=random.Random(202))
_CIPHER = AspeCipher(_KEY, rng=random.Random(303))
_RNG = random.Random(404)
_SUBS = {
    sub_id: _CIPHER.encrypt_subscription(
        PredicateSet.of(
            Predicate(0, Op.GE, low := _RNG.uniform(0, 80)),
            Predicate(0, Op.LE, low + 25),
        )
    )
    for sub_id in range(10)
}
_PUBS = [
    _CIPHER.encrypt_publication([_RNG.uniform(0, 100), 0.0]) for _ in range(6)
]

# Low thresholds so tiny sequences cross chunk and compaction boundaries.
_CONFIGS = {
    "dense": StoreConfig(backend="dense", compact_dead_ratio=0.3),
    "chunked": StoreConfig(backend="chunked", chunk_rows=3,
                           compact_dead_ratio=0.3),
    "mmap": StoreConfig(backend="mmap", chunk_rows=3,
                        memory_budget_mb=0.0002,  # ~2 chunks at width 5
                        compact_dead_ratio=0.3),
}

ops = st.lists(
    st.one_of(
        st.tuples(st.just("store"), st.integers(0, 9)),
        st.tuples(st.just("remove"), st.integers(0, 9)),
        st.tuples(st.just("bulk"), st.integers(0, 9)),
        st.tuples(st.just("split"), st.integers(0, 9)),
        st.tuples(st.just("merge"), st.integers(0, 9)),
        st.tuples(st.just("match"), st.integers(0, 5)),
    ),
    min_size=1,
    max_size=40,
)


@given(ops)
@settings(max_examples=40, deadline=None)
def test_backends_and_shards_agree_under_churn(sequence):
    libraries = {
        name: AspeLibrary(store_config=config)
        for name, config in _CONFIGS.items()
    }
    sharded = ShardedAspeLibrary(store_config=_CONFIGS["mmap"])
    stored = set()

    def check():
        results = [lib.match_batch(_PUBS) for lib in libraries.values()]
        results.append(sharded.match_batch(_PUBS))
        assert all(r == results[0] for r in results)
        marks = {
            (lib.packed_view().epoch, lib.packed_view().generation)
            for lib in libraries.values()
        }
        assert len(marks) == 1, "epoch/generation diverged across backends"

    for op, arg in sequence:
        if op == "store":
            for lib in libraries.values():
                lib.store(arg, _SUBS[arg])
            sharded.store(arg, _SUBS[arg])
            stored.add(arg)
        elif op == "remove":
            if arg not in stored:
                continue
            for lib in libraries.values():
                lib.remove(arg)
            sharded.remove(arg)
            stored.discard(arg)
        elif op == "bulk":
            items = [(i, _SUBS[i]) for i in range(arg, min(arg + 4, 10))]
            for lib in libraries.values():
                lib.store_many(items)
            sharded.store_many(items)
            stored.update(i for i, _ in items)
        elif op == "split":
            if sharded.can_split():
                sharded.split_shard()
        elif op == "merge":
            if sharded.can_merge():
                sharded.merge_shards()
        elif op == "match":
            results = [lib.match(_PUBS[arg]) for lib in libraries.values()]
            results.append(sharded.match(_PUBS[arg]))
            assert all(r == results[0] for r in results)
            continue
        check()

    # Packed views must also materialize bit-identical row data.
    import numpy as np

    views = [lib.packed_view() for lib in libraries.values()]
    base = views[0]
    for view in views[1:]:
        assert view.rows == base.rows
        assert view.ids == base.ids
        if base.matrix is None:
            assert view.matrix is None
            continue
        assert np.array_equal(view.matrix[: view.rows], base.matrix[: base.rows])
        assert np.array_equal(view.strict[: view.rows], base.strict[: base.rows])
        assert np.array_equal(
            view.tol_signed[: view.rows], base.tol_signed[: base.rows]
        )
        assert np.array_equal(view.starts, base.starts)
        assert np.array_equal(view.stops, base.stops)


@given(ops)
@settings(max_examples=25, deadline=None)
def test_library_split_merge_preserves_epoch_lockstep(sequence):
    """detach_suffix/absorb (the shard fast paths) on churned libraries
    keep chunked and mmap behaviourally identical to a rebuilt dense one."""
    chunked = AspeLibrary(store_config=_CONFIGS["chunked"])
    mmap_lib = AspeLibrary(store_config=_CONFIGS["mmap"])
    stored = []
    for op, arg in sequence:
        if op in ("store", "bulk") and arg not in stored:
            chunked.store(arg, _SUBS[arg])
            mmap_lib.store(arg, _SUBS[arg])
            stored.append(arg)
        elif op == "remove" and arg in stored:
            chunked.remove(arg)
            mmap_lib.remove(arg)
            stored.remove(arg)
    if len(stored) < 2:
        return
    pivot = sorted(stored)[len(stored) // 2]
    moving = [i for i in stored if i >= pivot]
    for lib in (chunked, mmap_lib):
        boundary = ShardedAspeLibrary._span_boundary(lib, moving)
        if boundary is not None:
            other, _ = lib.detach_suffix(boundary, moving)
        else:
            other = AspeLibrary(store_config=lib.store_config)
            items = [(i, lib.get_subscription(i)) for i in moving]
            for i in moving:
                lib.remove(i)
            other.store_many(items)
        lib.absorb(other)  # merge it straight back
    dense = AspeLibrary()
    for i in stored:
        dense.store(i, _SUBS[i])
    assert chunked.match_batch(_PUBS) == mmap_lib.match_batch(_PUBS)
    assert chunked.subscription_count() == mmap_lib.subscription_count()
    assert (chunked._epoch, chunked._generation) == (
        mmap_lib._epoch,
        mmap_lib._generation,
    )
    # Detach+absorb reorders rows (moving ids land behind staying ids), so
    # compare match *sets* per publication against an untouched library.
    assert [sorted(ids) for ids in chunked.match_batch(_PUBS)] == [
        sorted(ids) for ids in dense.match_batch(_PUBS)
    ]
