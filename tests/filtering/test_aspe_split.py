"""Tests for the split-dimension ASPE variant."""

import random

import numpy as np
import pytest

from repro.filtering import (
    AspeLibrary,
    AspeSplitCipher,
    AspeSplitKey,
    Op,
    Predicate,
    PredicateSet,
    match_encrypted,
)


@pytest.fixture
def cipher():
    key = AspeSplitKey.generate(dimensions=4, rng=random.Random(21))
    return AspeSplitCipher(key, rng=random.Random(22))


def band(attribute, low, high):
    return PredicateSet.of(
        Predicate(attribute, Op.GE, low), Predicate(attribute, Op.LE, high)
    )


def test_key_shapes_and_split_bits():
    key = AspeSplitKey.generate(dimensions=4, rng=random.Random(1))
    assert key.matrix_a.shape == (7, 7)
    assert key.matrix_b.shape == (7, 7)
    assert len(key.split_bits) == 7
    assert all(bit in (0, 1) for bit in key.split_bits)
    assert key.cipher_dimensions == 14
    assert np.allclose(key.matrix_a @ key.inverse_a, np.eye(7), atol=1e-9)
    with pytest.raises(ValueError):
        AspeSplitKey.generate(dimensions=0)


def test_ciphertexts_are_concatenated_halves(cipher):
    enc = cipher.encrypt_publication([1.0, 2.0, 3.0, 4.0])
    assert enc.vector.shape == (14,)
    sub = cipher.encrypt_subscription(band(0, 0.0, 10.0))
    assert all(p.vector.shape == (14,) for p in sub.predicates)


def test_match_agrees_with_plaintext(cipher):
    rng = random.Random(5)
    for _ in range(200):
        attribute = rng.randrange(4)
        op = rng.choice([Op.LT, Op.LE, Op.GT, Op.GE])
        constant = rng.uniform(0.0, 1000.0)
        sub = PredicateSet.of(Predicate(attribute, op, constant))
        enc_sub = cipher.encrypt_subscription(sub)
        attrs = [rng.uniform(0.0, 1000.0) for _ in range(4)]
        enc_pub = cipher.encrypt_publication(attrs)
        assert match_encrypted(enc_pub, enc_sub) == sub.matches(attrs)


def test_conjunctions_and_equality(cipher):
    sub = PredicateSet.of(
        Predicate(0, Op.GE, 10.0), Predicate(1, Op.EQ, 5.0)
    )
    enc_sub = cipher.encrypt_subscription(sub)
    assert len(enc_sub.predicates) == 3  # GE + (GE, LE) for the equality
    assert match_encrypted(cipher.encrypt_publication([10.0, 5.0, 0.0, 0.0]), enc_sub)
    assert not match_encrypted(cipher.encrypt_publication([10.0, 5.1, 0.0, 0.0]), enc_sub)


def test_works_with_aspe_library(cipher):
    library = AspeLibrary()
    library.store(1, cipher.encrypt_subscription(band(0, 100.0, 200.0)))
    library.store(2, cipher.encrypt_subscription(band(1, 0.0, 50.0)))
    enc = cipher.encrypt_publication([150.0, 25.0, 0.0, 0.0])
    assert sorted(library.match(enc)) == [1, 2]
    enc = cipher.encrypt_publication([250.0, 25.0, 0.0, 0.0])
    assert library.match(enc) == [2]


def test_split_randomizes_repeated_encryptions(cipher):
    a = cipher.encrypt_publication([1.0, 2.0, 3.0, 4.0]).vector
    b = cipher.encrypt_publication([1.0, 2.0, 3.0, 4.0]).vector
    assert not np.allclose(a, b)


def test_halves_are_not_individually_meaningful(cipher):
    """A single half's inner product does not decide the comparison —
    only the sum over both halves does (the split hides the linear
    structure a known-plaintext attacker would exploit)."""
    sub = cipher.encrypt_subscription(PredicateSet.of(Predicate(0, Op.GT, 500.0)))
    predicate = sub.predicates[0]
    mismatches = 0
    rng = random.Random(9)
    for _ in range(50):
        value = rng.uniform(0.0, 1000.0)
        enc = cipher.encrypt_publication([value, 0.0, 0.0, 0.0])
        half_product = float(enc.vector[:7] @ predicate.vector[:7])
        true_decision = value > 500.0
        if (half_product > 0) != true_decision:
            mismatches += 1
    assert mismatches > 5  # half-products are essentially uninformative


def test_different_split_keys_do_not_interoperate():
    cipher_a = AspeSplitCipher(
        AspeSplitKey.generate(4, rng=random.Random(1)), rng=random.Random(2)
    )
    cipher_b = AspeSplitCipher(
        AspeSplitKey.generate(4, rng=random.Random(3)), rng=random.Random(4)
    )
    sub = band(0, 0.0, 1000.0)  # matches everything under the right key
    enc_sub = cipher_b.encrypt_subscription(sub)
    mismatches = 0
    for i in range(20):
        attrs = [float(i * 50), 0.0, 0.0, 0.0]
        if match_encrypted(cipher_a.encrypt_publication(attrs), enc_sub) != sub.matches(attrs):
            mismatches += 1
    assert mismatches > 0


def test_wrong_dimension_rejected(cipher):
    with pytest.raises(ValueError):
        cipher.encrypt_publication([1.0])
    with pytest.raises(ValueError):
        cipher.encrypt_predicate(Predicate(7, Op.LT, 1.0))
