"""Batch/single equivalence of `match_batch` across all filtering libraries.

The contract (see `FilteringLibrary.match_batch`): batch results are
defined to equal `[library.match(p) for p in publications]` — same ids,
same per-publication order.  ASPE overrides the default with a
matrix-matrix kernel, so its equivalence is the interesting case; the
plaintext libraries exercise the shared default.
"""

import random

import pytest

from repro.filtering import (
    AspeCipher,
    AspeKey,
    AspeLibrary,
    BruteForceLibrary,
    CountingIndexLibrary,
    ExactBackend,
    Op,
    Predicate,
    PredicateSet,
)


def band(attribute, low, high):
    return PredicateSet.of(
        Predicate(attribute, Op.GE, low), Predicate(attribute, Op.LE, high)
    )


def random_filter(rng):
    predicates = []
    for _ in range(rng.randint(1, 3)):
        attribute = rng.randrange(4)
        op = rng.choice([Op.LT, Op.LE, Op.GT, Op.GE, Op.EQ])
        predicates.append(Predicate(attribute, op, rng.uniform(0.0, 1000.0)))
    return PredicateSet.of(*predicates)


def make_plain(library_cls, filters):
    library = library_cls()
    for sub_id, predicate_set in enumerate(filters):
        library.store(sub_id, predicate_set)
    return library


@pytest.fixture
def cipher():
    key = AspeKey.generate(dimensions=4, rng=random.Random(3))
    return AspeCipher(key, rng=random.Random(4))


@pytest.mark.parametrize("library_cls", [BruteForceLibrary, CountingIndexLibrary])
def test_plaintext_batch_equals_single(library_cls):
    rng = random.Random(11)
    filters = [random_filter(rng) for _ in range(150)]
    library = make_plain(library_cls, filters)
    publications = [[rng.uniform(0.0, 1000.0) for _ in range(4)] for _ in range(25)]
    assert library.match_batch(publications) == [
        library.match(publication) for publication in publications
    ]


def test_aspe_batch_equals_single(cipher):
    rng = random.Random(12)
    library = AspeLibrary()
    for sub_id in range(150):
        library.store(sub_id, cipher.encrypt_subscription(random_filter(rng)))
    publications = [
        cipher.encrypt_publication([rng.uniform(0.0, 1000.0) for _ in range(4)])
        for _ in range(25)
    ]
    assert library.match_batch(publications) == [
        library.match(publication) for publication in publications
    ]


def test_aspe_batch_equals_single_after_churn(cipher):
    rng = random.Random(13)
    library = AspeLibrary()
    filters = [cipher.encrypt_subscription(random_filter(rng)) for _ in range(120)]
    for sub_id, encrypted in enumerate(filters):
        library.store(sub_id, encrypted)
    for _ in range(600):  # drive tombstoning and at least one compaction
        sub_id = rng.randrange(120)
        if sub_id in library.export_state():
            library.remove(sub_id)
        else:
            library.store(sub_id, filters[sub_id])
    publications = [
        cipher.encrypt_publication([rng.uniform(0.0, 1000.0) for _ in range(4)])
        for _ in range(10)
    ]
    assert library.match_batch(publications) == [
        library.match(publication) for publication in publications
    ]


@pytest.mark.parametrize("library_cls", [BruteForceLibrary, CountingIndexLibrary])
def test_empty_library_plaintext(library_cls):
    library = library_cls()
    publications = [[1.0, 2.0, 3.0, 4.0], [5.0, 6.0, 7.0, 8.0]]
    assert library.match_batch(publications) == [[], []]
    assert library.match_batch([]) == []


def test_empty_library_aspe(cipher):
    library = AspeLibrary()
    publications = [cipher.encrypt_publication([0.0] * 4) for _ in range(2)]
    assert library.match_batch(publications) == [[], []]
    assert library.match_batch([]) == []


def test_single_subscription_edge(cipher):
    plain = band(0, 10.0, 20.0)
    inside, outside = [15.0, 0.0, 0.0, 0.0], [25.0, 0.0, 0.0, 0.0]
    for library, pubs in [
        (make_plain(BruteForceLibrary, [plain]), [inside, outside]),
        (make_plain(CountingIndexLibrary, [plain]), [inside, outside]),
    ]:
        assert library.match_batch(pubs) == [[0], []]
    library = AspeLibrary()
    library.store(0, cipher.encrypt_subscription(plain))
    encrypted_pubs = [cipher.encrypt_publication(p) for p in (inside, outside)]
    assert library.match_batch(encrypted_pubs) == [[0], []]


def test_aspe_batch_type_check(cipher):
    library = AspeLibrary()
    library.store(0, cipher.encrypt_subscription(band(0, 0.0, 1.0)))
    with pytest.raises(TypeError):
        library.match_batch([[1.0, 2.0, 3.0, 4.0]])


def test_exact_backend_batch_matches_loop(cipher):
    rng = random.Random(14)
    library = AspeLibrary()
    for sub_id in range(50):
        library.store(sub_id, cipher.encrypt_subscription(random_filter(rng)))
    backend = ExactBackend(library)
    pub_ids = list(range(8))
    payloads = [
        cipher.encrypt_publication([rng.uniform(0.0, 1000.0) for _ in range(4)])
        for _ in pub_ids
    ]
    batched = backend.match_batch(pub_ids, payloads)
    singles = [backend.match(i, p) for i, p in zip(pub_ids, payloads)]
    assert [(r.count, r.ids) for r in batched] == [(r.count, r.ids) for r in singles]
