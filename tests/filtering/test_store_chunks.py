"""Unit tests for the chunked / memory-mapped packed-row store."""

import os

import numpy as np
import pytest

from repro.filtering.store import ChunkedMatrixStore, StoreConfig


def make_store(backend="chunked", chunk_rows=4, budget_mb=0.0, spill_dir=None):
    return ChunkedMatrixStore(
        StoreConfig(
            backend=backend,
            chunk_rows=chunk_rows,
            memory_budget_mb=budget_mb,
            spill_dir=spill_dir,
        )
    )


def rows(count, width=3, base=0.0):
    matrix = (
        np.arange(count * width, dtype=np.float64).reshape(count, width) + base
    )
    strict = (np.arange(count) % 2).astype(bool)
    tol_base = np.arange(count, dtype=np.float64) + base
    tol_signed = -tol_base
    return matrix, strict, tol_base, tol_signed


def contents(store):
    """Concatenated (matrix, strict, tol_base, tol_signed, alive)."""
    parts = list(store.blocks())
    if not parts:
        return None
    return (
        np.concatenate([b.matrix for b in parts]),
        np.concatenate([b.strict for b in parts]),
        np.concatenate([b.tol_base for b in parts]),
        np.concatenate([b.tol_signed for b in parts]),
        np.concatenate([b.alive for b in parts]),
    )


@pytest.mark.parametrize("backend", ["chunked", "mmap"])
def test_append_spans_and_blocks_roundtrip(backend, tmp_path):
    store = make_store(backend, chunk_rows=4, spill_dir=str(tmp_path))
    m, s, tb, ts = rows(6)
    assert store.append(m, s, tb, ts) == (0, 6)
    m2, s2, tb2, ts2 = rows(3, base=100.0)
    assert store.append(m2, s2, tb2, ts2) == (6, 9)
    assert store.rows == 9
    assert store.chunk_count == 3  # 4 + 4 + 1
    got = contents(store)
    np.testing.assert_array_equal(got[0], np.concatenate([m, m2]))
    np.testing.assert_array_equal(got[1], np.concatenate([s, s2]))
    np.testing.assert_array_equal(got[2], np.concatenate([tb, tb2]))
    np.testing.assert_array_equal(got[3], np.concatenate([ts, ts2]))
    assert got[4].all()
    # Blocks tile [0, rows) without gaps.
    spans = [(b.start, b.stop) for b in store.blocks()]
    assert spans[0][0] == 0 and spans[-1][1] == 9
    assert all(a[1] == b[0] for a, b in zip(spans, spans[1:]))


def test_width_mismatch_rejected():
    store = make_store()
    store.append(*rows(2, width=3))
    with pytest.raises(ValueError, match="width"):
        store.append(*rows(2, width=5))


def test_mark_dead_touches_only_flags():
    store = make_store(chunk_rows=4)
    m, s, tb, ts = rows(10)
    store.append(m, s, tb, ts)
    store.mark_dead(3, 7)  # crosses the first chunk boundary
    assert store.dead_rows == 4
    got = contents(store)
    np.testing.assert_array_equal(got[0], m)  # row data untouched
    expected_alive = np.ones(10, dtype=bool)
    expected_alive[3:7] = False
    np.testing.assert_array_equal(got[4], expected_alive)


@pytest.mark.parametrize("backend", ["chunked", "mmap"])
def test_compact_preserves_live_order_and_remaps(backend, tmp_path):
    store = make_store(backend, chunk_rows=4, spill_dir=str(tmp_path))
    m, s, tb, ts = rows(12)
    store.append(m, s, tb, ts)
    store.mark_dead(0, 4)  # whole first chunk dies
    store.mark_dead(5, 7)
    offsets = store.compact()
    assert store.rows == 6
    assert store.dead_rows == 0
    keep = np.array([4, 7, 8, 9, 10, 11])
    got = contents(store)
    np.testing.assert_array_equal(got[0], m[keep])
    assert got[4].all()
    # The returned prefix sums remap old span boundaries like the dense
    # path: boundary b -> offsets[b].
    assert offsets.shape == (13,)
    assert offsets[4] == 0 and offsets[5] == 1 and offsets[12] == 6
    # The all-dead chunk was dropped outright.
    assert store.chunk_count == 2


def test_mmap_eviction_respects_budget_and_refaults(tmp_path):
    # chunk = 4 rows x 5 cols x 8 B = 160 B; budget of 400 B holds 2.
    store = make_store("mmap", chunk_rows=4, budget_mb=400 / (1024 * 1024),
                       spill_dir=str(tmp_path))
    m, s, tb, ts = rows(16)
    store.append(m, s, tb, ts)
    assert store.chunk_count == 4
    assert store.resident_chunks <= 2
    assert store.eviction_count > 0
    before = store.fault_count
    got = contents(store)  # streams every chunk, faulting evicted ones in
    np.testing.assert_array_equal(got[0], m)
    assert store.fault_count > before
    assert store.resident_bytes <= 400
    # A freshly appended chunk is tracked before the next eviction pass,
    # so the peak may overshoot the budget by at most one chunk.
    assert store.resident_peak_bytes <= 2 * 160 + 160
    stats = store.stats()
    assert stats["backend"] == "mmap"
    assert stats["faults"] == store.fault_count


def test_budget_below_one_chunk_never_evicts_touched_chunk(tmp_path):
    store = make_store("mmap", chunk_rows=4, budget_mb=1 / (1024 * 1024),
                       spill_dir=str(tmp_path))
    m, s, tb, ts = rows(9)
    store.append(m, s, tb, ts)
    got = contents(store)
    np.testing.assert_array_equal(got[0], m)
    # The chunk being read is pinned; the floor is one resident chunk.
    assert store.resident_chunks >= 1


@pytest.mark.parametrize("backend", ["chunked", "mmap"])
def test_adopt_moves_chunks_without_rewriting(backend, tmp_path):
    left = make_store(backend, chunk_rows=4, spill_dir=str(tmp_path))
    right = make_store(backend, chunk_rows=4, spill_dir=str(tmp_path))
    ml, *restl = rows(5)
    mr, *restr = rows(6, base=50.0)
    left.append(ml, *restl)
    right.append(mr, *restr)
    moved_chunks = list(right._chunks)
    base = left.adopt(right)
    assert base == 5
    assert left.rows == 11
    assert right.rows == 0 and right.chunk_count == 0
    # The very same chunk objects changed owner — no row was copied.
    assert left._chunks[-len(moved_chunks):] == moved_chunks
    got = contents(left)
    np.testing.assert_array_equal(got[0], np.concatenate([ml, mr]))
    if backend == "mmap":
        # Spill files were renamed into the adopter's directory.
        for chunk in moved_chunks:
            assert os.path.dirname(chunk.path) == left._dir
            assert os.path.exists(chunk.path)


@pytest.mark.parametrize("backend", ["chunked", "mmap"])
def test_split_at_chunk_boundary_copies_nothing(backend, tmp_path):
    store = make_store(backend, chunk_rows=4, spill_dir=str(tmp_path))
    m, s, tb, ts = rows(12)
    store.append(m, s, tb, ts)
    suffix_chunks = store._chunks[1:]
    other, copied = store.split_at(4)
    assert copied == 0
    assert store.rows == 4 and other.rows == 8
    assert other._chunks == suffix_chunks  # adopted, not copied
    np.testing.assert_array_equal(contents(store)[0], m[:4])
    np.testing.assert_array_equal(contents(other)[0], m[4:])


def test_split_at_mid_chunk_copies_only_the_cut_chunk():
    store = make_store("chunked", chunk_rows=4)
    m, s, tb, ts = rows(12)
    store.append(m, s, tb, ts)
    store.mark_dead(5, 6)  # a tombstone that must survive the cut
    other, copied = store.split_at(6)
    assert copied == 2  # rows 6..7 of the cut chunk; chunk 3 just moved
    assert store.rows == 6 and other.rows == 6
    assert store.dead_rows == 1 and other.dead_rows == 0
    np.testing.assert_array_equal(contents(store)[0], m[:6])
    np.testing.assert_array_equal(contents(other)[0], m[6:])
    assert not contents(store)[4][5]  # tombstone stayed with the prefix


def test_split_at_bounds_checked():
    store = make_store()
    store.append(*rows(4))
    with pytest.raises(ValueError):
        store.split_at(5)
    other, copied = store.split_at(4)  # empty suffix is legal
    assert copied == 0 and other.rows == 0


def test_clear_unlinks_spill_files(tmp_path):
    store = make_store("mmap", chunk_rows=4, spill_dir=str(tmp_path))
    store.append(*rows(10))
    paths = [chunk.path for chunk in store._chunks]
    assert all(os.path.exists(p) for p in paths)
    store.clear()
    assert store.rows == 0 and store.chunk_count == 0
    assert store.resident_bytes == 0
    assert not any(os.path.exists(p) for p in paths)


def test_from_env_rejects_bad_values(monkeypatch):
    monkeypatch.setenv("REPRO_STORE_CHUNK_ROWS", "lots")
    with pytest.raises(ValueError, match="REPRO_STORE_CHUNK_ROWS"):
        StoreConfig.from_env()
    monkeypatch.setenv("REPRO_STORE_CHUNK_ROWS", "1024")
    monkeypatch.setenv("REPRO_STORE_BACKEND", "tape")
    with pytest.raises(ValueError, match="store_backend"):
        StoreConfig.from_env()


def test_config_validation():
    with pytest.raises(ValueError):
        StoreConfig(chunk_rows=0)
    with pytest.raises(ValueError):
        StoreConfig(memory_budget_mb=-1)
    with pytest.raises(ValueError):
        StoreConfig(compact_dead_ratio=0.0)
    with pytest.raises(ValueError):
        StoreConfig(compact_dead_ratio=1.5)
    assert StoreConfig(compact_dead_ratio=1.0).compact_dead_ratio == 1.0
