"""Pickling contract of `AspeLibrary`: no scratch state in the blob.

Packed snapshots shipped to matching workers and migration state copies
both serialize the library, so `__getstate__` must exclude everything
recomputable — workspace buffers, the span index, the tolerance caches —
and trim the amortized-doubling buffers to the rows in use.  These tests
pin that contract: matching activity must not grow the pickle, and a
restored library must decide identically.
"""

import pickle
import random

import pytest

from repro.filtering import (
    AspeCipher,
    AspeKey,
    AspeLibrary,
    Op,
    Predicate,
    PredicateSet,
)


@pytest.fixture
def cipher():
    key = AspeKey.generate(dimensions=4, rng=random.Random(42))
    return AspeCipher(key, rng=random.Random(17))


def random_filter(rng):
    predicates = []
    for _ in range(rng.randint(1, 3)):
        attribute = rng.randrange(4)
        op = rng.choice([Op.LT, Op.LE, Op.GT, Op.GE, Op.EQ])
        predicates.append(Predicate(attribute, op, rng.uniform(0.0, 100.0)))
    return PredicateSet.of(*predicates)


def build_library(cipher, count=60, seed=3):
    rng = random.Random(seed)
    library = AspeLibrary()
    for sub_id in range(count):
        library.store(sub_id, cipher.encrypt_subscription(random_filter(rng)))
    return library, rng


def test_matching_does_not_grow_the_pickle(cipher):
    library, rng = build_library(cipher)
    before = len(pickle.dumps(library, protocol=pickle.HIGHEST_PROTOCOL))
    # A large batch allocates B x rows workspace buffers — scratch that a
    # naive pickle would serialize at many times the matrix size.
    batch = [
        cipher.encrypt_publication([rng.uniform(0.0, 100.0) for _ in range(4)])
        for _ in range(64)
    ]
    library.match_batch(batch)
    assert library._ws, "expected match_batch to populate workspace buffers"
    after = len(pickle.dumps(library, protocol=pickle.HIGHEST_PROTOCOL))
    assert after == before


def test_getstate_drops_scratch_and_trims_buffers(cipher):
    library, rng = build_library(cipher)
    library.match_batch(
        [cipher.encrypt_publication([1.0, 2.0, 3.0, 4.0])]
    )
    library.match(cipher.encrypt_publication([4.0, 3.0, 2.0, 1.0]))
    state = library.__getstate__()
    assert state["_ws"] == {}
    assert state["_index"] is None
    assert state["_tol_base"] is None
    assert state["_tol_signed"] is None
    # Amortized-doubling tails are trimmed to the rows actually in use.
    assert state["_matrix"].shape[0] == library._rows
    assert state["_strict"].shape[0] == library._rows
    assert state["_alive"].shape[0] == library._rows


def test_roundtrip_decides_identically(cipher):
    library, rng = build_library(cipher)
    # Churn so tombstones (and possibly a compaction) are in the state.
    for sub_id in range(0, 30, 2):
        library.remove(sub_id)
    restored = pickle.loads(pickle.dumps(library, protocol=pickle.HIGHEST_PROTOCOL))
    batch = [
        cipher.encrypt_publication([rng.uniform(0.0, 100.0) for _ in range(4)])
        for _ in range(32)
    ]
    assert restored.match_batch(batch) == library.match_batch(batch)
    for publication in batch[:8]:
        assert restored.match(publication) == library.match(publication)
    assert restored.subscription_count() == library.subscription_count()


def test_restored_library_keeps_serving_churn(cipher):
    library, rng = build_library(cipher, count=20)
    restored = pickle.loads(pickle.dumps(library))
    # The restored copy accepts new stores/removes and stays consistent
    # with the original receiving the same mutations.
    extra = cipher.encrypt_subscription(random_filter(rng))
    for target in (library, restored):
        target.store(100, extra)
        target.remove(3)
    batch = [
        cipher.encrypt_publication([rng.uniform(0.0, 100.0) for _ in range(4)])
        for _ in range(8)
    ]
    assert restored.match_batch(batch) == library.match_batch(batch)
