"""Unit and property tests for the plaintext filtering libraries."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.filtering import (
    BruteForceLibrary,
    CountingIndexLibrary,
    Op,
    Predicate,
    PredicateSet,
)


@pytest.fixture(params=[BruteForceLibrary, CountingIndexLibrary])
def library(request):
    return request.param()


def band(attribute, low, high):
    return PredicateSet.of(
        Predicate(attribute, Op.GE, low), Predicate(attribute, Op.LE, high)
    )


def test_store_and_match_single(library):
    library.store(1, band(0, 10.0, 20.0))
    assert library.match([15.0]) == [1]
    assert library.match([25.0]) == []
    assert library.subscription_count() == 1


def test_match_multiple_subscriptions(library):
    library.store(1, band(0, 0.0, 50.0))
    library.store(2, band(0, 40.0, 100.0))
    library.store(3, band(1, 0.0, 10.0))
    matched = sorted(library.match([45.0, 99.0]))
    assert matched == [1, 2]


def test_remove_subscription(library):
    library.store(1, band(0, 0.0, 100.0))
    library.remove(1)
    assert library.match([50.0]) == []
    assert library.subscription_count() == 0
    with pytest.raises(KeyError):
        library.remove(1)


def test_store_replaces_existing(library):
    library.store(1, band(0, 0.0, 10.0))
    library.store(1, band(0, 20.0, 30.0))
    assert library.match([5.0]) == []
    assert library.match([25.0]) == [1]
    assert library.subscription_count() == 1


def test_store_rejects_wrong_type(library):
    with pytest.raises(TypeError):
        library.store(1, "not a predicate set")


def test_state_export_import_roundtrip(library):
    library.store(1, band(0, 0.0, 10.0))
    library.store(2, band(1, 5.0, 6.0))
    state = library.export_state()
    other = type(library)()
    other.import_state(state)
    assert sorted(other.match([5.0, 5.5])) == [1, 2]
    assert other.state_size_bytes() == library.state_size_bytes()


def test_state_size_grows_with_subscriptions(library):
    empty = library.state_size_bytes()
    for i in range(10):
        library.store(i, band(0, float(i), float(i + 1)))
    assert library.state_size_bytes() > empty


def test_strict_and_equality_operators(library):
    library.store(1, PredicateSet.of(Predicate(0, Op.GT, 10.0)))
    library.store(2, PredicateSet.of(Predicate(0, Op.LT, 10.0)))
    library.store(3, PredicateSet.of(Predicate(0, Op.EQ, 10.0)))
    assert library.match([10.0]) == [3]
    assert library.match([10.5]) == [1]
    assert library.match([9.5]) == [2]


def _random_predicate_set(rng, dimensions):
    predicates = []
    for _ in range(rng.randint(1, 3)):
        attribute = rng.randrange(dimensions)
        op = rng.choice(list(Op))
        constant = rng.uniform(0.0, 100.0)
        predicates.append(Predicate(attribute, op, constant))
    return PredicateSet(tuple(predicates))


def test_counting_index_agrees_with_brute_force_randomized():
    rng = random.Random(7)
    brute = BruteForceLibrary()
    indexed = CountingIndexLibrary()
    for sub_id in range(300):
        ps = _random_predicate_set(rng, dimensions=4)
        brute.store(sub_id, ps)
        indexed.store(sub_id, ps)
    for _ in range(100):
        pub = [rng.uniform(0.0, 100.0) for _ in range(4)]
        assert sorted(indexed.match(pub)) == sorted(brute.match(pub))


@settings(max_examples=60, deadline=None)
@given(
    constants=st.lists(st.floats(0, 100, allow_nan=False), min_size=1, max_size=8),
    value=st.floats(0, 100, allow_nan=False),
    op=st.sampled_from(list(Op)),
)
def test_counting_index_matches_semantics_property(constants, value, op):
    indexed = CountingIndexLibrary()
    for sub_id, constant in enumerate(constants):
        indexed.store(sub_id, PredicateSet.of(Predicate(0, op, constant)))
    expected = sorted(
        sub_id for sub_id, c in enumerate(constants) if op.evaluate(value, c)
    )
    assert sorted(indexed.match([value])) == expected


def test_counting_index_removal_randomized():
    rng = random.Random(13)
    brute = BruteForceLibrary()
    indexed = CountingIndexLibrary()
    live = {}
    for sub_id in range(200):
        ps = _random_predicate_set(rng, dimensions=3)
        brute.store(sub_id, ps)
        indexed.store(sub_id, ps)
        live[sub_id] = ps
    for sub_id in rng.sample(sorted(live), 120):
        brute.remove(sub_id)
        indexed.remove(sub_id)
    for _ in range(50):
        pub = [rng.uniform(0.0, 100.0) for _ in range(3)]
        assert sorted(indexed.match(pub)) == sorted(brute.match(pub))
