"""Unit tests for the plaintext predicate model."""

import pytest

from repro.filtering import Op, Predicate, PredicateSet


@pytest.mark.parametrize(
    "op,value,constant,expected",
    [
        (Op.LT, 1.0, 2.0, True),
        (Op.LT, 2.0, 2.0, False),
        (Op.LE, 2.0, 2.0, True),
        (Op.LE, 2.1, 2.0, False),
        (Op.GT, 3.0, 2.0, True),
        (Op.GT, 2.0, 2.0, False),
        (Op.GE, 2.0, 2.0, True),
        (Op.GE, 1.9, 2.0, False),
        (Op.EQ, 5.0, 5.0, True),
        (Op.EQ, 5.0, 5.1, False),
    ],
)
def test_operator_semantics(op, value, constant, expected):
    assert op.evaluate(value, constant) is expected


def test_predicate_matches_attribute_vector():
    predicate = Predicate(attribute=2, op=Op.GE, constant=10.0)
    assert predicate.matches([0.0, 0.0, 10.0, 0.0])
    assert not predicate.matches([0.0, 0.0, 9.0, 0.0])


def test_predicate_out_of_range_attribute():
    predicate = Predicate(attribute=5, op=Op.LT, constant=1.0)
    with pytest.raises(IndexError):
        predicate.matches([1.0, 2.0])


def test_predicate_negative_attribute_rejected():
    with pytest.raises(ValueError):
        Predicate(attribute=-1, op=Op.LT, constant=0.0)


def test_predicate_set_is_conjunction():
    ps = PredicateSet.of(
        Predicate(0, Op.GE, 10.0),
        Predicate(0, Op.LE, 20.0),
        Predicate(1, Op.GT, 5.0),
    )
    assert ps.matches([15.0, 6.0])
    assert not ps.matches([15.0, 5.0])
    assert not ps.matches([25.0, 6.0])


def test_empty_predicate_set_rejected():
    with pytest.raises(ValueError):
        PredicateSet(())


def test_predicate_set_iteration_and_len():
    preds = (Predicate(0, Op.LT, 1.0), Predicate(1, Op.GT, 2.0))
    ps = PredicateSet(preds)
    assert len(ps) == 2
    assert tuple(ps) == preds


def test_string_rendering():
    ps = PredicateSet.of(Predicate(0, Op.GE, 10.0), Predicate(1, Op.LT, 3.5))
    assert str(ps) == "a0 >= 10 AND a1 < 3.5"
