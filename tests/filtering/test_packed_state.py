"""Packed-state consistency of the incremental ASPE matching kernel.

`AspeLibrary` maintains its packed predicate matrix incrementally (append
on store, tombstone on remove, compaction when dead rows dominate).  These
property-style tests drive random interleavings of `store` / `remove` /
`import_state` / `match` and assert the decisions always equal those of a
freshly built library — guarding the incremental pack, the tombstone
sweep, the span index and the compaction remap.
"""

import random

import pytest

from repro.filtering import (
    AspeCipher,
    AspeKey,
    AspeLibrary,
    Op,
    Predicate,
    PredicateSet,
    match_encrypted,
)


@pytest.fixture
def cipher():
    key = AspeKey.generate(dimensions=4, rng=random.Random(42))
    return AspeCipher(key, rng=random.Random(17))


def random_filter(rng):
    predicates = []
    for _ in range(rng.randint(1, 3)):
        attribute = rng.randrange(4)
        op = rng.choice([Op.LT, Op.LE, Op.GT, Op.GE, Op.EQ])
        predicates.append(Predicate(attribute, op, rng.uniform(0.0, 1000.0)))
    return PredicateSet.of(*predicates)


def fresh_copy(library):
    clone = AspeLibrary()
    clone.import_state(library.export_state())
    return clone


@pytest.mark.parametrize("seed", [0, 1, 2, 3])
def test_random_interleaving_equals_fresh_library(cipher, seed):
    rng = random.Random(seed)
    library = AspeLibrary()
    pool = {i: cipher.encrypt_subscription(random_filter(rng)) for i in range(60)}
    stored = set()
    for step in range(400):
        action = rng.random()
        if action < 0.45 or not stored:
            sub_id = rng.randrange(60)
            library.store(sub_id, pool[sub_id])
            stored.add(sub_id)
        elif action < 0.75:
            sub_id = rng.choice(sorted(stored))
            library.remove(sub_id)
            stored.discard(sub_id)
        elif action < 0.85:
            library.import_state(library.export_state())
        else:
            publication = cipher.encrypt_publication(
                [rng.uniform(0.0, 1000.0) for _ in range(4)]
            )
            assert library.match(publication) == fresh_copy(library).match(publication)
    # Final sweep: decisions, order and counts all line up with a rebuild.
    assert library.subscription_count() == len(stored)
    publication = cipher.encrypt_publication([rng.uniform(0.0, 1000.0) for _ in range(4)])
    assert library.match(publication) == fresh_copy(library).match(publication)


def test_churn_compacts_instead_of_repacking(cipher):
    """Store/remove churn appends + occasionally compacts — never repacks."""
    rng = random.Random(9)
    library = AspeLibrary()
    filters = [cipher.encrypt_subscription(random_filter(rng)) for i in range(500)]
    for sub_id, encrypted in enumerate(filters):
        library.store(sub_id, encrypted)
    assert library.full_pack_count == 0
    for step in range(2000):
        sub_id = rng.randrange(500)
        if sub_id in library.export_state():
            library.remove(sub_id)
        else:
            library.store(sub_id, filters[sub_id])
    # Appends are proportional to rows *added*, never to rows stored.
    assert library.full_pack_count == 0
    assert library.compaction_count >= 1
    # Tombstones never exceed the live rows after maintenance.
    assert library._dead_rows <= max(library._rows - library._dead_rows, 64)
    publication = cipher.encrypt_publication([500.0, 500.0, 500.0, 500.0])
    assert library.match(publication) == fresh_copy(library).match(publication)


def test_overwrite_store_keeps_single_copy(cipher):
    library = AspeLibrary()
    wide = cipher.encrypt_subscription(
        PredicateSet.of(Predicate(0, Op.GE, 0.0), Predicate(0, Op.LE, 1000.0))
    )
    narrow = cipher.encrypt_subscription(
        PredicateSet.of(Predicate(0, Op.GE, 900.0), Predicate(0, Op.LE, 1000.0))
    )
    library.store(1, wide)
    library.store(1, narrow)  # overwrite tombstones the old rows
    assert library.subscription_count() == 1
    publication = cipher.encrypt_publication([10.0, 0.0, 0.0, 0.0])
    assert library.match(publication) == []
    publication = cipher.encrypt_publication([950.0, 0.0, 0.0, 0.0])
    assert library.match(publication) == [1]


def test_decisions_track_pairwise_matching_through_churn(cipher):
    rng = random.Random(21)
    library = AspeLibrary()
    stored = {}
    for step in range(300):
        if rng.random() < 0.6 or not stored:
            sub_id = rng.randrange(40)
            encrypted = cipher.encrypt_subscription(random_filter(rng))
            library.store(sub_id, encrypted)
            stored[sub_id] = encrypted
        else:
            sub_id = rng.choice(sorted(stored))
            library.remove(sub_id)
            del stored[sub_id]
        if step % 25 == 0:
            publication = cipher.encrypt_publication(
                [rng.uniform(0.0, 1000.0) for _ in range(4)]
            )
            expected = [
                sub_id
                for sub_id, encrypted in stored.items()
                if match_encrypted(publication, encrypted)
            ]
            assert library.match(publication) == expected
