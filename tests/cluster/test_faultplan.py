"""Tests for the scripted chaos layer: FaultPlan, Watchdog, standing plan."""

import pytest

from repro.cluster import (
    CloudProvider,
    FailureDetector,
    FaultPlan,
    Watchdog,
    chaos_seed_from_env,
)
from repro.engine import MigrationCosts, ReliabilityCoordinator
from repro.sim import Environment, Interrupt

from ..engine.helpers import CountingState, Harness

FAST = MigrationCosts(pre_s=0.01, post_s=0.01,
                      serialize_s_per_byte=1e-9, deserialize_s_per_byte=1e-9)


def make_plan(hosts=4, detection_delay_s=0.5, seed=0):
    env = Environment()
    cloud = CloudProvider(env)
    host_list = [cloud.provision_now() for _ in range(hosts)]
    detector = FailureDetector(env, detection_delay_s=detection_delay_s)
    plan = FaultPlan(env, cloud=cloud, detector=detector, seed=seed)
    return env, cloud, host_list, detector, plan


class TestGroups:
    def test_group_and_members(self):
        _, _, hosts, _, plan = make_plan()
        plan.group("rack", hosts[:2])
        assert plan.members("rack") == hosts[:2]

    def test_duplicate_group_rejected(self):
        _, _, hosts, _, plan = make_plan()
        plan.group("rack", hosts[:2])
        with pytest.raises(ValueError):
            plan.group("rack", hosts[2:])

    def test_unknown_group_rejected(self):
        _, _, _, _, plan = make_plan()
        with pytest.raises(ValueError):
            plan.members("nope")
        with pytest.raises(ValueError):
            plan.fail_group_at(1.0, "nope")

    def test_past_fault_rejected(self):
        env, _, hosts, _, plan = make_plan()
        plan.group("rack", hosts[:2])
        env.run(until=5.0)
        with pytest.raises(ValueError):
            plan.fail_group_at(1.0, "rack")


class TestCorrelatedLoss:
    def test_fail_group_kills_whole_rack_at_once(self):
        env, _, hosts, detector, plan = make_plan()
        plan.group("rack", hosts[:3])
        plan.fail_group_at(4.0, "rack")
        env.run()
        assert all(h.released for h in hosts[:3])
        assert not hosts[3].released
        assert plan.crashed == hosts[:3]
        # Detection is correlated too: every victim heard at the same time.
        assert detector.detected == hosts[:3]
        times = [t for (t, kind, _) in plan.injected]
        assert times == [4.0]
        assert plan.injected[0][1] == "rack_loss"
        assert plan.injected[0][2]["group"] == "rack"

    def test_single_crash_records_host_crash_kind(self):
        env, _, hosts, _, plan = make_plan()
        plan.group("all", hosts)
        plan.crash_host_at(2.0, hosts[1])
        env.run()
        assert plan.injected[0][1] == "host_crash"
        assert plan.crashed == [hosts[1]]

    def test_seed_picks_victim_when_unspecified(self):
        def victim(seed):
            env, _, hosts, _, plan = make_plan(seed=seed)
            plan.group("all", hosts)
            plan.crash_host_at(1.0)
            env.run()
            return plan.crashed[0].host_id, [h.host_id for h in hosts]

        picked, pool = victim(3)
        assert picked in pool
        again, _ = victim(3)
        assert again == picked  # deterministic per seed

    def test_dead_hosts_not_crashed_twice(self):
        env, _, hosts, _, plan = make_plan()
        plan.group("rack", hosts[:2])
        plan.crash_host_at(1.0, hosts[0])
        plan.fail_group_at(2.0, "rack")  # hosts[0] already gone
        env.run()
        assert plan.crashed == [hosts[0], hosts[1]]


class TestPartitions:
    def test_partition_drops_then_heal_restores(self):
        env, cloud, hosts, _, plan = make_plan()
        plan.group("left", hosts[:2])
        plan.group("right", hosts[2:])
        plan.partition_at(1.0, "left", "right")
        plan.heal_at(3.0)
        delivered = []

        def traffic():
            while env.now < 5.0:
                cloud.network.send(
                    hosts[0].host_id, hosts[2].host_id, 100, None,
                    lambda _payload: delivered.append(env.now),
                )
                yield env.timeout(0.5)

        env.process(traffic())
        env.run()
        assert cloud.network.partition_drops > 0
        # Nothing inside the window arrived; traffic after heal did.
        assert all(t < 1.0 or t > 3.0 for t in delivered)
        kinds = [kind for (_, kind, _) in plan.injected]
        assert kinds == ["partition", "heal"]
        assert plan.injected[1][2] == {"a": "*", "b": "*"}


class _Target:
    def __init__(self):
        self.crashes = 0

    def crash(self):
        self.crashes += 1


class TestManagerCrash:
    def test_crash_manager_at_time(self):
        env, _, _, _, plan = make_plan()
        target = _Target()
        plan.crash_manager_at(2.0, target)
        env.run()
        assert target.crashes == 1
        assert plan.injected[0][1] == "manager_crash"

    def test_crash_at_phase_fires_once_for_matching_phase(self):
        env, _, _, _, plan = make_plan()
        target = _Target()

        class FakeRuntime:
            migration_phase_listeners = []

        runtime = FakeRuntime()
        plan.crash_manager_at_phase(
            runtime, target, phase="copy", protocol="migration"
        )
        (listener,) = runtime.migration_phase_listeners
        listener("M:0", "migration", "sync")    # wrong phase: ignored
        listener("M:0", "reshard", "copy")      # wrong protocol: ignored
        listener("M:0", "migration", "copy")    # fires
        listener("M:1", "migration", "copy")    # one-shot: ignored
        env.run()
        assert target.crashes == 1
        assert plan.injected[0][2] == {
            "protocol": "migration", "phase": "copy",
        }


class TestWatchdog:
    def test_interrupts_overrunning_process(self):
        env = Environment()
        dog = Watchdog(env)
        outcome = []

        def stuck():
            try:
                yield env.timeout(100.0)
                outcome.append("finished")
            except Interrupt as interrupt:
                outcome.append(("interrupted", interrupt.cause, env.now))

        process = env.process(stuck())
        dog.guard(process, timeout_s=5.0, cause="migration M:0")
        env.run()
        assert outcome == [("interrupted", "migration M:0", 5.0)]
        assert dog.timeouts == 1

    def test_disarm_before_deadline(self):
        env = Environment()
        dog = Watchdog(env)

        def quick():
            yield env.timeout(1.0)

        process = env.process(quick())
        disarm = dog.guard(process, timeout_s=5.0)
        env.call_later(2.0, disarm)
        env.run()
        assert dog.timeouts == 0

    def test_finished_process_not_interrupted(self):
        env = Environment()
        dog = Watchdog(env)

        def quick():
            yield env.timeout(1.0)

        env.process(quick())
        process = env.process(quick())
        dog.guard(process, timeout_s=5.0)
        env.run()
        assert dog.timeouts == 0

    def test_invalid_timeout(self):
        env = Environment()
        with pytest.raises(ValueError):
            Watchdog(env).guard(None, timeout_s=0)


class TestChaosSeedFromEnv:
    def test_unset_means_disabled(self, monkeypatch):
        monkeypatch.delenv("REPRO_CHAOS_SEED", raising=False)
        assert chaos_seed_from_env() is None

    def test_blank_means_disabled(self, monkeypatch):
        monkeypatch.setenv("REPRO_CHAOS_SEED", "  ")
        assert chaos_seed_from_env() is None

    def test_integer_seed(self, monkeypatch):
        monkeypatch.setenv("REPRO_CHAOS_SEED", "1729")
        assert chaos_seed_from_env() == 1729

    def test_garbage_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_CHAOS_SEED", "tuesday")
        with pytest.raises(ValueError):
            chaos_seed_from_env()


class TestStandingFaultPlan:
    """The CI standing plan (RESILIENCE.md §6) against a real deployment."""

    def test_recovery_converges_under_standing_plan(self, standing_fault_plan):
        h = Harness(hosts=3, cores=4, migration_costs=FAST)
        h.runtime.add_operator(
            "S", 1, lambda i: CountingState(bytes_per_entry=200, cost_s=0.001)
        )
        h.runtime.deploy_operator("S", [h.hosts[0]])
        coordinator = ReliabilityCoordinator(
            h.runtime, interval_s=1.0, replacement_host_fn=lambda: h.hosts[2]
        )
        coordinator.start(["S:0"])
        detector = FailureDetector(h.env, detection_delay_s=0.3)
        detector.subscribe(coordinator.handle_host_crash)
        plan = standing_fault_plan(
            h.env, cloud=h.cloud, detector=detector, hosts=[h.hosts[0]]
        )
        total = 200

        def feeder():
            for i in range(total):
                h.runtime.inject("client", "S", "add", (i, i), 100, key=0)
                yield h.env.timeout(0.02)

        h.env.process(feeder())
        h.env.run(until=10.0)  # coordinator checkpoints forever; bound it
        # The plan fired, the slice moved, and no event was lost.
        assert [kind for (_, kind, _) in plan.injected] == ["host_crash"]
        assert h.runtime.placement()["S:0"] == h.hosts[2].host_id
        assert h.handler("S:0").values == {i: i for i in range(total)}

    def test_standing_plan_reads_env_seed(self, monkeypatch):
        monkeypatch.setenv("REPRO_CHAOS_SEED", "42")
        assert chaos_seed_from_env() == 42
