"""Unit tests for the simulated network fabric."""

import pytest

from repro.sim import Environment
from repro.cluster import Network


def make_net(env, bandwidth=100.0, latency=1.0, loopback=0.1):
    net = Network(
        env,
        bandwidth_bytes_per_s=bandwidth,
        latency_s=latency,
        loopback_latency_s=loopback,
    )
    net.attach("h1")
    net.attach("h2")
    return net


def test_message_arrives_after_transfer_plus_latency():
    env = Environment()
    net = make_net(env)
    arrivals = []
    net.send("h1", "h2", size_bytes=200, payload="msg", deliver=lambda p: arrivals.append((env.now, p)))
    env.run()
    # 200 B / 100 B/s = 2 s serialization + 1 s latency.
    assert arrivals == [(3.0, "msg")]


def test_nic_serializes_concurrent_sends():
    env = Environment()
    net = make_net(env)
    arrivals = []
    net.send("h1", "h2", 100, "a", lambda p: arrivals.append((env.now, p)))
    net.send("h1", "h2", 100, "b", lambda p: arrivals.append((env.now, p)))
    env.run()
    # Each takes 1 s on the NIC; the second queues behind the first.
    assert arrivals == [(2.0, "a"), (3.0, "b")]


def test_loopback_bypasses_nic():
    env = Environment()
    net = make_net(env)
    arrivals = []
    net.send("h1", "h1", 10_000, "local", lambda p: arrivals.append(env.now))
    env.run()
    assert arrivals == [pytest.approx(0.1)]


def test_byte_accounting():
    env = Environment()
    net = make_net(env)
    net.send("h1", "h2", 300, None, lambda p: None)
    env.run()
    assert net.stats("h1").bytes_sent == 300
    assert net.stats("h1").messages_sent == 1
    assert net.stats("h2").bytes_received == 300
    assert net.stats("h2").messages_received == 1


def test_transfer_time_helper():
    env = Environment()
    net = make_net(env, bandwidth=50.0)
    assert net.transfer_time(100) == pytest.approx(2.0)


def test_unattached_sender_still_delivers():
    env = Environment()
    net = make_net(env)
    arrivals = []
    net.send("client-7", "h2", 100, "sub", lambda p: arrivals.append(env.now))
    env.run()
    assert arrivals == [pytest.approx(2.0)]


def test_detach_removes_nic_queueing_but_keeps_stats():
    env = Environment()
    net = make_net(env)
    net.send("h1", "h2", 100, None, lambda p: None)
    env.run()
    net.detach("h1")
    assert not net.is_attached("h1")
    assert net.stats("h1").bytes_sent == 100


def test_send_returns_arrival_time_and_busy_watermark():
    env = Environment()
    net = make_net(env)
    arrival = net.send("h1", "h2", 100, None, lambda p: None)
    assert arrival == pytest.approx(2.0)
    assert net.nic_busy_until("h1") == pytest.approx(1.0)


def test_invalid_parameters_rejected():
    env = Environment()
    with pytest.raises(ValueError):
        Network(env, bandwidth_bytes_per_s=0)
    with pytest.raises(ValueError):
        Network(env, latency_s=-1)
    net = make_net(env)
    with pytest.raises(ValueError):
        net.send("h1", "h2", -5, None, lambda p: None)


def test_send_batch_single_latency_summed_bandwidth():
    env = Environment()
    net = make_net(env)
    arrivals = []
    arrival = net.send_batch(
        "h1", "h2", [100, 200], ["a", "b"], lambda p: arrivals.append((env.now, p))
    )
    env.run()
    # One transfer: (100 + 200) B / 100 B/s = 3 s serialization + 1 s
    # latency, paid once; both payloads arrive together, in order.
    assert arrival == pytest.approx(4.0)
    assert arrivals == [(4.0, "a"), (4.0, "b")]


def test_send_batch_accounting():
    env = Environment()
    net = make_net(env)
    net.send_batch("h1", "h2", [100, 200], ["a", "b"], lambda p: None)
    env.run()
    assert net.stats("h1").bytes_sent == 300
    assert net.stats("h1").messages_sent == 2
    assert net.stats("h1").batches_sent == 1
    assert net.stats("h2").bytes_received == 300
    assert net.stats("h2").messages_received == 2
    assert net.stats("h2").batches_sent == 0


def test_send_batch_fifo_with_surrounding_sends():
    env = Environment()
    net = make_net(env)
    arrivals = []
    net.send("h1", "h2", 100, "first", lambda p: arrivals.append((env.now, p)))
    net.send_batch("h1", "h2", [100, 100], ["b1", "b2"], lambda p: arrivals.append((env.now, p)))
    net.send("h1", "h2", 100, "last", lambda p: arrivals.append((env.now, p)))
    env.run()
    # The batch queues behind the first send on the shared NIC watermark
    # and the trailing send queues behind the batch.
    assert arrivals == [(2.0, "first"), (4.0, "b1"), (4.0, "b2"), (5.0, "last")]


def test_send_batch_loopback():
    env = Environment()
    net = make_net(env)
    arrivals = []
    net.send_batch("h1", "h1", [500, 500], ["a", "b"], lambda p: arrivals.append(env.now))
    env.run()
    assert arrivals == [pytest.approx(0.1)] * 2


def test_send_batch_rejects_bad_input():
    env = Environment()
    net = make_net(env)
    with pytest.raises(ValueError):
        net.send_batch("h1", "h2", [100], ["a", "b"], lambda p: None)
    with pytest.raises(ValueError):
        net.send_batch("h1", "h2", [], [], lambda p: None)
    with pytest.raises(ValueError):
        net.send_batch("h1", "h2", [100, -1], ["a", "b"], lambda p: None)
