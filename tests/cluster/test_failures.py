"""Tests for host crash injection and the failure detector."""

import pytest

from repro.cluster import (
    CloudProvider,
    FailureDetector,
    FailureInjector,
    crash_host,
)
from repro.sim import Environment


def test_crash_host_releases_immediately():
    env = Environment()
    cloud = CloudProvider(env)
    host = cloud.provision_now()
    crash_host(cloud, host)
    assert host.released
    assert cloud.active_count == 0
    with pytest.raises(RuntimeError):
        crash_host(cloud, host)


def test_detector_notifies_after_delay():
    env = Environment()
    cloud = CloudProvider(env)
    host = cloud.provision_now()
    detector = FailureDetector(env, detection_delay_s=3.0)
    heard = []
    detector.subscribe(lambda h: heard.append((env.now, h.host_id)))

    def scenario():
        yield env.timeout(10.0)
        crash_host(cloud, host)
        detector.report_crash(host)

    env.process(scenario())
    env.run()
    assert heard == [(13.0, host.host_id)]
    assert detector.detected == [host]


def test_detector_invalid_delay():
    env = Environment()
    with pytest.raises(ValueError):
        FailureDetector(env, detection_delay_s=-1)


def test_injector_crash_at_specific_time():
    env = Environment()
    cloud = CloudProvider(env)
    hosts = [cloud.provision_now() for _ in range(3)]
    detector = FailureDetector(env, detection_delay_s=0.5)
    injector = FailureInjector(env, cloud, detector, eligible=lambda: hosts, seed=1)
    injector.crash_at(5.0, host=hosts[1])
    env.run()
    assert hosts[1].released
    assert injector.crashed == [hosts[1]]
    assert detector.detected == [hosts[1]]


def test_injector_random_target_among_eligible():
    env = Environment()
    cloud = CloudProvider(env)
    hosts = [cloud.provision_now() for _ in range(4)]
    protected = hosts[0]
    detector = FailureDetector(env, detection_delay_s=0.1)
    injector = FailureInjector(
        env, cloud, detector, eligible=lambda: hosts[1:], seed=7
    )
    injector.crash_periodically(interval_s=2.0, count=3)
    env.run()
    assert not protected.released
    assert len(injector.crashed) == 3
    assert all(h in hosts[1:] for h in injector.crashed)


def test_injector_stops_when_no_eligible_hosts():
    env = Environment()
    cloud = CloudProvider(env)
    detector = FailureDetector(env)
    injector = FailureInjector(env, cloud, detector, eligible=lambda: [])
    injector.crash_periodically(interval_s=1.0, count=2)
    env.run()
    assert injector.crashed == []


def test_injector_validation():
    env = Environment()
    cloud = CloudProvider(env)
    detector = FailureDetector(env)
    injector = FailureInjector(env, cloud, detector, eligible=lambda: [])
    with pytest.raises(ValueError):
        injector.crash_periodically(interval_s=0, count=1)
    env2 = Environment(initial_time=10.0)
    injector2 = FailureInjector(env2, CloudProvider(env2), FailureDetector(env2),
                                eligible=lambda: [])
    with pytest.raises(ValueError):
        injector2.crash_at(5.0)
