"""Unit tests for hosts and the cloud provider."""

import pytest

from repro.sim import Environment
from repro.cluster import CloudProvider, Host, HostSpec, Network


def test_host_spec_defaults_match_testbed():
    spec = HostSpec()
    assert spec.cores == 8
    assert spec.memory_bytes == 8 * 1024 ** 3


def test_host_spec_validation():
    with pytest.raises(ValueError):
        HostSpec(cores=0)
    with pytest.raises(ValueError):
        HostSpec(memory_bytes=-1)


def test_provision_now_creates_running_host():
    env = Environment()
    cloud = CloudProvider(env)
    host = cloud.provision_now()
    assert not host.released
    assert cloud.active_count == 1
    assert host.host_id == "host-0"


def test_provision_takes_boot_delay():
    env = Environment()
    cloud = CloudProvider(env, provisioning_delay_s=5.0)
    booted = []

    def proc():
        host = yield from cloud.provision()
        booted.append((host.host_id, env.now))

    env.process(proc())
    env.run()
    assert booted == [("host-0", 5.0)]


def test_release_frees_capacity_and_ids_are_unique():
    env = Environment()
    cloud = CloudProvider(env, max_hosts=1)
    host = cloud.provision_now()
    cloud.release(host)
    assert cloud.active_count == 0
    host2 = cloud.provision_now()
    assert host2.host_id != host.host_id


def test_capacity_exhaustion_raises():
    env = Environment()
    cloud = CloudProvider(env, max_hosts=2)
    cloud.provision_now()
    cloud.provision_now()
    with pytest.raises(RuntimeError):
        cloud.provision_now()


def test_double_release_rejected():
    env = Environment()
    cloud = CloudProvider(env)
    host = cloud.provision_now()
    cloud.release(host)
    with pytest.raises(RuntimeError):
        cloud.release(host)


def test_host_seconds_accounting():
    env = Environment()
    cloud = CloudProvider(env)
    host = cloud.provision_now()

    def proc():
        yield env.timeout(10.0)
        cloud.release(host)
        yield env.timeout(5.0)

    env.process(proc())
    env.run(until=15.0)
    assert cloud.host_seconds() == pytest.approx(10.0)


def test_memory_ledger():
    env = Environment()
    net = Network(env)
    host = Host(env, "h", HostSpec(cores=2, memory_bytes=1000), net)
    host.reserve_memory("slice-a", 400)
    host.reserve_memory("slice-b", 500)
    assert host.memory_used == 900
    assert host.memory_free == 100
    # Updating an existing reservation replaces it rather than adding.
    host.reserve_memory("slice-a", 450)
    assert host.memory_used == 950
    host.free_memory("slice-b")
    assert host.memory_used == 450
    assert host.memory_of("slice-a") == 450
    assert host.memory_of("slice-b") == 0


def test_memory_overflow_raises():
    env = Environment()
    net = Network(env)
    host = Host(env, "h", HostSpec(cores=2, memory_bytes=1000), net)
    host.reserve_memory("a", 800)
    with pytest.raises(MemoryError):
        host.reserve_memory("b", 300)


def test_released_host_detaches_from_network():
    env = Environment()
    cloud = CloudProvider(env)
    host = cloud.provision_now()
    assert cloud.network.is_attached(host.host_id)
    cloud.release(host)
    assert not cloud.network.is_attached(host.host_id)
