"""Unit tests for the CPU scheduler and utilization accounting."""

import pytest

from repro.sim import Environment
from repro.cluster import CpuScheduler


def test_task_takes_cpu_seconds_when_idle():
    env = Environment()
    cpu = CpuScheduler(env, cores=4)
    done = []

    def proc():
        yield from cpu.run(2.5, tag="s1")
        done.append(env.now)

    env.process(proc())
    env.run()
    assert done == [2.5]


def test_tasks_share_cores_in_parallel():
    env = Environment()
    cpu = CpuScheduler(env, cores=2)
    done = []

    def proc(name):
        yield from cpu.run(1.0, tag=name)
        done.append((name, env.now))

    for name in ["a", "b", "c"]:
        env.process(proc(name))
    env.run()
    # Two run in parallel; the third waits for a core.
    assert ("a", 1.0) in done and ("b", 1.0) in done and ("c", 2.0) in done


def test_busy_time_integration_exact():
    env = Environment()
    cpu = CpuScheduler(env, cores=2)

    def proc(duration):
        yield from cpu.run(duration)

    env.process(proc(3.0))
    env.process(proc(1.0))
    env.run()
    assert cpu.busy_core_seconds() == pytest.approx(4.0)


def test_utilization_between_snapshots():
    env = Environment()
    cpu = CpuScheduler(env, cores=2)
    results = {}

    def worker():
        yield from cpu.run(4.0, tag="w")

    def observer():
        before = cpu.snapshot()
        yield env.timeout(8.0)
        results["util"] = cpu.utilization_between(before)
        results["per_tag"] = cpu.tag_core_usage_between(before)

    env.process(worker())
    env.process(observer())
    env.run()
    # 4 busy core-seconds over 8 s × 2 cores = 25%.
    assert results["util"] == pytest.approx(0.25)
    assert results["per_tag"]["w"] == pytest.approx(0.5)


def test_per_tag_accounting_separates_slices():
    env = Environment()
    cpu = CpuScheduler(env, cores=4)

    def worker(tag, duration):
        yield from cpu.run(duration, tag=tag)

    env.process(worker("s1", 2.0))
    env.process(worker("s2", 6.0))
    env.run()
    snap = cpu.snapshot()
    assert snap.per_tag == {"s1": pytest.approx(2.0), "s2": pytest.approx(6.0)}


def test_queued_and_active_counts():
    env = Environment()
    cpu = CpuScheduler(env, cores=1)
    observed = {}

    def worker():
        yield from cpu.run(5.0)

    def sampler():
        yield env.timeout(1.0)
        observed["active"] = cpu.active_tasks
        observed["queued"] = cpu.queued_tasks

    env.process(worker())
    env.process(worker())
    env.process(worker())
    env.process(sampler())
    env.run()
    assert observed == {"active": 1, "queued": 2}


def test_zero_length_task_completes():
    env = Environment()
    cpu = CpuScheduler(env, cores=1)
    done = []

    def proc():
        yield from cpu.run(0.0)
        done.append(env.now)

    env.process(proc())
    env.run()
    assert done == [0.0]


def test_negative_cpu_seconds_rejected():
    env = Environment()
    cpu = CpuScheduler(env, cores=1)

    def proc():
        yield from cpu.run(-1.0)

    env.process(proc())
    with pytest.raises(ValueError):
        env.run()


def test_invalid_core_count_rejected():
    env = Environment()
    with pytest.raises(ValueError):
        CpuScheduler(env, cores=0)


def test_utilization_zero_elapsed_is_zero():
    env = Environment()
    cpu = CpuScheduler(env, cores=1)
    snap = cpu.snapshot()
    assert cpu.utilization_between(snap) == 0.0
    assert cpu.tag_core_usage_between(snap) == {}
