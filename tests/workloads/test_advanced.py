"""Tests for the workload extensions (Zipf, correlation, multi-source)."""

import math
import random

import pytest

from repro.workloads.advanced import (
    CorrelatedPublicationGenerator,
    MultiSourceWorkload,
    ZipfSubscriptionGenerator,
    zipf_weights,
)


class TestZipfWeights:
    def test_normalized_and_decreasing(self):
        weights = zipf_weights(10, exponent=1.2)
        assert sum(weights) == pytest.approx(1.0)
        assert all(a > b for a, b in zip(weights, weights[1:]))

    def test_zero_exponent_is_uniform(self):
        weights = zipf_weights(4, exponent=0.0)
        assert all(w == pytest.approx(0.25) for w in weights)

    def test_validation(self):
        with pytest.raises(ValueError):
            zipf_weights(0)
        with pytest.raises(ValueError):
            zipf_weights(5, exponent=-1)


class TestZipfSubscriptions:
    def test_hot_instruments_dominate(self):
        gen = ZipfSubscriptionGenerator(instruments=50, exponent=1.2, seed=1)
        picks = [gen.pick_instrument() for _ in range(5000)]
        hot = sum(1 for p in picks if p < 5)
        cold = sum(1 for p in picks if p >= 45)
        assert hot > 5 * max(cold, 1)
        assert all(0 <= p < 50 for p in picks)

    def test_predicates_stay_inside_instrument_region(self):
        gen = ZipfSubscriptionGenerator(
            instruments=10, value_range=1000.0, matching_rate=0.01, seed=2
        )
        for _ in range(200):
            ps = gen.predicate_set()
            (lower, upper) = ps.predicates
            region = int(lower.constant // 100)
            assert upper.constant <= (region + 1) * 100 + 1e-6
            assert upper.constant - lower.constant == pytest.approx(10.0)

    def test_subscription_stream(self):
        gen = ZipfSubscriptionGenerator(seed=3)
        subs = list(gen.subscriptions(10))
        assert [s.sub_id for s in subs] == list(range(10))
        assert all(s.filter_payload is not None for s in subs)

    def test_validation(self):
        with pytest.raises(ValueError):
            ZipfSubscriptionGenerator(instruments=0)
        with pytest.raises(ValueError):
            ZipfSubscriptionGenerator(matching_rate=0.0)


class TestCorrelatedPublications:
    def test_marginals_stay_uniform(self):
        gen = CorrelatedPublicationGenerator(correlation=0.8, seed=4)
        samples = [gen.attributes() for _ in range(3000)]
        for attribute in range(4):
            values = [s[attribute] for s in samples]
            mean = sum(values) / len(values)
            assert 450 < mean < 550  # uniform over [0, 1000)
            assert min(values) >= 0.0 and max(values) < 1000.0

    def test_consecutive_attributes_correlate(self):
        gen = CorrelatedPublicationGenerator(correlation=0.9, seed=5)
        samples = [gen.attributes() for _ in range(3000)]
        xs = [s[0] for s in samples]
        ys = [s[1] for s in samples]
        assert _pearson(xs, ys) > 0.6

    def test_zero_correlation(self):
        gen = CorrelatedPublicationGenerator(correlation=0.0, seed=6)
        samples = [gen.attributes() for _ in range(3000)]
        xs = [s[0] for s in samples]
        ys = [s[1] for s in samples]
        assert abs(_pearson(xs, ys)) < 0.1

    def test_payload_factory(self):
        gen = CorrelatedPublicationGenerator(seed=7)
        factory = gen.payload_factory()
        assert len(factory(0)) == 4

    def test_validation(self):
        with pytest.raises(ValueError):
            CorrelatedPublicationGenerator(correlation=1.0)


class TestMultiSource:
    def test_sources_feed_one_hub(self):
        from tests.pubsub.conftest import HubHarness, small_sampled_config

        h = HubHarness(small_sampled_config())
        workload = MultiSourceWorkload(h.hub, count=3, seed=8)
        workload.publish_profiles(
            [lambda t: 20.0, lambda t: 10.0, lambda t: 5.0], duration_s=4.0
        )
        h.env.run()
        assert workload.total_published() == h.hub.published_count
        assert h.hub.notified_publications == h.hub.published_count
        # Each source has its own identity and id space offset by driver.
        names = {source.name for source in workload.sources}
        assert names == {"source:0", "source:1", "source:2"}

    def test_validation(self):
        from tests.pubsub.conftest import HubHarness, small_sampled_config

        h = HubHarness(small_sampled_config())
        with pytest.raises(ValueError):
            MultiSourceWorkload(h.hub, count=0)
        workload = MultiSourceWorkload(h.hub, count=2)
        with pytest.raises(ValueError):
            workload.publish_profiles([lambda t: 1.0], duration_s=1.0)


def _pearson(xs, ys):
    n = len(xs)
    mx = sum(xs) / n
    my = sum(ys) / n
    cov = sum((x - mx) * (y - my) for x, y in zip(xs, ys)) / n
    sx = math.sqrt(sum((x - mx) ** 2 for x in xs) / n)
    sy = math.sqrt(sum((y - my) ** 2 for y in ys) / n)
    return cov / (sx * sy)
