"""Tests for the synthetic workload generator."""

import random

import pytest

from repro.filtering import AspeCipher, AspeKey, EncryptedSubscription
from repro.workloads import WorkloadGenerator


def test_publication_attributes_shape_and_range():
    gen = WorkloadGenerator(dimensions=4, seed=1)
    attrs = gen.publication_attributes()
    assert len(attrs) == 4
    assert all(0.0 <= a < 1000.0 for a in attrs)


def test_invalid_parameters():
    with pytest.raises(ValueError):
        WorkloadGenerator(dimensions=0)
    with pytest.raises(ValueError):
        WorkloadGenerator(matching_rate=0.0)
    with pytest.raises(ValueError):
        WorkloadGenerator(matching_rate=1.5)
    with pytest.raises(ValueError):
        WorkloadGenerator(value_range=-1)


def test_subscriptions_have_unique_ids_and_filters():
    gen = WorkloadGenerator(seed=2)
    subs = list(gen.subscriptions(50))
    assert [s.sub_id for s in subs] == list(range(50))
    assert all(s.filter_payload is not None for s in subs)


def test_subscriptions_without_filters():
    gen = WorkloadGenerator(seed=3)
    subs = list(gen.subscriptions(5, plaintext_filters=False))
    assert all(s.filter_payload is None for s in subs)


def test_encrypted_subscriptions():
    key = AspeKey.generate(4, rng=random.Random(0))
    cipher = AspeCipher(key, rng=random.Random(1))
    gen = WorkloadGenerator(seed=4)
    subs = list(gen.subscriptions(5, encrypt=cipher))
    assert all(isinstance(s.filter_payload, EncryptedSubscription) for s in subs)


def test_matching_rate_is_respected():
    """Empirical matching rate ≈ the configured 1%."""
    gen = WorkloadGenerator(dimensions=4, matching_rate=0.01, seed=5)
    filters = [gen.predicate_set() for _ in range(400)]
    matches = 0
    trials = 200
    for _ in range(trials):
        attrs = gen.publication_attributes()
        matches += sum(1 for f in filters if f.matches(attrs))
    rate = matches / (trials * len(filters))
    assert 0.007 < rate < 0.013


def test_higher_matching_rate():
    gen = WorkloadGenerator(dimensions=2, matching_rate=0.2, seed=6)
    filters = [gen.predicate_set() for _ in range(200)]
    matches = 0
    trials = 100
    for _ in range(trials):
        attrs = gen.publication_attributes()
        matches += sum(1 for f in filters if f.matches(attrs))
    rate = matches / (trials * len(filters))
    assert 0.17 < rate < 0.23


def test_determinism_by_seed():
    a = [s.filter_payload for s in WorkloadGenerator(seed=7).subscriptions(10)]
    b = [s.filter_payload for s in WorkloadGenerator(seed=7).subscriptions(10)]
    assert a == b
    c = [s.filter_payload for s in WorkloadGenerator(seed=8).subscriptions(10)]
    assert a != c


def test_payload_factory_plaintext_and_encrypted():
    gen = WorkloadGenerator(seed=9)
    factory = gen.publication_payloads()
    assert len(factory(0)) == 4
    key = AspeKey.generate(4, rng=random.Random(0))
    cipher = AspeCipher(key, rng=random.Random(1))
    enc_factory = gen.publication_payloads(encrypt=cipher)
    assert enc_factory(0).vector.shape == (7,)


def test_standalone_publications():
    gen = WorkloadGenerator(seed=10)
    pubs = list(gen.publications(3, start_id=100))
    assert [p.pub_id for p in pubs] == [100, 101, 102]
