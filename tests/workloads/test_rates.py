"""Tests for rate profiles and the Frankfurt trace model."""

import pytest

from repro.workloads import (
    FrankfurtTraceModel,
    constant,
    piecewise_linear,
    staircase,
    trapezoid,
)


class TestProfiles:
    def test_constant(self):
        rate = constant(42.0)
        assert rate(0.0) == 42.0
        assert rate(1e6) == 42.0
        with pytest.raises(ValueError):
            constant(-1.0)

    def test_trapezoid_shape(self):
        rate = trapezoid(ramp_up_s=100, plateau_s=50, ramp_down_s=100, peak=350)
        assert rate(0) == 0.0
        assert rate(50) == pytest.approx(175.0)
        assert rate(100) == pytest.approx(350.0)
        assert rate(125) == pytest.approx(350.0)
        assert rate(200) == pytest.approx(175.0)
        assert rate(250) == 0.0
        assert rate(1000) == 0.0

    def test_trapezoid_with_floor(self):
        rate = trapezoid(10, 10, 10, peak=100, floor=20)
        assert rate(0) == 20.0
        assert rate(30) == 20.0
        with pytest.raises(ValueError):
            trapezoid(1, 1, 1, peak=5, floor=10)

    def test_piecewise_linear(self):
        rate = piecewise_linear([(0, 0), (10, 100), (20, 50)])
        assert rate(5) == pytest.approx(50.0)
        assert rate(15) == pytest.approx(75.0)
        assert rate(-5) == 0.0
        assert rate(100) == 50.0

    def test_piecewise_linear_validation(self):
        with pytest.raises(ValueError):
            piecewise_linear([(0, 1)])
        with pytest.raises(ValueError):
            piecewise_linear([(0, 1), (0, 2)])

    def test_staircase(self):
        rate = staircase([(0, 10), (100, 50), (200, 0)])
        assert rate(50) == 10
        assert rate(100) == 50
        assert rate(250) == 0
        with pytest.raises(ValueError):
            staircase([])


class TestFrankfurtTrace:
    def test_overnight_is_quiet_and_open_is_busy(self):
        trace = FrankfurtTraceModel()
        assert trace.rate_at(3.0) < 20.0
        assert trace.rate_at(10.0) > 500.0

    def test_sharp_rise_at_market_open(self):
        trace = FrankfurtTraceModel()
        before = trace.base_rate_at(8.0)
        after = trace.base_rate_at(9.3)
        assert after > 5 * before
        # The open itself multiplies volume within minutes.
        assert trace.base_rate_at(9.1) > 2 * trace.base_rate_at(8.95)

    def test_decline_after_close(self):
        trace = FrankfurtTraceModel()
        assert trace.base_rate_at(17.0) > 500.0
        assert trace.base_rate_at(18.0) < 200.0
        assert trace.base_rate_at(20.5) < 20.0

    def test_peak_magnitude_matches_figure1(self):
        trace = FrankfurtTraceModel(noise=0.0)
        peak = max(rate for _, rate in trace.series(resolution_s=30.0))
        assert 1000.0 < peak <= 1300.0

    def test_series_covers_requested_window(self):
        trace = FrankfurtTraceModel()
        series = trace.series(resolution_s=3600.0)
        assert len(series) == 24
        assert series[0][0] == 0.0

    def test_determinism(self):
        a = FrankfurtTraceModel(seed=1).series(resolution_s=600.0)
        b = FrankfurtTraceModel(seed=1).series(resolution_s=600.0)
        assert a == b
        c = FrankfurtTraceModel(seed=2).series(resolution_s=600.0)
        assert a != c

    def test_experiment_profile_scaling(self):
        trace = FrankfurtTraceModel(noise=0.0)
        profile = trace.experiment_profile(peak_rate=190.0, speedup=20.0, start_hour=6.5)
        # Experiment time covering the full day: 24 h / 20 = 4320 s window.
        rates = [profile(t) for t in range(0, 2400, 10)]
        assert max(rates) <= 190.0 * 1.01
        assert max(rates) > 150.0
        # Early experiment time corresponds to pre-open quiet trace hours.
        assert profile(0.0) < 20.0

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            FrankfurtTraceModel(noise=-0.1)
        trace = FrankfurtTraceModel()
        with pytest.raises(ValueError):
            trace.series(resolution_s=0)
        with pytest.raises(ValueError):
            trace.experiment_profile(peak_rate=0)
