"""Scaled-down smoke tests of every experiment driver.

The benchmarks run each experiment at (near-)paper scale; these tests run
tiny versions to verify the drivers end-to-end quickly.
"""

import pytest

from repro.elastic import ElasticityPolicy
from repro.experiments import (
    ExperimentSetup,
    estimate_capacity,
    is_rate_sustainable,
    max_throughput,
    measure_delays,
    run_elastic,
    run_figure7,
    run_table1,
)
from repro.experiments.migration import migration_setup
from repro.workloads import trapezoid


def tiny_setup(**kwargs):
    """Small slice counts + a deliberately heavy per-operation cost so a
    handful of publications per second saturates a host (fast tests that
    still exercise saturation and scaling)."""
    from repro.filtering import CostModel

    defaults = dict(
        subscriptions=2000,
        ap_slices=2,
        m_slices=4,
        ep_slices=2,
        sink_slices=1,
        max_hosts=16,
        cost_model=CostModel(aspe_match_op_s=50e-6),
    )
    defaults.update(kwargs)
    return ExperimentSetup(**defaults)


class TestBaseline:
    def test_estimate_capacity_scales_with_hosts(self):
        setup = ExperimentSetup()
        assert estimate_capacity(12, setup) == pytest.approx(
            6 * estimate_capacity(2, setup), rel=0.01
        )

    def test_sustainable_below_capacity_unsustainable_above(self):
        setup = tiny_setup()
        capacity = estimate_capacity(2, setup)
        assert is_rate_sustainable(0.6 * capacity, setup, 2, window_s=8.0)
        assert not is_rate_sustainable(1.6 * capacity, setup, 2, window_s=8.0)

    def test_max_throughput_brackets_analytic_estimate(self):
        setup = tiny_setup()
        measured = max_throughput(2, setup, iterations=4, window_s=8.0)
        estimate = estimate_capacity(2, setup)
        assert 0.6 * estimate < measured < 1.4 * estimate

    def test_measure_delays_returns_stats_and_stack(self):
        setup = tiny_setup()
        stats, stack = measure_delays(2, rate=30.0, setup=setup, duration_s=10.0)
        assert stats.count > 100
        assert stats.minimum > 0
        fractions = [f for f, _ in stack]
        assert fractions == sorted(fractions)


class TestMigrationExperiments:
    def test_run_table1_tiny(self):
        rows = run_table1(
            migrations_per_operator=3,
            subscriptions_per_m_slice=(500,),
            settle_s=1.0,
        )
        assert [r.operator for r in rows] == ["AP", "M (0.5 K)", "EP"]
        for row in rows:
            assert len(row.samples_ms) == 3
            assert row.average_ms > 100.0

    def test_migration_setup_matches_paper(self):
        setup = migration_setup()
        assert (setup.ap_slices, setup.m_slices, setup.ep_slices) == (4, 8, 4)

    def test_run_figure7_tiny(self):
        result = run_figure7(rate_per_s=40.0, subscriptions=4000, window_s=5.0)
        assert len(result.migration_marks) == 5
        assert result.steady_state_mean_s > 0
        assert result.peak_delay_s >= result.steady_state_mean_s


class TestElasticExperiments:
    def test_run_elastic_scales_out_and_in(self):
        # One host saturates near 40 pub/s under the heavy cost model.
        setup = tiny_setup()
        policy = ElasticityPolicy(grace_period_s=10.0)
        profile = trapezoid(ramp_up_s=40.0, plateau_s=60.0, ramp_down_s=40.0,
                            peak=70.0)
        result = run_elastic(
            profile, 180.0, setup=setup, policy=policy,
            probe_interval_s=2.0, window_s=10.0, drain_s=60.0,
        )
        assert result.max_hosts >= 2
        assert result.final_hosts == 1
        assert result.published == result.notified > 0
        assert result.rate_series[0][1] == 0.0
        assert len(result.delay_windows) > 0
        assert result.migration_reports

    def test_utilization_envelope_filters_single_host_windows(self):
        setup = tiny_setup()
        profile = trapezoid(ramp_up_s=30.0, plateau_s=30.0, ramp_down_s=30.0,
                            peak=60.0)
        result = run_elastic(
            profile, 120.0, setup=setup,
            policy=ElasticityPolicy(grace_period_s=10.0),
            probe_interval_s=2.0,
        )
        lo, avg, hi = result.utilization_envelope()
        assert 0.0 <= lo <= avg <= hi <= 1.0

    def test_invalid_time_scales_rejected(self):
        from repro.experiments import run_figure8, run_figure9

        with pytest.raises(ValueError):
            run_figure8(time_scale=0.0)
        with pytest.raises(ValueError):
            run_figure9(time_scale=-1.0)
