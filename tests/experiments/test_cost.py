"""Tests for the cost-effectiveness comparison."""

import pytest

from repro.experiments import CostComparison, host_seconds
from repro.experiments.elastic import ElasticRunResult


def make_result(host_series, duration):
    return ElasticRunResult(
        duration_s=duration,
        window_s=30.0,
        rate_series=[],
        host_series=host_series,
        utilization_series=[],
        delay_windows=[],
        migration_reports=[],
        decisions=[],
        published=0,
        notified=0,
    )


class TestHostSeconds:
    def test_piecewise_constant_integration(self):
        # 1 host for 10 s, 3 hosts for 20 s, 2 hosts for the final 10 s.
        result = make_result([(10.0, 1), (30.0, 3), (40.0, 2)], duration=50.0)
        # [0,10): count of the first probe (1), [10,30): 1, [30,40): 3,
        # [40,50): 2 — by the piecewise-constant rule anchored on probes.
        assert host_seconds(result) == pytest.approx(
            1 * 10 + 1 * 20 + 3 * 10 + 2 * 10
        )

    def test_empty_series(self):
        assert host_seconds(make_result([], duration=100.0)) == 0.0

    def test_constant_fleet(self):
        result = make_result([(10.0, 4), (20.0, 4)], duration=30.0)
        assert host_seconds(result) == pytest.approx(4 * 30)


class TestCostComparison:
    def test_savings_computation(self):
        comparison = CostComparison(
            duration_s=100.0,
            elastic_host_seconds=300.0,
            peak_hosts=8,
            average_hosts=3.0,
        )
        assert comparison.static_peak_host_seconds == 800.0
        assert comparison.savings_vs_static_peak == pytest.approx(1 - 300 / 800)

    def test_zero_duration(self):
        comparison = CostComparison(0.0, 0.0, 0, 0.0)
        assert comparison.savings_vs_static_peak == 0.0
