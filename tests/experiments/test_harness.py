"""Tests for the experiment deployment harness."""

import pytest

from repro.experiments import Deployment, ExperimentSetup, host_split


def tiny_setup(**kwargs):
    defaults = dict(
        subscriptions=800,
        ap_slices=2,
        m_slices=4,
        ep_slices=2,
        sink_slices=1,
        max_hosts=16,
    )
    defaults.update(kwargs)
    return ExperimentSetup(**defaults)


class TestHostSplit:
    def test_paper_example_8_hosts(self):
        assert host_split(8) == {"AP": 2, "M": 4, "EP": 2}

    def test_12_hosts(self):
        assert host_split(12) == {"AP": 3, "M": 6, "EP": 3}

    def test_2_hosts(self):
        split = host_split(2)
        assert split["M"] == 1

    def test_too_few_hosts(self):
        with pytest.raises(ValueError):
            host_split(1)


class TestDeployment:
    def test_static_split_places_all_operators(self):
        deployment = Deployment(tiny_setup())
        deployment.deploy_static_split(4)
        placement = deployment.hub.runtime.placement()
        assert len(placement) == 2 + 4 + 2 + 1  # + sink
        assert len(deployment.engine_hosts) == 4

    def test_two_host_split_shares_ap_ep(self):
        deployment = Deployment(tiny_setup())
        deployment.deploy_static_split(2)
        placement = deployment.hub.runtime.placement()
        shared = placement["AP:0"]
        assert placement["EP:0"] == shared
        assert placement["M:0"] != shared

    def test_single_host_deployment(self):
        deployment = Deployment(tiny_setup())
        deployment.deploy_single_host()
        placement = deployment.hub.runtime.placement()
        engine_hosts = {
            placement[s] for s in deployment.hub.engine_slice_ids()
        }
        assert len(engine_hosts) == 1

    def test_preload_respects_ap_partitioning(self):
        deployment = Deployment(tiny_setup())
        deployment.deploy_single_host()
        deployment.preload_subscriptions()
        assert deployment.stored_subscriptions() == 800
        for index in range(4):
            handler = deployment.hub.runtime.handler_of(f"M:{index}")
            assert handler.backend.subscription_count() == 200

    def test_preload_matches_pipeline_storage(self):
        """Preloading must land each subscription exactly where the AP's
        modulo hashing would have."""
        from repro.pubsub import Subscription

        preloaded = Deployment(tiny_setup())
        preloaded.deploy_single_host()
        preloaded.preload_subscriptions(count=40)

        piped = Deployment(tiny_setup())
        piped.deploy_single_host()
        for sub_id in range(40):
            piped.hub.subscribe(Subscription(sub_id, sub_id, None))
        piped.env.run()

        for index in range(4):
            a = preloaded.hub.runtime.handler_of(f"M:{index}").backend
            b = piped.hub.runtime.handler_of(f"M:{index}").backend
            assert set(a.export_state()) == set(b.export_state())

    def test_fresh_host_joins_engine_hosts(self):
        deployment = Deployment(tiny_setup())
        deployment.deploy_single_host()
        before = len(deployment.engine_hosts)
        host = deployment.fresh_host()
        assert len(deployment.engine_hosts) == before + 1
        assert not host.released
