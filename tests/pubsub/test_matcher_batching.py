"""MatcherHandler publication coalescing: equivalence and accounting.

With `matcher_batch_limit > 1`, an M slice drains consecutively queued
publications into one `match_batch` backend call.  These tests pin the
invariants the batching must preserve: identical match lists in identical
per-publication order, identical summed CPU cost, and no interference
with subscription (write-locked) events.
"""

import random

import pytest

from repro.engine import StreamEvent
from repro.filtering import (
    AspeCipher,
    AspeKey,
    AspeLibrary,
    BruteForceLibrary,
    CostModel,
    ExactBackend,
    Op,
    Predicate,
    PredicateSet,
)
from repro.pubsub import (
    MatcherHandler,
    Publication,
    StreamHub,
    Subscription,
    KIND_PUBLICATION,
    KIND_SUBSCRIPTION,
)

from .conftest import HubHarness, small_exact_config, small_sampled_config


def band(attribute, low, high):
    return PredicateSet.of(
        Predicate(attribute, Op.GE, low), Predicate(attribute, Op.LE, high)
    )


def event(kind, payload, seq=0):
    return StreamEvent(kind, payload, "test", seq, 100, 0.0)


class FakeContext:
    def __init__(self):
        self.emitted = []
        self.batches = 0

    def emit(self, operator, kind, payload, size_bytes, key):
        self.emitted.append((operator, kind, payload, size_bytes, key))

    def emit_batch(self, emissions):
        self.emitted.extend(emissions)
        self.batches += 1


class TestHandlerUnit:
    def make(self, batch_limit=8):
        return MatcherHandler(
            0,
            ExactBackend(BruteForceLibrary()),
            CostModel(),
            encrypted=False,
            batch_limit=batch_limit,
        )

    def test_coalesce_only_publications(self):
        handler = self.make()
        pub = event(KIND_PUBLICATION, Publication(1, payload=[5.0]))
        sub = event(KIND_SUBSCRIPTION, Subscription(1, 1, band(0, 0, 10)))
        assert handler.coalesce_limit(pub) == 8
        assert handler.coalesce_limit(sub) == 1
        assert handler.coalesce_with(pub, pub)
        assert not handler.coalesce_with(pub, sub)

    def test_batch_limit_one_disables(self):
        handler = self.make(batch_limit=1)
        pub = event(KIND_PUBLICATION, Publication(1, payload=[5.0]))
        assert handler.coalesce_limit(pub) == 1

    def test_invalid_batch_limit(self):
        with pytest.raises(ValueError):
            self.make(batch_limit=0)

    def test_process_batch_emits_per_publication_in_order(self):
        handler = self.make()
        handler.process(
            event(KIND_SUBSCRIPTION, Subscription(3, 333, band(0, 0, 10))),
            FakeContext(),
        )
        ctx = FakeContext()
        events = [
            event(KIND_PUBLICATION, Publication(i, payload=[float(v)]), seq=i)
            for i, v in enumerate([5.0, 50.0, 7.0])
        ]
        handler.process_batch(events, ctx)
        assert [e[2].pub_id for e in ctx.emitted] == [0, 1, 2]
        assert [e[2].count for e in ctx.emitted] == [1, 0, 1]
        assert ctx.emitted[0][2].subscriber_ids == (333,)
        assert handler.publications_matched == 3
        assert handler.publications_batched == 3


def run_hub(batch_limit, config_factory=small_exact_config, publications=30):
    harness = HubHarness(config_factory(matcher_batch_limit=batch_limit))
    for sub_id in range(40):
        payload = band(0, 0, 50) if sub_id % 2 == 0 else band(0, 60, 70)
        harness.hub.subscribe(Subscription(sub_id, 1000 + sub_id, payload))
    harness.env.run()
    for pub_id in range(publications):
        harness.hub.publish(
            Publication(
                pub_id, payload=[float(pub_id * 2), 0, 0, 0], published_at=harness.env.now
            )
        )
    harness.env.run()
    return harness


class TestHubEquivalence:
    def test_batched_hub_produces_identical_notifications(self):
        plain = run_hub(1)
        batched = run_hub(8)
        assert [
            (n.pub_id, n.count, tuple(sorted(n.subscriber_ids)))
            for n in plain.hub.notification_log
        ] == [
            (n.pub_id, n.count, tuple(sorted(n.subscriber_ids)))
            for n in batched.hub.notification_log
        ]
        coalesced = sum(
            batched.hub.runtime.handler_of(f"M:{i}").publications_batched
            for i in range(batched.hub.config.m_slices)
        )
        assert coalesced > 0  # the burst actually exercised batching

    def test_batched_hub_charges_identical_cpu(self):
        plain = run_hub(1)
        batched = run_hub(8)
        for harness in (plain, batched):
            harness.cpu_s = sum(
                host.cpu.busy_core_seconds() for host in harness.engine_hosts
            )
        assert batched.cpu_s == pytest.approx(plain.cpu_s, rel=1e-9)

    def test_sampled_backend_total_draws_invariant(self):
        # Each M slice's SampledBackend draws once per publication from a
        # per-slice RNG with constant (n, p), so the *sequence* of draws is
        # identical under coalescing — batching only reassigns which
        # in-flight publication receives which draw (process-completion
        # order across parallel workers shifts).  Every publication still
        # gets exactly one notification and the total matched count is
        # bit-identical.
        plain = run_hub(1, config_factory=small_sampled_config)
        batched = run_hub(8, config_factory=small_sampled_config)
        assert sorted(n.pub_id for n in plain.hub.notification_log) == sorted(
            n.pub_id for n in batched.hub.notification_log
        )
        assert sum(n.count for n in plain.hub.notification_log) == sum(
            n.count for n in batched.hub.notification_log
        )


def test_batched_aspe_pipeline(aspe_cipher):
    """Encrypted end-to-end flow with coalescing: ids survive the batch."""
    config = small_exact_config(
        encrypted=True,
        backend_factory=lambda index: ExactBackend(AspeLibrary()),
        matcher_batch_limit=4,
    )
    harness = HubHarness(config)
    rng = random.Random(5)
    matching = set()
    for sub_id in range(20):
        low = 0.0 if sub_id % 3 == 0 else 600.0
        if sub_id % 3 == 0:
            matching.add(1000 + sub_id)
        harness.hub.subscribe(
            Subscription(
                sub_id,
                1000 + sub_id,
                aspe_cipher.encrypt_subscription(band(0, low, low + 300.0)),
            )
        )
    harness.env.run()
    for pub_id in range(6):
        harness.hub.publish(
            Publication(
                pub_id,
                payload=aspe_cipher.encrypt_publication(
                    [100.0 + rng.random(), 0.0, 0.0, 0.0]
                ),
                published_at=harness.env.now,
            )
        )
    harness.env.run()
    assert len(harness.hub.notification_log) == 6
    for notification in harness.hub.notification_log:
        assert set(notification.subscriber_ids) == matching
