"""Integration: host crash + passive recovery inside the full pub/sub hub."""

import pytest

from repro.cluster import CloudProvider, FailureDetector, HostSpec, crash_host
from repro.engine import ReliabilityCoordinator
from repro.filtering import BruteForceLibrary, ExactBackend, Op, Predicate, PredicateSet
from repro.pubsub import HubConfig, Publication, StreamHub, Subscription
from repro.pubsub.source import SourceDriver
from repro.sim import Environment


def band(attribute, low, high):
    return PredicateSet.of(
        Predicate(attribute, Op.GE, low), Predicate(attribute, Op.LE, high)
    )


def build(extra_hosts=1):
    env = Environment()
    cloud = CloudProvider(env, spec=HostSpec(cores=8), max_hosts=10)
    host_a = cloud.provision_now()
    host_b = cloud.provision_now()
    sink = cloud.provision_now()
    spares = [cloud.provision_now() for _ in range(extra_hosts)]
    config = HubConfig(
        ap_slices=2, m_slices=4, ep_slices=2, sink_slices=1,
        encrypted=False,
        backend_factory=lambda index: ExactBackend(BruteForceLibrary()),
    )
    hub = StreamHub(env, cloud.network, config)
    hub.deploy(
        ap_hosts=[host_a], m_hosts=[host_b], ep_hosts=[host_a], sink_hosts=[sink]
    )
    coordinator = ReliabilityCoordinator(
        hub.runtime, interval_s=3.0, replacement_host_fn=lambda: spares[0]
    )
    return env, cloud, hub, coordinator, host_a, host_b, spares


def test_m_host_crash_recovers_subscriptions_and_matching():
    env, cloud, hub, coordinator, host_a, host_b, spares = build()
    coordinator.start(hub.engine_slice_ids())
    detector = FailureDetector(env, detection_delay_s=1.0)
    detector.subscribe(lambda host: coordinator.handle_host_crash(host))

    for sub_id in range(200):
        hub.subscribe(Subscription(sub_id, sub_id, band(0, 0.0, 500.0)))
    env.run(until=1.0)  # the checkpoint loop never ends: bound the run

    source = SourceDriver(hub)
    source.publish_constant(
        rate_per_s=40.0, duration_s=20.0,
        payload_factory=lambda pub_id: [float(pub_id % 1000), 0.0, 0.0, 0.0],
    )

    def crash():
        yield env.timeout(8.0)  # after at least one checkpoint round
        crash_host(cloud, host_b)  # all M slices die
        detector.report_crash(host_b)

    env.process(crash())
    env.run(until=40.0)

    # All M slices were recovered onto the spare host.
    placement = hub.runtime.placement()
    for index in range(4):
        assert placement[f"M:{index}"] == spares[0].host_id
    assert len(coordinator.recovery_reports) == 4
    # Subscription state survived the crash.
    stored = sum(
        hub.runtime.handler_of(f"M:{i}").backend.subscription_count()
        for i in range(4)
    )
    assert stored == 200
    # Every publication was notified exactly once, with correct matching:
    # pubs with attribute <= 500 match all 200 subs, the rest match none.
    assert hub.notified_publications == source.publications_sent
    for sample in hub.delay_tracker.samples:
        expected = 200 if (sample.pub_id % 1000) <= 500 else 0
        assert sample.notifications == expected, sample.pub_id


def test_ep_host_crash_preserves_join_state():
    """EP slices hold transient join state; crashing their host mid-stream
    must not lose or double notifications."""
    env, cloud, hub, coordinator, host_a, host_b, spares = build()
    coordinator.start(hub.engine_slice_ids())

    for sub_id in range(100):
        hub.subscribe(Subscription(sub_id, sub_id, band(0, 0.0, 1000.0)))
    env.run(until=1.0)

    source = SourceDriver(hub)
    source.publish_constant(
        rate_per_s=50.0, duration_s=10.0,
        payload_factory=lambda pub_id: [1.0, 0.0, 0.0, 0.0],
    )

    def crash():
        yield env.timeout(4.0)
        crash_host(cloud, host_a)  # AP + EP slices die
        yield coordinator.handle_host_crash(host_a)

    env.process(crash())
    env.run(until=30.0)

    assert hub.notified_publications == source.publications_sent
    counts = {s.notifications for s in hub.delay_tracker.samples}
    assert counts == {100}
