"""Shared fixtures for pub/sub tests."""

import random

import pytest

from repro.cluster import CloudProvider, HostSpec
from repro.filtering import (
    AspeCipher,
    AspeKey,
    BruteForceLibrary,
    CostModel,
    ExactBackend,
)
from repro.pubsub import HubConfig, StreamHub
from repro.sim import Environment


class HubHarness:
    """Environment + cloud + a small deployed hub."""

    def __init__(self, config: HubConfig, engine_hosts: int = 2):
        self.env = Environment()
        self.cloud = CloudProvider(self.env, spec=HostSpec(cores=8), max_hosts=30)
        self.hosts = [self.cloud.provision_now() for _ in range(engine_hosts + 1)]
        self.engine_hosts = self.hosts[:engine_hosts]
        self.sink_host = self.hosts[engine_hosts]
        self.hub = StreamHub(self.env, self.cloud.network, config)
        self.hub.deploy_all_on(self.engine_hosts, [self.sink_host])


def small_exact_config(**kwargs) -> HubConfig:
    """Exact plaintext matching with small slice counts (fast tests)."""
    defaults = dict(
        ap_slices=2,
        m_slices=4,
        ep_slices=2,
        sink_slices=1,
        encrypted=False,
        backend_factory=lambda index: ExactBackend(BruteForceLibrary()),
    )
    defaults.update(kwargs)
    return HubConfig(**defaults)


def small_sampled_config(rate=0.01, **kwargs) -> HubConfig:
    defaults = dict(ap_slices=2, m_slices=4, ep_slices=2, sink_slices=1)
    defaults.update(kwargs)
    return HubConfig.sampled(rate, **defaults)


@pytest.fixture
def exact_hub():
    return HubHarness(small_exact_config())


@pytest.fixture
def sampled_hub():
    return HubHarness(small_sampled_config())


@pytest.fixture
def aspe_cipher():
    key = AspeKey.generate(4, rng=random.Random(7))
    return AspeCipher(key, rng=random.Random(8))
