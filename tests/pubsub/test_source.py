"""Tests for the source driver."""

import pytest

from repro.pubsub import Subscription
from repro.pubsub.source import SourceDriver
from .conftest import HubHarness, small_sampled_config


@pytest.fixture
def harness():
    return HubHarness(small_sampled_config(rate=0.01))


def test_load_subscriptions_paced(harness):
    driver = SourceDriver(harness.hub)
    subs = [Subscription(i, i, None) for i in range(100)]
    driver.load_subscriptions(subs, rate_per_s=1000.0)
    harness.env.run()
    stored = sum(
        harness.hub.runtime.handler_of(f"M:{i}").backend.subscription_count()
        for i in range(harness.hub.config.m_slices)
    )
    assert stored == 100
    # 100 subscriptions at 1000/s take ≈ 0.1 s of simulated time.
    assert 0.1 <= harness.env.now < 1.0


def test_publish_constant_rate(harness):
    driver = SourceDriver(harness.hub)
    driver.publish_constant(rate_per_s=50.0, duration_s=2.0)
    harness.env.run()
    assert driver.publications_sent == pytest.approx(100, abs=2)
    assert harness.hub.notified_publications == driver.publications_sent


def test_publish_profile_follows_rate_function(harness):
    driver = SourceDriver(harness.hub)
    # 10/s for the first second, 100/s for the second.
    driver.publish_profile(lambda t: 10.0 if t < 1.0 else 100.0, duration_s=2.0)
    harness.env.run()
    assert 100 <= driver.publications_sent <= 115


def test_publish_profile_idles_through_zero_rate(harness):
    driver = SourceDriver(harness.hub)
    driver.publish_profile(
        lambda t: 0.0 if t < 5.0 else 10.0, duration_s=6.0, idle_resolution_s=0.5
    )
    harness.env.run()
    assert 8 <= driver.publications_sent <= 12


def test_poisson_arrivals_are_random_but_rate_faithful(harness):
    driver = SourceDriver(harness.hub, seed=3, poisson=True)
    driver.publish_constant(rate_per_s=100.0, duration_s=5.0)
    harness.env.run()
    assert 400 < driver.publications_sent < 600


def test_publication_ids_unique_and_timestamped(harness):
    driver = SourceDriver(harness.hub)
    p1 = driver.publish_now()
    p2 = driver.publish_now()
    assert p1.pub_id != p2.pub_id
    assert p1.published_at == harness.env.now


def test_invalid_arguments(harness):
    driver = SourceDriver(harness.hub)
    with pytest.raises(ValueError):
        driver.load_subscriptions([], rate_per_s=0)
    with pytest.raises(ValueError):
        driver.publish_constant(10.0, duration_s=0)
