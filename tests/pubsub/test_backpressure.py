"""End-to-end flow control: bounded inboxes, zero loss, identical content.

The transport's credit-based backpressure must turn EP/M overload into
*upstream delay* without changing what the hub computes: the notification
multiset of a throttled run is exactly the multiset of an unthrottled
run, every receiver inbox stays bounded by the credit window times its
inbound fan-in, and nothing is lost — including while a live M-slice
migration or a key-range reshard runs in the middle of the overload.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.filtering import (
    AspeCipher,
    AspeKey,
    ExactBackend,
    Op,
    Predicate,
    PredicateSet,
    ShardedAspeLibrary,
)
from repro.pubsub import HubConfig, Publication, Subscription

from .conftest import HubHarness, small_exact_config


def band(attribute, low, high):
    return PredicateSet.of(
        Predicate(attribute, Op.GE, low), Predicate(attribute, Op.LE, high)
    )


def notification_key(n):
    return (n.pub_id, n.count, tuple(sorted(n.subscriber_ids)))


def notifications(h):
    return sorted(map(notification_key, h.hub.notification_log))


THROTTLED = dict(
    net_flush_mode="adaptive",
    net_flush_s=0.01,
    net_flush_max_batch=8,
    net_backpressure=True,
    net_credit_window=8,
)


def engine_slice_ids(hub):
    config = hub.config
    for operator, count in (
        ("AP", config.ap_slices),
        ("M", config.m_slices),
        ("EP", config.ep_slices),
        ("SINK", config.sink_slices),
    ):
        for index in range(count):
            yield f"{operator}:{index}"


def assert_inboxes_bounded(h, window):
    """Every inbox peak is within the credit window times its fan-in."""
    transport = h.hub.runtime.transport
    for slice_id in engine_slice_ids(h.hub):
        instance = h.hub.runtime._active(slice_id)
        fan_in = transport.inbound_channel_count(instance)
        if fan_in:
            assert instance.peak_queue_length <= window * fan_in, slice_id


def run_overloaded(config, publications=120, subscriptions=40, disturb=None):
    h = HubHarness(config)
    for sub_id in range(subscriptions):
        low = (sub_id * 7) % 60
        h.hub.subscribe(Subscription(sub_id, 1000 + sub_id, band(0, low, low + 40)))
    h.env.run()
    # The whole burst lands at one instant: far beyond the drain rate, so
    # unthrottled inboxes hold the backlog while throttled ones may not.
    for pub_id in range(publications):
        h.hub.publish(
            Publication(
                pub_id,
                payload=[float(pub_id % 100), 0, 0, 0],
                published_at=h.env.now,
            )
        )
    if disturb is not None:
        disturb(h)
    h.env.run()
    return h


class TestOverload:
    def test_throttled_overload_matches_unthrottled_content(self):
        plain = run_overloaded(small_exact_config())
        throttled = run_overloaded(small_exact_config(**THROTTLED))
        assert notifications(plain) == notifications(throttled)
        assert throttled.hub.duplicate_notifications == 0
        assert throttled.hub.notified_publications == 120

    def test_throttled_inboxes_are_bounded_by_the_credit_window(self):
        throttled = run_overloaded(small_exact_config(**THROTTLED))
        assert_inboxes_bounded(throttled, THROTTLED["net_credit_window"])
        # The burst genuinely exceeded the window: channels starved,
        # shed to spill, and resumed on credit grants.
        transport = throttled.hub.runtime.transport
        spilled = sum(
            channel.messages_spilled
            for channel in transport._channels.values()
        )
        assert spilled > 0
        assert transport.flush_cause_totals()["credit"] > 0

    def test_migration_mid_overload_keeps_content_and_exactly_once(self):
        def migrate(h):
            h.hub.runtime.migrate("M:0", h.cloud.provision_now())

        plain = run_overloaded(small_exact_config(), disturb=migrate)
        throttled = run_overloaded(small_exact_config(**THROTTLED), disturb=migrate)
        assert notifications(plain) == notifications(throttled)
        assert throttled.hub.runtime.migrations_completed == 1
        assert throttled.hub.duplicate_notifications == 0


@settings(max_examples=12, deadline=None)
@given(
    filters=st.lists(
        st.tuples(
            st.floats(0, 80, allow_nan=False), st.floats(5, 40, allow_nan=False)
        ),
        min_size=1,
        max_size=10,
    ),
    publications=st.lists(
        st.floats(0, 120, allow_nan=False), min_size=1, max_size=25
    ),
    window=st.integers(1, 12),
    flush_s=st.sampled_from([0.0, 0.005, 0.05]),
    migrate=st.booleans(),
)
def test_flow_control_preserves_notification_multiset(
    filters, publications, window, flush_s, migrate
):
    """Adaptive flush + backpressure never change *what* is notified."""
    runs = []
    for config in (
        small_exact_config(),
        small_exact_config(
            net_flush_mode="adaptive",
            net_flush_s=flush_s,
            net_flush_max_batch=4,
            net_backpressure=True,
            net_credit_window=window,
        ),
    ):
        h = HubHarness(config)
        for sub_id, (low, width) in enumerate(filters):
            h.hub.subscribe(
                Subscription(sub_id, 1000 + sub_id, band(0, low, low + width))
            )
        h.env.run()
        for pub_id, value in enumerate(publications):
            h.hub.publish(
                Publication(pub_id, payload=[value, 0, 0, 0], published_at=h.env.now)
            )
        if migrate:
            h.hub.runtime.migrate("M:0", h.cloud.provision_now())
        h.env.run()
        runs.append(h)
    plain, throttled = runs
    assert notifications(plain) == notifications(throttled)
    assert plain.hub.notified_publications == len(publications)
    assert throttled.hub.notified_publications == len(publications)
    assert throttled.hub.duplicate_notifications == 0
    assert_inboxes_bounded(throttled, window)
    if migrate:
        assert throttled.hub.runtime.migrations_completed == 1


def sharded_config(**net):
    return HubConfig(
        ap_slices=2,
        m_slices=2,
        ep_slices=1,
        sink_slices=1,
        encrypted=True,
        backend_factory=lambda index: ExactBackend(ShardedAspeLibrary()),
        **net,
    )


@settings(max_examples=6, deadline=None)
@given(
    publications=st.lists(
        st.floats(0, 120, allow_nan=False), min_size=4, max_size=12
    ),
    window=st.integers(2, 8),
)
def test_reshard_mid_overload_preserves_notification_multiset(
    publications, window
):
    """A key-range split during the overload changes nothing observable."""
    key = AspeKey.generate(4, rng=random.Random(11))
    cipher = AspeCipher(key, rng=random.Random(12))
    runs = []
    for config in (
        sharded_config(),
        sharded_config(
            net_flush_mode="adaptive",
            net_flush_s=0.01,
            net_flush_max_batch=4,
            net_backpressure=True,
            net_credit_window=window,
        ),
    ):
        h = HubHarness(config)
        for sub_id in range(8):
            low = (sub_id * 13) % 70
            h.hub.subscribe(
                Subscription(
                    sub_id,
                    1000 + sub_id,
                    cipher.encrypt_subscription(band(0, low, low + 35)),
                )
            )
        h.env.run()
        for pub_id, value in enumerate(publications):
            h.hub.publish(
                Publication(
                    pub_id,
                    payload=cipher.encrypt_publication([value, 0, 0, 0]),
                    published_at=h.env.now,
                )
            )
        h.hub.runtime.reshard("M:0", "split")
        h.env.run()
        runs.append(h)
    plain, throttled = runs
    assert notifications(plain) == notifications(throttled)
    assert throttled.hub.runtime.shard_ops_completed == 1
    assert throttled.hub.duplicate_notifications == 0
    assert_inboxes_bounded(throttled, window)
