"""End-to-end pipeline test with the split-dimension ASPE variant."""

import random

from repro.filtering import (
    AspeLibrary,
    AspeSplitCipher,
    AspeSplitKey,
    ExactBackend,
    Op,
    Predicate,
    PredicateSet,
)
from repro.pubsub import HubConfig, Publication, Subscription

from .conftest import HubHarness


def test_split_aspe_end_to_end():
    key = AspeSplitKey.generate(4, rng=random.Random(31))
    cipher = AspeSplitCipher(key, rng=random.Random(32))
    config = HubConfig(
        ap_slices=2,
        m_slices=2,
        ep_slices=1,
        sink_slices=1,
        encrypted=True,
        backend_factory=lambda index: ExactBackend(AspeLibrary()),
    )
    h = HubHarness(config)

    filters = {
        0: PredicateSet.of(Predicate(0, Op.GE, 100.0), Predicate(0, Op.LE, 200.0)),
        1: PredicateSet.of(Predicate(1, Op.GT, 500.0)),
        2: PredicateSet.of(Predicate(2, Op.EQ, 7.0)),
    }
    for sub_id, predicate_set in filters.items():
        h.hub.subscribe(
            Subscription(sub_id, 100 + sub_id,
                         cipher.encrypt_subscription(predicate_set))
        )
    h.env.run()

    publications = [
        ([150.0, 600.0, 7.0, 0.0], {100, 101, 102}),
        ([150.0, 100.0, 0.0, 0.0], {100}),
        ([300.0, 100.0, 0.0, 0.0], set()),
    ]
    for pub_id, (attributes, _expected) in enumerate(publications):
        h.hub.publish(
            Publication(pub_id, payload=cipher.encrypt_publication(attributes),
                        published_at=h.env.now)
        )
    h.env.run()

    by_pub = {n.pub_id: set(n.subscriber_ids or ()) for n in h.hub.notification_log}
    for pub_id, (_attributes, expected) in enumerate(publications):
        assert by_pub[pub_id] == expected
