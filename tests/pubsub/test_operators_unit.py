"""Direct unit tests of the AP/M/EP handlers (no network, fake context)."""

import pytest

from repro.engine import StreamEvent
from repro.filtering import (
    BruteForceLibrary,
    CostModel,
    ExactBackend,
    Op,
    Predicate,
    PredicateSet,
    SampledBackend,
)
from repro.pubsub import (
    AccessPointHandler,
    ExitPointHandler,
    MatcherHandler,
    MatchList,
    Notification,
    NotificationSinkHandler,
    Publication,
    Subscription,
    KIND_MATCH_LIST,
    KIND_NOTIFICATION,
    KIND_NOTIFY,
    KIND_PUBLICATION,
    KIND_SUBSCRIPTION,
)


class FakeContext:
    """Collects emissions instead of routing them."""

    def __init__(self, now=0.0):
        self.now = now
        self.emitted = []
        self.broadcasts = []

    def emit(self, operator, kind, payload, size_bytes, key):
        self.emitted.append((operator, kind, payload, size_bytes, key))

    def emit_broadcast(self, operator, kind, payload, size_bytes):
        self.broadcasts.append((operator, kind, payload, size_bytes))


def event(kind, payload, seq=0, source="test"):
    return StreamEvent(kind, payload, source, seq, 100, 0.0)


def band(attribute, low, high):
    return PredicateSet.of(
        Predicate(attribute, Op.GE, low), Predicate(attribute, Op.LE, high)
    )


class TestAccessPoint:
    def test_subscription_hashed_by_sub_id(self):
        handler = AccessPointHandler(CostModel())
        ctx = FakeContext()
        sub = Subscription(42, 7, None)
        handler.process(event(KIND_SUBSCRIPTION, sub), ctx)
        operator, kind, payload, size, key = ctx.emitted[0]
        assert (operator, kind, key) == ("M", KIND_SUBSCRIPTION, 42)
        assert payload is sub
        assert handler.subscriptions_routed == 1

    def test_publication_broadcast(self):
        handler = AccessPointHandler(CostModel())
        ctx = FakeContext()
        pub = Publication(5)
        handler.process(event(KIND_PUBLICATION, pub), ctx)
        assert len(ctx.broadcasts) == 1
        assert ctx.broadcasts[0][1] == KIND_PUBLICATION
        assert handler.publications_routed == 1

    def test_stateless(self):
        handler = AccessPointHandler(CostModel())
        assert handler.export_state() is None
        assert handler.state_size_bytes() == 0

    def test_unknown_kind_rejected(self):
        handler = AccessPointHandler(CostModel())
        with pytest.raises(ValueError):
            handler.process(event("bogus", None), FakeContext())


class TestMatcher:
    def make(self):
        return MatcherHandler(
            0, ExactBackend(BruteForceLibrary()), CostModel(), encrypted=False
        )

    def test_subscription_stored_with_subscriber_mapping(self):
        handler = self.make()
        handler.process(
            event(KIND_SUBSCRIPTION, Subscription(3, 333, band(0, 0, 10))),
            FakeContext(),
        )
        assert handler.backend.subscription_count() == 1
        ctx = FakeContext()
        handler.process(
            event(KIND_PUBLICATION, Publication(1, payload=[5.0])), ctx
        )
        match_list = ctx.emitted[0][2]
        assert match_list.subscriber_ids == (333,)

    def test_publication_emits_match_list_keyed_by_pub_id(self):
        handler = self.make()
        ctx = FakeContext()
        handler.process(event(KIND_PUBLICATION, Publication(9, payload=[5.0])), ctx)
        operator, kind, payload, size, key = ctx.emitted[0]
        assert (operator, kind, key) == ("EP", KIND_MATCH_LIST, 9)
        assert payload.count == 0

    def test_lock_modes(self):
        handler = self.make()
        assert handler.lock_mode(event(KIND_PUBLICATION, None)) == "R"
        assert handler.lock_mode(event(KIND_SUBSCRIPTION, None)) == "W"

    def test_cost_scales_with_stored_subscriptions(self):
        handler = MatcherHandler(0, SampledBackend(0.01), CostModel())
        empty_cost = handler.cost(event(KIND_PUBLICATION, None))
        for i in range(1000):
            handler.backend.store(i, None)
        assert handler.cost(event(KIND_PUBLICATION, None)) > empty_cost

    def test_state_roundtrip_preserves_subscribers(self):
        handler = self.make()
        handler.process(
            event(KIND_SUBSCRIPTION, Subscription(1, 101, band(0, 0, 10))),
            FakeContext(),
        )
        clone = self.make()
        clone.import_state(handler.export_state())
        ctx = FakeContext()
        clone.process(event(KIND_PUBLICATION, Publication(1, payload=[5.0])), ctx)
        assert ctx.emitted[0][2].subscriber_ids == (101,)

    def test_state_size_uses_cost_model(self):
        handler = self.make()
        handler.preload(Subscription(1, 1, band(0, 0, 10)))
        assert handler.state_size_bytes() == CostModel().subscription_bytes


class TestExitPoint:
    def make(self, m_slices=3):
        return ExitPointHandler(CostModel(), m_slice_count=m_slices)

    def match_list(self, pub_id, m_slice, count, ids=None):
        return MatchList(pub_id, m_slice, count, ids, published_at=1.0)

    def test_joins_all_m_lists_then_self_notifies(self):
        handler = self.make()
        ctx = FakeContext()
        for m_slice in range(3):
            handler.process(
                event(KIND_MATCH_LIST, self.match_list(7, m_slice, 10), seq=m_slice),
                ctx,
            )
        assert len(ctx.emitted) == 1
        operator, kind, payload, size, key = ctx.emitted[0]
        assert (operator, kind, key) == ("EP", KIND_NOTIFY, 7)
        assert payload.count == 30
        assert 7 not in handler.pending

    def test_duplicate_partial_list_ignored(self):
        handler = self.make()
        ctx = FakeContext()
        handler.process(event(KIND_MATCH_LIST, self.match_list(7, 0, 10)), ctx)
        handler.process(
            event(KIND_MATCH_LIST, self.match_list(7, 0, 99), seq=1), ctx
        )
        assert handler.pending[7][1] == 10  # the duplicate did not add

    def test_incomplete_join_keeps_pending_state(self):
        handler = self.make()
        ctx = FakeContext()
        handler.process(event(KIND_MATCH_LIST, self.match_list(7, 0, 5)), ctx)
        assert ctx.emitted == []
        assert handler.state_size_bytes() == CostModel().ep_pending_bytes

    def test_dispatch_emits_aggregated_notification(self):
        handler = self.make()
        ctx = FakeContext()
        notification = Notification(7, 30, None, published_at=1.0)
        handler.process(event(KIND_NOTIFY, notification), ctx)
        operator, kind, payload, size, key = ctx.emitted[0]
        assert (operator, kind) == ("SINK", KIND_NOTIFICATION)
        assert handler.notifications_sent == 30
        # Wire size models one message per subscriber.
        assert size == CostModel().frame_bytes + 30 * CostModel().notification_bytes

    def test_state_roundtrip(self):
        handler = self.make()
        ctx = FakeContext()
        handler.process(event(KIND_MATCH_LIST, self.match_list(7, 0, 5)), ctx)
        clone = self.make()
        clone.import_state(handler.export_state())
        clone.process(event(KIND_MATCH_LIST, self.match_list(7, 1, 5), seq=1), ctx)
        clone.process(event(KIND_MATCH_LIST, self.match_list(7, 2, 5), seq=2), ctx)
        assert ctx.emitted[-1][2].count == 15

    def test_validation(self):
        with pytest.raises(ValueError):
            ExitPointHandler(CostModel(), m_slice_count=0)
        with pytest.raises(ValueError):
            self.make().process(event("bogus", None), FakeContext())


class TestSink:
    def test_collects_notifications(self):
        seen = []
        handler = NotificationSinkHandler(lambda n, now: seen.append((n, now)))
        notification = Notification(1, 5, None, published_at=0.0)
        handler.process(event(KIND_NOTIFICATION, notification), FakeContext(now=2.5))
        assert seen == [(notification, 2.5)]
        assert handler.received == 1

    def test_rejects_other_kinds(self):
        handler = NotificationSinkHandler(lambda n, now: None)
        with pytest.raises(ValueError):
            handler.process(event(KIND_PUBLICATION, None), FakeContext())
