"""Property: a healed partition never changes what subscribers receive.

Hypothesis generates small subscription/publication workloads and a
partition window; the delivered notification multiset of the faulted
run (cut → heal → replay, optionally with a live M-slice migration
started inside the window) must be byte-identical to a fault-free run
of the same deployment.  This is the RESILIENCE.md §2 partition-heal
guarantee, checked over random workloads instead of the one fixed
workload in ``repro.experiments.chaos``.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import CloudProvider, FaultPlan, HostSpec
from repro.engine import ReliabilityCoordinator
from repro.experiments.chaos import multiset_digest
from repro.filtering import BruteForceLibrary, ExactBackend, Op, Predicate, PredicateSet
from repro.pubsub import HubConfig, StreamHub, Subscription
from repro.pubsub.source import SourceDriver
from repro.sim import Environment

RATE = 2.0
CUT_AT_S = 3.0
HEAL_AT_S = 7.0
REPLAY_AT_S = 8.0
HORIZON_S = 30.0


def _deploy(band_lows):
    env = Environment()
    cloud = CloudProvider(env, spec=HostSpec(cores=8), max_hosts=8)
    edge = cloud.provision_now()
    m_hosts = [cloud.provision_now(), cloud.provision_now()]
    sink = cloud.provision_now()
    spare = cloud.provision_now()
    config = HubConfig(
        ap_slices=1,
        m_slices=2,
        ep_slices=1,
        sink_slices=1,
        encrypted=False,
        backend_factory=lambda index: ExactBackend(BruteForceLibrary()),
        # Adaptive transport: every hop runs through a Channel whose
        # breaker sheds to the spill queue during the partition instead
        # of feeding the dead fabric (see RESILIENCE.md §2).
        net_flush_mode="adaptive",
    )
    hub = StreamHub(env, cloud.network, config)
    hub.deploy(ap_hosts=[edge], m_hosts=m_hosts, ep_hosts=[edge],
               sink_hosts=[sink])
    for sub_id, low in enumerate(band_lows):
        hub.subscribe(Subscription(
            sub_id, sub_id,
            PredicateSet.of(Predicate(0, Op.GE, low),
                            Predicate(0, Op.LE, low + 20.0)),
        ))
    env.run()  # drain subscription propagation before the clock matters
    return env, cloud, hub, edge, m_hosts, spare


def _publish(env, hub, values):
    source = SourceDriver(hub)
    source.publish_constant(
        rate_per_s=RATE,
        duration_s=len(values) / RATE,
        # Modulo: the driver may emit one extra event at the boundary.
        payload_factory=lambda pub_id: [values[pub_id % len(values)],
                                        0.0, 0.0, 0.0],
    )
    return source


@settings(max_examples=10, deadline=None)
@given(
    band_lows=st.lists(st.floats(0, 80, allow_nan=False), min_size=1,
                       max_size=10),
    values=st.lists(st.floats(0, 100, allow_nan=False), min_size=8,
                    max_size=24),
    migrate=st.booleans(),
)
def test_partition_heal_preserves_delivered_multiset(
    band_lows, values, migrate
):
    # Fault-free baseline of the identical deployment and workload.
    env, _, hub, _, _, _ = _deploy(band_lows)
    baseline_source = _publish(env, hub, values)
    env.run(until=HORIZON_S)
    baseline = multiset_digest(hub)
    assert hub.notified_publications == baseline_source.publications_sent

    # Same deployment, with the matcher rack cut off mid-run and healed.
    env, cloud, hub, edge, m_hosts, spare = _deploy(band_lows)
    coordinator = ReliabilityCoordinator(
        hub.runtime, interval_s=4.0, replacement_host_fn=lambda: spare
    )
    coordinator.start(hub.engine_slice_ids())
    plan = FaultPlan(env, cloud=cloud)
    plan.group("rack", m_hosts)
    plan.group("edge", [edge])
    plan.partition_at(CUT_AT_S, "rack", "edge")
    plan.heal_at(HEAL_AT_S)
    if migrate:
        # Live M-slice migration started inside the partition window:
        # its sync phase drains only after heal + replay.
        env.call_later(
            (CUT_AT_S + HEAL_AT_S) / 2.0,
            lambda: hub.runtime.migrate("M:0", m_hosts[1]),
        )
    env.call_later(REPLAY_AT_S, lambda: coordinator.replay_missing())
    source = _publish(env, hub, values)
    env.run(until=HORIZON_S)

    assert [kind for _, kind, _ in plan.injected] == ["partition", "heal"]
    assert hub.notified_publications == source.publications_sent  # zero loss
    assert multiset_digest(hub) == baseline
    if migrate:
        assert hub.runtime.placement()["M:0"] == m_hosts[1].host_id
