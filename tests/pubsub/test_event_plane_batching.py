"""AP/EP event coalescing: equivalence, accounting and exactly-once.

With ``ap_batch_limit``/``ep_batch_limit`` > 1, AP and EP slices drain
consecutively queued events into one handler call and micro-batch their
emissions per destination slice (one simulated transfer per group).
These tests pin the invariants batching must preserve: the identical
notification multiset (exactly-once, including across a live migration),
identical summed CPU cost, and unchanged per-event counters.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine import StreamEvent
from repro.filtering import (
    BruteForceLibrary,
    CostModel,
    ExactBackend,
    Op,
    Predicate,
    PredicateSet,
)
from repro.pubsub import (
    AccessPointHandler,
    ExitPointHandler,
    Publication,
    Subscription,
    KIND_MATCH_LIST,
    KIND_NOTIFY,
    KIND_PUBLICATION,
    KIND_SUBSCRIPTION,
)
from repro.pubsub.messages import MatchList
from repro.engine.handler import BROADCAST

from .conftest import HubHarness, small_exact_config


def band(attribute, low, high):
    return PredicateSet.of(
        Predicate(attribute, Op.GE, low), Predicate(attribute, Op.LE, high)
    )


def event(kind, payload, seq=0):
    return StreamEvent(kind, payload, "test", seq, 100, 0.0)


class FakeContext:
    def __init__(self):
        self.emitted = []
        self.batches = 0

    def emit(self, operator, kind, payload, size_bytes, key):
        self.emitted.append((operator, kind, payload, size_bytes, key))

    def emit_broadcast(self, operator, kind, payload, size_bytes):
        self.emitted.append((operator, kind, payload, size_bytes, BROADCAST))

    def emit_batch(self, emissions):
        self.emitted.extend(emissions)
        self.batches += 1


class TestAccessPointUnit:
    def make(self, batch_limit=8):
        return AccessPointHandler(CostModel(), batch_limit=batch_limit)

    def test_coalesces_mixed_kinds(self):
        handler = self.make()
        pub = event(KIND_PUBLICATION, Publication(1, payload=[5.0]))
        sub = event(KIND_SUBSCRIPTION, Subscription(1, 1, band(0, 0, 10)))
        assert handler.coalesce_limit(pub) == 8
        assert handler.coalesce_limit(sub) == 8
        assert handler.coalesce_with(pub, sub)
        assert handler.coalesce_with(sub, pub)

    def test_batch_limit_one_disables(self):
        assert self.make(batch_limit=1).coalesce_limit(
            event(KIND_PUBLICATION, Publication(1, payload=[5.0]))
        ) == 1

    def test_invalid_batch_limit(self):
        with pytest.raises(ValueError):
            self.make(batch_limit=0)

    def test_process_batch_matches_per_event_emissions(self):
        batched, plain = self.make(), self.make()
        events = [
            event(KIND_SUBSCRIPTION, Subscription(3, 333, band(0, 0, 10)), seq=0),
            event(KIND_PUBLICATION, Publication(7, payload=[5.0]), seq=1),
            event(KIND_SUBSCRIPTION, Subscription(4, 444, band(0, 0, 10)), seq=2),
        ]
        batched_ctx, plain_ctx = FakeContext(), FakeContext()
        batched.process_batch(events, batched_ctx)
        for e in events:
            plain.process(e, plain_ctx)
        assert batched_ctx.emitted == plain_ctx.emitted
        assert batched_ctx.batches == 1
        assert batched.events_batched == 3
        assert batched.subscriptions_routed == plain.subscriptions_routed == 2
        assert batched.publications_routed == plain.publications_routed == 1

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            self.make().process(event("bogus", None), FakeContext())


class TestExitPointUnit:
    def make(self, batch_limit=8, m_slices=2):
        return ExitPointHandler(
            CostModel(), m_slice_count=m_slices, batch_limit=batch_limit
        )

    def match_list(self, pub_id, m_slice, subscribers=(1,)):
        return event(
            KIND_MATCH_LIST,
            MatchList(
                pub_id=pub_id,
                m_slice=m_slice,
                count=len(subscribers),
                subscriber_ids=tuple(subscribers),
                published_at=0.0,
            ),
        )

    def test_coalesces_joins_and_dispatches(self):
        handler = self.make()
        ml = self.match_list(1, 0)
        assert handler.coalesce_limit(ml) == 8
        assert handler.coalesce_with(ml, ml)

    def test_invalid_batch_limit(self):
        with pytest.raises(ValueError):
            self.make(batch_limit=0)

    def test_batch_join_accumulates_whole_batch_before_dispatch(self):
        handler = self.make()
        ctx = FakeContext()
        handler.process_batch(
            [self.match_list(5, 0, (10,)), self.match_list(5, 1, (20,))], ctx
        )
        # Both partial lists joined in one pass -> one NOTIFY emission.
        assert ctx.batches == 1
        assert len(ctx.emitted) == 1
        operator, kind, notification, _, key = ctx.emitted[0]
        assert kind == KIND_NOTIFY and key == 5
        assert notification.count == 2
        assert sorted(notification.subscriber_ids) == [10, 20]
        assert handler.pending == {}
        assert handler.events_batched == 2

    def test_batch_matches_per_event_emissions(self):
        batched, plain = self.make(), self.make()
        events = [
            self.match_list(1, 0, (10,)),
            self.match_list(2, 0, (30,)),
            self.match_list(1, 1, (20,)),
        ]
        batched_ctx, plain_ctx = FakeContext(), FakeContext()
        batched.process_batch(events, batched_ctx)
        for e in events:
            plain.process(e, plain_ctx)
        assert batched_ctx.emitted == plain_ctx.emitted
        assert batched.pending.keys() == plain.pending.keys()

    def test_incomplete_batch_emits_nothing(self):
        handler = self.make(m_slices=3)
        ctx = FakeContext()
        handler.process_batch([self.match_list(1, 0), self.match_list(1, 1)], ctx)
        assert ctx.emitted == []
        assert 1 in handler.pending


def notification_key(n):
    return (n.pub_id, n.count, tuple(sorted(n.subscriber_ids)))


def run_hub(ap_limit, ep_limit, matcher_limit=1, publications=40):
    harness = HubHarness(
        small_exact_config(
            ap_batch_limit=ap_limit,
            ep_batch_limit=ep_limit,
            matcher_batch_limit=matcher_limit,
        )
    )
    for sub_id in range(40):
        payload = band(0, 0, 50) if sub_id % 2 == 0 else band(0, 60, 70)
        harness.hub.subscribe(Subscription(sub_id, 1000 + sub_id, payload))
    harness.env.run()
    for pub_id in range(publications):
        harness.hub.publish(
            Publication(
                pub_id, payload=[float(pub_id * 2), 0, 0, 0], published_at=harness.env.now
            )
        )
    harness.env.run()
    return harness


class TestHubEquivalence:
    def test_batched_hub_produces_identical_notification_multiset(self):
        plain = run_hub(1, 1)
        batched = run_hub(16, 16, matcher_limit=16)
        assert sorted(map(notification_key, plain.hub.notification_log)) == sorted(
            map(notification_key, batched.hub.notification_log)
        )
        assert batched.hub.duplicate_notifications == 0
        # The burst actually exercised both batch paths.
        ap_batched = sum(
            batched.hub.runtime.handler_of(f"AP:{i}").events_batched
            for i in range(batched.hub.config.ap_slices)
        )
        ep_batched = sum(
            batched.hub.runtime.handler_of(f"EP:{i}").events_batched
            for i in range(batched.hub.config.ep_slices)
        )
        assert ap_batched > 0
        assert ep_batched > 0

    def test_batched_hub_charges_identical_cpu(self):
        plain = run_hub(1, 1)
        batched = run_hub(16, 16, matcher_limit=16)
        for harness in (plain, batched):
            harness.cpu_s = sum(
                host.cpu.busy_core_seconds() for host in harness.engine_hosts
            )
        assert batched.cpu_s == pytest.approx(plain.cpu_s, rel=1e-9)

    def test_batched_hub_sends_fewer_network_batches(self):
        plain = run_hub(1, 1)
        batched = run_hub(16, 16, matcher_limit=16)

        def grouped_transfers(harness):
            return sum(
                harness.cloud.network.stats(host.host_id).batches_sent
                for host in harness.engine_hosts
            )

        assert grouped_transfers(plain) == 0
        assert grouped_transfers(batched) > 0


@settings(max_examples=15, deadline=None)
@given(
    filters=st.lists(
        st.tuples(st.floats(0, 80, allow_nan=False), st.floats(10, 40, allow_nan=False)),
        min_size=1,
        max_size=10,
    ),
    publications=st.lists(st.floats(0, 120, allow_nan=False), min_size=1, max_size=25),
    limits=st.tuples(st.integers(2, 16), st.integers(2, 16), st.integers(2, 16)),
    migrate=st.booleans(),
)
def test_batching_preserves_notification_multiset(filters, publications, limits, migrate):
    """Batched AP+M+EP == per-event path, including across a live migration."""
    ap_limit, m_limit, ep_limit = limits
    runs = []
    for config in (
        small_exact_config(),
        small_exact_config(
            ap_batch_limit=ap_limit,
            matcher_batch_limit=m_limit,
            ep_batch_limit=ep_limit,
        ),
    ):
        h = HubHarness(config)
        for sub_id, (low, width) in enumerate(filters):
            h.hub.subscribe(Subscription(sub_id, 1000 + sub_id, band(0, low, low + width)))
        h.env.run()
        for pub_id, value in enumerate(publications):
            h.hub.publish(
                Publication(pub_id, payload=[value, 0, 0, 0], published_at=h.env.now)
            )
        if migrate:
            h.hub.runtime.migrate("M:0", h.cloud.provision_now())
        h.env.run()
        runs.append(h)
    plain, batched = runs
    assert sorted(map(notification_key, plain.hub.notification_log)) == sorted(
        map(notification_key, batched.hub.notification_log)
    )
    assert plain.hub.notified_publications == len(publications)
    assert batched.hub.duplicate_notifications == 0
    if migrate:
        assert batched.hub.runtime.migrations_completed == 1
