"""Tests for the HubConfig / environment store-backend knobs."""

import pytest

from repro.filtering import AspeLibrary, ExactBackend, StoreConfig
from repro.pubsub import HubConfig

from .conftest import HubHarness, small_exact_config


def test_defaults_are_dense(monkeypatch):
    for var in ("REPRO_STORE_BACKEND", "REPRO_STORE_CHUNK_ROWS",
                "REPRO_STORE_MEMORY_BUDGET_MB",
                "REPRO_STORE_COMPACT_DEAD_RATIO"):
        monkeypatch.delenv(var, raising=False)
    config = HubConfig(ap_slices=1, m_slices=1, ep_slices=1, sink_slices=1)
    store = config.store_config()
    assert store.backend == "dense"
    assert store.chunk_rows == 65536
    assert store.memory_budget_mb == 0.0
    assert store.compact_dead_ratio == 0.5


def test_env_variables_drive_defaults(monkeypatch):
    monkeypatch.setenv("REPRO_STORE_BACKEND", "mmap")
    monkeypatch.setenv("REPRO_STORE_CHUNK_ROWS", "2048")
    monkeypatch.setenv("REPRO_STORE_MEMORY_BUDGET_MB", "8")
    monkeypatch.setenv("REPRO_STORE_COMPACT_DEAD_RATIO", "0.25")
    config = HubConfig(ap_slices=1, m_slices=1, ep_slices=1, sink_slices=1)
    store = config.store_config()
    assert store == StoreConfig(
        backend="mmap", chunk_rows=2048, memory_budget_mb=8.0,
        compact_dead_ratio=0.25,
    )
    # Explicit fields beat the environment.
    config = HubConfig(ap_slices=1, m_slices=1, ep_slices=1, sink_slices=1,
                       store_backend="chunked", store_compact_dead_ratio=0.75)
    store = config.store_config()
    assert store.backend == "chunked"
    assert store.compact_dead_ratio == 0.75
    assert store.chunk_rows == 2048  # env still fills the rest


def test_invalid_knobs_rejected_at_config_time():
    with pytest.raises(ValueError, match="store_backend"):
        HubConfig(ap_slices=1, m_slices=1, ep_slices=1, sink_slices=1,
                  store_backend="tape")
    with pytest.raises(ValueError, match="store_compact_dead_ratio"):
        HubConfig(ap_slices=1, m_slices=1, ep_slices=1, sink_slices=1,
                  store_compact_dead_ratio=0.0)
    with pytest.raises(ValueError, match="store_chunk_rows"):
        HubConfig(ap_slices=1, m_slices=1, ep_slices=1, sink_slices=1,
                  store_chunk_rows=0)


def test_matcher_libraries_use_configured_backend():
    config = HubConfig(
        ap_slices=1, m_slices=2, ep_slices=1, sink_slices=1,
        store_backend="chunked", store_chunk_rows=128,
        backend_factory=lambda index: ExactBackend(AspeLibrary()),
    )
    h = HubHarness(config)
    for index in range(2):
        handler = h.hub.runtime.handler_of(f"M:{index}")
        stats = handler.backend.library.store_stats()
        assert stats["backend"] == "chunked"
        assert stats["chunk_rows"] == 128


def test_non_aspe_backend_ignores_store_config():
    # BruteForceLibrary has no configure_store; the knob must not break it.
    h = HubHarness(small_exact_config(store_backend="mmap"))
    assert h.hub.runtime.handler_of("M:0") is not None
