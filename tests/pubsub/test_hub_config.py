"""Tests for HubConfig derivations and hub accessors."""

import pytest

from repro.engine import MigrationCosts
from repro.filtering import CostModel
from repro.pubsub import HubConfig, Subscription

from .conftest import HubHarness, small_exact_config, small_sampled_config


def test_defaults_match_paper_setup():
    config = HubConfig.sampled(0.01)
    assert (config.ap_slices, config.m_slices, config.ep_slices) == (8, 16, 8)
    assert config.parallelism == 8
    assert config.encrypted is True


def test_migration_costs_derived_from_cost_model():
    cost_model = CostModel()
    config = HubConfig.sampled(0.01, cost_model=cost_model)
    costs = config.migration_costs()
    assert isinstance(costs, MigrationCosts)
    assert costs.pre_s + costs.post_s == pytest.approx(cost_model.migration_overhead_s)
    # Per-byte serialization equals the per-subscription cost spread over
    # the per-subscription state size.
    assert costs.serialize_s_per_byte * cost_model.subscription_bytes == pytest.approx(
        cost_model.migration_serialize_sub_s
    )


def test_sampled_factory_builds_independent_backends():
    config = HubConfig.sampled(0.5)
    a = config.backend_factory(0)
    b = config.backend_factory(1)
    a.store(1, None)
    assert b.subscription_count() == 0


def test_published_and_subscribed_counters():
    h = HubHarness(small_sampled_config())
    assert h.hub.published_count == 0
    h.hub.subscribe(Subscription(1, 1, None))
    assert h.hub.subscribed_count == 1


def test_duplicate_notification_suppression_counter():
    from repro.pubsub import Notification

    h = HubHarness(small_sampled_config())
    notification = Notification(7, 3, None, published_at=0.0)
    h.hub._collect(notification, now=1.0)
    h.hub._collect(notification, now=2.0)
    assert h.hub.notified_publications == 1
    assert h.hub.duplicate_notifications == 1


def test_match_knob_validation_rejects_bad_values():
    with pytest.raises(ValueError, match="match_workers must be >= 0"):
        small_exact_config(match_workers=-1)
    with pytest.raises(ValueError, match="match_chunk_rows must be >= 1"):
        small_exact_config(match_chunk_rows=0)
    with pytest.raises(ValueError, match="match_backend"):
        small_exact_config(match_backend="bogus")


def test_match_knobs_default_from_environment(monkeypatch):
    monkeypatch.setenv("REPRO_MATCH_WORKERS", "3")
    monkeypatch.setenv("REPRO_MATCH_BACKEND", "pool")
    monkeypatch.setenv("REPRO_MATCH_CHUNK_ROWS", "512")
    config = small_exact_config()
    assert config.match_workers == 3
    assert config.match_backend == "pool"
    assert config.match_chunk_rows == 512


def test_match_knobs_defaults_without_environment(monkeypatch):
    for name in ("REPRO_MATCH_WORKERS", "REPRO_MATCH_BACKEND", "REPRO_MATCH_CHUNK_ROWS"):
        monkeypatch.delenv(name, raising=False)
    config = small_exact_config()
    assert config.match_workers == 0
    assert config.match_backend == "auto"
    assert config.match_chunk_rows == 4096


def test_match_workers_env_rejects_non_integers(monkeypatch):
    monkeypatch.setenv("REPRO_MATCH_WORKERS", "many")
    with pytest.raises(ValueError, match="REPRO_MATCH_WORKERS"):
        small_exact_config()


def test_injected_executor_is_used_verbatim():
    from repro.parallel import InlineMatchExecutor

    executor = InlineMatchExecutor()
    h = HubHarness(small_exact_config(match_executor=executor))
    assert h.hub.match_executor is executor
    executor.shutdown()


def test_zero_workers_without_injection_has_no_executor(monkeypatch):
    monkeypatch.delenv("REPRO_MATCH_WORKERS", raising=False)
    h = HubHarness(small_exact_config())
    assert h.hub.match_executor is None


def test_grouped_configs_mirror_into_flat_aliases():
    from repro.elastic import PolicyConfig
    from repro.parallel import MatchConfig
    from repro.filtering.store import StoreConfig
    from repro.transport import NetConfig

    config = small_exact_config(
        match=MatchConfig(workers=2, backend="pool", chunk_rows=64),
        store=StoreConfig(backend="mmap", chunk_rows=128),
        net=NetConfig(flush_mode="adaptive", backpressure=True),
        policy=PolicyConfig(signals=("cpu", "slo")),
    )
    assert (config.match_workers, config.match_backend) == (2, "pool")
    assert config.match_chunk_rows == 64
    assert (config.store_backend, config.store_chunk_rows) == ("mmap", 128)
    assert config.net_flush_mode == "adaptive"
    assert config.net_backpressure is True
    assert config.policy.signals == ("cpu", "slo")


def test_flat_fields_build_the_groups_when_no_group_is_given():
    config = small_exact_config(
        match_workers=3, store_backend="mmap", net_backpressure=True
    )
    assert config.match.workers == 3
    assert config.store.backend == "mmap"
    assert config.net.backpressure is True
    assert config.policy is not None


def test_explicit_group_wins_over_flat_fields():
    from repro.parallel import MatchConfig

    config = small_exact_config(
        match=MatchConfig(workers=4), match_workers=1
    )
    assert config.match_workers == 4


def test_deprecated_config_accessors_return_the_groups():
    config = small_exact_config()
    assert config.store_config() is config.store
    assert config.transport_config() is config.net


def test_policy_group_defaults_from_environment(monkeypatch):
    monkeypatch.setenv("REPRO_POLICY_SIGNALS", "cpu,spill")
    monkeypatch.setenv("REPRO_POLICY_SPILL_DEPTH_LIMIT", "75")
    config = small_exact_config()
    assert config.policy.signals == ("cpu", "spill")
    assert config.policy.spill_depth_limit == 75


def test_deploy_all_on_places_engine_and_sink_separately():
    h = HubHarness(small_exact_config(), engine_hosts=2)
    placement = h.hub.runtime.placement()
    engine_hosts = {placement[s] for s in h.hub.engine_slice_ids()}
    assert h.sink_host.host_id not in engine_hosts
    assert placement["SINK:0"] == h.sink_host.host_id
