"""Property-based tests of the pub/sub core invariants.

Hypothesis drives randomized subscription/publication workloads through a
small exact-matching hub and checks the invariants DESIGN.md §6 lists:
every matching subscriber is notified exactly once per publication, and
the AP's subscription partitioning is a true partition.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.filtering import BruteForceLibrary, ExactBackend, Op, Predicate, PredicateSet
from repro.pubsub import HubConfig, Publication, Subscription

from .conftest import HubHarness


def exact_config(m_slices):
    return HubConfig(
        ap_slices=2,
        m_slices=m_slices,
        ep_slices=2,
        sink_slices=1,
        encrypted=False,
        backend_factory=lambda index: ExactBackend(BruteForceLibrary()),
    )


predicate_strategy = st.builds(
    Predicate,
    attribute=st.integers(0, 3),
    op=st.sampled_from(list(Op)),
    constant=st.floats(0, 100, allow_nan=False),
)

subscription_filters = st.lists(predicate_strategy, min_size=1, max_size=3).map(
    lambda predicates: PredicateSet(tuple(predicates))
)


@settings(max_examples=20, deadline=None)
@given(
    filters=st.lists(subscription_filters, min_size=1, max_size=12),
    publications=st.lists(
        st.lists(st.floats(0, 100, allow_nan=False), min_size=4, max_size=4),
        min_size=1,
        max_size=8,
    ),
    m_slices=st.sampled_from([1, 3, 4]),
)
def test_every_matching_subscriber_notified_exactly_once(
    filters, publications, m_slices
):
    h = HubHarness(exact_config(m_slices))
    for sub_id, predicate_set in enumerate(filters):
        h.hub.subscribe(Subscription(sub_id, 1000 + sub_id, predicate_set))
    h.env.run()
    for pub_id, attributes in enumerate(publications):
        h.hub.publish(Publication(pub_id, payload=attributes, published_at=h.env.now))
    h.env.run()

    # One joined notification batch per publication (no loss, no dupes).
    assert h.hub.notified_publications == len(publications)
    by_pub = {n.pub_id: n for n in h.hub.notification_log}
    assert set(by_pub) == set(range(len(publications)))

    for pub_id, attributes in enumerate(publications):
        expected = {
            1000 + sub_id
            for sub_id, predicate_set in enumerate(filters)
            if predicate_set.matches(attributes)
        }
        delivered = list(by_pub[pub_id].subscriber_ids or ())
        # Exactly once: as a multiset, delivered equals the expected set.
        assert sorted(delivered) == sorted(expected), (pub_id, attributes)


@settings(max_examples=20, deadline=None)
@given(
    count=st.integers(1, 60),
    m_slices=st.sampled_from([1, 2, 4, 5]),
)
def test_subscription_partitioning_is_a_partition(count, m_slices):
    h = HubHarness(exact_config(m_slices))
    for sub_id in range(count):
        h.hub.subscribe(
            Subscription(sub_id, sub_id, PredicateSet.of(Predicate(0, Op.GE, 0.0)))
        )
    h.env.run()
    stored = []
    for index in range(m_slices):
        backend = h.hub.runtime.handler_of(f"M:{index}").backend
        stored.extend(backend.library.export_state().keys())
        # Modulo hashing puts each id where it belongs.
        assert all(sub_id % m_slices == index for sub_id in
                   backend.library.export_state())
    # A partition: union = everything, no duplicates.
    assert sorted(stored) == list(range(count))
