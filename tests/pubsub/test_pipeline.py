"""End-to-end tests of the AP → M → EP → SINK pipeline."""

import pytest

from repro.filtering import AspeLibrary, ExactBackend, Op, Predicate, PredicateSet
from repro.pubsub import HubConfig, Publication, StreamHub, Subscription
from .conftest import HubHarness, small_exact_config, small_sampled_config


def band(attribute, low, high):
    return PredicateSet.of(
        Predicate(attribute, Op.GE, low), Predicate(attribute, Op.LE, high)
    )


def test_matching_publication_reaches_sink(exact_hub):
    h = exact_hub
    h.hub.subscribe(Subscription(1, subscriber=101, filter_payload=band(0, 10, 20)))
    h.env.run()
    h.hub.publish(Publication(1, payload=[15.0, 0, 0, 0], published_at=h.env.now))
    h.env.run()
    assert h.hub.notified_publications == 1
    sample = h.hub.delay_tracker.samples[0]
    assert sample.notifications == 1
    assert sample.delay > 0


def test_non_matching_publication_notifies_nobody(exact_hub):
    h = exact_hub
    h.hub.subscribe(Subscription(1, 101, band(0, 10, 20)))
    h.env.run()
    h.hub.publish(Publication(1, payload=[99.0, 0, 0, 0], published_at=h.env.now))
    h.env.run()
    # A notification sample exists (the EP joined all M lists) with count 0.
    assert h.hub.delay_tracker.samples[0].notifications == 0


def test_every_matching_subscriber_notified_exactly_once(exact_hub):
    """The core pub/sub invariant across AP partitioning and EP joining."""
    h = exact_hub
    matching = list(range(0, 40, 2))
    for sub_id in range(40):
        filter_payload = band(0, 0, 50) if sub_id in matching else band(0, 60, 70)
        h.hub.subscribe(Subscription(sub_id, 1000 + sub_id, filter_payload))
    h.env.run()
    h.hub.publish(Publication(7, payload=[25.0, 0, 0, 0], published_at=h.env.now))
    h.env.run()
    samples = h.hub.delay_tracker.samples
    assert len(samples) == 1
    assert samples[0].notifications == len(matching)


def test_subscriptions_partitioned_across_m_slices(exact_hub):
    h = exact_hub
    count = 40
    for sub_id in range(count):
        h.hub.subscribe(Subscription(sub_id, sub_id, band(0, 0, 100)))
    h.env.run()
    per_slice = [
        h.hub.runtime.handler_of(f"M:{i}").backend.subscription_count()
        for i in range(h.hub.config.m_slices)
    ]
    assert sum(per_slice) == count  # a partition: no loss, no duplication
    assert all(c == count // 4 for c in per_slice)  # modulo hashing balance


def test_multiple_publications_each_joined_once(exact_hub):
    h = exact_hub
    h.hub.subscribe(Subscription(0, 0, band(0, 0, 1000)))
    h.env.run()
    for pub_id in range(10):
        h.hub.publish(Publication(pub_id, payload=[1.0, 0, 0, 0], published_at=h.env.now))
    h.env.run()
    assert h.hub.notified_publications == 10
    assert {s.pub_id for s in h.hub.delay_tracker.samples} == set(range(10))


def test_sampled_hub_notification_counts_follow_rate():
    h = HubHarness(small_sampled_config(rate=0.05))
    from repro.pubsub import Subscription as Sub

    for sub_id in range(1000):
        h.hub.subscribe(Sub(sub_id, sub_id, None))
    h.env.run()
    for pub_id in range(50):
        h.hub.publish(Publication(pub_id, published_at=h.env.now))
    h.env.run()
    counts = [s.notifications for s in h.hub.delay_tracker.samples]
    assert len(counts) == 50
    mean = sum(counts) / len(counts)
    assert 40 < mean < 60  # Binomial(1000, 0.05) → mean 50


def test_aspe_end_to_end(aspe_cipher):
    """Fully encrypted filtering through the pipeline."""
    config = HubConfig(
        ap_slices=2,
        m_slices=2,
        ep_slices=1,
        sink_slices=1,
        encrypted=True,
        backend_factory=lambda index: ExactBackend(AspeLibrary()),
    )
    h = HubHarness(config)
    h.hub.subscribe(
        Subscription(1, 11, aspe_cipher.encrypt_subscription(band(0, 100, 200)))
    )
    h.hub.subscribe(
        Subscription(2, 22, aspe_cipher.encrypt_subscription(band(1, 500, 600)))
    )
    h.env.run()
    h.hub.publish(
        Publication(
            1,
            payload=aspe_cipher.encrypt_publication([150.0, 550.0, 0.0, 0.0]),
            published_at=h.env.now,
        )
    )
    h.hub.publish(
        Publication(
            2,
            payload=aspe_cipher.encrypt_publication([150.0, 0.0, 0.0, 0.0]),
            published_at=h.env.now,
        )
    )
    h.env.run()
    by_pub = {s.pub_id: s.notifications for s in h.hub.delay_tracker.samples}
    assert by_pub == {1: 2, 2: 1}


def test_backend_factory_required():
    import pytest as _pytest
    from repro.sim import Environment
    from repro.cluster import Network

    env = Environment()
    with _pytest.raises(ValueError):
        StreamHub(env, Network(env), HubConfig())


def test_invalid_slice_counts_rejected():
    with pytest.raises(ValueError):
        HubConfig(ap_slices=0)


def test_operator_counters(exact_hub):
    h = exact_hub
    h.hub.subscribe(Subscription(0, 0, band(0, 0, 1000)))
    h.env.run()
    h.hub.publish(Publication(0, payload=[1.0, 0, 0, 0], published_at=h.env.now))
    h.env.run()
    ap_handlers = [
        h.hub.runtime.handler_of(f"AP:{i}") for i in range(h.hub.config.ap_slices)
    ]
    assert sum(a.publications_routed for a in ap_handlers) == 1
    assert sum(a.subscriptions_routed for a in ap_handlers) == 1
    m_handlers = [
        h.hub.runtime.handler_of(f"M:{i}") for i in range(h.hub.config.m_slices)
    ]
    # Publications are broadcast: every M slice matched it.
    assert all(m.publications_matched == 1 for m in m_handlers)


def test_engine_slice_ids_excludes_sink(exact_hub):
    ids = exact_hub.hub.engine_slice_ids()
    assert "SINK:0" not in ids
    assert set(ids) == {
        *(f"AP:{i}" for i in range(2)),
        *(f"M:{i}" for i in range(4)),
        *(f"EP:{i}" for i in range(2)),
    }
