"""Hub-level migration tests: moving live pub/sub slices between hosts."""

import pytest

from repro.pubsub import Publication, Subscription
from repro.pubsub.source import SourceDriver

from .conftest import HubHarness, small_exact_config, small_sampled_config
from repro.filtering import Op, Predicate, PredicateSet


def band(attribute, low, high):
    return PredicateSet.of(
        Predicate(attribute, Op.GE, low), Predicate(attribute, Op.LE, high)
    )


def test_m_slice_migration_preserves_subscriptions_and_matching():
    h = HubHarness(small_exact_config(), engine_hosts=2)
    spare = h.cloud.provision_now()
    for sub_id in range(40):
        h.hub.subscribe(Subscription(sub_id, sub_id, band(0, 0.0, 50.0)))
    h.env.run()
    before = h.hub.runtime.handler_of("M:1").backend.subscription_count()
    proc = h.hub.runtime.migrate("M:1", spare)
    h.env.run()
    assert proc.ok
    assert h.hub.runtime.placement()["M:1"] == spare.host_id
    after = h.hub.runtime.handler_of("M:1").backend.subscription_count()
    assert after == before
    h.hub.publish(Publication(1, payload=[10.0, 0, 0, 0], published_at=h.env.now))
    h.env.run()
    assert h.hub.delay_tracker.samples[-1].notifications == 40


def test_ep_slice_migration_carries_pending_join_state():
    """Migrate an EP slice while publications are mid-join: the pending
    partial lists move with the state and every join still completes."""
    h = HubHarness(small_sampled_config(rate=0.02), engine_hosts=2)
    spare = h.cloud.provision_now()
    for sub_id in range(2000):
        h.hub.subscribe(Subscription(sub_id, sub_id, None))
    h.env.run()
    source = SourceDriver(h.hub)
    source.publish_constant(rate_per_s=80.0, duration_s=10.0)

    migrated = {}

    def migrate():
        yield h.env.timeout(3.0)
        report = yield h.hub.runtime.migrate("EP:0", spare)
        migrated["report"] = report

    h.env.process(migrate())
    h.env.run()
    assert migrated["report"].destination_host == spare.host_id
    # No publication lost its join across the migration.
    assert h.hub.notified_publications == source.publications_sent
    assert h.hub.duplicate_notifications == 0


def test_consecutive_migrations_of_every_operator():
    h = HubHarness(small_sampled_config(), engine_hosts=2)
    spare = h.cloud.provision_now()
    for sub_id in range(500):
        h.hub.subscribe(Subscription(sub_id, sub_id, None))
    h.env.run()
    source = SourceDriver(h.hub)
    source.publish_constant(rate_per_s=40.0, duration_s=15.0)

    def migrate_all():
        yield h.env.timeout(2.0)
        for slice_id in ("AP:0", "M:2", "EP:1"):
            yield h.hub.runtime.migrate(slice_id, spare)
            yield h.env.timeout(1.0)

    h.env.process(migrate_all())
    h.env.run()
    placement = h.hub.runtime.placement()
    assert placement["AP:0"] == spare.host_id
    assert placement["M:2"] == spare.host_id
    assert placement["EP:1"] == spare.host_id
    assert h.hub.notified_publications == source.publications_sent
    assert h.hub.runtime.migrations_completed == 3
