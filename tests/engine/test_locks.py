"""Unit tests for the slice RW lock."""

import pytest

from repro.engine import RWLock
from repro.sim import Environment


def test_fast_path_readers_share():
    env = Environment()
    lock = RWLock(env)
    assert lock.try_acquire("R")
    assert lock.try_acquire("R")
    lock.release("R")
    lock.release("R")
    assert lock.idle


def test_fast_path_writer_excludes():
    env = Environment()
    lock = RWLock(env)
    assert lock.try_acquire("W")
    assert not lock.try_acquire("R")
    assert not lock.try_acquire("W")
    lock.release("W")
    assert lock.try_acquire("R")


def test_writer_waits_for_readers():
    env = Environment()
    lock = RWLock(env)
    log = []

    def reader():
        assert lock.try_acquire("R")
        yield env.timeout(5.0)
        lock.release("R")

    def writer():
        yield env.timeout(1.0)
        if not lock.try_acquire("W"):
            yield lock.acquire("W")
        log.append(("w", env.now))
        lock.release("W")

    env.process(reader())
    env.process(writer())
    env.run()
    assert log == [("w", 5.0)]


def test_pending_writer_blocks_new_readers():
    env = Environment()
    lock = RWLock(env)
    log = []

    def holder():
        assert lock.try_acquire("R")
        yield env.timeout(5.0)
        lock.release("R")

    def writer():
        yield env.timeout(1.0)
        yield lock.acquire("W")
        log.append(("w", env.now))
        yield env.timeout(1.0)
        lock.release("W")

    def late_reader():
        yield env.timeout(2.0)
        # Fast path must fail while a writer is queued (fairness).
        assert not lock.try_acquire("R")
        yield lock.acquire("R")
        log.append(("r", env.now))
        lock.release("R")

    env.process(holder())
    env.process(writer())
    env.process(late_reader())
    env.run()
    assert log == [("w", 5.0), ("r", 6.0)]


def test_readers_granted_in_batch_after_writer():
    env = Environment()
    lock = RWLock(env)
    granted = []

    def writer():
        assert lock.try_acquire("W")
        yield env.timeout(3.0)
        lock.release("W")

    def reader(name):
        yield env.timeout(1.0)
        yield lock.acquire("R")
        granted.append((name, env.now))
        yield env.timeout(2.0)
        lock.release("R")

    env.process(writer())
    env.process(reader("r1"))
    env.process(reader("r2"))
    env.run()
    assert granted == [("r1", 3.0), ("r2", 3.0)]


def test_release_unheld_raises():
    env = Environment()
    lock = RWLock(env)
    with pytest.raises(RuntimeError):
        lock.release("R")
    with pytest.raises(RuntimeError):
        lock.release("W")


def test_unknown_mode_rejected():
    env = Environment()
    lock = RWLock(env)
    with pytest.raises(ValueError):
        lock.try_acquire("X")
    with pytest.raises(ValueError):
        lock.acquire("X")
    with pytest.raises(ValueError):
        lock.release("X")
