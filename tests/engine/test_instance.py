"""Unit tests for slice instances: parallelism, locks, dedup, halt."""

import pytest

from repro.engine import SliceHandler
from .helpers import Harness, Recorder, CountingState


def test_parallel_workers_process_read_events_concurrently():
    h = Harness(hosts=1, cores=4)
    h.runtime.add_operator("M", 1, lambda i: Recorder(cost_s=1.0), parallelism=4)
    h.runtime.deploy_operator("M", h.hosts)
    for value in range(4):
        h.runtime.inject("client", "M", "e", value, 100, key=0)
    h.env.run()
    times = [t for (t, _, _) in h.handler("M:0").received]
    # All four processed in parallel: they complete at (almost) the same time.
    assert max(times) - min(times) < 0.01
    assert max(times) < 1.1


def test_write_events_serialize_on_slice_lock():
    h = Harness(hosts=1, cores=4)
    h.runtime.add_operator(
        "S", 1, lambda i: CountingState(cost_s=1.0), parallelism=4
    )
    h.runtime.deploy_operator("S", h.hosts)
    for value in range(3):
        h.runtime.inject("client", "S", "add", (value, value), 100, key=0)
    h.env.run()
    # Three W-locked events of 1 s each must take at least 3 s of sim time.
    assert h.env.now >= 3.0
    assert h.handler("S:0").values == {0: 0, 1: 1, 2: 2}


def test_parallelism_bounded_by_host_cores():
    h = Harness(hosts=1, cores=2)
    h.runtime.add_operator("M", 1, lambda i: Recorder(cost_s=1.0), parallelism=8)
    h.runtime.deploy_operator("M", h.hosts)
    for value in range(4):
        h.runtime.inject("client", "M", "e", value, 100, key=0)
    h.env.run()
    # 4 events of 1 s on 2 cores: finish in two waves, ≈ 2 s total.
    assert 2.0 <= h.env.now < 2.1


def test_duplicate_events_filtered_by_migration_vector():
    """Only instances activated after a migration filter duplicates, and
    only against the frozen vector captured with the copied state."""
    from repro.engine import StreamEvent
    from repro.engine.instance import SliceInstance

    h = Harness(hosts=1)
    h.runtime.add_operator("M", 1, lambda i: Recorder())
    h.runtime.deploy_operator("M", h.hosts)
    recorder = Recorder()
    migrated = SliceInstance(
        h.runtime, "M:0", recorder, h.hosts[0], parallelism=2, buffering=True
    )
    migrated.activate({"client": 4})
    # Stale duplicate (seq ≤ vector) is dropped; a fresh event is processed.
    migrated.deliver(StreamEvent("e", "stale", "client", 4, 100, h.env.now))
    migrated.deliver(StreamEvent("e", "fresh", "client", 5, 100, h.env.now))
    h.env.run()
    assert [p for (_, _, p) in recorder.received] == ["fresh"]
    assert migrated.dropped_duplicates == 1


def test_normal_instance_processes_out_of_order_completions():
    """A never-migrated instance must not drop events even when parallel
    workers complete later-sequence events first (max-watermark hazard)."""
    h = Harness(hosts=1, cores=8)
    h.runtime.add_operator("S", 1, lambda i: Recorder(), parallelism=8)
    h.runtime.deploy_operator("S", h.hosts)
    for i in range(20):
        h.runtime.inject("client", "S", "e", i, 100, key=0)
    h.env.run()
    received = sorted(p for (_, _, p) in h.handler("S:0").received)
    assert received == list(range(20))


def test_halt_waits_for_busy_workers_and_drops_late_events():
    h = Harness(hosts=1, cores=2)
    h.runtime.add_operator("M", 1, lambda i: Recorder(cost_s=2.0), parallelism=2)
    h.runtime.deploy_operator("M", h.hosts)
    h.runtime.inject("client", "M", "e", "busy", 100, key=0)
    results = {}

    def coordinator():
        yield h.env.timeout(1.0)
        instance = h.runtime.slices["M:0"].active
        quiescent = instance.halt()
        yield quiescent
        results["halted_at"] = h.env.now
        # A late event must be dropped, not processed.
        h.runtime.inject("client", "M", "e", "late", 100, key=0)

    h.env.process(coordinator())
    h.env.run()
    assert results["halted_at"] >= 2.0
    payloads = [p for (_, _, p) in h.handler("M:0").received]
    assert payloads == ["busy"]


def test_wait_until_processed_fires_on_progress():
    h = Harness(hosts=1)
    h.runtime.add_operator("M", 1, lambda i: Recorder(cost_s=0.5), parallelism=1)
    h.runtime.deploy_operator("M", h.hosts)
    for value in range(3):
        h.runtime.inject("client", "M", "e", value, 100, key=0)
    fired = {}

    def waiter():
        instance = h.runtime.slices["M:0"].active
        yield instance.wait_until_processed({"client": 2})
        fired["at"] = h.env.now

    h.env.process(waiter())
    h.env.run()
    assert fired["at"] == pytest.approx(1.5, abs=0.05)


def test_wait_until_processed_already_satisfied():
    h = Harness(hosts=1)
    h.runtime.add_operator("M", 1, lambda i: Recorder())
    h.runtime.deploy_operator("M", h.hosts)
    h.runtime.inject("client", "M", "e", 0, 100, key=0)
    h.env.run()
    instance = h.runtime.slices["M:0"].active
    event = instance.wait_until_processed({"client": 0})
    assert event.triggered


def test_buffering_instance_queues_without_processing():
    from repro.engine.instance import SliceInstance

    h = Harness(hosts=1)
    h.runtime.add_operator("M", 1, lambda i: Recorder())
    h.runtime.deploy_operator("M", h.hosts)
    recorder = Recorder()
    buffering = SliceInstance(
        h.runtime, "M:0", recorder, h.hosts[0], parallelism=2, buffering=True
    )
    from repro.engine import StreamEvent

    for seq in range(3):
        buffering.deliver(StreamEvent("e", seq, "client", seq, 100, 0.0))
    h.env.run()
    assert buffering.queue_length == 3
    assert recorder.received == []
    # Activation with a vector filters already-processed events.
    buffering.activate({"client": 0})
    h.env.run()
    assert [p for (_, _, p) in recorder.received] == [1, 2]
    assert buffering.dropped_duplicates == 1


def test_destroyed_instance_drops_deliveries():
    h = Harness(hosts=1)
    h.runtime.add_operator("M", 1, lambda i: Recorder())
    h.runtime.deploy_operator("M", h.hosts)
    instance = h.runtime.slices["M:0"].active
    instance.destroy()
    h.runtime.inject("client", "M", "e", "x", 100, key=0)
    h.env.run()
    assert h.handler("M:0").received == []
    assert instance.queue_length == 0


def test_invalid_parallelism_rejected():
    h = Harness(hosts=1)
    h.runtime.add_operator("M", 1, lambda i: Recorder(), parallelism=0)
    with pytest.raises(ValueError):
        h.runtime.deploy_operator("M", h.hosts)


def test_default_import_state_rejects_unexpected_state():
    handler = Recorder()
    handler.import_state(None)  # stateless: fine
    with pytest.raises(NotImplementedError):
        handler.import_state({"unexpected": 1})
