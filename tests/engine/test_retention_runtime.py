"""Runtime-level tests for retention hooks and sequence-counter recovery."""

import pytest

from repro.engine import MigrationCosts

from .helpers import Harness, Forwarder, Recorder


FAST = MigrationCosts(pre_s=0.01, post_s=0.01,
                      serialize_s_per_byte=0, deserialize_s_per_byte=0)


def test_retention_disabled_by_default():
    h = Harness(hosts=1)
    h.runtime.add_operator("M", 1, lambda i: Recorder())
    h.runtime.deploy_operator("M", h.hosts)
    h.runtime.inject("client", "M", "e", 1, 100, key=0)
    h.env.run()
    assert h.runtime.retention is None


def test_enable_retention_records_all_channels():
    h = Harness(hosts=2)
    h.runtime.add_operator("A", 1, lambda i: Forwarder("B"))
    h.runtime.add_operator("B", 2, lambda i: Recorder())
    h.runtime.deploy_operator("A", [h.hosts[0]])
    h.runtime.deploy_operator("B", [h.hosts[1]])
    h.runtime.enable_retention()
    h.runtime.enable_retention()  # idempotent
    for value in range(6):
        h.runtime.inject("client", "A", "e", value, 100, key=0)
    h.env.run()
    retention = h.runtime.retention
    # client → A:0 plus A:0 → B:{0,1} channels were recorded.
    assert len(retention.channels_to("A:0")) == 1
    assert retention.total_events() == 6 + 6
    assert retention.total_bytes() == 6 * 100 + 6 * 100


def test_seq_counters_snapshot_and_restore():
    h = Harness(hosts=2)
    h.runtime.add_operator("A", 1, lambda i: Forwarder("B"))
    h.runtime.add_operator("B", 2, lambda i: Recorder())
    h.runtime.deploy_operator("A", [h.hosts[0]])
    h.runtime.deploy_operator("B", [h.hosts[1]])
    for value in range(5):
        h.runtime.inject("client", "A", "e", value, 100, key=0)
    h.env.run()
    snapshot = h.runtime.seq_counters_from("A:0")
    assert sum(snapshot.values()) == 5  # five forwards split over B:0/B:1
    # More traffic advances the counters...
    for value in range(5, 8):
        h.runtime.inject("client", "A", "e", value, 100, key=0)
    h.env.run()
    assert sum(h.runtime.seq_counters_from("A:0").values()) == 8
    # ...and restore rolls them back to the snapshot.
    h.runtime.restore_seq_counters("A:0", snapshot)
    assert h.runtime.seq_counters_from("A:0") == snapshot


def test_migration_and_retention_compose():
    """Retention keeps recording across a live migration of the sender."""
    h = Harness(hosts=2, migration_costs=FAST)
    h.runtime.add_operator("A", 1, lambda i: Forwarder("B"))
    h.runtime.add_operator("B", 1, lambda i: Recorder())
    h.runtime.deploy_operator("A", [h.hosts[0]])
    h.runtime.deploy_operator("B", [h.hosts[1]])
    h.runtime.enable_retention()

    def scenario():
        for value in range(5):
            h.runtime.inject("client", "A", "e", value, 100, key=0)
            yield h.env.timeout(0.01)
        yield h.runtime.migrate("A:0", h.hosts[1])
        for value in range(5, 10):
            h.runtime.inject("client", "A", "e", value, 100, key=0)
            yield h.env.timeout(0.01)

    h.env.process(scenario())
    h.env.run()
    buffer = dict(h.runtime.retention.channels_to("B:0"))["A:0"]
    assert buffer.highest_seq == 9  # continuous across the migration
    received = [p for (_, _, p) in h.handler("B:0").received]
    assert sorted(received) == list(range(10))


def test_kill_then_recover_unknown_checkpoint_channels():
    """Recovery over channels that never sent anything is a no-op."""
    from repro.engine import ReliabilityCoordinator

    h = Harness(hosts=2)
    h.runtime.add_operator("S", 1, lambda i: Recorder())
    h.runtime.deploy_operator("S", [h.hosts[0]])
    coordinator = ReliabilityCoordinator(
        h.runtime, interval_s=100.0, replacement_host_fn=lambda: h.hosts[1]
    )
    h.runtime.slices["S:0"].active.destroy()
    h.hosts[0].release()
    proc = coordinator.handle_host_crash(h.hosts[0])
    h.env.run()
    reports = proc.value
    assert len(reports) == 1
    assert reports[0].replayed_events == 0
    assert reports[0].restored_epoch is None
    assert h.runtime.placement()["S:0"] == h.hosts[1].host_id
