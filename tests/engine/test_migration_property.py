"""Property-based tests: migration transparency under randomized schedules.

The core §IV-A claim — a live migration neither loses nor duplicates any
event processing — must hold for any interleaving of event arrivals and
migration timing.  Hypothesis drives randomized schedules through the
protocol.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine import MigrationCosts

from .helpers import Harness, CountingState, Forwarder, Recorder


@settings(max_examples=25, deadline=None)
@given(
    gaps_ms=st.lists(st.integers(0, 8), min_size=20, max_size=60),
    migration_start_ms=st.integers(0, 120),
    cost_us=st.sampled_from([0, 500, 2000]),
    parallelism=st.sampled_from([1, 2, 8]),
)
def test_stateful_migration_is_exactly_once(
    gaps_ms, migration_start_ms, cost_us, parallelism
):
    h = Harness(
        hosts=2,
        cores=4,
        migration_costs=MigrationCosts(
            pre_s=0.02, post_s=0.02,
            serialize_s_per_byte=1e-9, deserialize_s_per_byte=1e-9,
        ),
    )
    h.runtime.add_operator(
        "S",
        1,
        lambda i: CountingState(bytes_per_entry=300, cost_s=cost_us / 1e6),
        parallelism=parallelism,
    )
    h.runtime.deploy_operator("S", [h.hosts[0]])

    def feeder():
        for index, gap in enumerate(gaps_ms):
            h.runtime.inject("client", "S", "add", (index, index), 80, key=0)
            yield h.env.timeout(gap / 1000.0)

    def migrator():
        yield h.env.timeout(migration_start_ms / 1000.0)
        yield h.runtime.migrate("S:0", h.hosts[1])

    h.env.process(feeder())
    h.env.process(migrator())
    h.env.run()
    # Every injected event applied exactly once, none lost.
    assert h.handler("S:0").values == {i: i for i in range(len(gaps_ms))}
    assert h.runtime.placement()["S:0"] == h.hosts[1].host_id


@settings(max_examples=15, deadline=None)
@given(
    n_events=st.integers(10, 80),
    migration_starts_ms=st.tuples(st.integers(0, 60), st.integers(120, 200)),
)
def test_two_consecutive_migrations_keep_downstream_stream_intact(
    n_events, migration_starts_ms
):
    """Migrate a forwarding slice twice; the downstream recorder must see
    every payload exactly once with continuous sequence numbers."""
    h = Harness(hosts=3, cores=4, migration_costs=MigrationCosts(
        pre_s=0.02, post_s=0.02, serialize_s_per_byte=0, deserialize_s_per_byte=0
    ))
    h.runtime.add_operator("A", 1, lambda i: Forwarder("B", cost_s=0.001), parallelism=2)
    h.runtime.add_operator("B", 1, lambda i: Recorder(), parallelism=2)
    h.runtime.deploy_operator("A", [h.hosts[0]])
    h.runtime.deploy_operator("B", [h.hosts[2]])

    def feeder():
        for index in range(n_events):
            h.runtime.inject("client", "A", "e", index, 80, key=0)
            yield h.env.timeout(0.004)

    def migrator():
        yield h.env.timeout(migration_starts_ms[0] / 1000.0)
        yield h.runtime.migrate("A:0", h.hosts[1])
        yield h.env.timeout(
            max(0.0, (migration_starts_ms[1] - migration_starts_ms[0]) / 1000.0)
        )
        yield h.runtime.migrate("A:0", h.hosts[0])

    h.env.process(feeder())
    h.env.process(migrator())
    h.env.run()
    received = [p for (_, _, p) in h.handler("B:0").received]
    assert sorted(received) == list(range(n_events))
    assert len(received) == n_events
    # Downstream sequence numbers are continuous across both migrations.
    assert h.runtime.sent_cutoffs("B:0")["A:0"] == n_events - 1
