"""Unit tests for operator declaration, deployment and routing."""

import pytest

from repro.engine import BROADCAST
from .helpers import Harness, Recorder, Forwarder


def test_add_operator_creates_logical_slices():
    h = Harness()
    h.runtime.add_operator("M", 4, lambda i: Recorder())
    assert h.runtime.slice_count("M") == 4
    assert h.runtime.slice_ids("M") == ["M:0", "M:1", "M:2", "M:3"]


def test_duplicate_operator_rejected():
    h = Harness()
    h.runtime.add_operator("M", 1, lambda i: Recorder())
    with pytest.raises(ValueError):
        h.runtime.add_operator("M", 2, lambda i: Recorder())


def test_invalid_slice_count_rejected():
    h = Harness()
    with pytest.raises(ValueError):
        h.runtime.add_operator("X", 0, lambda i: Recorder())


def test_deploy_operator_round_robin():
    h = Harness(hosts=2)
    h.runtime.add_operator("M", 4, lambda i: Recorder())
    h.runtime.deploy_operator("M", h.hosts)
    placement = h.runtime.placement()
    assert placement["M:0"] == h.hosts[0].host_id
    assert placement["M:1"] == h.hosts[1].host_id
    assert placement["M:2"] == h.hosts[0].host_id
    assert placement["M:3"] == h.hosts[1].host_id


def test_double_deploy_rejected():
    h = Harness()
    h.runtime.add_operator("M", 1, lambda i: Recorder())
    h.runtime.deploy("M:0", h.hosts[0])
    with pytest.raises(RuntimeError):
        h.runtime.deploy("M:0", h.hosts[1])


def test_route_by_key_uses_modulo_hashing():
    h = Harness()
    h.runtime.add_operator("M", 4, lambda i: Recorder())
    h.runtime.deploy_operator("M", h.hosts)
    for key in range(8):
        h.runtime.inject("client", "M", "e", key, 100, key=key)
    h.env.run()
    for index in range(4):
        handler = h.handler(f"M:{index}")
        assert [p for (_, _, p) in handler.received] == [index, index + 4]


def test_route_broadcast_reaches_all_slices():
    h = Harness()
    h.runtime.add_operator("M", 3, lambda i: Recorder())
    h.runtime.deploy_operator("M", h.hosts)
    h.runtime.inject("client", "M", "e", "hello", 100, key=BROADCAST)
    h.env.run()
    for index in range(3):
        assert [p for (_, _, p) in h.handler(f"M:{index}").received] == ["hello"]


def test_sequence_numbers_increase_per_channel():
    h = Harness()
    h.runtime.add_operator("M", 2, lambda i: Recorder())
    h.runtime.deploy_operator("M", h.hosts)
    for _ in range(3):
        h.runtime.inject("clientA", "M", "e", "x", 100, key=0)
    h.runtime.inject("clientB", "M", "e", "y", 100, key=0)
    h.env.run()
    assert h.runtime.sent_cutoffs("M:0") == {"clientA": 2, "clientB": 0}
    assert h.runtime.sent_cutoffs("M:1") == {}


def test_slice_to_slice_forwarding():
    h = Harness()
    h.runtime.add_operator("A", 1, lambda i: Forwarder("B"))
    h.runtime.add_operator("B", 2, lambda i: Recorder())
    h.runtime.deploy_operator("A", [h.hosts[0]])
    h.runtime.deploy_operator("B", [h.hosts[1]])
    for value in range(6):
        h.runtime.inject("client", "A", "e", value, 100, key=0)
    h.env.run()
    received = []
    for index in range(2):
        received += [p for (_, _, p) in h.handler(f"B:{index}").received]
    assert sorted(received) == list(range(6))


def test_route_to_unknown_operator_raises():
    h = Harness()
    with pytest.raises(KeyError):
        h.runtime.inject("client", "nope", "e", 1, 100, key=0)


def test_route_to_undeployed_slice_raises():
    h = Harness()
    h.runtime.add_operator("M", 1, lambda i: Recorder())
    with pytest.raises(RuntimeError):
        h.runtime.inject("client", "M", "e", 1, 100, key=0)


def test_events_processed_in_fifo_order_single_worker():
    h = Harness()
    h.runtime.add_operator("M", 1, lambda i: Recorder(cost_s=0.010), parallelism=1)
    h.runtime.deploy_operator("M", h.hosts)
    for value in range(5):
        h.runtime.inject("client", "M", "e", value, 100, key=0)
    h.env.run()
    assert [p for (_, _, p) in h.handler("M:0").received] == [0, 1, 2, 3, 4]


def test_slice_stats_reports_state_and_queue():
    h = Harness()
    h.runtime.add_operator("M", 1, lambda i: Recorder())
    h.runtime.deploy_operator("M", h.hosts)
    h.runtime.inject("client", "M", "e", 1, 100, key=0)
    h.env.run()
    stats = h.runtime.slice_stats("M:0")
    assert stats["processed"] == 1
    assert stats["queue_length"] == 0
    assert stats["migrating"] is False
    assert stats["host"] == h.hosts[0].host_id


def test_handler_cost_charged_on_host_cpu():
    h = Harness(hosts=1, cores=2)
    h.runtime.add_operator("M", 1, lambda i: Recorder(cost_s=0.5))
    h.runtime.deploy_operator("M", h.hosts)
    before = h.hosts[0].cpu.snapshot()
    for _ in range(4):
        h.runtime.inject("client", "M", "e", 1, 100, key=0)
    h.env.run()
    assert h.hosts[0].cpu.busy_core_seconds() == 2.0
    usage = h.hosts[0].cpu.tag_core_usage_between(before)
    assert "M:0" in usage
