"""Tests for passive replication: retention, checkpoints, crash recovery."""

import pytest

from repro.engine import (
    Checkpoint,
    CheckpointStore,
    MigrationCosts,
    ReliabilityCoordinator,
    RetentionBuffer,
    RetentionLog,
    StreamEvent,
)

from .helpers import Harness, CountingState, Forwarder, Recorder

FAST = MigrationCosts(pre_s=0.01, post_s=0.01,
                      serialize_s_per_byte=1e-9, deserialize_s_per_byte=1e-9)


def ev(seq, source="s", payload=None):
    return StreamEvent("e", payload if payload is not None else seq,
                       source, seq, 100, 0.0)


class TestRetentionBuffer:
    def test_append_and_suffix(self):
        buffer = RetentionBuffer()
        for seq in range(5):
            buffer.append(ev(seq))
        assert len(buffer) == 5
        assert [e.seq for e in buffer.suffix_after(2)] == [3, 4]
        assert buffer.highest_seq == 4

    def test_prune(self):
        buffer = RetentionBuffer()
        for seq in range(5):
            buffer.append(ev(seq))
        assert buffer.prune_through(2) == 3
        assert [e.seq for e in buffer.suffix_after(-1)] == [3, 4]

    def test_duplicate_seq_skipped(self):
        buffer = RetentionBuffer()
        buffer.append(ev(0))
        buffer.append(ev(1))
        buffer.append(ev(1))  # regenerated during recovery
        assert len(buffer) == 2

    def test_bytes_retained(self):
        buffer = RetentionBuffer()
        buffer.append(ev(0))
        assert buffer.bytes_retained == 100

    def test_empty_buffer(self):
        buffer = RetentionBuffer()
        assert buffer.highest_seq == -1
        assert buffer.suffix_after(0) == []
        assert buffer.prune_through(10) == 0


class TestRetentionLog:
    def test_record_and_channels(self):
        log = RetentionLog()
        log.record("a", "x", ev(0, "a"))
        log.record("b", "x", ev(0, "b"))
        log.record("a", "y", ev(1, "a"))
        channels = dict(log.channels_to("x"))
        assert set(channels) == {"a", "b"}
        assert log.total_events() == 3
        assert log.total_bytes() == 300

    def test_prune_for_destination(self):
        log = RetentionLog()
        for seq in range(4):
            log.record("a", "x", ev(seq, "a"))
            log.record("a", "y", ev(seq, "a"))
        dropped = log.prune_for_destination("x", {"a": 2})
        assert dropped == 3
        assert log.total_events() == 5  # channel to y untouched


class TestCheckpointStore:
    def test_put_get_latest(self):
        store = CheckpointStore()
        c1 = Checkpoint("S:0", 1, 0.0, {"a": 1}, {}, {}, 100)
        store.put(c1)
        c2 = Checkpoint("S:0", 2, 5.0, {"a": 2}, {}, {}, 120)
        store.put(c2)
        assert store.get("S:0").state == {"a": 2}
        assert store.checkpoints_stored == 2
        assert len(store) == 1
        assert store.slices() == ["S:0"]

    def test_stale_epoch_rejected(self):
        store = CheckpointStore()
        store.put(Checkpoint("S:0", 2, 0.0, None, {}, {}, 0))
        with pytest.raises(ValueError):
            store.put(Checkpoint("S:0", 1, 1.0, None, {}, {}, 0))

    def test_get_unknown_is_none(self):
        assert CheckpointStore().get("nope") is None


def make_reliable_harness(checkpoint_interval=5.0):
    h = Harness(hosts=3, cores=4, migration_costs=FAST)
    h.runtime.add_operator(
        "S", 1, lambda i: CountingState(bytes_per_entry=200, cost_s=0.001)
    )
    h.runtime.deploy_operator("S", [h.hosts[0]])
    spare = [h.hosts[2]]
    coordinator = ReliabilityCoordinator(
        h.runtime,
        interval_s=checkpoint_interval,
        replacement_host_fn=lambda: spare[0],
    )
    return h, coordinator


class TestCheckpointing:
    def test_checkpoint_captures_state_vector_and_counters(self):
        h, coordinator = make_reliable_harness()
        for i in range(10):
            h.runtime.inject("client", "S", "add", (i, i), 100, key=0)
        h.env.run()
        process = coordinator.checkpoint_now("S:0")
        h.env.run()
        checkpoint = coordinator.store.get("S:0")
        assert checkpoint is not None
        assert checkpoint.state == {i: i for i in range(10)}
        assert checkpoint.vector == {"client": 9}
        assert checkpoint.epoch == 1
        assert process.value is checkpoint

    def test_checkpoint_prunes_retention(self):
        h, coordinator = make_reliable_harness()
        for i in range(10):
            h.runtime.inject("client", "S", "add", (i, i), 100, key=0)
        h.env.run()
        assert h.runtime.retention.total_events() == 10
        coordinator.checkpoint_now("S:0")
        h.env.run()
        assert h.runtime.retention.total_events() == 0

    def test_periodic_checkpoints_advance_epochs(self):
        h, coordinator = make_reliable_harness(checkpoint_interval=2.0)
        coordinator.start(["S:0"])
        h.runtime.inject("client", "S", "add", (1, 1), 100, key=0)
        h.env.run(until=11.0)
        assert coordinator.store.get("S:0").epoch >= 4

    def test_start_twice_rejected(self):
        h, coordinator = make_reliable_harness()
        coordinator.start(["S:0"])
        with pytest.raises(RuntimeError):
            coordinator.start(["S:0"])
        with pytest.raises(ValueError):
            ReliabilityCoordinator(h.runtime, interval_s=0)


class TestCrashRecovery:
    def test_recovery_restores_state_exactly_once(self):
        h, coordinator = make_reliable_harness()
        total = 200

        def feeder():
            for i in range(total):
                h.runtime.inject("client", "S", "add", (i, i), 100, key=0)
                yield h.env.timeout(0.01)

        def crasher():
            yield h.env.timeout(0.8)
            yield coordinator.checkpoint_now("S:0")
            yield h.env.timeout(0.3)  # more events after the checkpoint
            # Crash the host abruptly and recover.
            h.runtime.slices["S:0"].active.host.release()
            yield coordinator.handle_host_crash(h.hosts[0])

        h.env.process(feeder())
        h.env.process(crasher())
        h.env.run()
        handler = h.handler("S:0")
        assert handler.values == {i: i for i in range(total)}
        assert h.runtime.placement()["S:0"] == h.hosts[2].host_id
        assert len(coordinator.recovery_reports) == 1
        report = coordinator.recovery_reports[0]
        assert report.restored_epoch == 1
        assert report.replayed_events > 0

    def test_recovery_without_any_checkpoint_replays_everything(self):
        h, coordinator = make_reliable_harness()
        total = 50

        def feeder():
            for i in range(total):
                h.runtime.inject("client", "S", "add", (i, i), 100, key=0)
                yield h.env.timeout(0.01)

        def crasher():
            yield h.env.timeout(0.3)
            h.runtime.slices["S:0"].active.host.release()
            yield coordinator.handle_host_crash(h.hosts[0])

        h.env.process(feeder())
        h.env.process(crasher())
        h.env.run()
        assert h.handler("S:0").values == {i: i for i in range(total)}
        assert coordinator.recovery_reports[0].restored_epoch is None

    def test_downstream_deduplicates_replayed_emissions(self):
        """A recovered forwarder re-emits; the downstream recorder must not
        see duplicates."""
        h = Harness(hosts=3, cores=4, migration_costs=FAST)
        h.runtime.add_operator("A", 1, lambda i: Forwarder("B", cost_s=0.001))
        h.runtime.add_operator("B", 1, lambda i: Recorder())
        h.runtime.deploy_operator("A", [h.hosts[0]])
        h.runtime.deploy_operator("B", [h.hosts[1]])
        coordinator = ReliabilityCoordinator(
            h.runtime, interval_s=100.0, replacement_host_fn=lambda: h.hosts[2]
        )
        total = 100

        def feeder():
            for i in range(total):
                h.runtime.inject("client", "A", "e", i, 100, key=0)
                yield h.env.timeout(0.01)

        def crasher():
            yield h.env.timeout(0.4)
            yield coordinator.checkpoint_now("A:0")
            yield h.env.timeout(0.2)
            h.runtime.slices["A:0"].active.host.release()
            yield coordinator.handle_host_crash(h.hosts[0])

        h.env.process(feeder())
        h.env.process(crasher())
        h.env.run()
        received = [p for (_, _, p) in h.handler("B:0").received]
        assert sorted(received) == list(range(total))
        assert len(received) == total
        # Deduplication actually kicked in at B.
        assert h.runtime.slices["B:0"].active.dropped_replays > 0

    def test_events_lost_in_detection_window_are_replayed(self):
        """Events sent between the crash and its detection are lost on the
        wire but recovered from retention."""
        h, coordinator = make_reliable_harness()

        def scenario():
            for i in range(20):
                h.runtime.inject("client", "S", "add", (i, i), 100, key=0)
            yield h.env.timeout(1.0)
            # Crash; events 20..39 are sent while the failure is undetected.
            h.runtime.slices["S:0"].active.destroy()
            h.runtime.slices["S:0"].active.host.release()
            for i in range(20, 40):
                h.runtime.inject("client", "S", "add", (i, i), 100, key=0)
            yield h.env.timeout(1.0)  # detection delay elapses
            yield coordinator.handle_host_crash(h.hosts[0])

        h.env.process(scenario())
        h.env.run()
        assert h.handler("S:0").values == {i: i for i in range(40)}
