"""Tests for shard split/merge as a first-class runtime operation."""

from dataclasses import dataclass
from typing import Optional

import pytest

from repro.engine import MigrationCosts, MigrationError, ShardOpReport
from repro.telemetry import Telemetry

from .helpers import Harness, Recorder

FAST = MigrationCosts(
    pre_s=0.01, post_s=0.01,
    serialize_s_per_byte=1e-9, deserialize_s_per_byte=1e-9,
)


@dataclass(frozen=True)
class FakeShardOp:
    pivot_key: Optional[int]
    moved_subscriptions: int
    rows_rewritten: int
    bytes_rewritten: int
    shards_before: int
    shards_after: int


class ShardableRecorder(Recorder):
    """A recorder whose state can split/merge like a sharded matcher."""

    def __init__(self, splittable=True):
        super().__init__()
        self.shards = 1
        self.splittable = splittable

    def shard_count(self):
        return self.shards

    def can_reshard(self, op):
        if op == "split":
            return self.splittable
        return self.shards >= 2

    def adopt_from(self, other):
        self.shards = other.shards
        self.received = other.received

    def reshard(self, op, shard_index=None, pivot_key=None):
        before = self.shards
        if op == "split":
            self.shards += 1
            return FakeShardOp(pivot_key=pivot_key or 42,
                               moved_subscriptions=5, rows_rewritten=10,
                               bytes_rewritten=1000, shards_before=before,
                               shards_after=self.shards)
        self.shards -= 1
        return FakeShardOp(pivot_key=None, moved_subscriptions=5,
                           rows_rewritten=0, bytes_rewritten=0,
                           shards_before=before, shards_after=self.shards)


def deploy(h, handler_factory):
    h.runtime.add_operator("S", 1, handler_factory)
    h.runtime.deploy_operator("S", [h.hosts[0]])


def run_reshard(h, op, **kwargs):
    process = h.runtime.reshard("S:0", op, **kwargs)
    h.env.run()
    assert process.ok, process.value
    return process.value


def test_split_produces_report_and_swaps_instance():
    h = Harness(hosts=1, migration_costs=FAST)
    deploy(h, lambda i: ShardableRecorder())
    old = h.handler("S:0")
    report = run_reshard(h, "split", pivot_key=7)
    new = h.handler("S:0")
    assert isinstance(report, ShardOpReport)
    assert new is not old  # migration protocol: a twin took over
    assert new.shards == 2
    assert report.op == "split" and report.slice_id == "S:0"
    assert report.host == h.hosts[0].host_id
    assert report.pivot_key == 7
    assert (report.shards_before, report.shards_after) == (1, 2)
    assert report.rows_rewritten == 10
    assert report.state_bytes == 1000
    assert report.duration_s >= 0.02  # pre + post phases
    assert report.interruption_s < report.duration_s
    assert h.runtime.shard_ops_completed == 1
    assert h.runtime.migrations_completed == 0  # counted separately


def test_merge_after_split_and_slice_stats_shards():
    h = Harness(hosts=1, migration_costs=FAST)
    deploy(h, lambda i: ShardableRecorder())
    run_reshard(h, "split")
    assert h.runtime.slice_stats("S:0")["shards"] == 2
    report = run_reshard(h, "merge")
    assert report.op == "merge"
    assert report.state_bytes == 0  # chunk adoption costs no CPU
    assert h.handler("S:0").shards == 1
    assert h.runtime.slice_stats("S:0")["shards"] == 1
    assert h.runtime.shard_ops_completed == 2


def test_events_survive_a_reshard():
    h = Harness(hosts=1, cores=4, migration_costs=FAST)
    deploy(h, lambda i: ShardableRecorder())

    def feeder():
        for value in range(30):
            h.runtime.inject("client", "S", "e", value, 100, key=value)
            yield h.env.timeout(0.002)

    def resharder():
        yield h.env.timeout(0.02)
        yield h.runtime.reshard("S:0", "split")

    h.env.process(feeder())
    h.env.process(resharder())
    h.env.run()
    received = [p for (_, _, p) in h.handler("S:0").received]
    assert sorted(received) == list(range(30))


def test_reshard_validation_errors():
    h = Harness(hosts=1, migration_costs=FAST)
    deploy(h, lambda i: ShardableRecorder(splittable=False))

    def expect_error(slice_id, op, match):
        process = h.runtime.reshard(slice_id, op)
        with pytest.raises(MigrationError, match=match):
            h.env.run()
        assert not process.ok

    expect_error("S:0", "rotate", "unknown shard operation")
    expect_error("X:0", "split", "unknown slice")
    expect_error("S:0", "split", "cannot split")  # handler refuses
    expect_error("S:0", "merge", "cannot merge")  # only one shard


def test_plain_handler_cannot_reshard():
    h = Harness(hosts=1, migration_costs=FAST)
    deploy(h, lambda i: Recorder())
    process = h.runtime.reshard("S:0", "split")
    with pytest.raises(MigrationError):
        h.env.run()
    assert not process.ok


def test_reshard_emits_phase_spans():
    h = Harness(hosts=1, migration_costs=FAST)
    telemetry = Telemetry(h.env)
    h.runtime.bind_telemetry(telemetry)
    deploy(h, lambda i: ShardableRecorder())
    run_reshard(h, "split")
    spans = {s.name: s for s in telemetry.tracer.spans}
    assert "reshard" in spans
    for phase in ("pre", "sync", "pause", "copy", "post"):
        assert f"reshard.{phase}" in spans
    root = spans["reshard"]
    assert root.attrs["op"] == "split"
    assert root.attrs["shards_after"] == 2
    # Phases tile the root span's duration.
    children = [s for s in telemetry.tracer.spans
                if s.name.startswith("reshard.")]
    total = sum(s.duration_s for s in children)
    assert total == pytest.approx(root.duration_s, rel=1e-6)
