"""Property test: the RW lock never violates mutual exclusion."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine import RWLock
from repro.sim import Environment


@settings(max_examples=40, deadline=None)
@given(
    ops=st.lists(
        st.tuples(
            st.sampled_from(["R", "W"]),
            st.integers(0, 5),   # arrival offset (ms)
            st.integers(1, 10),  # hold time (ms)
        ),
        min_size=1,
        max_size=15,
    )
)
def test_rwlock_invariants_under_random_schedules(ops):
    env = Environment()
    lock = RWLock(env)
    state = {"readers": 0, "writers": 0}
    violations = []

    def user(mode, offset, hold):
        yield env.timeout(offset / 1000.0)
        if not lock.try_acquire(mode):
            yield lock.acquire(mode)
        if mode == "R":
            state["readers"] += 1
        else:
            state["writers"] += 1
        # Invariants: at most one writer; never readers and a writer.
        if state["writers"] > 1:
            violations.append("two writers")
        if state["writers"] >= 1 and state["readers"] >= 1:
            violations.append("reader with writer")
        yield env.timeout(hold / 1000.0)
        if mode == "R":
            state["readers"] -= 1
        else:
            state["writers"] -= 1
        lock.release(mode)

    for mode, offset, hold in ops:
        env.process(user(mode, offset, hold))
    env.run()
    assert violations == []
    assert lock.idle
