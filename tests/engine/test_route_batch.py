"""route_batch: grouped transfers with per-event routing semantics.

The batch router must be observationally identical to calling ``route``
once per emission — same destinations, sequence numbers, retention
records and migration duplication — while collapsing each (source,
destination slice) group into one simulated network transfer.
"""

import pytest

from repro.engine import BROADCAST

from .helpers import Harness, Recorder


def emission(payload, key, operator="M", kind="e", size=100):
    return (operator, kind, payload, size, key)


def make_deployed(h, slices=4):
    h.runtime.add_operator("M", slices, lambda i: Recorder())
    h.runtime.deploy_operator("M", h.hosts)


def test_empty_batch_is_noop():
    h = Harness()
    make_deployed(h)
    h.runtime.route_batch("client", [])
    h.env.run()
    assert all(h.handler(f"M:{i}").received == [] for i in range(4))


def test_batch_routes_like_per_event():
    batched, plain = Harness(), Harness()
    make_deployed(batched)
    make_deployed(plain)
    emissions = [emission(payload=key * 10, key=key) for key in range(8)]
    batched.runtime.route_batch("client", emissions)
    for operator, kind, payload, size, key in emissions:
        plain.runtime.route("client", operator, kind, payload, size, key)
    batched.env.run()
    plain.env.run()
    for index in range(4):
        assert [
            p for (_, _, p) in batched.handler(f"M:{index}").received
        ] == [p for (_, _, p) in plain.handler(f"M:{index}").received]


def test_batch_assigns_per_channel_sequence_numbers():
    h = Harness()
    make_deployed(h, slices=2)
    h.runtime.route_batch(
        "client", [emission(payload=i, key=i % 2) for i in range(6)]
    )
    h.env.run()
    # Three events per slice, consecutively numbered from 0 per channel.
    for index in range(2):
        assert h.runtime.sent_cutoffs(f"M:{index}") == {"client": 2}


def test_batch_interleaves_with_per_event_sequencing():
    h = Harness()
    make_deployed(h, slices=1)
    # Attach the external sender's NIC so the shared watermark orders the
    # batch against the surrounding sends (slice-to-slice senders always
    # have one; unattached externals only pay their own serialization).
    h.cloud.network.attach("ext:client")
    h.runtime.route("client", "M", "e", "a", 100, key=0)
    h.runtime.route_batch("client", [emission("b", 0), emission("c", 0)])
    h.runtime.route("client", "M", "e", "d", 100, key=0)
    h.env.run()
    assert h.runtime.sent_cutoffs("M:0") == {"client": 3}
    assert [p for (_, _, p) in h.handler("M:0").received] == ["a", "b", "c", "d"]


def test_batch_broadcast_expands_to_all_slices():
    h = Harness()
    make_deployed(h)
    h.runtime.route_batch(
        "client", [emission("pub", BROADCAST), emission("sub", key=1)]
    )
    h.env.run()
    for index in range(4):
        expected = ["pub", "sub"] if index == 1 else ["pub"]
        assert [p for (_, _, p) in h.handler(f"M:{index}").received] == expected


def test_batch_group_is_one_network_message():
    h = Harness(hosts=1)
    make_deployed(h, slices=2)
    before = h.cloud.network.stats(f"ext:client").snapshot()
    h.runtime.route_batch(
        "client", [emission(payload=i, key=i % 2) for i in range(10)]
    )
    h.env.run()
    stats = h.cloud.network.stats("ext:client")
    # Two destination slices on the same host: two batched transfers of
    # five events each, not ten messages' worth of transfers.
    assert stats.batches_sent - before.batches_sent == 2
    assert stats.messages_sent - before.messages_sent == 10


def test_batch_preserves_retention_records():
    batched, plain = Harness(), Harness()
    for h in (batched, plain):
        make_deployed(h, slices=2)
        h.runtime.enable_retention()
    emissions = [emission(payload=i, key=i) for i in range(6)]
    batched.runtime.route_batch("client", emissions)
    for operator, kind, payload, size, key in emissions:
        plain.runtime.route("client", operator, kind, payload, size, key)
    batched.env.run()
    plain.env.run()
    for index in range(2):
        b = dict(batched.runtime.retention.channels_to(f"M:{index}"))["client"]
        p = dict(plain.runtime.retention.channels_to(f"M:{index}"))["client"]
        assert [(e.seq, e.payload) for e in b.suffix_after(-1)] == [
            (e.seq, e.payload) for e in p.suffix_after(-1)
        ]


def test_batch_duplicates_to_pending_instance_during_migration():
    h = Harness(hosts=2)
    h.runtime.add_operator("M", 1, lambda i: Recorder(cost_s=0.2))
    h.runtime.deploy("M:0", h.hosts[0])
    origin = h.handler("M:0")
    # Give the slice a backlog so the migration's catch-up window is open.
    for i in range(30):
        h.runtime.route("client", "M", "e", i, 100, key=0)
    h.runtime.migrate("M:0", h.hosts[1])
    h.env.run(until=h.env.now + 0.5)  # past the pre-phase, inside catch-up
    logical = h.runtime.slices["M:0"]
    assert logical.pending is not None  # duplication window is live
    h.runtime.route_batch(
        "client", [emission("x", 0), emission("y", 0), emission("z", 0)]
    )
    h.env.run()
    assert logical.pending is None
    destination = h.handler("M:0")
    assert destination is not origin
    # Exactly-once across the hand-over: the batched events were
    # duplicated to both instances and the sequence-number filter dropped
    # the copies the origin already covered.
    combined = [p for (_, _, p) in origin.received] + [
        p for (_, _, p) in destination.received
    ]
    assert sorted(combined, key=str) == sorted(
        list(range(30)) + ["x", "y", "z"], key=str
    )


def test_batch_unknown_operator_rejected():
    h = Harness()
    make_deployed(h)
    with pytest.raises(KeyError):
        h.runtime.route_batch("client", [emission("a", 0, operator="NOPE")])


def test_batch_undeployed_slice_rejected():
    h = Harness()
    h.runtime.add_operator("X", 1, lambda i: Recorder())
    with pytest.raises(RuntimeError):
        h.runtime.route_batch("client", [emission("a", 0, operator="X")])
