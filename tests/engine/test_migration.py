"""Tests for live slice migration: correctness and cost shape."""

import pytest

from repro.engine import MigrationCosts, MigrationError
from .helpers import Harness, Recorder, CountingState, Forwarder

FAST = MigrationCosts(pre_s=0.01, post_s=0.01, serialize_s_per_byte=0, deserialize_s_per_byte=0)


def run_migration(h, slice_id, dest):
    proc = h.runtime.migrate(slice_id, dest)
    h.env.run()
    assert proc.ok
    return proc.value


def test_stateless_migration_moves_placement():
    h = Harness(hosts=2, migration_costs=FAST)
    h.runtime.add_operator("A", 1, lambda i: Recorder())
    h.runtime.deploy_operator("A", [h.hosts[0]])
    report = run_migration(h, "A:0", h.hosts[1])
    assert h.runtime.placement()["A:0"] == h.hosts[1].host_id
    assert report.source_host == h.hosts[0].host_id
    assert report.destination_host == h.hosts[1].host_id
    assert report.state_bytes == 0
    assert report.duration_s == pytest.approx(0.02, abs=1e-6)
    assert h.runtime.migrations_completed == 1


def test_stateful_migration_transfers_state():
    h = Harness(hosts=2, migration_costs=FAST)
    h.runtime.add_operator("S", 1, lambda i: CountingState(bytes_per_entry=1000))
    h.runtime.deploy_operator("S", [h.hosts[0]])
    for i in range(10):
        h.runtime.inject("client", "S", "add", (i, i * i), 100, key=0)
    h.env.run()
    old_handler = h.handler("S:0")
    report = run_migration(h, "S:0", h.hosts[1])
    new_handler = h.handler("S:0")
    assert new_handler is not old_handler
    assert new_handler.values == {i: i * i for i in range(10)}
    assert report.state_bytes == 10 * 1000


def test_events_during_migration_processed_exactly_once():
    h = Harness(hosts=2, cores=8, migration_costs=MigrationCosts(
        pre_s=0.05, post_s=0.05, serialize_s_per_byte=1e-8, deserialize_s_per_byte=1e-8
    ))
    h.runtime.add_operator("A", 1, lambda i: Forwarder("B", cost_s=0.002), parallelism=2)
    h.runtime.add_operator("B", 1, lambda i: Recorder(), parallelism=2)
    h.runtime.deploy_operator("A", [h.hosts[0]])
    h.runtime.deploy_operator("B", [h.hosts[0]])
    total = 200

    def feeder():
        for value in range(total):
            h.runtime.inject("client", "A", "e", value, 100, key=0)
            yield h.env.timeout(0.003)

    def migrator():
        yield h.env.timeout(0.15)
        yield h.runtime.migrate("A:0", h.hosts[1])

    h.env.process(feeder())
    h.env.process(migrator())
    h.env.run()
    received = [p for (_, _, p) in h.handler("B:0").received]
    assert sorted(received) == list(range(total))
    assert len(received) == total  # no duplicates
    assert h.runtime.placement()["A:0"] == h.hosts[1].host_id


def test_stateful_migration_under_flow_loses_nothing():
    h = Harness(hosts=2, cores=8, migration_costs=MigrationCosts(
        pre_s=0.05, post_s=0.05, serialize_s_per_byte=1e-9, deserialize_s_per_byte=1e-9
    ))
    h.runtime.add_operator(
        "S", 1, lambda i: CountingState(bytes_per_entry=500, cost_s=0.001)
    )
    h.runtime.deploy_operator("S", [h.hosts[0]])
    total = 300

    def feeder():
        for i in range(total):
            h.runtime.inject("client", "S", "add", (i, i), 100, key=0)
            yield h.env.timeout(0.002)

    def migrator():
        yield h.env.timeout(0.2)
        yield h.runtime.migrate("S:0", h.hosts[1])

    h.env.process(feeder())
    h.env.process(migrator())
    h.env.run()
    assert h.handler("S:0").values == {i: i for i in range(total)}


def test_migration_time_grows_with_state_size():
    costs = MigrationCosts(pre_s=0.11, post_s=0.11,
                           serialize_s_per_byte=4.9e-9, deserialize_s_per_byte=4.9e-9)

    def measure(entries):
        h = Harness(hosts=2, migration_costs=costs)
        h.runtime.add_operator("S", 1, lambda i: CountingState(bytes_per_entry=4096))
        h.runtime.deploy_operator("S", [h.hosts[0]])
        for i in range(entries):
            h.runtime.inject("client", "S", "add", (i, i), 100, key=0)
        h.env.run()
        return run_migration(h, "S:0", h.hosts[1]).duration_s

    small = measure(0)
    medium = measure(500)
    large = measure(2000)
    assert small < medium < large
    assert small == pytest.approx(0.22, abs=0.01)  # stateless ≈ overhead only


def test_migration_interruption_shorter_than_total():
    h = Harness(hosts=2)
    h.runtime.add_operator("S", 1, lambda i: CountingState(bytes_per_entry=4096))
    h.runtime.deploy_operator("S", [h.hosts[0]])
    for i in range(100):
        h.runtime.inject("client", "S", "add", (i, i), 100, key=0)
    h.env.run()
    report = run_migration(h, "S:0", h.hosts[1])
    assert 0 < report.interruption_s < report.duration_s


def test_migrate_to_same_host_rejected():
    h = Harness(hosts=1)
    h.runtime.add_operator("A", 1, lambda i: Recorder())
    h.runtime.deploy_operator("A", h.hosts)
    proc = h.runtime.migrate("A:0", h.hosts[0])
    with pytest.raises(MigrationError):
        h.env.run()
    assert not proc.ok


def test_migrate_unknown_slice_rejected():
    h = Harness(hosts=2)
    h.runtime.migrate("nope:0", h.hosts[1])
    with pytest.raises(MigrationError):
        h.env.run()


def test_migrate_undeployed_slice_rejected():
    h = Harness(hosts=2)
    h.runtime.add_operator("A", 1, lambda i: Recorder())
    h.runtime.migrate("A:0", h.hosts[1])
    with pytest.raises(MigrationError):
        h.env.run()


def test_concurrent_migration_of_same_slice_rejected():
    h = Harness(hosts=3)
    h.runtime.add_operator(
        "S", 1, lambda i: CountingState(bytes_per_entry=4096)
    )
    h.runtime.deploy_operator("S", [h.hosts[0]])
    for i in range(1000):
        h.runtime.inject("client", "S", "add", (i, i), 100, key=0)
    h.env.run()
    h.runtime.migrate("S:0", h.hosts[1])
    failures = []

    def second():
        yield h.env.timeout(0.15)  # first migration still in progress
        try:
            yield h.runtime.migrate("S:0", h.hosts[2])
        except MigrationError as exc:
            failures.append(str(exc))

    h.env.process(second())
    h.env.run()
    assert failures and "already migrating" in failures[0]


def test_migration_to_released_host_rejected():
    h = Harness(hosts=2)
    h.runtime.add_operator("A", 1, lambda i: Recorder())
    h.runtime.deploy_operator("A", [h.hosts[0]])
    h.cloud.release(h.hosts[1])
    h.runtime.migrate("A:0", h.hosts[1])
    with pytest.raises(MigrationError):
        h.env.run()


def test_sequence_counters_survive_migration():
    """Downstream consumers keep a continuous sequence stream."""
    h = Harness(hosts=2, migration_costs=FAST)
    h.runtime.add_operator("A", 1, lambda i: Forwarder("B"))
    h.runtime.add_operator("B", 1, lambda i: Recorder())
    h.runtime.deploy_operator("A", [h.hosts[0]])
    h.runtime.deploy_operator("B", [h.hosts[1]])
    h.runtime.inject("client", "A", "e", 1, 100, key=0)
    h.env.run()
    run_migration(h, "A:0", h.hosts[1])
    h.runtime.inject("client", "A", "e", 2, 100, key=0)
    h.env.run()
    assert h.runtime.sent_cutoffs("B:0") == {"A:0": 1}
    instance = h.runtime.slices["B:0"].active
    assert instance.last_processed["A:0"] == 1
