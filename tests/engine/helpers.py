"""Shared test handlers and a small deployment harness for engine tests."""

from typing import Any, Dict, List, Optional

from repro.cluster import CloudProvider, HostSpec
from repro.engine import EngineRuntime, MigrationCosts, SliceHandler
from repro.sim import Environment


class Recorder(SliceHandler):
    """Stores every received payload (with receive time and source)."""

    def __init__(self, cost_s: float = 0.0):
        self.cost_s = cost_s
        self.received: List[Any] = []

    def cost(self, event):
        return self.cost_s

    def process(self, event, ctx):
        self.received.append((ctx.now, event.source, event.payload))


class CountingState(SliceHandler):
    """Stateful handler: accumulates values; migratable."""

    def __init__(self, bytes_per_entry: int = 100, cost_s: float = 0.0):
        self.bytes_per_entry = bytes_per_entry
        self.cost_s = cost_s
        self.values: Dict[Any, Any] = {}

    def cost(self, event):
        return self.cost_s

    def lock_mode(self, event):
        return "W"

    def process(self, event, ctx):
        key, value = event.payload
        self.values[key] = value

    def export_state(self):
        return dict(self.values)

    def import_state(self, state):
        self.values = dict(state or {})

    def state_size_bytes(self):
        return len(self.values) * self.bytes_per_entry


class Forwarder(SliceHandler):
    """Relays payloads to a downstream operator, hashed by payload."""

    def __init__(self, downstream: str, cost_s: float = 0.0, size_bytes: int = 100):
        self.downstream = downstream
        self.cost_s = cost_s
        self.size_bytes = size_bytes
        self.seen: List[Any] = []

    def cost(self, event):
        return self.cost_s

    def process(self, event, ctx):
        self.seen.append(event.payload)
        ctx.emit(self.downstream, event.kind, event.payload, self.size_bytes, key=hash(event.payload))


class Harness:
    """Environment + cloud + runtime with convenience accessors."""

    def __init__(
        self,
        hosts: int = 2,
        cores: int = 4,
        migration_costs: Optional[MigrationCosts] = None,
        transport_config=None,
    ):
        self.env = Environment()
        self.cloud = CloudProvider(
            self.env, spec=HostSpec(cores=cores), max_hosts=max(hosts, 30)
        )
        self.hosts = [self.cloud.provision_now() for _ in range(hosts)]
        self.runtime = EngineRuntime(
            self.env,
            self.cloud.network,
            migration_costs=migration_costs or MigrationCosts(),
            transport_config=transport_config,
        )

    def handler(self, slice_id):
        return self.runtime.handler_of(slice_id)
