"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


def test_parser_knows_all_commands():
    parser = build_parser()
    for command in ["figure1", "figure6", "table1", "figure7", "figure8",
                    "figure9", "ablations", "trace", "metrics", "policy",
                    "chaos"]:
        args = parser.parse_args([command])
        assert args.command == command


def test_chaos_argument_defaults():
    args = build_parser().parse_args(["chaos"])
    assert args.scenario == "all"
    assert args.rack_size == 2
    assert args.phase == "copy"
    assert args.trace is None


def test_chaos_help_lists_scenarios(capsys):
    with pytest.raises(SystemExit) as excinfo:
        build_parser().parse_args(["chaos", "--help"])
    assert excinfo.value.code == 0
    out = capsys.readouterr().out
    for token in ("rack-loss", "manager-crash", "partition", "all"):
        assert token in out


def test_chaos_rejects_unknown_scenario():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["chaos", "--scenario", "earthquake"])


def test_missing_command_errors():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_figure1_command_prints_trace(capsys):
    assert main(["figure1", "--resolution", "3600"]) == 0
    out = capsys.readouterr().out
    assert "Figure 1" in out
    assert "09.0h" in out or "9.0h" in out


def test_figure8_argument_defaults():
    args = build_parser().parse_args(["figure8"])
    assert args.time_scale == 0.25
    assert args.peak == 350.0


def test_table1_small_run_via_main(capsys, monkeypatch):
    # Shrink the experiment through its own knobs for a fast CLI check.
    import repro.cli as cli
    from repro.experiments import run_table1

    def tiny_table1(migrations_per_operator):
        return run_table1(
            migrations_per_operator=2,
            subscriptions_per_m_slice=(500,),
            settle_s=1.0,
        )

    monkeypatch.setattr("repro.experiments.run_table1", tiny_table1)
    assert cli.main(["table1", "--migrations", "2"]) == 0
    out = capsys.readouterr().out
    assert "Table I" in out
    assert "AP" in out and "EP" in out


def test_ablations_choice_validation():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["ablations", "--which", "bogus"])


def test_trace_command_writes_jsonl(capsys, tmp_path):
    from repro.telemetry import read_jsonl

    out = tmp_path / "trace.jsonl"
    assert main(["trace", "--out", str(out), "--publications", "20"]) == 0
    printed = capsys.readouterr().out
    assert "phase sum" in printed
    records = read_jsonl(str(out))
    names = {r["name"] for r in records}
    assert {"hop.AP", "hop.M", "hop.EP", "hop.SINK", "migration"} <= names
    assert all(r["end"] is not None for r in records)


def test_trace_command_without_migration(capsys, tmp_path):
    out = tmp_path / "trace.jsonl"
    assert main(["trace", "--out", str(out), "--publications", "10",
                 "--no-migration"]) == 0
    printed = capsys.readouterr().out
    assert "phase sum" not in printed
    assert out.exists()


def test_figure8_policy_flags_resolve_to_a_policy():
    from repro.cli import _policy_from_args

    args = build_parser().parse_args(
        ["figure8", "--signals", "cpu,slo", "--slo-p99-s", "0.5",
         "--no-backlog-aware-scaling"]
    )
    policy = _policy_from_args(args)
    assert policy.signals == ("cpu", "slo")
    assert policy.slo_p99_s == 0.5
    assert policy.backlog_aware_scaling is False
    # Unset flags fall through to defaults.
    assert policy.grace_period_s == 30.0


def test_figure8_policy_flags_beat_environment(monkeypatch):
    from repro.cli import _policy_from_args

    monkeypatch.setenv("REPRO_POLICY_MIN_HOSTS", "4")
    monkeypatch.setenv("REPRO_POLICY_SLO_P99_S", "9.0")
    args = build_parser().parse_args(["figure9", "--slo-p99-s", "0.25"])
    policy = _policy_from_args(args)
    assert policy.slo_p99_s == 0.25  # cli wins
    assert policy.min_hosts == 4     # env fills the gap


def test_policy_command_prints_provenance(capsys, monkeypatch):
    monkeypatch.setenv("REPRO_POLICY_SPILL_DEPTH_LIMIT", "60")
    assert main(["policy", "--signals", "cpu,slo,spill"]) == 0
    out = capsys.readouterr().out
    assert "signal stack: cpu > slo > spill" in out
    assert "cli" in out
    assert "env:REPRO_POLICY_SPILL_DEPTH_LIMIT" in out
    assert "symptom_target_fraction" in out


def test_policy_command_rejects_bad_signals(capsys):
    with pytest.raises(SystemExit):
        main(["policy", "--signals", "cpu,bogus"])


def test_metrics_command_renders_table(capsys):
    assert main(["metrics", "--publications", "20"]) == 0
    out = capsys.readouterr().out
    assert "engine_events_processed_total" in out
    assert "migrations_total" in out


def test_metrics_command_prometheus_output(capsys, tmp_path):
    out = tmp_path / "metrics.prom"
    assert main(["metrics", "--publications", "20", "--format", "prom",
                 "--out", str(out)]) == 0
    text = out.read_text()
    assert "# TYPE engine_events_processed_total counter" in text
    assert 'engine_events_processed_total{operator="M"}' in text
    assert "notification_delay_seconds_bucket" in text


def test_metrics_command_json_output(tmp_path):
    import json

    out = tmp_path / "metrics.json"
    assert main(["metrics", "--publications", "20", "--format", "json",
                 "--out", str(out)]) == 0
    snapshot = json.loads(out.read_text())
    assert snapshot["migrations_total"]["kind"] == "counter"
