"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


def test_parser_knows_all_commands():
    parser = build_parser()
    for command in ["figure1", "figure6", "table1", "figure7", "figure8",
                    "figure9", "ablations"]:
        args = parser.parse_args([command])
        assert args.command == command


def test_missing_command_errors():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_figure1_command_prints_trace(capsys):
    assert main(["figure1", "--resolution", "3600"]) == 0
    out = capsys.readouterr().out
    assert "Figure 1" in out
    assert "09.0h" in out or "9.0h" in out


def test_figure8_argument_defaults():
    args = build_parser().parse_args(["figure8"])
    assert args.time_scale == 0.25
    assert args.peak == 350.0


def test_table1_small_run_via_main(capsys, monkeypatch):
    # Shrink the experiment through its own knobs for a fast CLI check.
    import repro.cli as cli
    from repro.experiments import run_table1

    def tiny_table1(migrations_per_operator):
        return run_table1(
            migrations_per_operator=2,
            subscriptions_per_m_slice=(500,),
            settle_s=1.0,
        )

    monkeypatch.setattr("repro.experiments.run_table1", tiny_table1)
    assert cli.main(["table1", "--migrations", "2"]) == 0
    out = capsys.readouterr().out
    assert "Table I" in out
    assert "AP" in out and "EP" in out


def test_ablations_choice_validation():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["ablations", "--which", "bogus"])
