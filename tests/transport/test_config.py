"""TransportConfig validation and the shared REPRO_* env helpers."""

import pytest

from repro.config import env_bool, env_float, env_int, env_str
from repro.transport import FLUSH_MODES, TransportConfig


class TestEnvHelpers:
    def test_unset_keeps_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_TEST_KNOB", raising=False)
        assert env_int("REPRO_TEST_KNOB", 7) == 7
        assert env_float("REPRO_TEST_KNOB", 0.5) == 0.5
        assert env_bool("REPRO_TEST_KNOB", True) is True
        assert env_str("REPRO_TEST_KNOB", "dft") == "dft"

    def test_blank_keeps_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_TEST_KNOB", "   ")
        assert env_int("REPRO_TEST_KNOB", 7) == 7
        assert env_bool("REPRO_TEST_KNOB", False) is False

    def test_parses_values(self, monkeypatch):
        monkeypatch.setenv("REPRO_TEST_KNOB", " 42 ")
        assert env_int("REPRO_TEST_KNOB", 0) == 42
        monkeypatch.setenv("REPRO_TEST_KNOB", "0.25")
        assert env_float("REPRO_TEST_KNOB", 0.0) == 0.25

    @pytest.mark.parametrize("spelling,expected", [
        ("1", True), ("true", True), ("YES", True), ("On", True),
        ("0", False), ("false", False), ("NO", False), ("Off", False),
    ])
    def test_bool_spellings(self, monkeypatch, spelling, expected):
        monkeypatch.setenv("REPRO_TEST_KNOB", spelling)
        assert env_bool("REPRO_TEST_KNOB", not expected) is expected

    @pytest.mark.parametrize("helper,bad", [
        (env_int, "three"), (env_float, "fast"), (env_bool, "maybe"),
    ])
    def test_malformed_names_the_variable(self, monkeypatch, helper, bad):
        monkeypatch.setenv("REPRO_TEST_KNOB", bad)
        with pytest.raises(ValueError, match="REPRO_TEST_KNOB"):
            helper("REPRO_TEST_KNOB", 1)

    def test_str_choices_enforced(self, monkeypatch):
        monkeypatch.setenv("REPRO_TEST_KNOB", "bogus")
        with pytest.raises(ValueError, match="REPRO_TEST_KNOB"):
            env_str("REPRO_TEST_KNOB", "a", choices=("a", "b"))
        monkeypatch.setenv("REPRO_TEST_KNOB", "b")
        assert env_str("REPRO_TEST_KNOB", "a", choices=("a", "b")) == "b"


class TestTransportConfig:
    def test_defaults_are_the_seed_behaviour(self):
        config = TransportConfig()
        assert config.flush_mode == "eager"
        assert not config.backpressure
        assert not config.buffered

    @pytest.mark.parametrize("kwargs", [
        dict(flush_mode="sometimes"),
        dict(flush_s=-0.1),
        dict(flush_max_batch=0),
        dict(credit_window=0),
    ])
    def test_rejects_invalid(self, kwargs):
        with pytest.raises(ValueError):
            TransportConfig(**kwargs)

    def test_buffered_only_when_adaptive_accumulates(self):
        assert TransportConfig(flush_mode="adaptive", flush_s=0.01).buffered
        assert TransportConfig(flush_mode="adaptive", flush_max_batch=8).buffered
        assert not TransportConfig(
            flush_mode="adaptive", flush_s=0.0, flush_max_batch=1
        ).buffered
        assert not TransportConfig(flush_mode="fixed", flush_s=0.1).buffered

    def test_from_env_reads_all_knobs(self, monkeypatch):
        monkeypatch.setenv("REPRO_NET_FLUSH_MODE", "adaptive")
        monkeypatch.setenv("REPRO_NET_FLUSH_S", "0.02")
        monkeypatch.setenv("REPRO_NET_FLUSH_MAX_BATCH", "32")
        monkeypatch.setenv("REPRO_NET_BACKPRESSURE", "yes")
        monkeypatch.setenv("REPRO_NET_CREDIT_WINDOW", "12")
        config = TransportConfig.from_env()
        assert config == TransportConfig(
            flush_mode="adaptive",
            flush_s=0.02,
            flush_max_batch=32,
            backpressure=True,
            credit_window=12,
        )

    def test_from_env_rejects_unknown_mode(self, monkeypatch):
        monkeypatch.setenv("REPRO_NET_FLUSH_MODE", "lazy")
        with pytest.raises(ValueError, match="REPRO_NET_FLUSH_MODE"):
            TransportConfig.from_env()

    def test_flush_modes_tuple_is_stable(self):
        assert FLUSH_MODES == ("eager", "fixed", "adaptive")
