"""Unit tests of the flow-controlled transport channels.

Each test drives a small engine deployment through ``EngineRuntime`` so
channels sit exactly where production puts them — between the routing
layer and the network fabric — and asserts the channel-level contracts:
flush causes, credit accounting and conservation, shed-to-spill under
starvation, FIFO preservation, and teardown.
"""

from repro.transport import TransportConfig

from ..engine.helpers import Harness, Recorder


def make(transport_config=None, hosts=1, slices=1, cost_s=0.0):
    h = Harness(hosts=hosts, transport_config=transport_config)
    h.runtime.add_operator("M", slices, lambda i: Recorder(cost_s=cost_s))
    h.runtime.deploy_operator("M", h.hosts)
    return h


def route_n(h, n, key=0):
    for i in range(n):
        h.runtime.route("client", "M", "e", i, 100, key=key)


def payloads(h, slice_id="M:0"):
    return [p for (_, _, p) in h.handler(slice_id).received]


class TestPassthrough:
    def test_default_config_is_passthrough_with_no_channels(self, monkeypatch):
        # Built-in defaults, not the ambient environment (CI runs one
        # leg with REPRO_NET_BACKPRESSURE forced on).
        for name in (
            "REPRO_NET_FLUSH_MODE",
            "REPRO_NET_FLUSH_S",
            "REPRO_NET_FLUSH_MAX_BATCH",
            "REPRO_NET_BACKPRESSURE",
            "REPRO_NET_CREDIT_WINDOW",
        ):
            monkeypatch.delenv(name, raising=False)
        h = make()
        assert h.runtime.transport.passthrough
        route_n(h, 5)
        h.env.run()
        assert payloads(h) == list(range(5))
        assert h.runtime.transport.channel_count() == 0

    def test_fixed_mode_programs_the_fabric_epochs(self):
        h = make(TransportConfig(flush_mode="fixed", flush_s=0.25))
        assert h.cloud.network.batch_flush_s == 0.25
        assert h.runtime.transport.passthrough

    def test_adaptive_mode_disables_fabric_epochs(self):
        h = Harness(transport_config=TransportConfig(flush_mode="adaptive"))
        assert h.cloud.network.batch_flush_s == 0.0
        assert not h.runtime.transport.passthrough


class TestAdaptiveFlush:
    def test_full_batch_flushes_immediately(self):
        h = make(TransportConfig(
            flush_mode="adaptive", flush_s=1.0, flush_max_batch=4
        ))
        route_n(h, 4)
        h.env.run(until=0.5)  # well before the 1 s deadline
        assert payloads(h) == list(range(4))
        assert h.runtime.transport.flush_cause_totals()["full"] == 1

    def test_small_batch_waits_for_the_deadline(self):
        h = make(TransportConfig(
            flush_mode="adaptive", flush_s=0.05, flush_max_batch=64
        ))
        route_n(h, 3)
        h.env.run()
        assert payloads(h) == list(range(3))
        # Nothing left the sender before the delay budget expired.
        assert all(t >= 0.05 for (t, _, _) in h.handler("M:0").received)
        totals = h.runtime.transport.flush_cause_totals()
        assert totals["deadline"] == 1
        assert totals["full"] == 0

    def test_zero_budget_flushes_each_message_eagerly(self):
        h = make(TransportConfig(
            flush_mode="adaptive", flush_s=0.0, flush_max_batch=64
        ))
        route_n(h, 3)
        h.env.run()
        assert payloads(h) == list(range(3))
        assert h.runtime.transport.flush_cause_totals()["eager"] == 3

    def test_deadline_timer_does_not_refire_for_delivered_batch(self):
        h = make(TransportConfig(
            flush_mode="adaptive", flush_s=0.05, flush_max_batch=2
        ))
        route_n(h, 2)  # full flush; the armed timer must not double-send
        h.env.run()
        assert payloads(h) == [0, 1]
        totals = h.runtime.transport.flush_cause_totals()
        assert totals["full"] == 1
        assert totals["deadline"] == 0


class TestBackpressure:
    def config(self, window=4):
        return TransportConfig(backpressure=True, credit_window=window)

    def test_burst_sheds_to_spill_and_starves(self):
        h = make(self.config(window=4), cost_s=0.01)
        route_n(h, 50)
        # Routing is synchronous: four messages took the four credits,
        # the rest parked at the sender.
        transport = h.runtime.transport
        channel = next(iter(transport._channels.values()))
        assert channel.credits == 0
        assert channel.starved
        assert channel.pending_count == 46
        assert channel.messages_spilled > 0
        stats = transport.outbound_stats("client")
        assert stats["spill_depth"] == 46
        assert stats["starved_channels"] == 1
        assert transport.pending_total() == 46
        instance = h.runtime._active("M:0")
        assert transport.inbound_credits_outstanding(instance) == 4

    def test_inbox_is_bounded_and_nothing_is_lost(self):
        h = make(self.config(window=4), cost_s=0.01)
        route_n(h, 50)
        h.env.run()
        assert payloads(h) == list(range(50))  # FIFO, zero loss
        instance = h.runtime._active("M:0")
        assert 0 < instance.peak_queue_length <= 4

    def test_credits_conserve_at_quiescence(self):
        h = make(self.config(window=4), cost_s=0.01)
        route_n(h, 50)
        h.env.run()
        transport = h.runtime.transport
        channel = next(iter(transport._channels.values()))
        assert channel.credits == channel.credit_window
        assert channel.pending_count == 0
        assert channel.messages_sent == 50
        assert not channel.starved
        assert channel.stall_count >= 1
        assert channel.stall_seconds_total > 0.0
        assert transport.flush_cause_totals()["credit"] > 0
        stats = transport.outbound_stats("client")
        assert stats["spill_depth"] == 0
        assert stats["starved_channels"] == 0
        instance = h.runtime._active("M:0")
        assert transport.inbound_credits_outstanding(instance) == 0

    def test_backpressured_run_delivers_the_same_sequences(self):
        plain = make(hosts=2, slices=2, cost_s=0.005)
        throttled = make(
            TransportConfig(
                flush_mode="adaptive",
                flush_s=0.02,
                flush_max_batch=8,
                backpressure=True,
                credit_window=3,
            ),
            hosts=2,
            slices=2,
            cost_s=0.005,
        )
        for h in (plain, throttled):
            for i in range(60):
                h.runtime.route("client", "M", "e", i, 100, key=i % 2)
            h.env.run()
        for index in range(2):
            assert payloads(plain, f"M:{index}") == payloads(
                throttled, f"M:{index}"
            )

    def test_release_instance_discards_spill_silently(self):
        h = make(self.config(window=2), cost_s=0.01)
        route_n(h, 20)
        transport = h.runtime.transport
        instance = h.runtime._active("M:0")
        channel = transport.channel("client", instance)
        assert channel.pending_count > 0
        transport.release_instance(instance)
        assert channel.released
        assert transport.channel_count() == 0
        assert transport.inbound_channel_count(instance) == 0
        h.env.run()  # pending grants/timers fire into the released channel
        # Only the wire-sent prefix arrived; the spilled remainder is gone.
        assert payloads(h) == [0, 1]

    def test_channel_is_per_source_and_destination(self):
        h = make(self.config(window=8), hosts=2, slices=2)
        h.runtime.route("client", "M", "e", "a", 100, key=0)
        h.runtime.route("other", "M", "e", "b", 100, key=0)
        h.runtime.route("client", "M", "e", "c", 100, key=1)
        assert h.runtime.transport.channel_count() == 3
        h.env.run()
        assert sorted(payloads(h, "M:0")) == ["a", "b"]
        assert payloads(h, "M:1") == ["c"]
