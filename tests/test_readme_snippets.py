"""The README's quickstart snippet must keep working verbatim-ish."""

from repro import (
    CloudProvider,
    ElasticityManager,
    ElasticityPolicy,
    Environment,
    HubConfig,
    Publication,
    StreamHub,
    Subscription,
)
from repro.filtering import BruteForceLibrary, ExactBackend, Op, Predicate, PredicateSet


def test_readme_quickstart_snippet():
    env = Environment()
    cloud = CloudProvider(env)
    hosts = [cloud.provision_now() for _ in range(2)]
    sink = cloud.provision_now()

    config = HubConfig(
        ap_slices=2, m_slices=4, ep_slices=2, sink_slices=1,
        encrypted=False,
        backend_factory=lambda i: ExactBackend(BruteForceLibrary()),
    )
    hub = StreamHub(env, cloud.network, config)
    hub.deploy_all_on(hosts, [sink])

    hub.subscribe(Subscription(0, subscriber=7,
                               filter_payload=PredicateSet.of(
                                   Predicate(0, Op.GE, 100.0))))
    env.run()
    hub.publish(Publication(0, payload=[120.0, 0, 0, 0], published_at=env.now))
    env.run()
    assert hub.notification_log[0].subscriber_ids == (7,)
    assert hub.delay_tracker.stats().count == 1


def test_readme_elasticity_snippet_types():
    env = Environment()
    cloud = CloudProvider(env)
    host = cloud.provision_now()
    hub = StreamHub(env, cloud.network, HubConfig.sampled(
        0.01, ap_slices=1, m_slices=2, ep_slices=1, sink_slices=1))
    hub.deploy_all_on([host], [cloud.provision_now()])
    manager = ElasticityManager(hub, cloud, [host], policy=ElasticityPolicy())
    manager.start()
    env.run(until=12.0)
    assert manager.host_count == 1  # idle system stays put


def test_readme_observability_snippet():
    from repro.telemetry import Telemetry

    env = Environment()
    cloud = CloudProvider(env)
    host = cloud.provision_now()
    telemetry = Telemetry()                  # tracing + metrics
    config = HubConfig.sampled(0.01, ap_slices=1, m_slices=2, ep_slices=1,
                               sink_slices=1, telemetry=telemetry)
    hub = StreamHub(env, cloud.network, config)
    hub.deploy_all_on([host], [cloud.provision_now()])
    hub.publish(Publication(0, payload=None, published_at=env.now))
    env.run()
    assert telemetry.tracer.find("hop.AP")
    assert "engine_events_processed_total" in telemetry.metrics.render()
