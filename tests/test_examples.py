"""Smoke tests: the fast example scripts run to completion.

(The longer examples — stock_monitoring, fault_tolerance, custom_policy —
are exercised by the equivalent integration tests and benchmarks; running
them here would slow the unit suite.)
"""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parent.parent / "examples"


@pytest.mark.parametrize(
    "script", ["quickstart.py", "encrypted_filtering.py", "live_migration.py"]
)
def test_example_runs(script):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / script)],
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert result.returncode == 0, result.stderr
    assert result.stdout.strip()
