"""Unit tests for the coordination kernel."""

import pytest

from repro.coord import (
    BadVersionError,
    CoordinationKernel,
    NoNodeError,
    NodeExistsError,
    NotEmptyError,
    SessionClosedError,
    WatchedEvent,
)


@pytest.fixture
def zk():
    return CoordinationKernel()


def test_create_and_get(zk):
    zk.create("/config", data={"hosts": 3})
    data, stat = zk.get("/config")
    assert data == {"hosts": 3}
    assert stat.version == 0


def test_create_duplicate_rejected(zk):
    zk.create("/a")
    with pytest.raises(NodeExistsError):
        zk.create("/a")


def test_create_missing_parent_rejected(zk):
    with pytest.raises(NoNodeError):
        zk.create("/a/b/c")


def test_create_with_make_parents(zk):
    zk.create("/a/b/c", data=1, make_parents=True)
    assert zk.get("/a/b/c")[0] == 1
    assert zk.get_children("/a") == ["b"]


def test_relative_path_rejected(zk):
    with pytest.raises(ValueError):
        zk.create("relative")
    with pytest.raises(ValueError):
        zk.get("//double")
    with pytest.raises(ValueError):
        zk.get("/trailing/")


def test_set_bumps_version(zk):
    zk.create("/n", data=1)
    stat = zk.set("/n", 2)
    assert stat.version == 1
    assert zk.get("/n")[0] == 2


def test_conditional_set_enforces_version(zk):
    zk.create("/n", data=1)
    zk.set("/n", 2, version=0)
    with pytest.raises(BadVersionError):
        zk.set("/n", 3, version=0)
    assert zk.get("/n")[0] == 2


def test_delete_leaf_only(zk):
    zk.create("/parent")
    zk.create("/parent/child")
    with pytest.raises(NotEmptyError):
        zk.delete("/parent")
    zk.delete("/parent/child")
    zk.delete("/parent")
    assert zk.exists("/parent") is None


def test_conditional_delete(zk):
    zk.create("/n", data=1)
    zk.set("/n", 2)
    with pytest.raises(BadVersionError):
        zk.delete("/n", version=0)
    zk.delete("/n", version=1)


def test_get_children_sorted(zk):
    zk.create("/dir")
    for name in ["b", "a", "c"]:
        zk.create(f"/dir/{name}")
    assert zk.get_children("/dir") == ["a", "b", "c"]


def test_sequential_nodes_get_increasing_suffixes(zk):
    zk.create("/queue")
    p1 = zk.create("/queue/item-", sequential=True)
    p2 = zk.create("/queue/item-", sequential=True)
    assert p1 == "/queue/item-0000000000"
    assert p2 == "/queue/item-0000000001"
    assert zk.get_children("/queue") == ["item-0000000000", "item-0000000001"]


def test_ephemeral_nodes_die_with_session(zk):
    session = zk.session()
    zk.create("/live", session=session, ephemeral=True)
    assert zk.exists("/live") is not None
    session.close()
    assert zk.exists("/live") is None


def test_ephemeral_requires_session(zk):
    with pytest.raises(ValueError):
        zk.create("/x", ephemeral=True)


def test_closed_session_rejected(zk):
    session = zk.session()
    session.close()
    with pytest.raises(SessionClosedError):
        zk.create("/x", session=session, ephemeral=True)


def test_data_watch_fires_once_on_change(zk):
    zk.create("/n", data=1)
    events = []
    zk.get("/n", watch=events.append)
    zk.set("/n", 2)
    zk.set("/n", 3)  # watch is one-shot: no second event
    assert len(events) == 1
    assert events[0].kind == WatchedEvent.CHANGED
    assert events[0].path == "/n"


def test_data_watch_fires_on_delete(zk):
    zk.create("/n")
    events = []
    zk.get("/n", watch=events.append)
    zk.delete("/n")
    assert [e.kind for e in events] == [WatchedEvent.DELETED]


def test_exists_watch_fires_on_create(zk):
    events = []
    assert zk.exists("/future", watch=events.append) is None
    zk.create("/future")
    assert [e.kind for e in events] == [WatchedEvent.CREATED]


def test_child_watch_fires_on_child_create_and_delete(zk):
    zk.create("/dir")
    events = []
    zk.get_children("/dir", watch=events.append)
    zk.create("/dir/a")
    assert len(events) == 1  # one-shot
    zk.get_children("/dir", watch=events.append)
    zk.delete("/dir/a")
    assert len(events) == 2
    assert all(e.kind == WatchedEvent.CHILD for e in events)


def test_ensure_path_idempotent(zk):
    zk.ensure_path("/a/b/c")
    zk.ensure_path("/a/b/c")
    assert zk.exists("/a/b/c") is not None


def test_walk_lists_subtree_depth_first(zk):
    zk.ensure_path("/a/x")
    zk.ensure_path("/a/y")
    zk.ensure_path("/b")
    assert zk.walk() == ["/a", "/a/x", "/a/y", "/b"]
    assert zk.walk("/a") == ["/a/x", "/a/y"]


def test_ephemeral_cleanup_is_deepest_first(zk):
    # Ephemerals are leaves in ZooKeeper; our cleanup must not trip over
    # ordering when multiple ephemerals exist under the same parent.
    session = zk.session()
    zk.ensure_path("/members")
    zk.create("/members/m1", session=session, ephemeral=True)
    zk.create("/members/m2", session=session, ephemeral=True)
    session.close()
    assert zk.get_children("/members") == []


def test_stat_tracks_ephemeral_owner(zk):
    session = zk.session()
    zk.create("/e", session=session, ephemeral=True)
    stat = zk.exists("/e")
    assert stat.ephemeral_owner == session.session_id
    zk.create("/p")
    assert zk.exists("/p").ephemeral_owner is None
