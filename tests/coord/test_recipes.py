"""Tests for leader election and the distributed lock."""

import pytest

from repro.coord import CoordinationKernel, DistributedLock, LeaderElection


@pytest.fixture
def zk():
    return CoordinationKernel()


class TestLeaderElection:
    def test_first_candidate_becomes_leader(self, zk):
        session = zk.session()
        election = LeaderElection(zk, session, candidate_id="m1")
        elected = []
        election.on_elected(lambda: elected.append("m1"))
        election.join()
        assert election.is_leader
        assert elected == ["m1"]
        assert election.leader_id() == "m1"

    def test_second_candidate_waits(self, zk):
        s1, s2 = zk.session(), zk.session()
        primary = LeaderElection(zk, s1, candidate_id="m1")
        standby = LeaderElection(zk, s2, candidate_id="m2")
        primary.join()
        standby.join()
        assert primary.is_leader
        assert not standby.is_leader
        assert standby.leader_id() == "m1"

    def test_takeover_on_leader_session_close(self, zk):
        s1, s2 = zk.session(), zk.session()
        primary = LeaderElection(zk, s1, candidate_id="m1")
        standby = LeaderElection(zk, s2, candidate_id="m2")
        takeovers = []
        primary.join()
        standby.join()
        standby.on_elected(lambda: takeovers.append("m2"))
        s1.close()  # crash of the primary manager
        assert standby.is_leader
        assert takeovers == ["m2"]
        assert standby.leader_id() == "m2"

    def test_no_herd_intermediate_candidate_takes_over_first(self, zk):
        sessions = [zk.session() for _ in range(3)]
        elections = [
            LeaderElection(zk, s, candidate_id=f"m{i}")
            for i, s in enumerate(sessions)
        ]
        for election in elections:
            election.join()
        sessions[0].close()
        assert elections[1].is_leader
        assert not elections[2].is_leader
        sessions[1].close()
        assert elections[2].is_leader

    def test_resign_passes_leadership(self, zk):
        s1, s2 = zk.session(), zk.session()
        first = LeaderElection(zk, s1, candidate_id="m1")
        second = LeaderElection(zk, s2, candidate_id="m2")
        first.join()
        second.join()
        first.resign()
        assert second.is_leader
        assert not first.is_leader

    def test_double_join_rejected(self, zk):
        election = LeaderElection(zk, zk.session(), candidate_id="m")
        election.join()
        with pytest.raises(RuntimeError):
            election.join()

    def test_on_elected_after_the_fact_fires_immediately(self, zk):
        election = LeaderElection(zk, zk.session())
        election.join()
        fired = []
        election.on_elected(lambda: fired.append(True))
        assert fired == [True]


class TestDistributedLock:
    def test_uncontended_acquire(self, zk):
        lock = DistributedLock(zk, zk.session())
        granted = []
        lock.acquire(lambda: granted.append(1))
        assert lock.held
        assert granted == [1]

    def test_fifo_handoff_on_release(self, zk):
        l1 = DistributedLock(zk, zk.session())
        l2 = DistributedLock(zk, zk.session())
        order = []
        l1.acquire(lambda: order.append("l1"))
        l2.acquire(lambda: order.append("l2"))
        assert order == ["l1"]
        l1.release()
        assert order == ["l1", "l2"]
        assert l2.held and not l1.held

    def test_session_close_releases_lock(self, zk):
        s1 = zk.session()
        l1 = DistributedLock(zk, s1)
        l2 = DistributedLock(zk, zk.session())
        granted = []
        l1.acquire(lambda: None)
        l2.acquire(lambda: granted.append(True))
        assert not granted
        s1.close()
        assert granted == [True]

    def test_release_unheld_raises(self, zk):
        lock = DistributedLock(zk, zk.session())
        with pytest.raises(RuntimeError):
            lock.release()
