"""Edge-case tests for the coordination kernel."""

import pytest

from repro.coord import (
    CoordinationKernel,
    NoNodeError,
    NodeExistsError,
    WatchedEvent,
)


@pytest.fixture
def zk():
    return CoordinationKernel()


def test_session_double_close_is_noop(zk):
    session = zk.session()
    zk.create("/e", session=session, ephemeral=True)
    session.close()
    session.close()
    assert zk.exists("/e") is None


def test_exists_watch_survives_delete_create_cycle(zk):
    zk.create("/n")
    zk.delete("/n")
    events = []
    assert zk.exists("/n", watch=events.append) is None
    zk.create("/n")
    assert [e.kind for e in events] == [WatchedEvent.CREATED]


def test_sequential_counters_are_per_parent(zk):
    zk.create("/a")
    zk.create("/b")
    first_a = zk.create("/a/item-", sequential=True)
    first_b = zk.create("/b/item-", sequential=True)
    assert first_a.endswith("0000000000")
    assert first_b.endswith("0000000000")


def test_sequential_counter_not_reused_after_delete(zk):
    zk.create("/q")
    path = zk.create("/q/n-", sequential=True)
    zk.delete(path)
    second = zk.create("/q/n-", sequential=True)
    assert second.endswith("0000000001")


def test_deep_walk_order(zk):
    zk.ensure_path("/a/b/c")
    zk.ensure_path("/a/d")
    assert zk.walk("/") == ["/a", "/a/b", "/a/b/c", "/a/d"]


def test_create_under_missing_root_with_make_parents(zk):
    actual = zk.create("/x/y/z/leaf-", sequential=True, make_parents=True)
    assert actual.startswith("/x/y/z/leaf-")
    assert zk.get_children("/x/y/z") == [actual.rsplit("/", 1)[1]]


def test_set_then_get_returns_new_version(zk):
    zk.create("/v", data=0)
    for value in range(1, 4):
        zk.set("/v", value)
    data, stat = zk.get("/v")
    assert data == 3
    assert stat.version == 3


def test_delete_root_rejected(zk):
    with pytest.raises(ValueError):
        zk.delete("/")


def test_create_root_rejected(zk):
    with pytest.raises(NodeExistsError):
        zk.create("/")


def test_watch_not_fired_for_sibling_changes(zk):
    zk.create("/a")
    zk.create("/b")
    events = []
    zk.get("/a", watch=events.append)
    zk.set("/b", 1)
    assert events == []


def test_child_watch_not_fired_for_grandchildren(zk):
    zk.ensure_path("/p/c")
    events = []
    zk.get_children("/p", watch=events.append)
    zk.create("/p/c/grandchild")
    assert events == []
    zk.create("/p/c2")
    assert len(events) == 1
