"""Million-subscription workload generation for out-of-core experiments.

The out-of-core store benchmarks (DESIGN.md §8, ``benchmarks/
bench_outofcore_store.py``) need pre-encrypted traces one to two orders
of magnitude larger than the unit-test workloads.  Encrypting a million
subscriptions one scalar ``encrypt_subscription`` call at a time is the
bottleneck, not the matching — so :class:`ScaleWorkload` drives the bulk
cipher kernels (:meth:`~repro.filtering.AspeCipher.encrypt_subscriptions`
and :meth:`~repro.filtering.AspeCipher.encrypt_publications`, one BLAS
call per batch) and loads libraries through their vectorized
``store_many`` path when they have one.

Subscription ids are assigned sequentially, so a bulk load arrives in
key order — the layout under which a later shard split is a row-boundary
detach that moves whole chunks instead of rewriting rows.
"""

from __future__ import annotations

import random
from typing import Iterator, List, Optional, Tuple

from ..filtering import AspeCipher, AspeKey, EncryptedPublication, EncryptedSubscription
from .subscriptions import WorkloadGenerator

__all__ = ["ScaleWorkload"]


class ScaleWorkload:
    """Deterministic bulk-encrypted workload at 1M+ subscription scale."""

    def __init__(
        self,
        dimensions: int = 4,
        matching_rate: float = 0.01,
        value_range: float = 1000.0,
        seed: int = 0,
        key: Optional[AspeKey] = None,
    ):
        self.key = key if key is not None else AspeKey.generate(
            dimensions, random.Random(seed)
        )
        self.cipher = AspeCipher(self.key, rng=random.Random(seed + 1))
        self.generator = WorkloadGenerator(
            dimensions=dimensions,
            matching_rate=matching_rate,
            value_range=value_range,
            seed=seed + 2,
        )

    # -- subscriptions --------------------------------------------------------

    def subscription_batches(
        self, count: int, batch_size: int = 10_000, start_id: int = 0
    ) -> Iterator[List[Tuple[int, EncryptedSubscription]]]:
        """Yield ``(sub_id, ciphertext)`` batches, one gemm per batch."""
        if count < 0:
            raise ValueError("count must be >= 0")
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        produced = 0
        while produced < count:
            size = min(batch_size, count - produced)
            predicate_sets = [
                self.generator.predicate_set() for _ in range(size)
            ]
            encrypted = self.cipher.encrypt_subscriptions(predicate_sets)
            base = start_id + produced
            yield [(base + i, sub) for i, sub in enumerate(encrypted)]
            produced += size

    def load(
        self, library, count: int, batch_size: int = 10_000, start_id: int = 0
    ) -> int:
        """Bulk-load ``count`` subscriptions into ``library``.

        Uses the library's ``store_many`` (one packed append + one epoch
        bump per batch) when available, falling back to per-item
        ``store``.  Returns the number of subscriptions stored.
        """
        store_many = getattr(library, "store_many", None)
        total = 0
        for batch in self.subscription_batches(count, batch_size, start_id):
            if callable(store_many):
                store_many(batch)
            else:
                for sub_id, payload in batch:
                    library.store(sub_id, payload)
            total += len(batch)
        return total

    # -- publications ---------------------------------------------------------

    def publications(self, count: int) -> List[EncryptedPublication]:
        """``count`` encrypted publications via one matrix-matrix product."""
        if count < 0:
            raise ValueError("count must be >= 0")
        if count == 0:
            return []
        attribute_rows = [
            self.generator.publication_attributes() for _ in range(count)
        ]
        return self.cipher.encrypt_publications(attribute_rows)
