"""Workload generation: subscriptions, publications, rate profiles, traces."""

from .subscriptions import WorkloadGenerator
from .scale import ScaleWorkload
from .rates import constant, piecewise_linear, staircase, trapezoid
from .frankfurt import FrankfurtTraceModel
from .advanced import (
    CorrelatedPublicationGenerator,
    MultiSourceWorkload,
    ZipfSubscriptionGenerator,
    zipf_weights,
)

__all__ = [
    "CorrelatedPublicationGenerator",
    "FrankfurtTraceModel",
    "MultiSourceWorkload",
    "ScaleWorkload",
    "WorkloadGenerator",
    "ZipfSubscriptionGenerator",
    "constant",
    "piecewise_linear",
    "staircase",
    "trapezoid",
    "zipf_weights",
]
