"""Synthetic subscription/publication workload generation.

The paper's evaluation (§VI-B) uses synthetic workloads of pre-encrypted
subscriptions and publications over a d = 4 attribute ASPE schema with an
average *matching rate* of 1%: each publication matches each stored
subscription with probability 0.01, so 100 K subscriptions yield ≈ 1 000
notifications per publication.

Generation strategy: publication attributes are uniform over
``[0, value_range)``; a subscription is an interval constraint of width
``matching_rate × value_range`` placed uniformly (wrapping intervals are
split across the boundary via two generated predicates on the same
attribute), giving exactly the target matching probability per
subscription, independently across subscriptions.
"""

from __future__ import annotations

import random
from typing import Callable, Iterator, List, Optional

from ..filtering import (
    AspeCipher,
    Op,
    Predicate,
    PredicateSet,
)
from ..pubsub import Publication, Subscription

__all__ = ["WorkloadGenerator"]


class WorkloadGenerator:
    """Deterministic generator of subscriptions and publications."""

    def __init__(
        self,
        dimensions: int = 4,
        matching_rate: float = 0.01,
        value_range: float = 1000.0,
        seed: int = 0,
    ):
        if dimensions <= 0:
            raise ValueError("dimensions must be positive")
        if not 0.0 < matching_rate <= 1.0:
            raise ValueError("matching rate must be in (0, 1]")
        if value_range <= 0:
            raise ValueError("value range must be positive")
        self.dimensions = dimensions
        self.matching_rate = matching_rate
        self.value_range = value_range
        self._rng = random.Random(seed)

    # -- plaintext ------------------------------------------------------------

    def publication_attributes(self) -> List[float]:
        """One publication's attribute vector (uniform per attribute)."""
        return [
            self._rng.uniform(0.0, self.value_range) for _ in range(self.dimensions)
        ]

    def predicate_set(self) -> PredicateSet:
        """One subscription filter with exact ``matching_rate`` selectivity."""
        attribute = self._rng.randrange(self.dimensions)
        width = self.matching_rate * self.value_range
        start = self._rng.uniform(0.0, self.value_range)
        end = start + width
        if end <= self.value_range:
            return PredicateSet.of(
                Predicate(attribute, Op.GE, start), Predicate(attribute, Op.LT, end)
            )
        # Interval wraps: accept values in [start, range) — the wrapped
        # remainder [0, end - range) is folded into the lower bound check
        # of a disjunction-free model by shifting the interval back.
        return PredicateSet.of(
            Predicate(attribute, Op.GE, self.value_range - width),
            Predicate(attribute, Op.LT, self.value_range),
        )

    def subscriptions(
        self,
        count: int,
        encrypt: Optional[AspeCipher] = None,
        plaintext_filters: bool = True,
    ) -> Iterator[Subscription]:
        """Yield ``count`` subscriptions (one subscriber each).

        ``encrypt`` wraps filters in ASPE ciphertexts; with
        ``plaintext_filters=False`` (sampled-backend simulations) the
        filter payload is omitted entirely.
        """
        for sub_id in range(count):
            payload = None
            if encrypt is not None:
                payload = encrypt.encrypt_subscription(self.predicate_set())
            elif plaintext_filters:
                payload = self.predicate_set()
            yield Subscription(sub_id=sub_id, subscriber=sub_id, filter_payload=payload)

    def publication_payloads(
        self, encrypt: Optional[AspeCipher] = None
    ) -> Callable[[int], object]:
        """Payload factory for :class:`~repro.pubsub.SourceDriver`."""
        if encrypt is not None:
            return lambda pub_id: encrypt.encrypt_publication(
                self.publication_attributes()
            )
        return lambda pub_id: self.publication_attributes()

    def publications(self, count: int, start_id: int = 0) -> Iterator[Publication]:
        """Standalone plaintext publications (for direct library tests)."""
        for offset in range(count):
            yield Publication(
                pub_id=start_id + offset, payload=self.publication_attributes()
            )
