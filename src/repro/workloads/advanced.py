"""Workload extensions beyond the paper's uniform synthetic model.

The paper's evaluation deliberately uses uniform synthetic workloads: ASPE
filtering cannot exploit workload structure, so its performance is
workload-independent (§VI-B).  *Plaintext* filtering, however, is
sensitive to structure, and downstream users of this library will want
realistic knobs:

* :class:`ZipfSubscriptionGenerator` — subscription interest concentrated
  on few hot "instruments" (Zipf-distributed attribute regions), as real
  stock-monitoring workloads exhibit;
* :class:`CorrelatedPublicationGenerator` — publications whose attributes
  are correlated (e.g. price and volatility), produced by a Gaussian
  copula over the uniform marginals;
* :class:`MultiSourceWorkload` — several publishers with different rate
  profiles feeding one hub (e.g. one exchange per source slice).
"""

from __future__ import annotations

import math
import random
from bisect import bisect_right
from typing import Callable, List, Optional, Sequence

from ..filtering import Op, Predicate, PredicateSet
from ..pubsub import Subscription
from ..pubsub.source import SourceDriver

__all__ = [
    "ZipfSubscriptionGenerator",
    "CorrelatedPublicationGenerator",
    "MultiSourceWorkload",
    "zipf_weights",
]


def zipf_weights(n: int, exponent: float = 1.0) -> List[float]:
    """Normalized Zipf weights for ranks 1..n."""
    if n <= 0:
        raise ValueError("n must be positive")
    if exponent < 0:
        raise ValueError("exponent must be non-negative")
    raw = [1.0 / (rank ** exponent) for rank in range(1, n + 1)]
    total = sum(raw)
    return [w / total for w in raw]


class ZipfSubscriptionGenerator:
    """Subscriptions whose interest regions follow a Zipf popularity law.

    The attribute space is divided into ``instruments`` equal regions per
    attribute; a subscription targets instrument ``i`` with probability
    proportional to ``1 / rank(i)^exponent``.  With plaintext filtering
    this skew makes counting-index matching much cheaper than brute force
    on the cold regions — structure ASPE cannot see.
    """

    def __init__(
        self,
        dimensions: int = 4,
        instruments: int = 100,
        exponent: float = 1.0,
        matching_rate: float = 0.01,
        value_range: float = 1000.0,
        seed: int = 0,
    ):
        if instruments <= 0:
            raise ValueError("instruments must be positive")
        if not 0.0 < matching_rate <= 1.0:
            raise ValueError("matching rate must be in (0, 1]")
        self.dimensions = dimensions
        self.instruments = instruments
        self.value_range = value_range
        self.matching_rate = matching_rate
        self._rng = random.Random(seed)
        weights = zipf_weights(instruments, exponent)
        self._cumulative = []
        total = 0.0
        for weight in weights:
            total += weight
            self._cumulative.append(total)

    def pick_instrument(self) -> int:
        return bisect_right(self._cumulative, self._rng.random())

    def predicate_set(self) -> PredicateSet:
        """A band inside one Zipf-picked instrument's region."""
        instrument = self.pick_instrument()
        attribute = self._rng.randrange(self.dimensions)
        region = self.value_range / self.instruments
        region_start = instrument * region
        width = min(region, self.matching_rate * self.value_range)
        start = region_start + self._rng.uniform(0.0, max(1e-9, region - width))
        return PredicateSet.of(
            Predicate(attribute, Op.GE, start),
            Predicate(attribute, Op.LT, start + width),
        )

    def subscriptions(self, count: int):
        for sub_id in range(count):
            yield Subscription(sub_id, sub_id, self.predicate_set())


class CorrelatedPublicationGenerator:
    """Publications with correlated attributes via a Gaussian copula.

    ``correlation`` is the pairwise correlation between consecutive
    attributes (price↔volatility style); marginals stay uniform over
    ``[0, value_range)`` so the matching-rate calibration of band filters
    is preserved per attribute.
    """

    def __init__(
        self,
        dimensions: int = 4,
        correlation: float = 0.7,
        value_range: float = 1000.0,
        seed: int = 0,
    ):
        if not -1.0 < correlation < 1.0:
            raise ValueError("correlation must be in (-1, 1)")
        self.dimensions = dimensions
        self.correlation = correlation
        self.value_range = value_range
        self._rng = random.Random(seed)

    def attributes(self) -> List[float]:
        # AR(1)-style latent gaussians: z_i = ρ z_{i-1} + sqrt(1-ρ²) ε_i.
        rho = self.correlation
        z = self._rng.gauss(0.0, 1.0)
        latents = [z]
        for _ in range(1, self.dimensions):
            z = rho * z + math.sqrt(1.0 - rho * rho) * self._rng.gauss(0.0, 1.0)
            latents.append(z)
        return [self._phi(value) * self.value_range for value in latents]

    @staticmethod
    def _phi(z: float) -> float:
        """Standard normal CDF (maps the latent to a uniform marginal)."""
        return 0.5 * (1.0 + math.erf(z / math.sqrt(2.0)))

    def payload_factory(self) -> Callable[[int], List[float]]:
        return lambda pub_id: self.attributes()


class MultiSourceWorkload:
    """Several independent publishers feeding one hub.

    Each source has its own rate profile (e.g. exchanges in different time
    zones) and its own sequence-number channels into the APs, exactly like
    the paper's 4-slice source operator.
    """

    def __init__(self, hub, count: int = 4, seed: int = 0, poisson: bool = False):
        if count <= 0:
            raise ValueError("need at least one source")
        self.hub = hub
        # Disjoint publication-id spaces: EP slices join partial match
        # lists by publication id, so ids must be unique across sources.
        self.sources: List[SourceDriver] = [
            SourceDriver(hub, name=f"source:{index}", seed=seed + index,
                         poisson=poisson, pub_id_offset=index,
                         pub_id_stride=count)
            for index in range(count)
        ]

    def publish_profiles(
        self,
        profiles: Sequence[Callable[[float], float]],
        duration_s: float,
        payload_factory: Optional[Callable[[int], object]] = None,
    ):
        """Start one publishing process per source; returns the processes."""
        if len(profiles) != len(self.sources):
            raise ValueError("need exactly one profile per source")
        return [
            source.publish_profile(profile, duration_s, payload_factory)
            for source, profile in zip(self.sources, profiles)
        ]

    def total_published(self) -> int:
        return sum(source.publications_sent for source in self.sources)
