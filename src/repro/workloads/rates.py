"""Publication-rate profiles for the elasticity experiments.

A profile is a function ``rate(t) -> publications per second`` over the
experiment's relative time.  Figure 8 uses a trapezoid: gradual increase
to a peak, a stability period, then a gradual decrease back to idle.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence, Tuple

__all__ = ["constant", "trapezoid", "piecewise_linear", "staircase"]


def constant(rate: float) -> Callable[[float], float]:
    """A flat profile."""
    if rate < 0:
        raise ValueError("rate must be non-negative")
    return lambda t: rate


def trapezoid(
    ramp_up_s: float,
    plateau_s: float,
    ramp_down_s: float,
    peak: float,
    floor: float = 0.0,
) -> Callable[[float], float]:
    """Figure 8's synthetic profile: ramp up, hold, ramp down."""
    if min(ramp_up_s, plateau_s, ramp_down_s) < 0:
        raise ValueError("phase durations must be non-negative")
    if peak < floor:
        raise ValueError("peak must be at least the floor")

    def rate(t: float) -> float:
        if t < 0:
            return floor
        if t < ramp_up_s:
            return floor + (peak - floor) * (t / ramp_up_s) if ramp_up_s else peak
        if t < ramp_up_s + plateau_s:
            return peak
        end = ramp_up_s + plateau_s + ramp_down_s
        if t < end and ramp_down_s:
            return peak - (peak - floor) * ((t - ramp_up_s - plateau_s) / ramp_down_s)
        return floor

    return rate


def piecewise_linear(points: Sequence[Tuple[float, float]]) -> Callable[[float], float]:
    """Linear interpolation through (time, rate) points; clamped outside."""
    if len(points) < 2:
        raise ValueError("need at least two points")
    ordered = sorted(points)
    times = [p[0] for p in ordered]
    if len(set(times)) != len(times):
        raise ValueError("duplicate time points")

    def rate(t: float) -> float:
        if t <= ordered[0][0]:
            return ordered[0][1]
        if t >= ordered[-1][0]:
            return ordered[-1][1]
        for (t0, r0), (t1, r1) in zip(ordered, ordered[1:]):
            if t0 <= t <= t1:
                if t1 == t0:
                    return r1
                return r0 + (r1 - r0) * (t - t0) / (t1 - t0)
        raise AssertionError("unreachable")

    return rate


def staircase(steps: Sequence[Tuple[float, float]]) -> Callable[[float], float]:
    """Step profile: rate of the last step whose start time ≤ t."""
    if not steps:
        raise ValueError("need at least one step")
    ordered = sorted(steps)

    def rate(t: float) -> float:
        current = ordered[0][1]
        for start, value in ordered:
            if t >= start:
                current = value
            else:
                break
        return current

    return rate
