"""Synthetic reconstruction of the Frankfurt Stock Exchange tick trace.

The paper's Figure 1 shows the tick volume recorded on 2011-11-18 at the
Frankfurt Stock Exchange: near-silence overnight, a sharp rise when
trading opens at 09:00 to around a thousand ticks per second, an intraday
plateau with a lunchtime dip, a pronounced afternoon spike (the US market
open at 15:30 CET), and a rapid decline after the 17:30 close.  The
original proprietary trace is not available; this model reproduces its
shape with a piecewise-linear base curve modulated by deterministic
per-minute noise and sparse bursts (DESIGN.md §2 documents the
substitution).

The trace-based experiment (paper §VI-E) replays the trace sped up —
"one hour in the original trace corresponds to 3 minutes", a 20× factor
(the prose says "10 times"; the 3-minutes-per-hour figure is the one
consistent with the reported 40-minute experiment covering the trading
day) — and scales the peak down from ≈ 1 200 to 190 publications/s.
"""

from __future__ import annotations

import hashlib
import math
from typing import Callable, List, Tuple

from .rates import piecewise_linear

__all__ = ["FrankfurtTraceModel"]


# (hour of day, ticks per second): the base shape of Figure 1.  The open
# climbs over ≈ 20 minutes and the afternoon spike is ≈ 45 minutes wide,
# matching the plotted trace's resolution.
_BASE_SHAPE: List[Tuple[float, float]] = [
    (0.0, 2.0),
    (6.0, 3.0),
    (7.0, 15.0),      # pre-market activity trickles in
    (8.0, 70.0),
    (8.5, 150.0),     # opening-auction order flow builds up
    (8.9, 230.0),
    (9.0, 380.0),     # trading opens: sharp rise...
    (9.15, 760.0),
    (9.35, 1000.0),   # ...peaking ≈ 20 minutes in
    (10.0, 950.0),
    (11.5, 820.0),
    (12.5, 640.0),    # lunchtime dip
    (13.3, 600.0),
    (14.0, 700.0),
    (14.8, 820.0),
    (15.2, 1000.0),   # afternoon climb (US open, 15:30 CET)
    (15.5, 1200.0),   # the day's peak
    (15.9, 1100.0),
    (16.5, 900.0),
    (17.4, 840.0),
    (17.5, 700.0),    # market closes at 17:30
    (17.6, 260.0),    # closing auction tail
    (18.5, 60.0),
    (20.0, 10.0),
    (24.0, 2.0),
]


class FrankfurtTraceModel:
    """Deterministic synthetic FSE tick-rate model (ticks/s by hour)."""

    PEAK_TICKS_PER_S = 1200.0
    OPEN_HOUR = 9.0
    CLOSE_HOUR = 17.5

    def __init__(self, seed: int = 2011_11_18, noise: float = 0.08):
        if noise < 0:
            raise ValueError("noise must be non-negative")
        self.seed = seed
        self.noise = noise
        self._base = piecewise_linear(_BASE_SHAPE)

    # -- the trace ---------------------------------------------------------------

    def base_rate_at(self, hour: float) -> float:
        """Noise-free base curve (ticks per second) at ``hour`` ∈ [0, 24)."""
        return self._base(hour % 24.0)

    def rate_at(self, hour: float) -> float:
        """Tick rate with deterministic per-minute noise and bursts."""
        hour = hour % 24.0
        base = self._base(hour)
        if self.noise == 0.0:
            return base
        minute = int(hour * 60)
        factor = 1.0 + self.noise * self._unit(minute, "gauss")
        # Sparse trading bursts during market hours (≈ one minute in 30).
        if self.OPEN_HOUR <= hour < self.CLOSE_HOUR and self._unit(minute, "burst") > 0.93:
            factor *= 1.25
        return max(0.0, base * factor)

    def series(
        self, resolution_s: float = 60.0, start_hour: float = 0.0, end_hour: float = 24.0
    ) -> List[Tuple[float, float]]:
        """(seconds since midnight, ticks/s) samples — regenerates Figure 1."""
        if resolution_s <= 0:
            raise ValueError("resolution must be positive")
        samples = []
        t = start_hour * 3600.0
        while t < end_hour * 3600.0:
            samples.append((t, self.rate_at(t / 3600.0)))
            t += resolution_s
        return samples

    # -- experiment scaling ------------------------------------------------------

    def experiment_profile(
        self,
        peak_rate: float = 190.0,
        speedup: float = 20.0,
        start_hour: float = 6.5,
    ) -> Callable[[float], float]:
        """Rate profile for the trace-replay experiment (paper §VI-E).

        Experiment second ``t`` maps to trace hour
        ``start_hour + t·speedup/3600``; the volume is scaled so the trace
        peak (≈ 1200) corresponds to ``peak_rate`` publications/s.
        """
        if peak_rate <= 0 or speedup <= 0:
            raise ValueError("peak rate and speedup must be positive")
        scale = peak_rate / self.PEAK_TICKS_PER_S

        def rate(t: float) -> float:
            hour = start_hour + (t * speedup) / 3600.0
            return self.rate_at(hour) * scale

        return rate

    # -- internals -----------------------------------------------------------------

    def _unit(self, minute: int, stream: str) -> float:
        """Deterministic draw for a given minute: U(0,1) or N(0,1)."""
        digest = hashlib.blake2b(
            f"{self.seed}:{stream}:{minute}".encode("ascii"), digest_size=16
        ).digest()
        u1 = (int.from_bytes(digest[:8], "big") + 1) / (2 ** 64 + 2)
        if stream == "burst":
            return u1
        u2 = (int.from_bytes(digest[8:], "big") + 1) / (2 ** 64 + 2)
        # Box–Muller for the gaussian noise stream.
        return math.sqrt(-2.0 * math.log(u1)) * math.cos(2.0 * math.pi * u2)
