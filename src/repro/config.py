"""Shared, validated ``REPRO_*`` environment-variable parsing.

Every subsystem that reads configuration from the environment — the
``REPRO_MATCH_*`` parallel-matching knobs, the ``REPRO_STORE_*`` packed-row
store knobs and the ``REPRO_NET_*`` transport knobs — goes through these
helpers, so the error behaviour is uniform: an unset or blank variable
keeps the caller's default, a malformed value raises ``ValueError`` naming
the variable, and a value outside an explicit ``choices`` set is rejected
up front instead of surfacing as a downstream validation error.
"""

from __future__ import annotations

import os
from typing import Optional, Sequence

__all__ = ["env_int", "env_float", "env_bool", "env_str"]

#: Accepted spellings for boolean environment knobs.
_TRUE = ("1", "true", "yes", "on")
_FALSE = ("0", "false", "no", "off")


def _raw(name: str) -> Optional[str]:
    """The variable's value, or ``None`` when unset/blank (keep default)."""
    raw = os.environ.get(name)
    if raw is None or raw.strip() == "":
        return None
    return raw.strip()


def env_int(name: str, default: int) -> int:
    """Integer knob; unset/blank keeps ``default``."""
    raw = _raw(name)
    if raw is None:
        return default
    try:
        return int(raw)
    except ValueError:
        raise ValueError(
            f"environment variable {name} must be an integer, got {raw!r}"
        ) from None


def env_float(name: str, default: float) -> float:
    """Float knob; unset/blank keeps ``default``."""
    raw = _raw(name)
    if raw is None:
        return default
    try:
        return float(raw)
    except ValueError:
        raise ValueError(
            f"environment variable {name} must be a number, got {raw!r}"
        ) from None


def env_bool(name: str, default: bool) -> bool:
    """Boolean knob (1/true/yes/on vs 0/false/no/off, case-insensitive)."""
    raw = _raw(name)
    if raw is None:
        return default
    lowered = raw.lower()
    if lowered in _TRUE:
        return True
    if lowered in _FALSE:
        return False
    raise ValueError(
        f"environment variable {name} must be a boolean "
        f"({'/'.join(_TRUE)} or {'/'.join(_FALSE)}), got {raw!r}"
    )


def env_str(
    name: str, default: str, choices: Optional[Sequence[str]] = None
) -> str:
    """String knob, optionally restricted to ``choices``."""
    raw = _raw(name)
    value = default if raw is None else raw
    if choices is not None and value not in choices:
        raise ValueError(
            f"environment variable {name} must be one of {tuple(choices)}, "
            f"got {value!r}"
        )
    return value
