"""Flow-controlled transport: adaptive flush + credit-based backpressure.

This package is the engine's communication layer between the routing
logic (:mod:`repro.engine.runtime`) and the raw network fabric
(:mod:`repro.cluster.network`).  A :class:`Transport` owns one
:class:`Channel` per (source, destination-instance) pair; each channel
batches with a per-channel delay budget (latency-bounded adaptive flush)
and paces itself with receiver-granted credits (backpressure), as
configured by :class:`TransportConfig` / the ``REPRO_NET_*`` environment
knobs.  See DESIGN.md §9 for the protocol and the determinism argument.
"""

from .config import FLUSH_MODES, TransportConfig
from .channel import Channel, Transport

#: Grouped-config alias: ``HubConfig.net`` is a ``NetConfig`` — the
#: transport configuration under its knob-group name.
NetConfig = TransportConfig

__all__ = ["Channel", "FLUSH_MODES", "NetConfig", "Transport", "TransportConfig"]
