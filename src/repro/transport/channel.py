"""Per-destination flow-controlled channels over the network fabric.

A :class:`Channel` carries the event stream of one ``(source, destination
instance)`` pair.  It owns two policies the raw fabric does not have:

* **Latency-bounded adaptive flush** — in ``adaptive`` mode a channel
  accumulates emissions and flushes as one batched transfer when either
  ``flush_max_batch`` messages are pending (*full*) or the oldest pending
  message is about to exceed the ``flush_s`` delay budget (*deadline*).
  Lightly loaded channels pay at most the budget; busy channels flush at
  batch boundaries — replacing the fabric's global fixed ``batch_flush_s``
  epochs with a per-channel bound on added delay.

* **Credit-based backpressure** — with ``backpressure`` on, a channel
  starts with ``credit_window`` credits; each message on the wire consumes
  one, and the credit is granted back (after the channel's propagation
  latency) when the receiving instance dequeues or drops the message.  A
  channel out of credits *sheds to its spill queue* rather than blocking
  the emitting worker, so receiver inboxes are bounded by the credit
  window per inbound channel, no message is ever lost, and senders never
  stall inside ``process()`` — which keeps self-addressed delivery loops
  (the EP dispatch) deadlock-free.

* **Per-channel circuit breaking** — when the fabric reports the
  channel's ``(src, dst)`` pair partitioned
  (:meth:`~repro.cluster.Network.is_partitioned`), the channel opens a
  breaker instead of flushing into a black hole: pending messages shed
  to the spill queue (same accounting as credit starvation) and a timer
  re-probes the fabric every ``breaker_probe_s`` until the partition
  heals, then flushes with cause ``heal``.  See RESILIENCE.md.

Per-channel FIFO order is preserved unconditionally: the pending queue is
FIFO, a flush always sends a prefix, and the fabric delivers batches in
order behind the shared NIC watermark — the invariant the migration
protocol relies on.  The channel's flow machinery runs on ``call_later``
callbacks of the simulation clock, so two identical runs make identical
flush/grant decisions and the DES stays bit-deterministic.

When the source slice migrates, subsequent enqueues re-bind the channel
to the source's new host; a credit-starved remainder enqueued from the
old host is then charged to the new host's NIC on flush — a deliberate
cost-model approximation confined to the migration window.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Optional, Tuple, TYPE_CHECKING

from ..cluster import Network
from ..sim import Environment
from .config import TransportConfig

if TYPE_CHECKING:  # pragma: no cover
    from ..engine.instance import SliceInstance

__all__ = ["Channel", "Transport"]

#: Flush causes recorded per channel and in ``transport_flushes_total``.
#: ``heal`` is the flush a circuit breaker issues when the partition that
#: tripped it disappears from the fabric.
FLUSH_CAUSES = ("eager", "full", "deadline", "credit", "heal")


class Channel:
    """One flow-controlled (source, destination-instance) event stream."""

    __slots__ = (
        "_transport",
        "env",
        "network",
        "source_key",
        "instance",
        "dst_host",
        "_adaptive",
        "_budget",
        "_max_batch",
        "_bp",
        "credit_window",
        "credits",
        "_pending",
        "_src_host",
        "_deadline_token",
        "_starved_since",
        "_breaker_open",
        "_probe_s",
        "breaker_trips",
        "stall_seconds_total",
        "stall_count",
        "messages_sent",
        "messages_spilled",
        "flush_causes",
        "released",
    )

    def __init__(self, transport: "Transport", source_key: str, instance):
        self._transport = transport
        self.env: Environment = transport.env
        self.network: Network = transport.network
        self.source_key = source_key
        self.instance = instance
        self.dst_host: str = instance.host.host_id
        config = transport.config
        self._adaptive = config.flush_mode == "adaptive"
        self._budget = config.flush_s
        self._max_batch = config.flush_max_batch
        self._bp = config.backpressure
        self.credit_window = config.credit_window
        #: Remaining send credits (meaningless unless backpressure is on).
        self.credits = config.credit_window
        self._pending: deque = deque()
        self._src_host: Optional[str] = None
        self._deadline_token = 0
        #: Simulated time since when the channel has pending messages it
        #: cannot send for lack of credits (``None`` = not starved).
        self._starved_since: Optional[float] = None
        #: True while the circuit breaker holds the channel off a
        #: partitioned fabric path (pending messages shed to spill).
        self._breaker_open = False
        self._probe_s = config.breaker_probe_s
        self.breaker_trips = 0
        self.stall_seconds_total = 0.0
        self.stall_count = 0
        self.messages_sent = 0
        #: Messages that entered the pending queue while starved.
        self.messages_spilled = 0
        self.flush_causes: Dict[str, int] = dict.fromkeys(FLUSH_CAUSES, 0)
        self.released = False

    # -- introspection ------------------------------------------------------

    @property
    def pending_count(self) -> int:
        """Messages queued at the sender, not yet on the wire."""
        return len(self._pending)

    @property
    def starved(self) -> bool:
        """True while pending messages wait for credits."""
        return self._starved_since is not None

    @property
    def breaker_open(self) -> bool:
        """True while the channel is circuit-broken off a partition."""
        return self._breaker_open

    @property
    def credits_outstanding(self) -> int:
        """Credits consumed by in-flight or not-yet-dequeued messages."""
        return self.credit_window - self.credits if self._bp else 0

    # -- send side ----------------------------------------------------------

    def enqueue(self, src_host: str, event) -> None:
        """Queue one message; flush per the channel's policy."""
        self._src_host = src_host
        pending = self._pending
        pending.append(event)
        if self._starved_since is not None:
            self.messages_spilled += 1
        if not self._adaptive:
            self._flush("eager")
            return
        if len(pending) == 1 and self._budget > 0.0:
            self._deadline_token += 1
            self.env.call_later(
                self._budget, self._on_deadline, self._deadline_token
            )
        if len(pending) >= self._max_batch:
            self._flush("full")
        elif self._budget <= 0.0:
            self._flush("eager")

    def enqueue_many(self, src_host: str, events) -> None:
        """Queue a run of messages emitted together (one routing pass)."""
        self._src_host = src_host
        pending = self._pending
        was_empty = not pending
        if self._starved_since is not None:
            self.messages_spilled += len(events)
        pending.extend(events)
        if not self._adaptive:
            self._flush("eager")
            return
        if was_empty and self._budget > 0.0:
            self._deadline_token += 1
            self.env.call_later(
                self._budget, self._on_deadline, self._deadline_token
            )
        if len(pending) >= self._max_batch:
            self._flush("full")
        elif self._budget <= 0.0:
            self._flush("eager")

    def _on_deadline(self, token: int) -> None:
        """Delay-budget timer: flush whatever is pending, once, if current."""
        if token != self._deadline_token or self.released:
            return
        if self._pending:
            self._flush("deadline")

    def _flush(self, cause: str) -> None:
        """Send the longest credit-covered prefix of the pending queue."""
        pending = self._pending
        if not pending or self.released or self._breaker_open:
            return
        if self.network.has_partitions and self.network.is_partitioned(
            self._src_host, self.dst_host
        ):
            self._trip_breaker()
            return
        n = len(pending)
        if self._bp:
            credits = self.credits
            if credits <= 0:
                if self._starved_since is None:
                    self._starved_since = self.env.now
                return
            if n > credits:
                n = credits
        if self._starved_since is not None:
            stall = self.env.now - self._starved_since
            self._starved_since = None
            self.stall_seconds_total += stall
            self.stall_count += 1
            hist = self._transport._tel_stall
            if hist is not None:
                hist.observe(stall)
        if n == len(pending):
            events = list(pending)
            pending.clear()
            # Any armed deadline timer now covers delivered messages.
            self._deadline_token += 1
        else:
            events = [pending.popleft() for _ in range(n)]
        if self._bp:
            self.credits -= n
        self.flush_causes[cause] += 1
        fam = self._transport._tel_flush
        if fam is not None:
            fam.labels(cause=cause).inc()
        self.messages_sent += n
        deliver = self.instance.deliver
        if n == 1:
            self.network.send(
                self._src_host, self.dst_host, events[0].size_bytes, events[0], deliver
            )
        else:
            self.network.send_batch(
                self._src_host,
                self.dst_host,
                [event.size_bytes for event in events],
                events,
                deliver,
            )
        if pending and self._bp and self.credits <= 0:
            self._starved_since = self.env.now

    # -- circuit breaker ------------------------------------------------------

    def _trip_breaker(self) -> None:
        """The fabric path is partitioned: shed to spill, re-probe later.

        Instead of retrying into a black hole (every message would be
        dropped by the fabric and its credit lost for the partition's
        lifetime), the channel opens a breaker: pending messages park in
        the spill queue exactly as under credit starvation, and a probe
        timer re-checks the fabric every ``breaker_probe_s`` until the
        partition heals, then flushes with cause ``heal``.
        """
        self._breaker_open = True
        self.breaker_trips += 1
        if self._starved_since is None:
            self._starved_since = self.env.now
        fam = self._transport._tel_breaker
        if fam is not None:
            fam.inc()
        self.env.call_later(self._probe_s, self._probe_breaker)

    def _probe_breaker(self) -> None:
        if self.released or not self._breaker_open:
            return
        if self.network.is_partitioned(self._src_host, self.dst_host):
            self.env.call_later(self._probe_s, self._probe_breaker)
            return
        self._breaker_open = False
        if self._pending:
            self._flush("heal")

    # -- receive side (credit grants) ---------------------------------------

    def consumed(self, n: int = 1) -> None:
        """The receiver dequeued/dropped ``n`` messages: grant credits back.

        The grant travels upstream with the channel's propagation latency
        (loopback for intra-host channels), mirroring a real credit frame.
        """
        if not self._bp or self.released:
            return
        latency = (
            self.network.loopback_latency
            if self._src_host == self.dst_host
            else self.network.latency
        )
        self.env.call_later(latency, self._on_grant, n)

    def _on_grant(self, n: int) -> None:
        if self.released:
            return
        # Cap at the window: an event a halted origin drops and later
        # re-splices on resume() returns its credit twice (see
        # SliceInstance.resume), and the cap absorbs the surplus.
        self.credits = min(self.credits + n, self.credit_window)
        if self._pending:
            self._flush("credit")


class Transport:
    """Registry of flow-controlled channels for one engine runtime.

    With the default configuration (``eager`` flush, no backpressure) the
    transport is a pure passthrough: :meth:`send`/:meth:`send_many` call
    the fabric directly with the receiving instance's ``deliver`` — the
    exact call sequence, and therefore the exact simulated trajectory, of
    the pre-transport engine.  Channels engage only when adaptive flush
    or backpressure is configured.

    Construction programs the fabric to match the flush mode: ``fixed``
    installs ``flush_s`` as the fabric's per-sender flush epoch, and
    ``adaptive`` disables fabric epochs (the channel owns batching);
    ``eager`` leaves the fabric exactly as the caller built it.
    """

    def __init__(
        self,
        env: Environment,
        network: Network,
        config: Optional[TransportConfig] = None,
    ):
        self.env = env
        self.network = network
        self.config = config if config is not None else TransportConfig.from_env()
        self.passthrough = (
            self.config.flush_mode != "adaptive" and not self.config.backpressure
        )
        if self.config.flush_mode == "fixed":
            network.batch_flush_s = self.config.flush_s
        elif self.config.flush_mode == "adaptive":
            network.batch_flush_s = 0.0
        self._channels: Dict[Tuple[str, object], Channel] = {}
        self._by_instance: Dict[object, List[Channel]] = {}
        self._by_source: Dict[str, List[Channel]] = {}
        #: Pre-resolved telemetry instruments (``None`` until a bundle
        #: with metrics enabled is bound).
        self._tel_flush = None
        self._tel_stall = None
        self._tel_breaker = None

    @property
    def backpressure(self) -> bool:
        return self.config.backpressure

    def bind_telemetry(self, telemetry) -> None:
        """Attach a :class:`repro.telemetry.Telemetry` bundle.

        Channels then feed ``transport_flushes_total`` (by cause) and the
        ``transport_stall_seconds`` histogram; the outstanding-credit and
        spill-depth gauges are sampled on the probe heartbeat instead
        (see :class:`repro.elastic.ProbeCollector`).
        """
        self._tel_flush = (
            telemetry.transport_flushes if telemetry is not None else None
        )
        self._tel_stall = (
            telemetry.transport_stall if telemetry is not None else None
        )
        self._tel_breaker = (
            telemetry.breaker_trips if telemetry is not None else None
        )

    # -- channel registry ---------------------------------------------------

    def channel(self, source_key: str, instance) -> Channel:
        """The channel for ``(source_key, instance)``, created on first use."""
        key = (source_key, instance)
        channel = self._channels.get(key)
        if channel is None:
            channel = Channel(self, source_key, instance)
            self._channels[key] = channel
            self._by_instance.setdefault(instance, []).append(channel)
            self._by_source.setdefault(source_key, []).append(channel)
        return channel

    def channel_count(self) -> int:
        return len(self._channels)

    def release_instance(self, instance) -> None:
        """Drop every channel delivering to ``instance`` (teardown).

        Spilled messages toward the destroyed instance are discarded —
        the same outcome as the fabric delivering to a destroyed
        instance, which drops on arrival.  Channels *from* the slice's
        logical id survive (they are keyed by source name), so emissions
        a predecessor instance spilled still reach their receivers.
        """
        for channel in self._by_instance.pop(instance, ()):
            channel.released = True
            del self._channels[(channel.source_key, instance)]
            self._by_source[channel.source_key].remove(channel)

    # -- data plane ---------------------------------------------------------

    def send(self, source_key: str, src_host: str, instance, event) -> None:
        """Carry one event to ``instance`` (routing already resolved)."""
        if self.passthrough:
            self.network.send(
                src_host,
                instance.host.host_id,
                event.size_bytes,
                event,
                instance.deliver,
            )
            return
        self.channel(source_key, instance).enqueue(src_host, event)

    def send_many(self, source_key: str, src_host: str, instance, events) -> None:
        """Carry a same-destination run of events emitted together."""
        if self.passthrough:
            if len(events) == 1:
                self.network.send(
                    src_host,
                    instance.host.host_id,
                    events[0].size_bytes,
                    events[0],
                    instance.deliver,
                )
            else:
                self.network.send_batch(
                    src_host,
                    instance.host.host_id,
                    [event.size_bytes for event in events],
                    events,
                    instance.deliver,
                )
            return
        self.channel(source_key, instance).enqueue_many(src_host, events)

    def on_consumed(self, instance, source_key: str, n: int = 1) -> None:
        """The receiver dequeued/dropped ``n`` messages of ``source_key``."""
        channel = self._channels.get((source_key, instance))
        if channel is not None:
            channel.consumed(n)

    # -- enforcer / probe signals -------------------------------------------

    def outbound_stats(self, source_key: str) -> Dict[str, float]:
        """Aggregated send-side flow state of one source's channels.

        ``spill_depth`` counts messages parked behind starved channels —
        the probe signal that upstream pressure, not local CPU, is the
        slice's bottleneck; ``starved_channels`` and the cumulative
        ``stall_seconds_total`` qualify it.
        """
        spill = 0
        starved = 0
        stall = 0.0
        for channel in self._by_source.get(source_key, ()):
            if channel.starved:
                starved += 1
                spill += channel.pending_count
            stall += channel.stall_seconds_total
        return {
            "spill_depth": spill,
            "starved_channels": starved,
            "stall_seconds_total": stall,
        }

    def inbound_credits_outstanding(self, instance) -> int:
        """Credits held by in-flight/queued messages toward ``instance``."""
        return sum(
            channel.credits_outstanding
            for channel in self._by_instance.get(instance, ())
        )

    def inbound_channel_count(self, instance) -> int:
        return len(self._by_instance.get(instance, ()))

    def pending_total(self) -> int:
        """Messages parked in channel queues anywhere in the runtime.

        The transport-held complement to instance inbox lengths: a
        stability probe that only watches inboxes would miss backlog
        that backpressure pushed back into spill queues.  Zero under
        the default passthrough (no channels exist).
        """
        return sum(
            channel.pending_count for channel in self._channels.values()
        )

    def breaker_trips_total(self) -> int:
        """Circuit-breaker trips summed over all channels."""
        return sum(
            channel.breaker_trips for channel in self._channels.values()
        )

    def flush_cause_totals(self) -> Dict[str, int]:
        """Flush counts by cause, summed over all channels."""
        totals = dict.fromkeys(FLUSH_CAUSES, 0)
        for channel in self._channels.values():
            for cause, count in channel.flush_causes.items():
                totals[cause] += count
        return totals
