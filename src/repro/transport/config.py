"""Configuration of the flow-controlled transport layer.

One :class:`TransportConfig` decides how per-destination channels batch
and pace the event plane on top of the raw network fabric
(:class:`~repro.cluster.Network`):

``flush_mode``
    ``eager`` (the default) hands every emission straight to the fabric —
    the seed behaviour, byte-identical scheduling.  ``fixed`` keeps eager
    channels but programs the fabric's per-sender flush epochs to
    ``flush_s`` (the StreamMine3G-style global micro-batching the
    experiments used before this layer existed).  ``adaptive`` batches in
    the channel itself: a channel flushes when ``flush_max_batch``
    messages are pending *or* when the oldest pending message is about to
    exceed the ``flush_s`` delay budget — so lightly loaded channels pay
    at most ``flush_s`` of batching delay while busy channels flush at
    batch boundaries, with the fabric's own epoch batching disabled.
``backpressure``
    When true, every channel starts with ``credit_window`` send credits;
    a message consumes one credit on the wire and the credit returns when
    the receiving slice instance dequeues (or drops) the message, after
    the channel's propagation latency.  A channel out of credits sheds to
    its spill queue instead of blocking the emitting worker — senders
    never stall inside ``process()``, which keeps the EP's self-addressed
    dispatch loop deadlock-free — so receiver inboxes stay bounded by
    ``credit_window`` per inbound channel and overload propagates
    upstream as spill/delay instead of unbounded memory.

Defaults come from the ``REPRO_NET_*`` environment variables (via the
shared :mod:`repro.config` helpers) so an existing deployment or test run
flips transport behaviour without code changes — the same convention as
``REPRO_MATCH_*`` and ``REPRO_STORE_*``.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..config import env_bool, env_float, env_int, env_str

__all__ = ["FLUSH_MODES", "TransportConfig"]

#: Recognised channel flush modes.
FLUSH_MODES = ("eager", "fixed", "adaptive")


@dataclass(frozen=True)
class TransportConfig:
    """Validated knobs of the flow-controlled transport layer."""

    flush_mode: str = "eager"
    #: Delay budget (``adaptive``) or fabric flush epoch (``fixed``), in
    #: simulated seconds.  Ignored by ``eager``.
    flush_s: float = 0.0
    #: Pending messages that force an immediate flush in ``adaptive`` mode.
    flush_max_batch: int = 64
    #: Enable credit-based backpressure on every channel.
    backpressure: bool = False
    #: Send credits per channel (max in-flight + queued messages one
    #: channel may have at its receiver).
    credit_window: int = 256
    #: Re-probe period of a tripped circuit breaker: when the fabric
    #: reports the channel's ``(src, dst)`` pair partitioned, the channel
    #: opens its breaker, sheds to spill, and re-checks the fabric every
    #: ``breaker_probe_s`` simulated seconds until the partition heals
    #: (see RESILIENCE.md).
    breaker_probe_s: float = 0.5

    def __post_init__(self):
        if self.flush_mode not in FLUSH_MODES:
            raise ValueError(
                f"flush_mode must be one of {FLUSH_MODES}, "
                f"got {self.flush_mode!r}"
            )
        if self.flush_s < 0:
            raise ValueError(f"flush_s must be >= 0, got {self.flush_s}")
        if self.flush_max_batch < 1:
            raise ValueError(
                f"flush_max_batch must be >= 1, got {self.flush_max_batch}"
            )
        if self.credit_window < 1:
            raise ValueError(
                f"credit_window must be >= 1, got {self.credit_window}"
            )
        if self.breaker_probe_s <= 0:
            raise ValueError(
                f"breaker_probe_s must be > 0, got {self.breaker_probe_s}"
            )

    @property
    def buffered(self) -> bool:
        """True when channels accumulate before flushing (adaptive mode)."""
        return self.flush_mode == "adaptive" and (
            self.flush_s > 0.0 or self.flush_max_batch > 1
        )

    @classmethod
    def from_env(cls) -> "TransportConfig":
        """Build from ``REPRO_NET_*`` (unset variables keep defaults)."""
        return cls(
            flush_mode=env_str("REPRO_NET_FLUSH_MODE", "eager", FLUSH_MODES),
            flush_s=env_float("REPRO_NET_FLUSH_S", 0.0),
            flush_max_batch=env_int("REPRO_NET_FLUSH_MAX_BATCH", 64),
            backpressure=env_bool("REPRO_NET_BACKPRESSURE", False),
            credit_window=env_int("REPRO_NET_CREDIT_WINDOW", 256),
            breaker_probe_s=env_float("REPRO_NET_BREAKER_PROBE_S", 0.5),
        )
