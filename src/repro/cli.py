"""Command-line interface: regenerate any paper experiment from a shell.

Usage::

    python -m repro.cli figure1 [--resolution 300]
    python -m repro.cli figure6 [--hosts 2 4 6 8 10 12]
    python -m repro.cli table1  [--migrations 25]
    python -m repro.cli figure7
    python -m repro.cli figure8 [--time-scale 0.25]
    python -m repro.cli figure9 [--time-scale 0.5]
    python -m repro.cli ablations [--which selection|grace|target]
    python -m repro.cli trace   [--out trace.jsonl]
    python -m repro.cli metrics [--format table|prom|json]
    python -m repro.cli policy  [--signals cpu,slo,spill]

Each experiment command prints the same ``paper vs measured`` report the
benchmark harness produces (see EXPERIMENTS.md).  ``trace`` and
``metrics`` drive a small telemetry-enabled deployment (with one live M
slice migration) and emit its span trace / metric registry — the ops
surface documented in OBSERVABILITY.md.  ``policy`` prints the resolved
elasticity-policy signal stack and thresholds with the provenance of
each knob (CLI flag, ``REPRO_POLICY_*`` variable, or built-in default);
the same ``--signals``/``--slo-*``/``--spill-*`` flags steer the elastic
experiments (``figure8``/``figure9``).
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

from .metrics import format_series, format_table

__all__ = ["main", "build_parser"]


def _non_negative_workers(value: str) -> int:
    try:
        workers = int(value)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected an integer worker count, got {value!r}"
        ) from None
    if workers < 0:
        raise argparse.ArgumentTypeError(
            f"match workers must be >= 0 (0 runs matching inline), got {workers}"
        )
    return workers


def _positive_chunk_rows(value: str) -> int:
    try:
        rows = int(value)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected an integer row count, got {value!r}"
        ) from None
    if rows < 1:
        raise argparse.ArgumentTypeError(
            f"match chunk rows must be >= 1, got {rows}"
        )
    return rows


def _add_match_options(p: argparse.ArgumentParser) -> None:
    """Parallel matching knobs shared by telemetry-demo commands."""
    p.add_argument(
        "--match-workers", type=_non_negative_workers, default=0,
        help="worker processes for parallel matching (0 = inline, default)",
    )
    p.add_argument(
        "--match-backend", choices=["auto", "inline", "pool", "shm"],
        default="auto",
        help="matching execution backend (default: auto)",
    )
    p.add_argument(
        "--match-chunk-rows", type=_positive_chunk_rows, default=4096,
        help="minimum packed-matrix rows per worker chunk (default: 4096)",
    )


def _add_store_options(p: argparse.ArgumentParser) -> None:
    """Out-of-core packed-row store knobs (exact ASPE backends only)."""
    from .filtering import STORE_BACKENDS

    p.add_argument(
        "--store-backend", choices=list(STORE_BACKENDS), default=None,
        help="packed-row backing store (default: REPRO_STORE_BACKEND or dense)",
    )
    p.add_argument(
        "--store-chunk-rows", type=_positive_chunk_rows, default=None,
        help="rows per store chunk (default: REPRO_STORE_CHUNK_ROWS or 65536)",
    )
    p.add_argument(
        "--store-memory-budget-mb", type=float, default=None,
        help="mmap resident-set budget per library in MiB (0 = unbounded)",
    )
    p.add_argument(
        "--store-compact-dead-ratio", type=float, default=None,
        help="compact once dead rows exceed this fraction (0 < r <= 1)",
    )


def _add_net_options(p: argparse.ArgumentParser) -> None:
    """Transport-layer knobs (flush policy + credit backpressure)."""
    from .transport import FLUSH_MODES

    p.add_argument(
        "--net-flush-mode", choices=list(FLUSH_MODES), default=None,
        help="channel flush policy (default: REPRO_NET_FLUSH_MODE or eager)",
    )
    p.add_argument(
        "--net-flush-s", type=float, default=None,
        help="per-channel flush delay budget in seconds",
    )
    p.add_argument(
        "--net-flush-max-batch", type=_positive_chunk_rows, default=None,
        help="flush as soon as this many messages are pending",
    )
    p.add_argument(
        "--net-backpressure", action="store_true", default=None,
        help="enable credit-based backpressure on every channel",
    )
    p.add_argument(
        "--net-credit-window", type=_positive_chunk_rows, default=None,
        help="send credits per channel (default: REPRO_NET_CREDIT_WINDOW or 256)",
    )


#: ``argparse`` destinations of the policy flags — identical to the
#: :class:`repro.elastic.PolicyConfig` knob names, so the parsed values
#: forward verbatim as ``from_env`` overrides.
_POLICY_FLAG_DESTS = (
    "signals",
    "target_utilization",
    "scale_out_threshold",
    "scale_in_threshold",
    "local_overload_threshold",
    "grace_period_s",
    "min_hosts",
    "backlog_aware_scaling",
    "max_scale_out_factor",
    "slo_p99_s",
    "slo_window_s",
    "slo_min_samples",
    "slo_sustain_rounds",
    "slo_release_fraction",
    "slo_veto_max_rounds",
    "spill_depth_limit",
    "spill_starved_limit",
    "spill_sustain_rounds",
    "spill_hold_rounds",
    "symptom_target_fraction",
)


def _add_policy_options(p: argparse.ArgumentParser) -> None:
    """Elasticity-policy knobs (signal stack, thresholds, SLO, spill)."""
    p.add_argument(
        "--signals", default=None,
        help="comma-separated policy signal stack, e.g. cpu,slo,spill "
             "(default: REPRO_POLICY_SIGNALS or cpu)",
    )
    p.add_argument("--target-utilization", type=float, default=None,
                   help="utilization the enforcer packs hosts toward")
    p.add_argument("--scale-out-threshold", type=float, default=None,
                   help="global rule: scale out above this average CPU")
    p.add_argument("--scale-in-threshold", type=float, default=None,
                   help="global rule: scale in below this average CPU")
    p.add_argument("--local-overload-threshold", type=float, default=None,
                   help="local rule: rebalance a host above this CPU")
    p.add_argument("--grace-period-s", type=float, default=None,
                   help="settle window between enforcement actions")
    p.add_argument("--min-hosts", type=int, default=None,
                   help="never release below this many hosts")
    p.add_argument(
        "--backlog-aware-scaling", action=argparse.BooleanOptionalAction,
        default=None,
        help="size scale-outs from CPU + queue backlog (default: on)",
    )
    p.add_argument("--max-scale-out-factor", type=float, default=None,
                   help="max fleet growth factor per decision")
    p.add_argument("--slo-p99-s", type=float, default=None,
                   help="target p99 notification delay for the slo signal")
    p.add_argument("--slo-window-s", type=float, default=None,
                   help="sliding window the p99 is computed over")
    p.add_argument("--slo-min-samples", type=int, default=None,
                   help="min delay samples before the slo signal speaks")
    p.add_argument("--slo-sustain-rounds", type=int, default=None,
                   help="consecutive breached rounds before slo fires")
    p.add_argument("--slo-release-fraction", type=float, default=None,
                   help="scale-in vetoed while p99 > fraction * SLO")
    p.add_argument("--slo-veto-max-rounds", type=int, default=None,
                   help="consecutive vetoed scale-ins before the veto "
                        "expires (0 = never)")
    p.add_argument("--spill-depth-limit", type=int, default=None,
                   help="summed spill depth that counts as pressure")
    p.add_argument("--spill-starved-limit", type=int, default=None,
                   help="summed starved channels that count as pressure")
    p.add_argument("--spill-sustain-rounds", type=int, default=None,
                   help="consecutive pressured rounds before spill fires")
    p.add_argument("--spill-hold-rounds", type=int, default=None,
                   help="calm rounds tolerated before the spill streak "
                        "and veto reset")
    p.add_argument("--symptom-target-fraction", type=float, default=None,
                   help="symptom scale-outs pack toward target * fraction")


def _policy_overrides(args) -> dict:
    """PolicyConfig overrides for the policy flags the user passed."""
    overrides = {}
    for dest in _POLICY_FLAG_DESTS:
        value = getattr(args, dest, None)
        if value is not None:
            overrides[dest] = value
    return overrides


def _policy_from_args(args):
    """The :class:`ElasticityPolicy` resolved from CLI > env > default."""
    from .elastic import PolicyConfig

    return PolicyConfig.from_env(**_policy_overrides(args)).policy()


def _net_overrides(args) -> dict:
    """HubConfig transport kwargs for the --net-* flags the user passed."""
    overrides = {}
    for attr, field in (
        ("net_flush_mode", "net_flush_mode"),
        ("net_flush_s", "net_flush_s"),
        ("net_flush_max_batch", "net_flush_max_batch"),
        ("net_backpressure", "net_backpressure"),
        ("net_credit_window", "net_credit_window"),
    ):
        value = getattr(args, attr, None)
        if value is not None:
            overrides[field] = value
    return overrides


def _store_overrides(args) -> dict:
    """HubConfig store kwargs for the --store-* flags the user passed."""
    overrides = {}
    for attr, field in (
        ("store_backend", "store_backend"),
        ("store_chunk_rows", "store_chunk_rows"),
        ("store_memory_budget_mb", "store_memory_budget_mb"),
        ("store_compact_dead_ratio", "store_compact_dead_ratio"),
    ):
        value = getattr(args, attr, None)
        if value is not None:
            overrides[field] = value
    return overrides


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="E-STREAMHUB reproduction: regenerate the paper's tables and figures.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("figure1", help="FSE tick trace (Figure 1)")
    p.add_argument("--resolution", type=float, default=300.0,
                   help="sampling resolution in seconds")

    p = sub.add_parser("figure6", help="baseline throughput and delays (Figure 6)")
    p.add_argument("--hosts", type=int, nargs="+", default=[2, 4, 6, 8, 10, 12])
    p.add_argument("--iterations", type=int, default=5,
                   help="binary-search iterations per configuration")

    p = sub.add_parser("table1", help="migration times (Table I)")
    p.add_argument("--migrations", type=int, default=25,
                   help="migrations per operator")

    sub.add_parser("figure7", help="delays under consecutive migrations (Figure 7)")

    p = sub.add_parser("figure8", help="synthetic elastic scaling (Figure 8)")
    p.add_argument("--time-scale", type=float, default=0.25)
    p.add_argument("--peak", type=float, default=350.0)
    _add_policy_options(p)

    p = sub.add_parser("figure9", help="FSE trace elastic scaling (Figure 9)")
    p.add_argument("--time-scale", type=float, default=0.5)
    p.add_argument("--peak", type=float, default=190.0)
    _add_policy_options(p)

    p = sub.add_parser("ablations", help="enforcer design-choice ablations")
    p.add_argument("--which", choices=["selection", "grace", "target"],
                   default="selection")
    p.add_argument("--time-scale", type=float, default=0.15)

    p = sub.add_parser("cost", help="elastic vs static provisioning cost (§I)")
    p.add_argument("--time-scale", type=float, default=0.35)

    p = sub.add_parser(
        "trace",
        help="record a sample JSONL span trace (pipeline + one migration)",
    )
    p.add_argument("--out", default="trace.jsonl",
                   help="JSONL output path (default: trace.jsonl)")
    p.add_argument("--publications", type=int, default=200)
    p.add_argument("--no-migration", action="store_true",
                   help="skip the mid-run M slice migration")
    p.add_argument(
        "--stream-window", type=_positive_chunk_rows, default=None,
        help="stream spans to disk every N spans instead of holding the "
             "whole trace in memory (same output bytes)",
    )
    _add_match_options(p)
    _add_store_options(p)
    _add_net_options(p)

    p = sub.add_parser(
        "metrics",
        help="render the telemetry registry snapshot of a sample run",
    )
    p.add_argument("--format", choices=["table", "prom", "json"],
                   default="table", dest="fmt")
    p.add_argument("--out", default=None,
                   help="write to this file instead of stdout")
    p.add_argument("--publications", type=int, default=200)
    _add_match_options(p)
    _add_store_options(p)
    _add_net_options(p)

    p = sub.add_parser(
        "policy",
        help="print the resolved elasticity-policy signal stack and knobs",
    )
    _add_policy_options(p)

    p = sub.add_parser(
        "chaos",
        help="run the chaos scenarios (RESILIENCE.md) and print verdicts",
    )
    p.add_argument(
        "--scenario",
        choices=["rack-loss", "manager-crash", "partition", "all"],
        default="all",
        help="which scenario family to run (default: all)",
    )
    p.add_argument("--rack-size", type=int, default=2,
                   help="hosts lost at once in the rack-loss scenario")
    p.add_argument(
        "--phase", default="copy",
        choices=["pre", "sync", "pause", "copy", "post"],
        help="protocol phase whose start crashes the manager",
    )
    p.add_argument(
        "--trace", default=None, metavar="PATH",
        help="also write each scenario's span trace (fault.injected, "
             "recovery.*) as JSONL, one file per scenario next to PATH",
    )
    return parser


def _cmd_figure1(args) -> None:
    from .workloads import FrankfurtTraceModel

    series = FrankfurtTraceModel().series(resolution_s=args.resolution)
    hourly = [
        (f"{t / 3600:04.1f}h", round(rate))
        for t, rate in series
        if t % 3600 == 0
    ]
    print("Figure 1 — FSE tick volume (synthetic reconstruction, ticks/s)")
    print(format_series("hour, ticks/s", hourly))


def _cmd_figure6(args) -> None:
    from .experiments import ExperimentSetup, run_figure6

    setup = ExperimentSetup()
    results = run_figure6(
        host_counts=args.hosts, setup=setup, search_iterations=args.iterations
    )
    print("Figure 6 — baseline performance (paper: 422 pub/s at 12 hosts)")
    rows = []
    for r in results:
        stack = dict(r.delay_percentiles)
        rows.append([
            r.hosts,
            round(r.max_throughput, 1),
            round(r.max_throughput * setup.subscriptions / 1e6, 1),
            round(r.delay_stats.minimum * 1000),
            round(stack[0.75] * 1000),
        ])
    print(format_table(
        ["hosts", "max pub/s", "Mops/s", "delay min ms", "delay p75 ms"], rows
    ))


def _cmd_table1(args) -> None:
    from .experiments import run_table1

    rows = run_table1(migrations_per_operator=args.migrations)
    print("Table I — migration times (paper: AP 232±31, M(12.5K) 1497±354,")
    print("          M(50K) 2533±1557, EP 275±52 ms)")
    print(format_table(
        ["operator", "avg ms", "std ms"],
        [[r.operator, round(r.average_ms), round(r.std_ms)] for r in rows],
    ))


def _cmd_figure7(args) -> None:
    from .experiments import run_figure7

    result = run_figure7()
    print("Figure 7 — delays under consecutive migrations")
    print("migrations at: " + ", ".join(
        f"t={t:.0f}s ({sid})" for t, sid in result.migration_marks
    ))
    print(format_table(
        ["window", "mean ms", "max ms"],
        [
            [f"{w.window_start:.0f}s", round(w.mean * 1000), round(w.maximum * 1000)]
            for w in result.delay_windows
        ],
    ))
    print(f"steady ≈ {result.steady_state_mean_s * 1000:.0f} ms "
          f"(paper ≈ 500); peak {result.peak_delay_s * 1000:.0f} ms (paper < 2000)")


def _print_elastic(result) -> None:
    print(format_table(
        ["time", "hosts", "cpu min", "cpu avg", "cpu max"],
        [
            [f"{t:.0f}s", count, f"{lo:.0%}", f"{avg:.0%}", f"{hi:.0%}"]
            for (t, count), (_, lo, avg, hi) in list(
                zip(result.host_series, result.utilization_series)
            )[:: max(1, len(result.host_series) // 25)]
        ],
    ))
    print(format_table(
        ["window", "delay mean ms", "delay max ms"],
        [
            [f"{w.window_start:.0f}s", round(w.mean * 1000), round(w.maximum * 1000)]
            for w in result.delay_windows[:: max(1, len(result.delay_windows) // 15)]
        ],
    ))
    print(
        f"hosts 1 → {result.max_hosts} → {result.final_hosts}; "
        f"decisions {len(result.decisions)}; migrations "
        f"{len(result.migration_reports)}; published {result.published}; "
        f"notified {result.notified}"
    )


def _cmd_figure8(args) -> None:
    from .experiments import run_figure8

    print(f"Figure 8 — synthetic ramp to {args.peak:g} pub/s "
          f"(time scale {args.time_scale:g}; paper: 1 → ~15 → 1 hosts)")
    _print_elastic(run_figure8(
        time_scale=args.time_scale, peak_rate=args.peak,
        policy=_policy_from_args(args),
    ))


def _cmd_figure9(args) -> None:
    from .experiments import run_figure9

    print(f"Figure 9 — FSE trace replay, peak {args.peak:g} pub/s "
          f"(time scale {args.time_scale:g}; paper: 1 to 8 hosts)")
    _print_elastic(run_figure9(
        time_scale=args.time_scale, peak_rate=args.peak,
        policy=_policy_from_args(args),
    ))


def _cmd_ablations(args) -> None:
    from .experiments import (
        run_grace_period_ablation,
        run_selection_ablation,
        run_target_utilization_ablation,
    )

    runner = {
        "selection": run_selection_ablation,
        "grace": run_grace_period_ablation,
        "target": run_target_utilization_ablation,
    }[args.which]
    rows = runner(time_scale=args.time_scale)
    print(f"Ablation — {args.which}")
    print(format_table(
        ["variant", "migrations", "state MB", "decisions", "mean delay ms",
         "max hosts"],
        [
            [r.variant, r.migrations, round(r.state_moved_mb, 1), r.decisions,
             round(r.mean_delay_s * 1000), r.max_hosts]
            for r in rows
        ],
    ))


def _cmd_cost(args) -> None:
    from .experiments import run_cost_effectiveness

    comparison = run_cost_effectiveness(time_scale=args.time_scale)
    print("Cost-effectiveness — elastic vs static provisioning (FSE day)")
    print(format_table(
        ["provisioning", "host-seconds", "avg hosts"],
        [
            ["static @ peak", round(comparison.static_peak_host_seconds),
             comparison.peak_hosts],
            ["elastic", round(comparison.elastic_host_seconds),
             round(comparison.average_hosts, 2)],
        ],
    ))
    print(f"savings vs static peak: {comparison.savings_vs_static_peak:.0%}")


def _telemetry_demo(
    publications: int,
    migrate: bool = True,
    match_workers: int = 0,
    match_backend: str = "auto",
    match_chunk_rows: int = 4096,
    store_overrides: Optional[dict] = None,
    net_overrides: Optional[dict] = None,
    stream_trace_to: Optional[tuple] = None,
):
    """One small telemetry-enabled deployment, fully deterministic.

    Two engine hosts run a 2/4/2-slice hub; a burst of ``publications``
    flows through while (optionally) the stateful slice ``M:0``
    live-migrates between the hosts.  Matching is statistically sampled
    by default; with ``match_workers > 0`` it switches to real ASPE
    filtering through the parallel worker pool so the worker-pool metric
    families carry data.  Returns ``(telemetry,
    migration_report_or_None)``.
    """
    import random

    from .cluster import CloudProvider, HostSpec
    from .filtering import (
        AspeCipher,
        AspeKey,
        AspeLibrary,
        ExactBackend,
        Op,
        Predicate,
        PredicateSet,
    )
    from .pubsub import HubConfig, Publication, StreamHub, Subscription
    from .sim import Environment
    from .telemetry import Telemetry

    env = Environment()
    telemetry = Telemetry(env)
    if stream_trace_to is not None:
        path, window = stream_trace_to
        telemetry.tracer.stream_to(path, window_spans=window)
    cloud = CloudProvider(env, spec=HostSpec(cores=8), max_hosts=4)
    hosts = [cloud.provision_now() for _ in range(3)]
    shared = dict(
        ap_slices=2,
        m_slices=4,
        ep_slices=2,
        sink_slices=1,
        telemetry=telemetry,
        match_workers=match_workers,
        match_backend=match_backend,
        match_chunk_rows=match_chunk_rows,
        **(store_overrides or {}),
        **(net_overrides or {}),
    )
    cipher = None
    if match_workers > 0:
        key = AspeKey.generate(4, rng=random.Random(42))
        cipher = AspeCipher(key, rng=random.Random(43))
        config = HubConfig(
            encrypted=True,
            backend_factory=lambda index: ExactBackend(AspeLibrary()),
            matcher_batch_limit=8,
            **shared,
        )
    else:
        config = HubConfig.sampled(
            matching_rate=0.05, encrypted=False, **shared
        )
    hub = StreamHub(env, cloud.network, config)
    hub.deploy_all_on(hosts[:2], hosts[2:])
    rng = random.Random(44)
    ops = [Op.GT, Op.GE, Op.LT, Op.LE]
    for sub_id in range(50):
        filter_payload = None
        if cipher is not None:
            filter_payload = cipher.encrypt_subscription(
                PredicateSet(
                    [Predicate(rng.randrange(4), rng.choice(ops), rng.uniform(0, 100))]
                )
            )
        hub.subscribe(Subscription(sub_id, 1000 + sub_id, filter_payload))
    env.run()

    report_box = []
    if migrate:
        def migration():
            yield env.timeout(0.05)
            report = yield hub.runtime.migrate("M:0", hosts[1])
            report_box.append(report)

        env.process(migration())
    for pub_id in range(publications):
        payload = None
        if cipher is not None:
            payload = cipher.encrypt_publication(
                [rng.uniform(0, 100) for _ in range(4)]
            )
        hub.publish(Publication(pub_id, payload, published_at=env.now))
    env.run()
    return telemetry, (report_box[0] if report_box else None)


def _cmd_trace(args) -> None:
    stream_trace_to = None
    if args.stream_window is not None:
        stream_trace_to = (args.out, args.stream_window)
    tel, report = _telemetry_demo(
        args.publications,
        migrate=not args.no_migration,
        match_workers=args.match_workers,
        match_backend=args.match_backend,
        match_chunk_rows=args.match_chunk_rows,
        store_overrides=_store_overrides(args),
        net_overrides=_net_overrides(args),
        stream_trace_to=stream_trace_to,
    )
    # Streaming finalization clears the resident list, so take the count
    # and the migration-phase spans before writing.
    phases = [s for s in tel.tracer.spans if s.name.startswith("migration.")]
    total_spans = tel.tracer.flushed_spans + len(tel.tracer.spans)
    tel.tracer.write_jsonl(args.out)
    print(f"trace: {total_spans} spans -> {args.out}")
    print(format_table(
        ["span", "count", "total s", "mean s", "max s"],
        [
            [name, count, f"{total:.6f}", f"{mean:.6f}", f"{peak:.6f}"]
            for name, count, total, mean, peak in tel.tracer.breakdown()
        ],
    ))
    if report is not None and phases:
        phase_sum = sum(s.duration_s for s in phases)
        print(
            f"migration {report.slice_id}: "
            + ", ".join(
                f"{s.name.split('.', 1)[1]} {s.duration_s * 1000:.1f} ms"
                for s in phases
            )
        )
        print(
            f"phase sum {phase_sum * 1000:.1f} ms == "
            f"measured delay {report.duration_s * 1000:.1f} ms "
            f"(interruption {report.interruption_s * 1000:.1f} ms)"
        )


def _cmd_metrics(args) -> None:
    import json as _json

    from .telemetry import to_prometheus, write_prometheus, write_snapshot_json

    tel, _ = _telemetry_demo(
        args.publications,
        match_workers=args.match_workers,
        match_backend=args.match_backend,
        match_chunk_rows=args.match_chunk_rows,
        store_overrides=_store_overrides(args),
        net_overrides=_net_overrides(args),
    )
    registry = tel.metrics
    if args.fmt == "table":
        text = registry.render()
    elif args.fmt == "prom":
        text = to_prometheus(registry)
    else:
        text = _json.dumps(registry.snapshot(), indent=2, sort_keys=True)
    if args.out is None:
        print(text)
    elif args.fmt == "prom":
        write_prometheus(args.out, registry)
        print(f"metrics: prometheus scrape -> {args.out}")
    elif args.fmt == "json":
        write_snapshot_json(args.out, registry)
        print(f"metrics: JSON snapshot -> {args.out}")
    else:
        with open(args.out, "w", encoding="utf-8") as fh:
            fh.write(text + "\n")
        print(f"metrics: table -> {args.out}")


def _cmd_policy(args) -> None:
    from .elastic import PolicyConfig

    overrides = _policy_overrides(args)
    try:
        config = PolicyConfig.from_env(**overrides)
    except ValueError as exc:
        raise SystemExit(f"policy: {exc}")
    print("Elasticity policy — resolved configuration")
    print(
        "signal stack: "
        + " > ".join(config.signals)
        + "  (arbitration: scale-out > rebalance > scale-in, "
        "ties to the earlier signal)"
    )
    rows = [
        [knob, value, source]
        for knob, value, source in PolicyConfig.provenance(**overrides)
    ]
    print(format_table(["knob", "value", "source"], rows))


def _cmd_chaos(args) -> None:
    from .experiments import run_manager_crash, run_partition_heal, run_rack_loss

    def trace_path(scenario):
        if args.trace is None:
            return None
        stem, ext = os.path.splitext(args.trace)
        return f"{stem}_{scenario}{ext or '.jsonl'}"

    outcomes = []
    if args.scenario in ("rack-loss", "all"):
        outcomes.append(run_rack_loss(
            rack_size=args.rack_size, trace_out=trace_path("rack_loss")
        ))
    if args.scenario in ("manager-crash", "all"):
        outcomes.append(run_manager_crash(
            during="migration", phase=args.phase,
            trace_out=trace_path("manager_crash_migration"),
        ))
        outcomes.append(run_manager_crash(
            during="reshard", phase=args.phase,
            trace_out=trace_path("manager_crash_reshard"),
        ))
    if args.scenario in ("partition", "all"):
        outcomes.append(run_partition_heal(
            trace_out=trace_path("partition_heal")
        ))
        outcomes.append(run_partition_heal(
            migrate=True, trace_out=trace_path("partition_heal_migrate")
        ))
    if args.trace is not None:
        print(f"span traces written next to {args.trace}")
    print("Chaos scenarios — delivered multiset vs fault-free baseline")
    rows = [
        [
            o.scenario,
            o.published,
            o.lost,
            o.duplicates_suppressed,
            "yes" if o.multiset_identical else "NO",
        ]
        for o in outcomes
    ]
    print(
        format_table(
            ["scenario", "published", "lost", "dups suppressed", "identical"],
            rows,
        )
    )
    for o in outcomes:
        print(f"{o.scenario}: {o.detail}")
    if not all(o.zero_loss and o.multiset_identical for o in outcomes):
        raise SystemExit("chaos: a scenario lost or corrupted notifications")


_COMMANDS = {
    "chaos": _cmd_chaos,
    "cost": _cmd_cost,
    "policy": _cmd_policy,
    "figure1": _cmd_figure1,
    "figure6": _cmd_figure6,
    "table1": _cmd_table1,
    "figure7": _cmd_figure7,
    "figure8": _cmd_figure8,
    "figure9": _cmd_figure9,
    "ablations": _cmd_ablations,
    "trace": _cmd_trace,
    "metrics": _cmd_metrics,
}


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    _COMMANDS[args.command](args)
    return 0


if __name__ == "__main__":
    sys.exit(main())
