"""repro — reproduction of E-STREAMHUB (ICDCS 2014).

An elastic, high-throughput content-based publish/subscribe engine:
a STREAMHUB-style tiered pub/sub pipeline (Access Point → Matching →
Exit Point) running on a StreamMine3G-like operator/slice runtime over a
simulated cluster, with live slice migration and a global/local elasticity
policy enforcer, evaluated with plain and ASPE-encrypted filtering.

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured results of every table and figure.

The most common entry points are re-exported here::

    from repro import Environment, CloudProvider, HubConfig, StreamHub
    from repro import ElasticityManager, ElasticityPolicy
"""

from .sim import Environment
from .cluster import CloudProvider, Host, HostSpec, Network
from .pubsub import HubConfig, Publication, StreamHub, Subscription
from .elastic import ElasticityManager, ElasticityPolicy

__version__ = "1.0.0"

__all__ = [
    "CloudProvider",
    "ElasticityManager",
    "ElasticityPolicy",
    "Environment",
    "Host",
    "HostSpec",
    "HubConfig",
    "Network",
    "Publication",
    "StreamHub",
    "Subscription",
    "__version__",
]
