"""Plain-text table/series rendering for the benchmark harness.

Every benchmark prints the paper's rows next to the measured ones using
these helpers, so EXPERIMENTS.md can be regenerated mechanically.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

__all__ = ["format_table", "format_series"]


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """Render an aligned ASCII table."""
    rendered_rows: List[List[str]] = [[_cell(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered_rows:
        if len(row) != len(headers):
            raise ValueError("row width does not match headers")
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = [
        "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)).rstrip(),
        "  ".join("-" * widths[i] for i in range(len(headers))),
    ]
    for row in rendered_rows:
        lines.append("  ".join(c.ljust(widths[i]) for i, c in enumerate(row)).rstrip())
    return "\n".join(lines)


def format_series(name: str, pairs: Iterable[Sequence[object]], unit: str = "") -> str:
    """Render an (x, y) series as compact aligned text."""
    suffix = f" [{unit}]" if unit else ""
    lines = [f"{name}{suffix}:"]
    for x, y in pairs:
        lines.append(f"  {_cell(x):>12}  {_cell(y)}")
    return "\n".join(lines)


def _cell(value: object) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        magnitude = abs(value)
        if magnitude >= 1000 or magnitude < 0.001:
            return f"{value:.3g}"
        return f"{value:.3f}".rstrip("0").rstrip(".")
    return str(value)
