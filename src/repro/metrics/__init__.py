"""Measurement utilities: delays, windowed aggregates, throughput, reports."""

from .delay import DelaySample, DelayStats, DelayTracker, percentile
from .windows import WindowStats, WindowedSeries
from .throughput import BacklogProbe, ThroughputMeter
from .report import format_series, format_table
from .export import ascii_chart, ascii_sparkline, write_csv, write_json

__all__ = [
    "BacklogProbe",
    "ascii_chart",
    "ascii_sparkline",
    "write_csv",
    "write_json",
    "DelaySample",
    "DelayStats",
    "DelayTracker",
    "ThroughputMeter",
    "WindowStats",
    "WindowedSeries",
    "format_series",
    "format_table",
    "percentile",
]
