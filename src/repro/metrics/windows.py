"""Fixed-window time-series aggregation.

The paper's elasticity plots (Figures 8 and 9) present averages, standard
deviations, minima and maxima over periods of 30 seconds; this module
provides exactly that aggregation for any sampled series.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Tuple

__all__ = ["WindowStats", "WindowedSeries"]


@dataclass(frozen=True)
class WindowStats:
    """Aggregate of all samples falling into one window."""

    window_start: float
    count: int
    mean: float
    std: float
    minimum: float
    maximum: float


class WindowedSeries:
    """Collects (time, value) samples and aggregates per fixed window."""

    def __init__(self, window_s: float = 30.0):
        if window_s <= 0:
            raise ValueError("window must be positive")
        self.window_s = window_s
        self._samples: List[Tuple[float, float]] = []

    def add(self, time: float, value: float) -> None:
        self._samples.append((time, value))

    def __len__(self) -> int:
        return len(self._samples)

    @property
    def samples(self) -> List[Tuple[float, float]]:
        return list(self._samples)

    def windows(self) -> List[WindowStats]:
        """Per-window aggregates, ordered by window start time."""
        buckets: Dict[int, List[float]] = {}
        for time, value in self._samples:
            buckets.setdefault(int(time // self.window_s), []).append(value)
        result = []
        for index in sorted(buckets):
            values = buckets[index]
            mean = sum(values) / len(values)
            variance = sum((v - mean) ** 2 for v in values) / len(values)
            result.append(
                WindowStats(
                    window_start=index * self.window_s,
                    count=len(values),
                    mean=mean,
                    std=math.sqrt(variance),
                    minimum=min(values),
                    maximum=max(values),
                )
            )
        return result
