"""End-to-end notification delay tracking.

The paper measures, for each publication, the delay between its sending by
a source operator slice and the reception of the *last* notification by
the sink operator (§VI-A), reporting averages, deviations, min/max and
stacked percentiles (Figure 6 bottom).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

__all__ = ["DelaySample", "DelayTracker", "percentile"]


@dataclass(frozen=True)
class DelaySample:
    """Delay of one fully notified publication."""

    pub_id: int
    published_at: float
    delivered_at: float
    notifications: int

    @property
    def delay(self) -> float:
        return self.delivered_at - self.published_at


def percentile(sorted_values: Sequence[float], fraction: float) -> float:
    """Linear-interpolated percentile of an already sorted sequence."""
    if not sorted_values:
        raise ValueError("no values")
    if not 0.0 <= fraction <= 1.0:
        raise ValueError("fraction must be in [0, 1]")
    position = fraction * (len(sorted_values) - 1)
    lower = int(math.floor(position))
    upper = int(math.ceil(position))
    if lower == upper:
        return sorted_values[lower]
    weight = position - lower
    return sorted_values[lower] * (1 - weight) + sorted_values[upper] * weight


class DelayTracker:
    """Collects delay samples and derives summary statistics."""

    def __init__(self) -> None:
        self.samples: List[DelaySample] = []

    def add(self, sample: DelaySample) -> None:
        self.samples.append(sample)

    def __len__(self) -> int:
        return len(self.samples)

    def delays(self, since: float = 0.0, until: float = math.inf) -> List[float]:
        """Delays of samples delivered in ``[since, until)``."""
        return [
            s.delay for s in self.samples if since <= s.delivered_at < until
        ]

    def stats(self, since: float = 0.0, until: float = math.inf) -> Optional["DelayStats"]:
        values = self.delays(since, until)
        if not values:
            return None
        return DelayStats.from_values(values)

    def percentile_stack(
        self, fractions: Sequence[float], since: float = 0.0, until: float = math.inf
    ) -> List[Tuple[float, float]]:
        """(fraction, delay) pairs — the paper's stacked percentile plot."""
        values = sorted(self.delays(since, until))
        if not values:
            return []
        return [(f, percentile(values, f)) for f in fractions]

    def total_notifications(self) -> int:
        return sum(s.notifications for s in self.samples)


@dataclass(frozen=True)
class DelayStats:
    """Summary statistics of a set of delays (seconds)."""

    count: int
    mean: float
    std: float
    minimum: float
    maximum: float
    p50: float
    p75: float
    p99: float

    @classmethod
    def from_values(cls, values: Sequence[float]) -> "DelayStats":
        ordered = sorted(values)
        n = len(ordered)
        mean = sum(ordered) / n
        variance = sum((v - mean) ** 2 for v in ordered) / n
        return cls(
            count=n,
            mean=mean,
            std=math.sqrt(variance),
            minimum=ordered[0],
            maximum=ordered[-1],
            p50=percentile(ordered, 0.50),
            p75=percentile(ordered, 0.75),
            p99=percentile(ordered, 0.99),
        )
