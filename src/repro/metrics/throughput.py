"""Throughput measurement and backlog-based saturation detection.

Figure 6 (top) reports the *maximal* throughput of each static
configuration "before events start accumulating at the input of the AP
operator": a configuration sustains a rate iff queues stay bounded.  The
:class:`BacklogProbe` captures that criterion for any set of watched
queues.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Tuple

__all__ = ["ThroughputMeter", "BacklogProbe"]


class ThroughputMeter:
    """Counts discrete completions and reports rates per interval."""

    def __init__(self) -> None:
        self._times: List[float] = []

    def record(self, time: float, count: int = 1) -> None:
        self._times.extend([time] * count)

    @property
    def total(self) -> int:
        return len(self._times)

    def rate(self, since: float, until: float) -> float:
        """Average completions per second within ``[since, until)``."""
        if until <= since:
            raise ValueError("empty interval")
        hits = sum(1 for t in self._times if since <= t < until)
        return hits / (until - since)


class BacklogProbe:
    """Periodically samples queue lengths to detect unbounded growth.

    ``queues`` maps a name to a zero-argument callable returning the
    current queue length.  A run is *stable* if, over the second half of
    the observation, the maximum backlog does not keep growing beyond
    ``bound``.
    """

    def __init__(self, queues: Dict[str, Callable[[], int]]):
        self.queues = dict(queues)
        self.samples: List[Tuple[float, int]] = []

    def sample(self, time: float) -> int:
        total = sum(length() for length in self.queues.values())
        self.samples.append((time, total))
        return total

    def is_stable(self, bound: int = 100) -> bool:
        """True if backlog in the final quarter stays under ``bound``."""
        if not self.samples:
            return True
        start = self.samples[0][0]
        end = self.samples[-1][0]
        threshold = start + 0.75 * (end - start)
        tail = [total for time, total in self.samples if time >= threshold]
        return bool(tail) and max(tail) <= bound

    def max_backlog(self) -> int:
        return max((total for _, total in self.samples), default=0)
