"""Result exporters: CSV/JSON files and ASCII charts.

The benchmark harness prints tables; these helpers additionally persist
experiment series to files (for external plotting) and render quick ASCII
charts so a figure's shape is visible directly in terminal output.

File writers are atomic: content goes to a temporary file in the
destination directory first and is moved into place with ``os.replace``
only once fully written.  A failure mid-write (a row iterator raising, a
payload that cannot be serialized) leaves any previous version of the
file untouched instead of silently truncating it.
"""

from __future__ import annotations

import csv
import json
import os
import tempfile
from typing import Any, Dict, Iterable, List, Sequence, Tuple

__all__ = ["write_csv", "write_json", "ascii_chart", "ascii_sparkline"]

_BARS = "▁▂▃▄▅▆▇█"


def write_csv(path: str, headers: Sequence[str], rows: Iterable[Sequence[Any]]) -> str:
    """Write rows to ``path`` atomically (parent directories are created)."""

    def emit(handle) -> None:
        writer = csv.writer(handle)
        writer.writerow(headers)
        for row in rows:
            if len(row) != len(headers):
                raise ValueError("row width does not match headers")
            writer.writerow(row)

    return _atomic_write(path, emit, newline="")


def write_json(path: str, payload: Dict[str, Any]) -> str:
    """Write a JSON document to ``path`` atomically (parents are created)."""

    def emit(handle) -> None:
        json.dump(payload, handle, indent=2, sort_keys=True, default=_coerce)

    return _atomic_write(path, emit)


def _atomic_write(path: str, emit, newline: str = None) -> str:
    """Run ``emit(handle)`` against a temp file, then rename over ``path``."""
    directory = _ensure_parent(path)
    fd, tmp = tempfile.mkstemp(dir=directory, prefix=".export-", suffix=".tmp")
    try:
        with os.fdopen(fd, "w", newline=newline) as handle:
            emit(handle)
        os.replace(tmp, path)
    except BaseException:
        if os.path.exists(tmp):
            os.unlink(tmp)
        raise
    return path


def ascii_sparkline(values: Sequence[float], width: int = 60) -> str:
    """One-line sparkline of ``values`` downsampled to ``width`` buckets."""
    if not values:
        return ""
    if width <= 0:
        raise ValueError("width must be positive")
    buckets = _downsample(values, width)
    low = min(buckets)
    high = max(buckets)
    if high == low:
        return _BARS[0] * len(buckets)
    span = high - low
    return "".join(
        _BARS[min(len(_BARS) - 1, int((v - low) / span * len(_BARS)))]
        for v in buckets
    )


def ascii_chart(
    series: Sequence[Tuple[float, float]],
    height: int = 8,
    width: int = 60,
    label: str = "",
) -> str:
    """Multi-line ASCII chart of an (x, y) series."""
    if not series:
        return "(no data)"
    if height <= 1 or width <= 0:
        raise ValueError("height must exceed 1 and width be positive")
    values = _downsample([y for _, y in series], width)
    low, high = min(values), max(values)
    span = (high - low) or 1.0
    rows = []
    for level in range(height, 0, -1):
        threshold = low + span * (level - 0.5) / height
        line = "".join("█" if v >= threshold else " " for v in values)
        rows.append(line)
    header = f"{label}  [{low:g} .. {high:g}]" if label else f"[{low:g} .. {high:g}]"
    return "\n".join([header] + rows)


def _downsample(values: Sequence[float], width: int) -> List[float]:
    if len(values) <= width:
        return list(values)
    bucket_size = len(values) / width
    buckets = []
    for index in range(width):
        start = int(index * bucket_size)
        stop = max(start + 1, int((index + 1) * bucket_size))
        chunk = values[start:stop]
        buckets.append(sum(chunk) / len(chunk))
    return buckets


def _ensure_parent(path: str) -> str:
    parent = os.path.dirname(os.path.abspath(path))
    os.makedirs(parent, exist_ok=True)
    return parent


def _coerce(value: Any) -> Any:
    if hasattr(value, "__dict__"):
        return vars(value)
    if hasattr(value, "_asdict"):
        return value._asdict()
    raise TypeError(f"cannot serialize {type(value).__name__}")
