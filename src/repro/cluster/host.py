"""Simulated hosts (virtual machines) of the private cloud."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from ..sim import Environment
from .cpu import CpuScheduler
from .network import Network

__all__ = ["HostSpec", "Host"]

GIB = 1024 ** 3


@dataclass(frozen=True)
class HostSpec:
    """Hardware profile of a host.

    Defaults mirror the paper's testbed: two quad-core Xeon E5405 (8 cores),
    8 GB RAM, 1 Gbps NIC.
    """

    cores: int = 8
    memory_bytes: int = 8 * GIB

    def __post_init__(self):
        if self.cores <= 0:
            raise ValueError("cores must be positive")
        if self.memory_bytes <= 0:
            raise ValueError("memory must be positive")


class Host:
    """A provisioned host: CPU scheduler + NIC + memory accounting.

    Memory is tracked as a simple ledger of named reservations (slice state
    sizes); the elasticity enforcer uses it as a constraint and as the
    state-transfer cost signal when choosing slices to migrate.
    """

    def __init__(self, env: Environment, host_id: str, spec: HostSpec, network: Network):
        self.env = env
        self.host_id = host_id
        self.spec = spec
        self.network = network
        self.cpu = CpuScheduler(env, spec.cores)
        self._memory: Dict[str, int] = {}
        self.released = False
        self.provisioned_at = env.now
        network.attach(host_id)

    # -- memory ledger ------------------------------------------------------

    @property
    def memory_used(self) -> int:
        return sum(self._memory.values())

    @property
    def memory_free(self) -> int:
        return self.spec.memory_bytes - self.memory_used

    def reserve_memory(self, owner: str, size_bytes: int) -> None:
        """Set the memory reservation of ``owner`` to ``size_bytes``."""
        if size_bytes < 0:
            raise ValueError("size must be non-negative")
        previous = self._memory.get(owner, 0)
        if self.memory_used - previous + size_bytes > self.spec.memory_bytes:
            raise MemoryError(
                f"host {self.host_id}: reservation of {size_bytes} B for "
                f"{owner!r} exceeds {self.spec.memory_bytes} B capacity"
            )
        self._memory[owner] = size_bytes

    def free_memory(self, owner: str) -> None:
        """Drop the reservation of ``owner`` (no-op if absent)."""
        self._memory.pop(owner, None)

    def memory_of(self, owner: str) -> int:
        return self._memory.get(owner, 0)

    # -- lifecycle -----------------------------------------------------------

    def release(self) -> None:
        """Mark the host released and detach its NIC."""
        self.released = True
        self.network.detach(self.host_id)

    def __repr__(self) -> str:
        state = "released" if self.released else "running"
        return f"<Host {self.host_id} {self.spec.cores}c {state}>"
