"""The simulated IaaS provider: provisioning and releasing hosts.

This is the elasticity substrate the paper assumes: an IaaS whose VM
allocation/deallocation API the application-level elasticity manager calls.
Provisioning takes a configurable boot delay; releasing is immediate.
"""

from __future__ import annotations

from typing import Dict, Generator, List, Optional

from ..sim import Environment
from .host import Host, HostSpec
from .network import Network

__all__ = ["CloudProvider"]


class CloudProvider:
    """Allocates simulated hosts on demand, up to ``max_hosts``."""

    def __init__(
        self,
        env: Environment,
        network: Optional[Network] = None,
        spec: HostSpec = HostSpec(),
        max_hosts: int = 30,
        provisioning_delay_s: float = 2.0,
    ):
        if max_hosts <= 0:
            raise ValueError("max_hosts must be positive")
        if provisioning_delay_s < 0:
            raise ValueError("provisioning delay must be non-negative")
        self.env = env
        self.network = network if network is not None else Network(env)
        self.spec = spec
        self.max_hosts = max_hosts
        self.provisioning_delay = provisioning_delay_s
        self._hosts: Dict[str, Host] = {}
        self._next_id = 0
        self.total_provisioned = 0
        self.total_released = 0
        #: Integral of (active hosts × time), for cost-effectiveness metrics.
        self._host_seconds = 0.0
        self._last_count_change = env.now

    # -- inventory -----------------------------------------------------------

    @property
    def active_hosts(self) -> List[Host]:
        return [h for h in self._hosts.values() if not h.released]

    @property
    def active_count(self) -> int:
        return len(self.active_hosts)

    def host(self, host_id: str) -> Host:
        return self._hosts[host_id]

    def host_seconds(self) -> float:
        """Cumulative host-seconds consumed (the cloud bill)."""
        return self._host_seconds + self.active_count * (self.env.now - self._last_count_change)

    # -- allocation API --------------------------------------------------------

    def provision(self) -> Generator:
        """Process generator: boot a new host and return it.

        Usage: ``host = yield from cloud.provision()`` inside a process.
        Raises :class:`RuntimeError` when the pool is exhausted.
        """
        if self.active_count >= self.max_hosts:
            raise RuntimeError(f"cloud capacity exhausted ({self.max_hosts} hosts)")
        yield self.env.timeout(self.provisioning_delay)
        return self.provision_now()

    def provision_now(self) -> Host:
        """Synchronous variant without the boot delay (initial deployments)."""
        if self.active_count >= self.max_hosts:
            raise RuntimeError(f"cloud capacity exhausted ({self.max_hosts} hosts)")
        self._accrue()
        host_id = f"host-{self._next_id}"
        self._next_id += 1
        host = Host(self.env, host_id, self.spec, self.network)
        self._hosts[host_id] = host
        self.total_provisioned += 1
        return host

    def release(self, host: Host) -> None:
        """Return ``host`` to the provider."""
        if host.host_id not in self._hosts:
            raise KeyError(f"unknown host {host.host_id}")
        if host.released:
            raise RuntimeError(f"host {host.host_id} already released")
        self._accrue()
        host.release()
        self.total_released += 1

    def _accrue(self) -> None:
        self._host_seconds += self.active_count * (self.env.now - self._last_count_change)
        self._last_count_change = self.env.now
