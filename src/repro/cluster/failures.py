"""Host failure injection and detection.

STREAMMINE3G supports passive and active slice replication for fault
tolerance (paper §III; its refs [25], [26]).  The paper's evaluation
leaves replication out of scope; we implement the passive scheme end to
end (checkpointing + upstream replay, :mod:`repro.engine.recovery`), and
this module supplies the substrate: crashing hosts, a heartbeat-style
failure detector with a configurable detection delay, and the scripted
chaos layer on top — :class:`FaultPlan` schedules correlated rack loss,
link partitions, and manager crashes (optionally pinned to a migration
phase), and :class:`Watchdog` interrupts operations that outlive their
deadline.  The failure model these implement is written down in
RESILIENCE.md.
"""

from __future__ import annotations

import os
import random
from typing import Callable, Dict, List, Optional, Sequence

from ..sim import Environment
from .cloud import CloudProvider
from .host import Host

__all__ = [
    "FailureDetector",
    "FailureInjector",
    "FaultPlan",
    "Watchdog",
    "chaos_seed_from_env",
    "crash_host",
]


def crash_host(cloud: CloudProvider, host: Host) -> None:
    """Crash ``host``: it stops abruptly and leaves the fabric.

    Unlike a graceful :meth:`CloudProvider.release`, nothing running on
    the host gets a chance to migrate or flush.
    """
    if host.released:
        raise RuntimeError(f"host {host.host_id} is already gone")
    cloud.release(host)  # accounting-wise the host is gone immediately


class FailureDetector:
    """Notifies subscribers of crashes after a detection delay.

    Models heartbeat-based detection: a crash becomes *known* only after
    ``detection_delay_s`` (missed heartbeats), during which events sent to
    the dead host are lost — exactly the window the recovery protocol's
    replay has to cover.
    """

    def __init__(self, env: Environment, detection_delay_s: float = 2.0):
        if detection_delay_s < 0:
            raise ValueError("detection delay must be non-negative")
        self.env = env
        self.detection_delay_s = detection_delay_s
        self._listeners: List[Callable[[Host], None]] = []
        self._reported: set = set()
        self.detected: List[Host] = []

    def subscribe(self, listener: Callable[[Host], None]) -> None:
        self._listeners.append(listener)

    def report_crash(self, host: Host) -> None:
        """Called at crash time; listeners hear about it after the delay.

        Idempotent per host, so an explicit report and a concurrent
        :meth:`monitor` sweep never double-notify recovery.
        """
        if host.host_id in self._reported:
            return
        self._reported.add(host.host_id)
        self.env.call_later(self.detection_delay_s, self._notify, host)

    def monitor(self, hosts_fn: Callable[[], List[Host]], interval_s: float = 1.0):
        """Heartbeat sweep: detect crashed hosts nobody reported.

        Every ``interval_s`` the detector polls ``hosts_fn()`` and reports
        any host found released — the missed-heartbeat path that catches
        correlated losses where the component that would have called
        :meth:`report_crash` died with the rack.
        """
        if interval_s <= 0:
            raise ValueError("monitor interval must be positive")

        def run():
            while True:
                yield self.env.timeout(interval_s)
                for host in hosts_fn():
                    if host.released:
                        self.report_crash(host)

        return self.env.process(run())

    def _notify(self, host: Host) -> None:
        self.detected.append(host)
        for listener in list(self._listeners):
            listener(host)


class FailureInjector:
    """Crashes random eligible hosts at configurable times.

    ``eligible`` returns the hosts that may be killed (e.g. the engine
    hosts, excluding sink/coordination hosts).
    """

    def __init__(
        self,
        env: Environment,
        cloud: CloudProvider,
        detector: FailureDetector,
        eligible: Callable[[], List[Host]],
        seed: int = 0,
    ):
        self.env = env
        self.cloud = cloud
        self.detector = detector
        self.eligible = eligible
        self._rng = random.Random(seed)
        self.crashed: List[Host] = []

    def crash_at(self, time_s: float, host: Optional[Host] = None):
        """Schedule one crash at an absolute simulated time."""
        if time_s < self.env.now:
            raise ValueError("cannot schedule a crash in the past")
        return self.env.process(self._crash_once(time_s - self.env.now, host))

    def crash_periodically(self, interval_s: float, count: int):
        """Schedule ``count`` crashes spaced ``interval_s`` apart."""
        if interval_s <= 0 or count <= 0:
            raise ValueError("interval and count must be positive")

        def run():
            for _ in range(count):
                yield self.env.timeout(interval_s)
                self._do_crash(None)

        return self.env.process(run())

    def _crash_once(self, delay: float, host: Optional[Host]):
        yield self.env.timeout(delay)
        self._do_crash(host)

    def _do_crash(self, host: Optional[Host]) -> None:
        if host is None:
            candidates = [h for h in self.eligible() if not h.released]
            if not candidates:
                return
            host = self._rng.choice(candidates)
        if host.released:
            return
        crash_host(self.cloud, host)
        self.crashed.append(host)
        self.detector.report_crash(host)


def chaos_seed_from_env(variable: str = "REPRO_CHAOS_SEED") -> Optional[int]:
    """The standing chaos seed, or ``None`` when chaos is not requested.

    CI exports ``REPRO_CHAOS_SEED`` on its chaos leg so the whole tier-1
    suite runs with a background single-host crash + partition heal (see
    ``tests/conftest.py``); an unset or empty variable disables it.
    """
    raw = os.environ.get(variable, "").strip()
    if not raw:
        return None
    try:
        return int(raw)
    except ValueError:
        raise ValueError(
            f"{variable} must be an integer seed, got {raw!r}"
        ) from None


class Watchdog:
    """Interrupts simulation processes that outlive a deadline.

    The manager arms one per administrative operation (migration,
    reshard): if the operation's process is still alive when the timer
    fires — e.g. a partition swallowed the state transfer — the process
    is interrupted, which triggers the operation's own rollback path.
    """

    def __init__(self, env: Environment, telemetry=None):
        self.env = env
        self.telemetry = telemetry
        self.timeouts = 0

    def guard(self, process, timeout_s: float, cause: str = "watchdog"):
        """Arm a timer for ``process``; returns a zero-arg disarm callable."""
        if timeout_s <= 0:
            raise ValueError("watchdog timeout must be positive")
        armed = [True]

        def check():
            if not armed[0] or not process.is_alive:
                return
            self.timeouts += 1
            tel = self.telemetry
            if tel is not None:
                if tel.watchdog_timeouts is not None:
                    tel.watchdog_timeouts.inc()
                tel.tracer.event(
                    "recovery.watchdog_timeout", cause=cause,
                    timeout_s=timeout_s,
                )
            process.interrupt(cause)
            # Nobody may be left waiting on the interrupted process (its
            # waiter may itself have been the thing that hung): make sure
            # its failure cannot crash the simulation.
            process.defuse()

        self.env.call_later(timeout_s, check)

        def disarm():
            armed[0] = False

        return disarm


class FaultPlan:
    """A scripted schedule of correlated faults against one deployment.

    Groups hosts into named racks, then injects — at absolute simulated
    times — correlated rack loss, link partitions between host groups,
    and manager crashes (optionally pinned to a specific migration or
    reshard phase via the runtime's phase listeners).  Every injection is
    recorded (``self.injected``) and, when telemetry is bound, emitted as
    a ``fault.injected`` instant span plus a ``faults_injected_total``
    count by kind.

    The plan is deterministic: a seed picks victims only where the script
    leaves them unspecified.
    """

    def __init__(
        self,
        env: Environment,
        cloud: Optional[CloudProvider] = None,
        detector: Optional[FailureDetector] = None,
        telemetry=None,
        seed: int = 0,
    ):
        self.env = env
        self.cloud = cloud
        self.detector = detector
        self.telemetry = telemetry
        self._rng = random.Random(seed)
        self._groups: Dict[str, List[Host]] = {}
        #: (time_s, kind, detail) of every fault actually injected.
        self.injected: List[tuple] = []
        self.crashed: List[Host] = []

    @property
    def network(self):
        if self.cloud is None:
            raise RuntimeError("fault plan has no cloud (network) bound")
        return self.cloud.network

    # -- host groups (racks) -------------------------------------------------

    def group(self, name: str, hosts: Sequence[Host]) -> None:
        """Register a named host group (a rack / failure domain)."""
        if name in self._groups:
            raise ValueError(f"group {name!r} already defined")
        self._groups[name] = list(hosts)

    def members(self, name: str) -> List[Host]:
        if name not in self._groups:
            raise ValueError(f"unknown group {name!r}")
        return list(self._groups[name])

    def _host_ids(self, group) -> List[str]:
        """Host ids for a group name, a host list, or an id list."""
        if isinstance(group, str):
            return [h.host_id for h in self.members(group)]
        return [h.host_id if isinstance(h, Host) else h for h in group]

    def _record(self, kind: str, **detail) -> None:
        self.injected.append((self.env.now, kind, detail))
        tel = self.telemetry
        if tel is not None:
            if tel.faults_injected is not None:
                tel.faults_injected.labels(kind=kind).inc()
            tel.tracer.event("fault.injected", kind=kind, **detail)

    # -- correlated host loss ------------------------------------------------

    def crash_host_at(self, time_s: float, host: Optional[Host] = None):
        """Crash one host (seed-picked from all groups when ``None``)."""
        return self._at(time_s, self._crash_hosts, None, host)

    def fail_group_at(self, time_s: float, name: str):
        """Crash every host of a group at once — correlated rack loss."""
        self.members(name)  # validate eagerly, at scripting time
        return self._at(time_s, self._crash_hosts, name, None)

    def _crash_hosts(self, name: Optional[str], host: Optional[Host]) -> None:
        if name is not None:
            victims = [h for h in self.members(name) if not h.released]
        elif host is not None:
            victims = [] if host.released else [host]
        else:
            pool = [
                h
                for hosts in self._groups.values()
                for h in hosts
                if not h.released
            ]
            victims = [self._rng.choice(pool)] if pool else []
        if not victims:
            return
        for victim in victims:
            crash_host(self.cloud, victim)
            self.crashed.append(victim)
        kind = "rack_loss" if len(victims) > 1 else "host_crash"
        self._record(
            kind,
            group=name,
            hosts=",".join(v.host_id for v in victims),
        )
        # Report only after the whole rack is down: detection is
        # correlated too, and recovery must not observe a half-dead rack.
        if self.detector is not None:
            for victim in victims:
                self.detector.report_crash(victim)

    # -- link partitions -----------------------------------------------------

    def partition_at(self, time_s: float, group_a, group_b):
        """Cut the links between two host groups at ``time_s``."""
        return self._at(time_s, self._partition, group_a, group_b)

    def heal_at(self, time_s: float, group_a=None, group_b=None):
        """Heal partitions at ``time_s`` (all of them when unspecified)."""
        return self._at(time_s, self._heal, group_a, group_b)

    def _partition(self, group_a, group_b) -> None:
        ids_a, ids_b = self._host_ids(group_a), self._host_ids(group_b)
        self.network.partition(ids_a, ids_b)
        self._record(
            "partition", a=",".join(ids_a), b=",".join(ids_b)
        )

    def _heal(self, group_a, group_b) -> None:
        if group_a is None and group_b is None:
            self.network.heal()
            self._record("heal", a="*", b="*")
            return
        ids_a = self._host_ids(group_a or ())
        ids_b = self._host_ids(group_b or ())
        self.network.heal(ids_a, ids_b)
        self._record("heal", a=",".join(ids_a), b=",".join(ids_b))

    # -- manager crashes -----------------------------------------------------

    def crash_manager_at(self, time_s: float, target):
        """Crash a manager (anything with ``.crash()``) at ``time_s``."""
        return self._at(time_s, self._crash_manager, target, None, None)

    def crash_manager_at_phase(
        self,
        runtime,
        target,
        phase: str,
        protocol: str = "migration",
        slice_id: Optional[str] = None,
    ) -> None:
        """Crash a manager the moment a chosen operation phase starts.

        ``runtime`` is the :class:`~repro.engine.runtime.EngineRuntime`
        whose phase transitions are watched; ``protocol`` is
        ``"migration"`` or ``"reshard"`` and ``phase`` one of the five
        protocol phases (``pre``/``sync``/``pause``/``copy``/``post``).
        The crash is scheduled one simulation instant after the phase
        starts (a process cannot interrupt itself synchronously).
        """
        fired = [False]

        def listener(sid: str, proto: str, name: str) -> None:
            if fired[0] or proto != protocol or name != phase:
                return
            if slice_id is not None and sid != slice_id:
                return
            fired[0] = True
            self.env.call_later(
                0.0, self._crash_manager, target, proto, name
            )

        runtime.migration_phase_listeners.append(listener)

    def _crash_manager(self, target, protocol, phase) -> None:
        target.crash()
        detail = {}
        if protocol is not None:
            detail = {"protocol": protocol, "phase": phase}
        self._record("manager_crash", **detail)

    # -- scheduling ----------------------------------------------------------

    def _at(self, time_s: float, action, *args):
        if time_s < self.env.now:
            raise ValueError("cannot schedule a fault in the past")
        self.env.call_later(time_s - self.env.now, action, *args)
