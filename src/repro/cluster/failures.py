"""Host failure injection and detection.

STREAMMINE3G supports passive and active slice replication for fault
tolerance (paper §III; its refs [25], [26]).  The paper's evaluation
leaves replication out of scope; we implement the passive scheme end to
end (checkpointing + upstream replay, :mod:`repro.engine.recovery`), and
this module supplies the substrate: crashing hosts and a heartbeat-style
failure detector with a configurable detection delay.
"""

from __future__ import annotations

import random
from typing import Callable, List, Optional

from ..sim import Environment
from .cloud import CloudProvider
from .host import Host

__all__ = ["FailureDetector", "FailureInjector", "crash_host"]


def crash_host(cloud: CloudProvider, host: Host) -> None:
    """Crash ``host``: it stops abruptly and leaves the fabric.

    Unlike a graceful :meth:`CloudProvider.release`, nothing running on
    the host gets a chance to migrate or flush.
    """
    if host.released:
        raise RuntimeError(f"host {host.host_id} is already gone")
    cloud.release(host)  # accounting-wise the host is gone immediately


class FailureDetector:
    """Notifies subscribers of crashes after a detection delay.

    Models heartbeat-based detection: a crash becomes *known* only after
    ``detection_delay_s`` (missed heartbeats), during which events sent to
    the dead host are lost — exactly the window the recovery protocol's
    replay has to cover.
    """

    def __init__(self, env: Environment, detection_delay_s: float = 2.0):
        if detection_delay_s < 0:
            raise ValueError("detection delay must be non-negative")
        self.env = env
        self.detection_delay_s = detection_delay_s
        self._listeners: List[Callable[[Host], None]] = []
        self.detected: List[Host] = []

    def subscribe(self, listener: Callable[[Host], None]) -> None:
        self._listeners.append(listener)

    def report_crash(self, host: Host) -> None:
        """Called at crash time; listeners hear about it after the delay."""
        self.env.call_later(self.detection_delay_s, self._notify, host)

    def _notify(self, host: Host) -> None:
        self.detected.append(host)
        for listener in list(self._listeners):
            listener(host)


class FailureInjector:
    """Crashes random eligible hosts at configurable times.

    ``eligible`` returns the hosts that may be killed (e.g. the engine
    hosts, excluding sink/coordination hosts).
    """

    def __init__(
        self,
        env: Environment,
        cloud: CloudProvider,
        detector: FailureDetector,
        eligible: Callable[[], List[Host]],
        seed: int = 0,
    ):
        self.env = env
        self.cloud = cloud
        self.detector = detector
        self.eligible = eligible
        self._rng = random.Random(seed)
        self.crashed: List[Host] = []

    def crash_at(self, time_s: float, host: Optional[Host] = None):
        """Schedule one crash at an absolute simulated time."""
        if time_s < self.env.now:
            raise ValueError("cannot schedule a crash in the past")
        return self.env.process(self._crash_once(time_s - self.env.now, host))

    def crash_periodically(self, interval_s: float, count: int):
        """Schedule ``count`` crashes spaced ``interval_s`` apart."""
        if interval_s <= 0 or count <= 0:
            raise ValueError("interval and count must be positive")

        def run():
            for _ in range(count):
                yield self.env.timeout(interval_s)
                self._do_crash(None)

        return self.env.process(run())

    def _crash_once(self, delay: float, host: Optional[Host]):
        yield self.env.timeout(delay)
        self._do_crash(host)

    def _do_crash(self, host: Optional[Host]) -> None:
        if host is None:
            candidates = [h for h in self.eligible() if not h.released]
            if not candidates:
                return
            host = self._rng.choice(candidates)
        if host.released:
            return
        crash_host(self.cloud, host)
        self.crashed.append(host)
        self.detector.report_crash(host)
