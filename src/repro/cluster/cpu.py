"""CPU scheduling and utilization accounting for simulated hosts.

A host's CPU is modeled as a pool of cores (a :class:`~repro.sim.Resource`).
Each unit of work is a *task* — a request for one core held for a given
amount of CPU-seconds.  This mirrors the StreamMine3G execution model where
each host runs a thread pool sized to the number of available cores and
slices whose processing is stateless (or read-locked) use several cores in
parallel.

Utilization is accounted exactly (not sampled): the scheduler integrates
busy core-time globally and per *tag* (we tag tasks with the slice that
issued them), so probes can report instantaneous windowed utilization both
per host and per slice, as the paper's manager does.
"""

from __future__ import annotations

from typing import Dict, Generator, Optional

from collections import deque

from ..sim import Environment, Event

__all__ = ["CpuScheduler", "CpuUsageSnapshot"]


class CpuUsageSnapshot:
    """Cumulative busy core-seconds at a point in simulated time."""

    def __init__(self, time: float, total_busy: float, per_tag: Dict[str, float]):
        self.time = time
        self.total_busy = total_busy
        self.per_tag = per_tag


class CpuScheduler:
    """A pool of ``cores`` with exact busy-time integration.

    Tasks are served FIFO.  ``run(cpu_seconds, tag)`` is a generator to be
    yielded from inside a simulation process; it completes once the task
    received ``cpu_seconds`` of core time.
    """

    def __init__(self, env: Environment, cores: int):
        if cores <= 0:
            raise ValueError(f"cores must be positive, got {cores}")
        self.env = env
        self.cores = cores
        self._in_use = 0
        self._waiting: deque = deque()
        # Exact integrals of busy core-seconds.
        self._busy_total = 0.0
        self._busy_per_tag: Dict[str, float] = {}

    @property
    def active_tasks(self) -> int:
        """Number of tasks currently holding a core."""
        return self._in_use

    @property
    def queued_tasks(self) -> int:
        """Number of tasks waiting for a core."""
        return len(self._waiting)

    def run(self, cpu_seconds: float, tag: str = "") -> Generator:
        """Process generator: execute a task of ``cpu_seconds`` on one core.

        FIFO core grants with a fast path: when a core is idle and nobody
        queues, the task starts without any event-machinery overhead.
        """
        if cpu_seconds < 0:
            raise ValueError(f"cpu_seconds must be non-negative, got {cpu_seconds}")
        if self._in_use < self.cores and not self._waiting:
            self._in_use += 1
        else:
            grant = Event(self.env)
            self._waiting.append(grant)
            yield grant  # the releasing task hands the core over directly
        start = self.env.now
        timeout = self.env.pooled_timeout(cpu_seconds)
        try:
            yield timeout
        finally:
            held = self.env.now - start
            self._busy_total += held
            if tag:
                self._busy_per_tag[tag] = self._busy_per_tag.get(tag, 0.0) + held
            if self._waiting:
                self._waiting.popleft().succeed()
            else:
                self._in_use -= 1
        # Reached only on normal completion: an interrupted waiter leaves
        # the timeout scheduled, where recycling would be unsafe (recycle
        # double-checks, but don't even offer it).
        self.env.recycle_timeout(timeout)

    def busy_core_seconds(self) -> float:
        """Total busy core-seconds accumulated by *completed* holds so far.

        In-flight tasks contribute once they finish; windowed probes use
        windows much longer than individual tasks so the error is negligible
        and, importantly, conservative and unbiased over consecutive windows.
        """
        return self._busy_total

    def snapshot(self) -> CpuUsageSnapshot:
        """Snapshot of cumulative usage, for differential window accounting."""
        return CpuUsageSnapshot(self.env.now, self._busy_total, dict(self._busy_per_tag))

    def utilization_between(
        self, before: CpuUsageSnapshot, after: Optional[CpuUsageSnapshot] = None
    ) -> float:
        """Average CPU utilization (0..1) of the host between two snapshots."""
        after = after or self.snapshot()
        elapsed = after.time - before.time
        if elapsed <= 0:
            return 0.0
        return (after.total_busy - before.total_busy) / (self.cores * elapsed)

    def tag_core_usage_between(
        self, before: CpuUsageSnapshot, after: Optional[CpuUsageSnapshot] = None
    ) -> Dict[str, float]:
        """Average cores used per tag between two snapshots (0..cores each)."""
        after = after or self.snapshot()
        elapsed = after.time - before.time
        if elapsed <= 0:
            return {}
        usage = {}
        for tag, busy in after.per_tag.items():
            delta = busy - before.per_tag.get(tag, 0.0)
            if delta > 0:
                usage[tag] = delta / elapsed
        return usage
