"""Simulated switched network fabric.

The paper's testbed interconnects hosts with a 1 Gbps switched network.  We
model each host's NIC as a FIFO serialization point: an outgoing message
occupies the NIC for ``size / bandwidth`` seconds behind any earlier
messages, then arrives after a propagation latency.  This yields both the
transfer times that dominate operator-state migration and backpressure
under load.

The implementation is deliberately O(1) simulation events per message
(a single scheduled delivery callback): the engine moves hundreds of
thousands of messages per experiment, so per-message process machinery
would dominate the run time.  FIFO NIC occupancy is tracked analytically
via a ``free_at`` watermark per NIC, which is exactly equivalent to a
non-preemptive single-server queue.

Intra-host messages bypass the NIC and are delivered after a small
loopback latency.
"""

from __future__ import annotations

import zlib
from typing import Any, Callable, Dict, Sequence, Set, Tuple

from ..sim import Environment

__all__ = ["Network", "NicStats"]


class NicStats:
    """Cumulative counters of one host's NIC."""

    def __init__(self) -> None:
        self.bytes_sent = 0
        self.bytes_received = 0
        self.messages_sent = 0
        self.messages_received = 0
        #: Batched group transfers sent (each carries >= 1 messages).
        self.batches_sent = 0

    def snapshot(self) -> "NicStats":
        copy = NicStats()
        copy.bytes_sent = self.bytes_sent
        copy.bytes_received = self.bytes_received
        copy.messages_sent = self.messages_sent
        copy.messages_received = self.messages_received
        copy.batches_sent = self.batches_sent
        return copy


class Network:
    """A full-bisection switched fabric connecting simulated hosts.

    ``bandwidth_bytes_per_s`` is the per-NIC capacity (1 Gbps ≈ 1.25e8 B/s);
    ``latency_s`` the one-way propagation + protocol latency between two
    hosts; ``loopback_latency_s`` the cost of an intra-host hop.
    """

    def __init__(
        self,
        env: Environment,
        bandwidth_bytes_per_s: float = 1.25e8,
        latency_s: float = 0.5e-3,
        loopback_latency_s: float = 0.05e-3,
        batch_flush_s: float = 0.0,
    ):
        if bandwidth_bytes_per_s <= 0:
            raise ValueError("bandwidth must be positive")
        if latency_s < 0 or loopback_latency_s < 0:
            raise ValueError("latencies must be non-negative")
        if batch_flush_s < 0:
            raise ValueError("batch flush interval must be non-negative")
        self.env = env
        self.bandwidth = bandwidth_bytes_per_s
        self.latency = latency_s
        self.loopback_latency = loopback_latency_s
        #: Per-sender micro-batching: inter-host messages depart at the
        #: sender's next flush epoch (StreamMine3G batches channel events
        #: for throughput; this is where most of the paper's steady-state
        #: notification delay comes from).  Flush epochs are per sender and
        #: phase-shifted, so per-channel FIFO order is preserved — which
        #: the migration protocol relies on.  0 disables batching.
        self.batch_flush_s = batch_flush_s
        self._flush_phase: Dict[str, float] = {}
        #: Simulated time until which each attached NIC is busy sending.
        self._nic_free_at: Dict[str, float] = {}
        self._stats: Dict[str, NicStats] = {}
        #: Ordered (src, dst) host pairs whose link is currently cut.
        #: Checked at send time only — transfers already in flight when
        #: the partition starts still arrive (they left the sender's NIC).
        self._partitions: Set[Tuple[str, str]] = set()
        #: Messages dropped at send time by an active partition.
        self.partition_drops = 0
        #: Pre-resolved telemetry counters (``None`` until a bundle with
        #: metrics enabled is bound; the unbound cost is one ``is None``).
        self._tel_messages = None
        self._tel_batches = None
        self._tel_bytes = None
        self._tel_partition_drops = None

    def bind_telemetry(self, telemetry) -> None:
        """Attach a :class:`repro.telemetry.Telemetry` bundle.

        ``send``/``send_batch`` then also feed the fabric-wide
        ``net_messages_sent_total`` / ``net_batches_sent_total`` /
        ``net_bytes_sent_total`` counters (the per-host ``NicStats``
        counters are unconditional and unchanged).
        """
        self._tel_messages = telemetry.net_messages if telemetry is not None else None
        self._tel_batches = telemetry.net_batches if telemetry is not None else None
        self._tel_bytes = telemetry.net_bytes if telemetry is not None else None
        self._tel_partition_drops = (
            telemetry.partition_drops if telemetry is not None else None
        )

    def attach(self, host_id: str) -> None:
        """Register a host NIC on the fabric (idempotent)."""
        self._nic_free_at.setdefault(host_id, self.env.now)

    def detach(self, host_id: str) -> None:
        """Remove a host NIC (released hosts)."""
        self._nic_free_at.pop(host_id, None)

    def is_attached(self, host_id: str) -> bool:
        return host_id in self._nic_free_at

    # -- link partitions -----------------------------------------------------

    def partition(self, group_a: Sequence[str], group_b: Sequence[str]) -> None:
        """Cut every link between ``group_a`` and ``group_b`` (both ways).

        Partitioned sends are dropped at the sender — the transfer is
        charged to the NIC as usual but no delivery is scheduled, exactly
        like frames vanishing inside a dead switch.  Loopback (src == dst)
        is never partitioned.  Idempotent; heal with :meth:`heal`.
        """
        for a in group_a:
            for b in group_b:
                if a == b:
                    continue
                self._partitions.add((a, b))
                self._partitions.add((b, a))

    def heal(self, group_a: Sequence[str] = None, group_b: Sequence[str] = None) -> None:
        """Restore cut links.

        With no arguments every partition heals; with two groups only the
        links between them are restored.
        """
        if group_a is None and group_b is None:
            self._partitions.clear()
            return
        for a in group_a or ():
            for b in group_b or ():
                self._partitions.discard((a, b))
                self._partitions.discard((b, a))

    def is_partitioned(self, src: str, dst: str) -> bool:
        """True when messages from ``src`` to ``dst`` are being dropped."""
        return (src, dst) in self._partitions

    @property
    def has_partitions(self) -> bool:
        return bool(self._partitions)

    def _drop_partitioned(self, count: int) -> None:
        self.partition_drops += count
        if self._tel_partition_drops is not None:
            self._tel_partition_drops.inc(count)

    def stats(self, host_id: str) -> NicStats:
        """Byte counters for ``host_id`` (counters survive detach)."""
        if host_id not in self._stats:
            self._stats[host_id] = NicStats()
        return self._stats[host_id]

    def transfer_time(self, size_bytes: int) -> float:
        """Pure serialization time of ``size_bytes`` at NIC bandwidth."""
        return size_bytes / self.bandwidth

    def send(
        self,
        src: str,
        dst: str,
        size_bytes: int,
        payload: Any,
        deliver: Callable[[Any], None],
    ) -> float:
        """Schedule an asynchronous message transfer.

        ``deliver(payload)`` is invoked at the destination at the returned
        arrival time.  The caller does not block.
        """
        if size_bytes < 0:
            raise ValueError("size_bytes must be non-negative")
        now = self.env.now
        src_stats = self.stats(src)
        src_stats.bytes_sent += size_bytes
        src_stats.messages_sent += 1
        if self._tel_messages is not None:
            self._tel_messages.inc()
            self._tel_bytes.inc(size_bytes)
        arrival = self._arrival_time(src, dst, size_bytes, now)
        if (src, dst) in self._partitions:
            self._drop_partitioned(1)
            return arrival
        self.env.call_later(arrival - now, self._deliver, dst, size_bytes, payload, deliver)
        return arrival

    def send_batch(
        self,
        src: str,
        dst: str,
        sizes: Sequence[int],
        payloads: Sequence[Any],
        deliver: Callable[[Any], None],
    ) -> float:
        """Send a group of messages as *one* batched transfer.

        The group occupies the sender's NIC for the summed serialization
        time and pays the propagation latency once; every payload is
        delivered in order at the same arrival time.  FIFO ordering with
        surrounding :meth:`send` calls is preserved through the shared NIC
        watermark.  Byte/message counters account each message of the
        group individually; ``batches_sent`` counts the group once.
        """
        if len(sizes) != len(payloads):
            raise ValueError("sizes and payloads must have the same length")
        if not payloads:
            raise ValueError("cannot send an empty batch")
        total = 0
        for size_bytes in sizes:
            if size_bytes < 0:
                raise ValueError("size_bytes must be non-negative")
            total += size_bytes
        now = self.env.now
        src_stats = self.stats(src)
        src_stats.bytes_sent += total
        src_stats.messages_sent += len(payloads)
        src_stats.batches_sent += 1
        if self._tel_messages is not None:
            self._tel_messages.inc(len(payloads))
            self._tel_batches.inc()
            self._tel_bytes.inc(total)
        arrival = self._arrival_time(src, dst, total, now)
        if (src, dst) in self._partitions:
            self._drop_partitioned(len(payloads))
            return arrival
        self.env.call_later(
            arrival - now, self._deliver_batch, dst, total, payloads, deliver
        )
        return arrival

    def _arrival_time(self, src: str, dst: str, size_bytes: int, now: float) -> float:
        """Arrival time of one transfer, advancing the sender's NIC FIFO."""
        if src == dst:
            return now + self.loopback_latency
        serialization = size_bytes / self.bandwidth
        free_at = self._nic_free_at.get(src, now)
        departure = max(self._next_flush(src, now), free_at) + serialization
        if src in self._nic_free_at:
            # Attached senders occupy their NIC FIFO; external clients
            # (not attached) only pay their own serialization time.
            self._nic_free_at[src] = departure
        return departure + self.latency

    def nic_busy_until(self, host_id: str) -> float:
        """Watermark until which the NIC of ``host_id`` is busy sending."""
        return max(self._nic_free_at.get(host_id, self.env.now), self.env.now)

    def _next_flush(self, src: str, now: float) -> float:
        """Earliest departure honoring the sender's flush epochs."""
        interval = self.batch_flush_s
        if interval <= 0.0:
            return now
        phase = self._flush_phase.get(src)
        if phase is None:
            # Deterministic per-sender phase shift in [0, interval).
            # (zlib.crc32 is stable across processes, unlike str hashing.)
            phase = (zlib.crc32(src.encode("utf-8")) % 997) / 997.0 * interval
            self._flush_phase[src] = phase
        epochs = int((now - phase) / interval) + 1
        return phase + epochs * interval

    def _deliver(self, dst: str, size_bytes: int, payload: Any, deliver: Callable[[Any], None]) -> None:
        dst_stats = self.stats(dst)
        dst_stats.bytes_received += size_bytes
        dst_stats.messages_received += 1
        deliver(payload)

    def _deliver_batch(
        self,
        dst: str,
        total_bytes: int,
        payloads: Sequence[Any],
        deliver: Callable[[Any], None],
    ) -> None:
        dst_stats = self.stats(dst)
        dst_stats.bytes_received += total_bytes
        dst_stats.messages_received += len(payloads)
        for payload in payloads:
            deliver(payload)
