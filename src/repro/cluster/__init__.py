"""Simulated private-cloud substrate: hosts, CPUs, network, provider.

Stands in for the paper's 30-host / 240-core testbed (see DESIGN.md §2).
"""

from .cpu import CpuScheduler, CpuUsageSnapshot
from .network import Network, NicStats
from .host import Host, HostSpec
from .cloud import CloudProvider
from .failures import FailureDetector, FailureInjector, crash_host

__all__ = [
    "CloudProvider",
    "CpuScheduler",
    "CpuUsageSnapshot",
    "FailureDetector",
    "FailureInjector",
    "Host",
    "HostSpec",
    "Network",
    "NicStats",
    "crash_host",
]
