"""Simulated private-cloud substrate: hosts, CPUs, network, provider.

Stands in for the paper's 30-host / 240-core testbed (see DESIGN.md §2).
"""

from .cpu import CpuScheduler, CpuUsageSnapshot
from .network import Network, NicStats
from .host import Host, HostSpec
from .cloud import CloudProvider
from .failures import (
    FailureDetector,
    FailureInjector,
    FaultPlan,
    Watchdog,
    chaos_seed_from_env,
    crash_host,
)

__all__ = [
    "CloudProvider",
    "CpuScheduler",
    "CpuUsageSnapshot",
    "FailureDetector",
    "FailureInjector",
    "FaultPlan",
    "Host",
    "HostSpec",
    "Network",
    "NicStats",
    "Watchdog",
    "chaos_seed_from_env",
    "crash_host",
]
