"""Errors of the coordination kernel, mirroring ZooKeeper's exception set."""

__all__ = [
    "CoordError",
    "NoNodeError",
    "NodeExistsError",
    "NotEmptyError",
    "BadVersionError",
    "SessionClosedError",
]


class CoordError(Exception):
    """Base class of coordination-kernel errors."""


class NoNodeError(CoordError):
    """The targeted znode does not exist."""


class NodeExistsError(CoordError):
    """Creation failed because the znode already exists."""


class NotEmptyError(CoordError):
    """Deletion failed because the znode has children."""


class BadVersionError(CoordError):
    """A conditional write failed because the version did not match."""


class SessionClosedError(CoordError):
    """The session used for the operation has been closed."""
