"""Coordination recipes on top of the kernel: election and locking.

The manager must tolerate failures (paper §IV-B): its whole state lives in
the coordination kernel so it "can easily be restarted in case of
failure".  These ZooKeeper-style recipes provide the missing piece for a
hot-standby deployment: a leader election deciding which manager instance
is active, and a distributed lock serializing administrative operations.

Both follow the classic ephemeral-sequential-node pattern: each candidate
creates an ephemeral sequential znode under a common parent and watches
the candidate immediately preceding it (avoiding herd effects); the owner
of the smallest sequence number holds the leadership/lock, and a crash
(session close) releases it automatically.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from .errors import NoNodeError
from .kernel import CoordinationKernel, Session

__all__ = ["LeaderElection", "DistributedLock"]


class _SequentialContender:
    """Shared mechanics of election/lock: one ephemeral sequential node."""

    def __init__(self, kernel: CoordinationKernel, session: Session, path: str,
                 prefix: str):
        self.kernel = kernel
        self.session = session
        self.path = path
        self.prefix = prefix
        self._node: Optional[str] = None

    @property
    def node_name(self) -> Optional[str]:
        return self._node.rsplit("/", 1)[1] if self._node else None

    def _enter(self, data) -> None:
        if self._node is not None:
            raise RuntimeError("already participating")
        self.kernel.ensure_path(self.path)
        self._node = self.kernel.create(
            f"{self.path}/{self.prefix}",
            data=data,
            session=self.session,
            ephemeral=True,
            sequential=True,
        )

    def _contenders(self) -> List[str]:
        return [
            name
            for name in self.kernel.get_children(self.path)
            if name.startswith(self.prefix)
        ]

    def _holds(self) -> bool:
        if self._node is None:
            return False
        contenders = self._contenders()
        return bool(contenders) and self.node_name == contenders[0]

    def _predecessor(self) -> Optional[str]:
        contenders = self._contenders()
        mine = self.node_name
        if mine is None or mine not in contenders:
            return None
        index = contenders.index(mine)
        return contenders[index - 1] if index > 0 else None

    def _leave(self) -> None:
        if self._node is not None:
            try:
                self.kernel.delete(self._node)
            except NoNodeError:
                pass
            self._node = None


class LeaderElection(_SequentialContender):
    """Hot-standby leader election.

    ``on_elected`` fires (once) when this participant becomes the leader —
    either immediately on joining an empty election or later when every
    preceding candidate's session ends.
    """

    def __init__(
        self,
        kernel: CoordinationKernel,
        session: Session,
        path: str = "/estreamhub/election",
        candidate_id: str = "",
    ):
        super().__init__(kernel, session, path, prefix="candidate-")
        self.candidate_id = candidate_id
        self._callbacks: List[Callable[[], None]] = []
        self._elected = False

    def on_elected(self, callback: Callable[[], None]) -> None:
        self._callbacks.append(callback)
        if self._elected:
            callback()

    def join(self) -> None:
        """Enter the election."""
        self._enter(data=self.candidate_id)
        self._check()

    @property
    def is_leader(self) -> bool:
        return self._elected

    def leader_id(self) -> Optional[str]:
        """Candidate id of the current leader, if any."""
        contenders = self._contenders()
        if not contenders:
            return None
        data, _ = self.kernel.get(f"{self.path}/{contenders[0]}")
        return data

    def resign(self) -> None:
        """Leave the election (a leader resigning triggers a new election)."""
        self._leave()
        self._elected = False

    def _check(self) -> None:
        if self._elected or self._node is None:
            return
        if self._holds():
            self._elected = True
            for callback in list(self._callbacks):
                callback()
            return
        predecessor = self._predecessor()
        if predecessor is None:
            # Our node vanished (session expired): nothing to wait for.
            return
        stat = self.kernel.exists(
            f"{self.path}/{predecessor}", watch=lambda _event: self._check()
        )
        if stat is None:
            self._check()


class DistributedLock(_SequentialContender):
    """A fair, session-scoped exclusive lock."""

    def __init__(
        self,
        kernel: CoordinationKernel,
        session: Session,
        path: str = "/estreamhub/locks/admin",
    ):
        super().__init__(kernel, session, path, prefix="lock-")
        self._granted_callbacks: List[Callable[[], None]] = []
        self._held = False

    @property
    def held(self) -> bool:
        return self._held

    def acquire(self, on_granted: Callable[[], None]) -> None:
        """Queue for the lock; ``on_granted`` fires when acquired."""
        self._granted_callbacks.append(on_granted)
        if self._node is None:
            self._enter(data=self.session.session_id)
        self._check()

    def release(self) -> None:
        if not self._held:
            raise RuntimeError("lock is not held")
        self._held = False
        self._leave()

    def _check(self) -> None:
        if self._held or self._node is None:
            return
        if self._holds():
            self._held = True
            callbacks, self._granted_callbacks = self._granted_callbacks, []
            for callback in callbacks:
                callback()
            return
        predecessor = self._predecessor()
        if predecessor is None:
            return
        stat = self.kernel.exists(
            f"{self.path}/{predecessor}", watch=lambda _event: self._check()
        )
        if stat is None:
            self._check()
