"""ZooKeeper-like coordination kernel (shared configuration store).

Used by the E-STREAMHUB manager to reliably store the system configuration
and to orchestrate migrations (see DESIGN.md §2 for the substitution note).
"""

from .errors import (
    BadVersionError,
    CoordError,
    NoNodeError,
    NodeExistsError,
    NotEmptyError,
    SessionClosedError,
)
from .kernel import CoordinationKernel, Session, WatchedEvent, ZNodeStat
from .recipes import DistributedLock, LeaderElection

__all__ = [
    "DistributedLock",
    "LeaderElection",
    "BadVersionError",
    "CoordError",
    "CoordinationKernel",
    "NoNodeError",
    "NodeExistsError",
    "NotEmptyError",
    "Session",
    "SessionClosedError",
    "WatchedEvent",
    "ZNodeStat",
]
