"""A ZooKeeper-like coordination kernel.

The E-STREAMHUB manager stores the whole shared configuration (operator
layout, slice placement, migration records) in ZooKeeper so that it can be
restarted after a failure and so that all hosts observe a consistent
configuration.  This module provides the same API surface in-process:

* a filesystem-like hierarchy of *znodes*, each holding a small data blob,
* per-node versions with conditional writes (compare-and-set),
* ephemeral nodes tied to a session and deleted when the session closes,
* sequential nodes with monotonically increasing suffixes,
* one-shot data/children watches.

Within one process, all operations are applied in a total order (Python
calls), which gives the linearizability that ZooKeeper's atomic broadcast
provides across replicas; the manager's recovery tests exercise restart
from the stored state.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Tuple

from .errors import (
    BadVersionError,
    NoNodeError,
    NodeExistsError,
    NotEmptyError,
    SessionClosedError,
)

__all__ = ["CoordinationKernel", "Session", "ZNodeStat", "WatchedEvent"]


class ZNodeStat:
    """Metadata of a znode (a subset of ZooKeeper's Stat)."""

    def __init__(self, version: int, ephemeral_owner: Optional[int], created_seq: int):
        self.version = version
        self.ephemeral_owner = ephemeral_owner
        self.created_seq = created_seq

    def __repr__(self) -> str:
        return f"<ZNodeStat v{self.version} eph={self.ephemeral_owner}>"


class WatchedEvent:
    """Delivered to a watch callback when it fires."""

    CREATED = "created"
    DELETED = "deleted"
    CHANGED = "changed"
    CHILD = "child"

    def __init__(self, kind: str, path: str):
        self.kind = kind
        self.path = path

    def __repr__(self) -> str:
        return f"<WatchedEvent {self.kind} {self.path}>"


class _ZNode:
    def __init__(self, data: Any, ephemeral_owner: Optional[int], created_seq: int):
        self.data = data
        self.version = 0
        self.ephemeral_owner = ephemeral_owner
        self.created_seq = created_seq
        self.children: Dict[str, "_ZNode"] = {}
        self.next_sequential = 0
        self.data_watches: List[Callable[[WatchedEvent], None]] = []
        self.child_watches: List[Callable[[WatchedEvent], None]] = []

    def stat(self) -> ZNodeStat:
        return ZNodeStat(self.version, self.ephemeral_owner, self.created_seq)


def _validate_path(path: str) -> List[str]:
    if not path.startswith("/"):
        raise ValueError(f"path must be absolute, got {path!r}")
    if path == "/":
        return []
    if path.endswith("/"):
        raise ValueError(f"path must not end with '/', got {path!r}")
    parts = path[1:].split("/")
    if any(not p for p in parts):
        raise ValueError(f"empty path component in {path!r}")
    return parts


class Session:
    """A client session; owns ephemeral nodes until closed."""

    _next_id = 1

    def __init__(self, kernel: "CoordinationKernel"):
        self.kernel = kernel
        self.session_id = Session._next_id
        Session._next_id += 1
        self.closed = False

    def close(self) -> None:
        """Close the session, deleting every ephemeral node it owns."""
        if not self.closed:
            self.closed = True
            self.kernel._expire_session(self.session_id)

    def _check(self) -> None:
        if self.closed:
            raise SessionClosedError(f"session {self.session_id} is closed")


class CoordinationKernel:
    """The shared znode tree with watches and sessions."""

    def __init__(self) -> None:
        self._root = _ZNode(data=None, ephemeral_owner=None, created_seq=0)
        self._op_seq = 0
        # exists() watches armed on paths that do not exist yet.
        self._pending_exists_watches: Dict[str, List[Callable[[WatchedEvent], None]]] = {}

    # -- sessions -----------------------------------------------------------

    def session(self) -> Session:
        """Open a new session."""
        return Session(self)

    def _expire_session(self, session_id: int) -> None:
        for path in self._ephemeral_paths(self._root, "", session_id):
            try:
                self.delete(path)
            except NoNodeError:
                pass

    def _ephemeral_paths(self, node: _ZNode, prefix: str, session_id: int) -> List[str]:
        # Deepest-first so children are removed before parents.
        paths: List[str] = []
        for name, child in node.children.items():
            child_path = f"{prefix}/{name}"
            paths.extend(self._ephemeral_paths(child, child_path, session_id))
            if child.ephemeral_owner == session_id:
                paths.append(child_path)
        return paths

    # -- core operations -------------------------------------------------------

    def create(
        self,
        path: str,
        data: Any = None,
        session: Optional[Session] = None,
        ephemeral: bool = False,
        sequential: bool = False,
        make_parents: bool = False,
    ) -> str:
        """Create a znode; returns its actual path (suffix for sequential)."""
        if ephemeral and session is None:
            raise ValueError("ephemeral nodes require a session")
        if session is not None:
            session._check()
        parts = _validate_path(path)
        if not parts:
            raise NodeExistsError("/")
        parent = self._resolve_parent(parts, make_parents)
        name = parts[-1]
        if sequential:
            name = f"{name}{parent.next_sequential:010d}"
            parent.next_sequential += 1
        if name in parent.children:
            raise NodeExistsError(path)
        if ephemeral and parent.children is None:
            raise ValueError("cannot create children under an ephemeral node")
        self._op_seq += 1
        owner = session.session_id if (ephemeral and session) else None
        parent.children[name] = _ZNode(data, owner, self._op_seq)
        actual = "/" + "/".join(parts[:-1] + [name]) if len(parts) > 1 else f"/{name}"
        self._fire_child_watches(parts[:-1])
        self._fire_data_watches(actual, WatchedEvent.CREATED)
        return actual

    def get(
        self, path: str, watch: Optional[Callable[[WatchedEvent], None]] = None
    ) -> Tuple[Any, ZNodeStat]:
        """Read a znode's data and stat, optionally arming a data watch."""
        node = self._find(path)
        if watch is not None:
            node.data_watches.append(watch)
        return node.data, node.stat()

    def exists(
        self, path: str, watch: Optional[Callable[[WatchedEvent], None]] = None
    ) -> Optional[ZNodeStat]:
        """Stat of the node, or None; a watch may be armed either way."""
        try:
            node = self._find(path)
        except NoNodeError:
            if watch is not None:
                self._pending_exists_watches.setdefault(path, []).append(watch)
            return None
        if watch is not None:
            node.data_watches.append(watch)
        return node.stat()

    def set(self, path: str, data: Any, version: int = -1) -> ZNodeStat:
        """Write a znode's data; ``version >= 0`` makes it a compare-and-set."""
        node = self._find(path)
        if version >= 0 and node.version != version:
            raise BadVersionError(f"{path}: expected v{version}, is v{node.version}")
        node.data = data
        node.version += 1
        self._fire_data_watches(path, WatchedEvent.CHANGED)
        return node.stat()

    def delete(self, path: str, version: int = -1) -> None:
        """Delete a leaf znode (conditional when ``version >= 0``)."""
        parts = _validate_path(path)
        if not parts:
            raise ValueError("cannot delete the root")
        parent = self._resolve_parent(parts, make_parents=False)
        name = parts[-1]
        node = parent.children.get(name)
        if node is None:
            raise NoNodeError(path)
        if node.children:
            raise NotEmptyError(path)
        if version >= 0 and node.version != version:
            raise BadVersionError(f"{path}: expected v{version}, is v{node.version}")
        del parent.children[name]
        self._notify(node.data_watches, WatchedEvent(WatchedEvent.DELETED, path))
        self._fire_child_watches(parts[:-1])

    def get_children(
        self, path: str, watch: Optional[Callable[[WatchedEvent], None]] = None
    ) -> List[str]:
        """Sorted child names, optionally arming a child watch."""
        node = self._find(path)
        if watch is not None:
            node.child_watches.append(watch)
        return sorted(node.children)

    def ensure_path(self, path: str) -> None:
        """Create ``path`` and any missing parents (no-op if present)."""
        try:
            self.create(path, make_parents=True)
        except NodeExistsError:
            pass

    def walk(self, path: str = "/") -> List[str]:
        """All absolute paths below (and excluding) ``path``, depth-first."""
        node = self._find(path)
        prefix = "" if path == "/" else path
        result: List[str] = []
        for name in sorted(node.children):
            child_path = f"{prefix}/{name}"
            result.append(child_path)
            result.extend(self.walk(child_path))
        return result

    # -- internals --------------------------------------------------------------

    def _find(self, path: str) -> _ZNode:
        node = self._root
        for part in _validate_path(path):
            node = node.children.get(part)
            if node is None:
                raise NoNodeError(path)
        return node

    def _resolve_parent(self, parts: List[str], make_parents: bool) -> _ZNode:
        node = self._root
        for part in parts[:-1]:
            child = node.children.get(part)
            if child is None:
                if not make_parents:
                    raise NoNodeError("/" + "/".join(parts[:-1]))
                self._op_seq += 1
                child = _ZNode(None, None, self._op_seq)
                node.children[part] = child
            node = child
        return node

    def _fire_data_watches(self, path: str, kind: str) -> None:
        pending = self._pending_exists_watches.pop(path, [])
        try:
            node = self._find(path)
        except NoNodeError:
            node = None
        watches = pending
        if node is not None and kind != WatchedEvent.CREATED:
            watches = node.data_watches + pending
            node.data_watches = []
        self._notify(watches, WatchedEvent(kind, path))

    def _fire_child_watches(self, parent_parts: List[str]) -> None:
        parent_path = "/" + "/".join(parent_parts) if parent_parts else "/"
        try:
            parent = self._find(parent_path)
        except NoNodeError:
            return
        self._notify(parent.child_watches, WatchedEvent(WatchedEvent.CHILD, parent_path))
        parent.child_watches = []

    @staticmethod
    def _notify(watches: List[Callable[[WatchedEvent], None]], event: WatchedEvent) -> None:
        for watch in list(watches):
            watch(event)
