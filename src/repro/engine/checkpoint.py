"""Slice checkpoints and the stable checkpoint store.

A checkpoint captures, atomically under the slice's write lock:

* the handler state (the explicit state management used by migration),
* the per-source timestamp vector (``last_processed``),
* the slice's *outgoing* sequence counters — so a recovered instance
  regenerates identical sequence numbers for re-emissions, which is what
  lets receivers deduplicate them.

Checkpoints are shipped to a :class:`CheckpointStore` standing in for
stable storage (a replicated store in a real deployment); the transfer is
charged on the origin host's NIC and the serialization on its CPU.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional

__all__ = ["Checkpoint", "CheckpointStore", "MANAGER_STATE_KEY", "STABLE_STORAGE"]

#: Pseudo host id of the stable checkpoint store on the fabric.
STABLE_STORAGE = "stable-storage"

#: Reserved slice-id the elasticity manager checkpoints its own state
#: under (``ManagerRecord`` history + the in-flight decision), so a
#: standby elected after a manager crash can resume or roll back the
#: operation that was executing (see :mod:`repro.elastic.failover`).
#: ``__`` keeps it out of the real ``operator:index`` namespace.
MANAGER_STATE_KEY = "__manager__"


@dataclass(frozen=True)
class Checkpoint:
    """One captured slice checkpoint."""

    slice_id: str
    epoch: int
    captured_at: float
    state: Any
    vector: Dict[str, int]
    seq_counters: Dict[str, int]
    state_bytes: int


class CheckpointStore:
    """Latest checkpoint per slice (stable storage stand-in)."""

    def __init__(self) -> None:
        self._latest: Dict[str, Checkpoint] = {}
        self.checkpoints_stored = 0
        self.bytes_stored = 0

    def put(self, checkpoint: Checkpoint) -> None:
        current = self._latest.get(checkpoint.slice_id)
        if current is not None and current.epoch >= checkpoint.epoch:
            raise ValueError(
                f"stale checkpoint for {checkpoint.slice_id}: epoch "
                f"{checkpoint.epoch} <= stored {current.epoch}"
            )
        self._latest[checkpoint.slice_id] = checkpoint
        self.checkpoints_stored += 1
        self.bytes_stored += checkpoint.state_bytes

    def get(self, slice_id: str) -> Optional[Checkpoint]:
        return self._latest.get(slice_id)

    def slices(self) -> List[str]:
        return sorted(self._latest)

    def __len__(self) -> int:
        return len(self._latest)
