"""A deployed instance of a logical operator slice on a host.

A *logical* slice (e.g. ``M:3``) exists exactly once in the system; during
a migration it is temporarily backed by two *instances*: the active one on
the origin host and a buffering one on the destination host receiving
duplicated events (paper §IV-A, Figure 3).

Each active instance runs ``parallelism`` worker processes pulling from a
shared FIFO inbox — the thread pool sized to the host's cores that gives
StreamMine3G its vertical scalability.  Workers take the slice RW lock in
the mode requested by the handler, charge the handler's CPU cost on the
host's cores, then run the handler.
"""

from __future__ import annotations

from typing import Dict, List, Tuple, TYPE_CHECKING

from ..cluster import Host
from ..sim import Environment, Event, Interrupt, Store
from .event import StreamEvent
from .handler import SliceContext, SliceHandler
from .locks import RWLock

if TYPE_CHECKING:  # pragma: no cover
    from .runtime import EngineRuntime

__all__ = ["SliceInstance"]


class SliceInstance:
    """One instance of a logical slice, bound to a host."""

    def __init__(
        self,
        runtime: "EngineRuntime",
        logical_id: str,
        handler: SliceHandler,
        host: Host,
        parallelism: int,
        buffering: bool = False,
    ):
        if parallelism <= 0:
            raise ValueError("parallelism must be positive")
        self.runtime = runtime
        self.env: Environment = runtime.env
        self.logical_id = logical_id
        self.handler = handler
        self.host = host
        self.parallelism = parallelism
        self.inbox: Store = Store(self.env)
        self.lock = RWLock(self.env)
        #: Per-source highest processed sequence number (the timestamp
        #: vector copied with the state during migration).
        self.last_processed: Dict[str, int] = {}
        #: Per-source last received sequence number (original deliveries).
        self.last_received: Dict[str, int] = {}
        #: Per-source first original sequence number this instance received;
        #: originals arrive contiguously per channel (FIFO), so a replayed
        #: event is a duplicate exactly when it falls in
        #: [first_original, last_received].
        self._first_original: Dict[str, int] = {}
        #: Frozen vector installed at activation after a migration: events
        #: at or below it were already processed by the origin instance and
        #: must be dropped.  Never-migrated instances drop nothing.
        self._dedup_vector: Dict[str, int] = {}
        self.processed_count = 0
        self.dropped_duplicates = 0
        self.dropped_replays = 0
        #: High-water inbox depth — the backpressure bench's bound check.
        self.peak_queue_length = 0
        #: The runtime transport when credit-based backpressure is on
        #: (``None`` otherwise, keeping the hot paths free).  Every event
        #: consumed a send credit on its channel; the credit must return
        #: on *every* path an event permanently leaves the in-flight set:
        #: deliver-time drops, worker dequeues, and coalescing drains.
        transport = runtime.transport
        self._flow = transport if transport.backpressure else None
        #: True while the instance is reprocessing replayed events after a
        #: crash recovery; its emissions are flagged for receiver-side
        #: deduplication during this window.
        self.recovering = False
        self._busy = 0
        self._halted = False
        #: Events dequeued-and-dropped while halted, in dequeue order.
        #: Normally garbage (the migration destination also received
        #: them); an aborted migration splices them back via resume().
        self._halt_dropped: List[StreamEvent] = []
        self._destroyed = False
        self._buffering = buffering
        self._operator = logical_id.split(":", 1)[0]
        info = runtime.operators.get(self._operator)
        self._replay_dedup = info.replay_dedup if info is not None else True
        self._workers: List = []
        self._ctx = SliceContext(runtime, logical_id)
        #: (cutoffs, event) pairs resolved as events are processed.
        self._progress_watchers: List[Tuple[Dict[str, int], Event]] = []
        self._quiescence_watchers: List[Event] = []
        if not buffering:
            self._start_workers()

    # -- delivery -------------------------------------------------------------

    def deliver(self, event: StreamEvent) -> None:
        """Entry point for the transport layer."""
        if self._destroyed:
            if self._flow is not None:
                self._flow.on_consumed(self, event.source)
            return
        if event.replayed and self._replay_dedup:
            first = self._first_original.get(event.source)
            if (
                first is not None
                and first <= event.seq <= self.last_received.get(event.source, -1)
            ):
                # Already received as an original delivery: a duplicate.
                self.dropped_replays += 1
                if self._flow is not None:
                    self._flow.on_consumed(self, event.source)
                return
        else:
            if event.source not in self._first_original:
                self._first_original[event.source] = event.seq
            previous = self.last_received.get(event.source, -1)
            if event.seq > previous:
                self.last_received[event.source] = event.seq
        self.inbox.put_nowait(event)
        depth = len(self.inbox)
        if depth > self.peak_queue_length:
            self.peak_queue_length = depth

    @property
    def queue_length(self) -> int:
        return len(self.inbox)

    @property
    def is_buffering(self) -> bool:
        return self._buffering

    @property
    def busy_workers(self) -> int:
        return self._busy

    # -- lifecycle -------------------------------------------------------------

    def activate(self, vector: Dict[str, int]) -> None:
        """Turn a buffering instance live, resuming after ``vector``.

        Buffered (and future) events with sequence numbers at or below the
        vector entry of their source were already processed by the origin
        instance before the state was copied; workers drop them.
        """
        if not self._buffering:
            raise RuntimeError(f"{self.logical_id}: instance is already active")
        self._buffering = False
        self.last_processed = dict(vector)
        self._dedup_vector = dict(vector)
        self._start_workers()

    def halt(self) -> Event:
        """Stop processing; the returned event fires at quiescence.

        Events queued or arriving after the halt are dropped — the halt is
        only ever requested once duplication guarantees every such event is
        also delivered to the destination instance.
        """
        self._halted = True
        event = Event(self.env)
        self._quiescence_watchers.append(event)
        self._check_quiescence()
        return event

    def resume(self) -> None:
        """Reverse a :meth:`halt` — an aborted migration re-activates the
        origin instance.

        Events the halted workers dequeued-and-dropped are spliced back at
        the inbox front (they were dequeued before anything still queued,
        so per-channel FIFO order is preserved), pending quiescence
        watchers are discarded, and workers parked on an empty inbox wake
        up.  Credits those events already returned at the first dequeue
        are returned again on reprocessing; the channel credit cap absorbs
        the double return.
        """
        if self._destroyed:
            raise RuntimeError(f"{self.logical_id}: cannot resume a destroyed instance")
        self._halted = False
        if self._halt_dropped:
            self.inbox.items.extendleft(reversed(self._halt_dropped))
            self._halt_dropped = []
        self._quiescence_watchers = []
        self.inbox._serve_getters()

    def destroy(self) -> None:
        """Tear the instance down; delivered events are dropped."""
        self._destroyed = True
        self._halted = True
        self._halt_dropped = []
        for worker in self._workers:
            if worker.is_alive:
                worker.interrupt("destroyed")
        self._workers = []
        self.handler.detach()
        # Release inbound channels (and their credits/spill) with the
        # instance; channels keyed by this slice's logical id as *source*
        # survive for the successor instance.
        self.runtime.transport.release_instance(self)

    # -- migration support -------------------------------------------------------

    def wait_until_processed(self, cutoffs: Dict[str, int]) -> Event:
        """Event firing once ``last_processed[src] >= cutoffs[src]`` for all."""
        event = Event(self.env)
        if self._satisfies(cutoffs):
            event.succeed()
        else:
            self._progress_watchers.append((cutoffs, event))
        return event

    def _satisfies(self, cutoffs: Dict[str, int]) -> bool:
        return all(
            self.last_processed.get(source, -1) >= cutoff
            for source, cutoff in cutoffs.items()
            if cutoff >= 0
        )

    def _check_progress(self) -> None:
        if not self._progress_watchers:
            return
        remaining = []
        for cutoffs, event in self._progress_watchers:
            if self._satisfies(cutoffs):
                event.succeed()
            else:
                remaining.append((cutoffs, event))
        self._progress_watchers = remaining

    def _check_quiescence(self) -> None:
        if self._halted and self._busy == 0 and self._quiescence_watchers:
            watchers, self._quiescence_watchers = self._quiescence_watchers, []
            for event in watchers:
                event.succeed()

    # -- processing -----------------------------------------------------------

    def _drain_batch(self, head: StreamEvent) -> List[StreamEvent]:
        """Coalesce queued events behind ``head`` if the handler opts in.

        Draining happens under the head's lock, taking only *consecutive*
        inbox events the handler accepts (same lock mode by contract), so
        FIFO order and the per-event cost/sequence accounting are
        preserved; the sum of the batch's costs is charged in one CPU run.
        Disabled during crash recovery, where replayed events must be
        reprocessed one-by-one to realign emission sequence numbers.
        """
        batch = [head]
        if self.recovering:
            return batch
        limit = self.handler.coalesce_limit(head)
        if limit <= 1:
            return batch
        items = self.inbox.items
        while len(batch) < limit and items:
            candidate = items[0]
            if (
                self._dedup_vector
                and candidate.seq <= self._dedup_vector.get(candidate.source, -1)
            ):
                # The worker loop would drop it on dequeue; drop it here so
                # a stale duplicate does not split an otherwise contiguous
                # run of coalescible events.
                items.popleft()
                self.dropped_duplicates += 1
                if self._flow is not None:
                    self._flow.on_consumed(self, candidate.source)
                continue
            if not self.handler.coalesce_with(head, candidate):
                break
            items.popleft()
            if self._flow is not None:
                self._flow.on_consumed(self, candidate.source)
            batch.append(candidate)
        return batch

    def _record_telemetry(self, telemetry, batch: List[StreamEvent]) -> None:
        """Record a processed batch: counters plus one hop span per event.

        A hop span measures ``[event.sent_at, now]`` — emission at the
        upstream slice to completed processing here — so queueing, network
        and CPU time all land in the per-operator latency breakdown.
        Events whose payload carries a ``pub_id`` (publications, match
        lists, notifications) are correlated into one publication's
        AP → M → EP → SINK trace.  Called only when a bundle is bound;
        pure recording, never scheduling.
        """
        fam = telemetry.events_processed
        if fam is not None:
            fam.labels(operator=self._operator).inc(len(batch))
            if len(batch) > 1:
                telemetry.batches_coalesced.labels(operator=self._operator).inc()
                telemetry.events_coalesced.labels(
                    operator=self._operator
                ).inc(len(batch))
        tracer = telemetry.tracer
        if tracer.enabled:
            name = "hop." + self._operator
            now = self.env.now
            for event in batch:
                attrs = {
                    "slice": self.logical_id,
                    "kind": event.kind,
                    "source": event.source,
                }
                pub_id = getattr(event.payload, "pub_id", None)
                if pub_id is not None:
                    attrs["pub_id"] = pub_id
                tracer.add_span(name, event.sent_at, now, **attrs)

    def _start_workers(self) -> None:
        self._workers = [
            self.env.process(self._worker_loop()) for _ in range(self.parallelism)
        ]

    def _worker_loop(self):
        try:
            while True:
                event: StreamEvent = self.inbox.try_get()
                if event is None:
                    event = yield self.inbox.get()
                if self._flow is not None:
                    # Dequeued: the inbox slot is free, return the credit
                    # (drop paths below already have it accounted).
                    self._flow.on_consumed(self, event.source)
                if self._destroyed or self._halted:
                    if self._halted and not self._destroyed:
                        # Keep the drop reversible: an aborted migration
                        # re-splices these in order (see resume()).
                        self._halt_dropped.append(event)
                    continue  # safe drop: duplicated to the new instance
                if (
                    self._dedup_vector
                    and event.seq <= self._dedup_vector.get(event.source, -1)
                ):
                    self.dropped_duplicates += 1
                    continue
                self._busy += 1
                # Replay after a crash is processed exclusively: re-emission
                # sequence numbers realign with the originals only if inputs
                # are reprocessed in order (see recovery.py).
                mode = "W" if self.recovering else self.handler.lock_mode(event)
                try:
                    if not self.lock.try_acquire(mode):
                        yield self.lock.acquire(mode)
                    try:
                        batch = self._drain_batch(event)
                        # Submission point for real offloaded work: runs
                        # under the batch's lock, schedules no simulation
                        # events; results are collected in process() at
                        # the completion time charged below.
                        self.handler.prepare_batch(batch, self._ctx)
                        cost = sum(self.handler.cost(e) for e in batch)
                        if cost > 0.0:
                            yield from self.host.cpu.run(cost, tag=self.logical_id)
                        if len(batch) == 1:
                            self.handler.process(event, self._ctx)
                        else:
                            self.handler.process_batch(batch, self._ctx)
                    finally:
                        self.lock.release(mode)
                    for processed in batch:
                        previous = self.last_processed.get(processed.source, -1)
                        if processed.seq > previous:
                            self.last_processed[processed.source] = processed.seq
                    self.processed_count += len(batch)
                    telemetry = self.runtime.telemetry
                    if telemetry is not None:
                        self._record_telemetry(telemetry, batch)
                finally:
                    self._busy -= 1
                self._check_progress()
                self._check_quiescence()
        except Interrupt:
            return
