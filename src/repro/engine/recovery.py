"""Passive replication: periodic checkpoints and crash recovery.

The :class:`ReliabilityCoordinator` implements the passive scheme the
paper's runtime supports (§III, StreamMine3G ref [26]):

* every managed slice is checkpointed periodically (state + timestamp
  vector + outgoing sequence counters) into a :class:`CheckpointStore`;
* upstream retention buffers (``EngineRuntime.enable_retention``) keep the
  events each channel sent since the receiver's last checkpoint;
* when a host crash is detected, each slice that lived on it is recreated
  on a replacement host from its last checkpoint, and the retained suffix
  of every inbound channel is replayed to it.

Exactly-once processing is restored end to end: replayed inputs the crash
victim had already processed are filtered by the checkpoint vector;
re-emissions the downstream had already received carry their original
sequence numbers (regenerated from the checkpointed counters) and a
``replayed`` flag, and are dropped by receive-side deduplication.

Determinism caveat: sequence-number realignment of re-emissions requires
reprocessing inputs in the original order.  Replay is processed
exclusively (serialized on the slice lock) so this holds per input
channel; across *multiple* input channels it additionally requires a
deterministic channel merge order, which StreamMine3G's deterministic
execution provides but this engine does not enforce — with multiple
upstream channels, recovery guarantees state correctness and
channel-level exactly-once, while individual re-emission payloads may
pair with different sequence numbers than the originals.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict, List, Optional

from ..cluster import Host
from .checkpoint import STABLE_STORAGE, Checkpoint, CheckpointStore
from .runtime import EngineRuntime

__all__ = ["ReliabilityCoordinator", "RecoveryReport"]


@dataclasses.dataclass(frozen=True)
class RecoveryReport:
    """Outcome of recovering one slice after a crash."""

    slice_id: str
    replacement_host: str
    restored_epoch: Optional[int]
    replayed_events: int
    started_at: float
    completed_at: float

    @property
    def duration_s(self) -> float:
        return self.completed_at - self.started_at


class ReliabilityCoordinator:
    """Checkpoints slices and recovers them after host crashes."""

    def __init__(
        self,
        runtime: EngineRuntime,
        store: Optional[CheckpointStore] = None,
        interval_s: float = 10.0,
        replacement_host_fn: Optional[Callable[[], Host]] = None,
    ):
        if interval_s <= 0:
            raise ValueError("checkpoint interval must be positive")
        self.runtime = runtime
        self.env = runtime.env
        self.store = store or CheckpointStore()
        self.interval_s = interval_s
        self.replacement_host_fn = replacement_host_fn
        self._epochs: Dict[str, int] = {}
        self._managed: List[str] = []
        self._started = False
        self.recovery_reports: List[RecoveryReport] = []
        runtime.enable_retention()

    # -- checkpointing ---------------------------------------------------------

    def start(self, slice_ids: List[str]) -> None:
        """Begin periodic checkpointing of ``slice_ids`` (staggered)."""
        if self._started:
            raise RuntimeError("coordinator already started")
        if not slice_ids:
            raise ValueError("need at least one slice to manage")
        self._started = True
        self._managed = list(slice_ids)
        for index, slice_id in enumerate(self._managed):
            offset = self.interval_s * index / len(self._managed)
            self.env.process(self._checkpoint_loop(slice_id, offset))

    def checkpoint_now(self, slice_id: str):
        """Checkpoint one slice; returns the coordinating process."""
        return self.env.process(self._checkpoint(slice_id))

    def _checkpoint_loop(self, slice_id: str, offset: float):
        yield self.env.timeout(offset)
        while True:
            logical = self.runtime.slices.get(slice_id)
            if logical is not None and logical.active is not None:
                instance = logical.active
                if not instance.is_buffering and not instance.host.released:
                    yield from self._checkpoint(slice_id)
            yield self.env.timeout(self.interval_s)

    def _checkpoint(self, slice_id: str):
        logical = self.runtime.slices[slice_id]
        instance = logical.active
        if instance is None:
            raise RuntimeError(f"slice {slice_id} is not deployed")
        # Atomic capture under the slice's write lock.
        if not instance.lock.try_acquire("W"):
            yield instance.lock.acquire("W")
        try:
            state = instance.handler.export_state()
            vector = dict(instance.last_processed)
            counters = self.runtime.seq_counters_from(slice_id)
            state_bytes = instance.handler.state_size_bytes()
        finally:
            instance.lock.release("W")

        # Serialize on the origin CPU, ship to stable storage.
        costs = self.runtime.migration_costs
        serialize_cpu = state_bytes * costs.serialize_s_per_byte
        if serialize_cpu > 0:
            yield from instance.host.cpu.run(serialize_cpu, tag=slice_id)
        if state_bytes > 0:
            shipped = self.env.event()
            self.runtime.network.send(
                instance.host.host_id,
                STABLE_STORAGE,
                state_bytes,
                None,
                lambda _payload: shipped.succeed(),
            )
            yield shipped

        epoch = self._epochs.get(slice_id, 0) + 1
        self._epochs[slice_id] = epoch
        checkpoint = Checkpoint(
            slice_id=slice_id,
            epoch=epoch,
            captured_at=self.env.now,
            state=state,
            vector=vector,
            seq_counters=counters,
            state_bytes=state_bytes,
        )
        self.store.put(checkpoint)
        # The sender side no longer needs events covered by this vector.
        if self.runtime.retention is not None:
            self.runtime.retention.prune_for_destination(slice_id, vector)
        return checkpoint

    # -- crash recovery ------------------------------------------------------------

    def handle_host_crash(self, host: Host):
        """Recover every slice that was running on ``host``.

        Returns the coordinating process (value: list of RecoveryReports).
        """
        return self.env.process(self._recover_host(host))

    def _recover_host(self, host: Host):
        victims = [
            slice_id
            for slice_id, logical in self.runtime.slices.items()
            if logical.active is not None and logical.active.host is host
        ]
        reports = []
        for slice_id in victims:
            self.runtime.slices[slice_id].active.destroy()
        for slice_id in victims:
            report = yield from self._recover_slice(slice_id)
            reports.append(report)
        return reports

    def _recover_slice(self, slice_id: str):
        from .instance import SliceInstance

        started_at = self.env.now
        if self.replacement_host_fn is None:
            raise RuntimeError("no replacement_host_fn configured")
        replacement = self.replacement_host_fn()
        logical = self.runtime.slices[slice_id]
        info = self.runtime.operators[logical.operator]
        checkpoint = self.store.get(slice_id)

        instance = SliceInstance(
            self.runtime,
            slice_id,
            info.handler_factory(logical.index),
            replacement,
            parallelism=info.parallelism,
            buffering=True,
        )
        logical.active = instance  # new original events start flowing here

        vector: Dict[str, int] = {}
        if checkpoint is not None:
            # Fetch the state from stable storage and install it.
            fetched = self.env.event()
            self.runtime.network.send(
                STABLE_STORAGE,
                replacement.host_id,
                checkpoint.state_bytes,
                None,
                lambda _payload: fetched.succeed(),
            )
            yield fetched
            costs = self.runtime.migration_costs
            deserialize_cpu = checkpoint.state_bytes * costs.deserialize_s_per_byte
            if deserialize_cpu > 0:
                yield from replacement.cpu.run(deserialize_cpu, tag=slice_id)
            instance.handler.import_state(checkpoint.state)
            vector = dict(checkpoint.vector)
            self.runtime.restore_seq_counters(slice_id, checkpoint.seq_counters)

        # Replay the retained suffix of every inbound channel.  Replayed
        # events must be processed *before* any original events that were
        # buffered while the replacement was being set up: re-emissions
        # regenerate their original sequence numbers only if inputs are
        # reprocessed in their original per-source order.  The replay is
        # therefore spliced at the *front* of the inbox, and buffered
        # originals it covers (same source and sequence range — retention
        # recorded them too) are dropped as duplicates.
        replay_cutoffs: Dict[str, int] = {}
        replay_events = []
        replay_bytes_by_source: Dict[str, int] = {}
        retention = self.runtime.retention
        if retention is not None:
            for source, buffer in retention.channels_to(slice_id):
                events = buffer.suffix_after(vector.get(source, -1))
                if not events:
                    continue
                replay_cutoffs[source] = events[-1].seq
                replay_bytes_by_source[source] = sum(e.size_bytes for e in events)
                replay_events.extend(
                    dataclasses.replace(event, replayed=True) for event in events
                )

        # Charge the replay transfers (one bulk send per channel).
        transfers = []
        for source, size in replay_bytes_by_source.items():
            done = self.env.event()
            self.runtime.network.send(
                self.runtime._source_host_id(source),
                replacement.host_id,
                size,
                None,
                lambda _payload, _done=done: _done.succeed(),
            )
            transfers.append(done)
        for done in transfers:
            yield done

        surviving = [
            event
            for event in instance.inbox.items
            if event.seq > replay_cutoffs.get(event.source, -1)
        ]
        instance.inbox.items.clear()
        instance.inbox.items.extend(replay_events + surviving)

        instance.recovering = True
        instance.activate(vector)
        if replay_cutoffs:
            yield instance.wait_until_processed(replay_cutoffs)
        instance.recovering = False
        replayed = len(replay_events)

        report = RecoveryReport(
            slice_id=slice_id,
            replacement_host=replacement.host_id,
            restored_epoch=checkpoint.epoch if checkpoint else None,
            replayed_events=replayed,
            started_at=started_at,
            completed_at=self.env.now,
        )
        self.recovery_reports.append(report)
        return report
