"""Passive replication: periodic checkpoints and crash recovery.

The :class:`ReliabilityCoordinator` implements the passive scheme the
paper's runtime supports (§III, StreamMine3G ref [26]):

* every managed slice is checkpointed periodically (state + timestamp
  vector + outgoing sequence counters) into a :class:`CheckpointStore`;
* upstream retention buffers (``EngineRuntime.enable_retention``) keep the
  events each channel sent since the receiver's last checkpoint;
* when a host crash is detected, each slice that lived on it is recreated
  on a replacement host from its last checkpoint, and the retained suffix
  of every inbound channel is replayed to it.

Exactly-once processing is restored end to end: replayed inputs the crash
victim had already processed are filtered by the checkpoint vector;
re-emissions the downstream had already received carry their original
sequence numbers (regenerated from the checkpointed counters) and a
``replayed`` flag, and are dropped by receive-side deduplication.

Determinism caveat: with multiple upstream channels, sequence-number
realignment of re-emissions additionally requires a deterministic
channel merge order, which this engine does not enforce — see DESIGN.md
§11 for the full statement of what is and is not guaranteed.

Two further pieces support the chaos scenarios (see RESILIENCE.md):
the :class:`DeadLetterQueue` parks events whose destination slice is
unrecoverable instead of losing them silently, and
:meth:`ReliabilityCoordinator.replay_missing` re-delivers retained
suffixes after a network partition heals, relying on receive-side
duplicate suppression to keep the notification multiset exact.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict, List, Optional

from ..cluster import Host
from .checkpoint import STABLE_STORAGE, Checkpoint, CheckpointStore
from .runtime import EngineRuntime

__all__ = ["DeadLetterQueue", "ReliabilityCoordinator", "RecoveryReport"]

#: Replacement-host name in a RecoveryReport for a dead-lettered slice.
UNRECOVERABLE = "<unrecoverable>"


@dataclasses.dataclass(frozen=True)
class DeadLetterEntry:
    """One batch of events parked because their destination is gone."""

    slice_id: str
    reason: str
    time: float
    events: tuple


class DeadLetterQueue:
    """Terminal parking lot for events with an unrecoverable destination.

    When a destination slice cannot be recovered (no replacement host,
    or the logical slice was torn down), routing an event to it would
    either crash the run or lose the event silently.  The dead-letter
    queue makes the loss explicit and auditable instead: events are
    parked per destination slice with a reason, counted in
    ``dead_letter_events_total``, and can be drained later if the slice
    ever comes back (an operator decision, not automatic).
    """

    def __init__(self, env, telemetry=None):
        self.env = env
        self.telemetry = telemetry
        self._entries: Dict[str, List[DeadLetterEntry]] = {}
        #: Total events parked, across all slices and reasons.
        self.total = 0

    def push(self, slice_id: str, events, reason: str) -> None:
        """Park ``events`` destined for ``slice_id``."""
        events = tuple(events)
        if not events:
            return
        entry = DeadLetterEntry(
            slice_id=slice_id, reason=reason, time=self.env.now, events=events
        )
        self._entries.setdefault(slice_id, []).append(entry)
        self.total += len(events)
        tel = self.telemetry
        if tel is not None:
            if tel.dead_letter_events is not None:
                tel.dead_letter_events.inc(len(events))
            tel.tracer.event(
                "recovery.dead_letter",
                slice=slice_id,
                reason=reason,
                events=len(events),
            )

    def entries(self, slice_id: Optional[str] = None) -> List[DeadLetterEntry]:
        if slice_id is not None:
            return list(self._entries.get(slice_id, ()))
        return [e for batch in self._entries.values() for e in batch]

    def drain(self, slice_id: str) -> List[DeadLetterEntry]:
        """Remove and return every parked entry for ``slice_id``."""
        return self._entries.pop(slice_id, [])

    def slices(self) -> List[str]:
        return sorted(self._entries)

    def __len__(self) -> int:
        return self.total


@dataclasses.dataclass(frozen=True)
class RecoveryReport:
    """Outcome of recovering one slice after a crash."""

    slice_id: str
    replacement_host: str
    restored_epoch: Optional[int]
    replayed_events: int
    started_at: float
    completed_at: float
    #: Events parked in the dead-letter queue because no replacement
    #: host could be found (``replacement_host == UNRECOVERABLE``).
    dead_lettered: int = 0

    @property
    def duration_s(self) -> float:
        return self.completed_at - self.started_at


class ReliabilityCoordinator:
    """Checkpoints slices and recovers them after host crashes."""

    def __init__(
        self,
        runtime: EngineRuntime,
        store: Optional[CheckpointStore] = None,
        interval_s: float = 10.0,
        replacement_host_fn: Optional[Callable[[], Host]] = None,
    ):
        if interval_s <= 0:
            raise ValueError("checkpoint interval must be positive")
        self.runtime = runtime
        self.env = runtime.env
        self.store = store or CheckpointStore()
        self.interval_s = interval_s
        self.replacement_host_fn = replacement_host_fn
        self._epochs: Dict[str, int] = {}
        self._managed: List[str] = []
        self._started = False
        self.recovery_reports: List[RecoveryReport] = []
        #: Slice ids whose recovery was abandoned to the dead-letter
        #: queue (no replacement host).
        self.unrecoverable: List[str] = []
        runtime.enable_retention()

    @property
    def _tracer(self):
        telemetry = self.runtime.telemetry
        return telemetry.tracer if telemetry is not None else None

    # -- checkpointing ---------------------------------------------------------

    def start(self, slice_ids: List[str]) -> None:
        """Begin periodic checkpointing of ``slice_ids`` (staggered)."""
        if self._started:
            raise RuntimeError("coordinator already started")
        if not slice_ids:
            raise ValueError("need at least one slice to manage")
        self._started = True
        self._managed = list(slice_ids)
        for index, slice_id in enumerate(self._managed):
            offset = self.interval_s * index / len(self._managed)
            self.env.process(self._checkpoint_loop(slice_id, offset))

    def checkpoint_now(self, slice_id: str):
        """Checkpoint one slice; returns the coordinating process."""
        return self.env.process(self._checkpoint(slice_id))

    def _checkpoint_loop(self, slice_id: str, offset: float):
        yield self.env.timeout(offset)
        while True:
            logical = self.runtime.slices.get(slice_id)
            if logical is not None and logical.active is not None:
                instance = logical.active
                if not instance.is_buffering and not instance.host.released:
                    yield from self._checkpoint(slice_id)
            yield self.env.timeout(self.interval_s)

    def _checkpoint(self, slice_id: str):
        logical = self.runtime.slices[slice_id]
        instance = logical.active
        if instance is None:
            raise RuntimeError(f"slice {slice_id} is not deployed")
        # Atomic capture under the slice's write lock.
        if not instance.lock.try_acquire("W"):
            yield instance.lock.acquire("W")
        try:
            state = instance.handler.export_state()
            vector = dict(instance.last_processed)
            counters = self.runtime.seq_counters_from(slice_id)
            state_bytes = instance.handler.state_size_bytes()
        finally:
            instance.lock.release("W")

        # Serialize on the origin CPU, ship to stable storage.
        costs = self.runtime.migration_costs
        serialize_cpu = state_bytes * costs.serialize_s_per_byte
        if serialize_cpu > 0:
            yield from instance.host.cpu.run(serialize_cpu, tag=slice_id)
        if state_bytes > 0:
            shipped = self.env.event()
            self.runtime.network.send(
                instance.host.host_id,
                STABLE_STORAGE,
                state_bytes,
                None,
                lambda _payload: shipped.succeed(),
            )
            yield shipped

        epoch = self._epochs.get(slice_id, 0) + 1
        self._epochs[slice_id] = epoch
        checkpoint = Checkpoint(
            slice_id=slice_id,
            epoch=epoch,
            captured_at=self.env.now,
            state=state,
            vector=vector,
            seq_counters=counters,
            state_bytes=state_bytes,
        )
        self.store.put(checkpoint)
        # The sender side no longer needs events covered by this vector.
        if self.runtime.retention is not None:
            self.runtime.retention.prune_for_destination(slice_id, vector)
        return checkpoint

    # -- crash recovery ------------------------------------------------------------

    def handle_host_crash(self, host: Host):
        """Recover every slice that was running on ``host``.

        Returns the coordinating process (value: list of RecoveryReports).
        """
        return self.env.process(self._recover_host(host))

    def _recover_host(self, host: Host):
        victims = [
            slice_id
            for slice_id, logical in self.runtime.slices.items()
            if logical.active is not None and logical.active.host is host
        ]
        tracer = self._tracer
        span = None
        if tracer is not None:
            span = tracer.start_span(
                "recovery.host", host=host.host_id, slices=len(victims)
            )
        reports = []
        for slice_id in victims:
            self.runtime.slices[slice_id].active.destroy()
        for slice_id in victims:
            report = yield from self._recover_slice(slice_id, parent=span)
            reports.append(report)
        if span is not None:
            tracer.finish_span(
                span,
                recovered=sum(
                    1 for r in reports if r.replacement_host != UNRECOVERABLE
                ),
                dead_lettered=sum(r.dead_lettered for r in reports),
            )
        return reports

    def _replacement_host(self) -> Optional[Host]:
        if self.replacement_host_fn is None:
            return None
        try:
            return self.replacement_host_fn()
        except Exception:
            return None

    def _abandon_slice(self, slice_id: str, started_at: float, parent=None):
        """No replacement host: dead-letter the retained suffix.

        The slice's logical id stays routable (``active = None``), so
        the runtime dead-letters every *future* event toward it too; the
        retained suffix — everything the victim had not durably
        processed per its last checkpoint — is parked with it.
        """
        logical = self.runtime.slices[slice_id]
        logical.active = None
        checkpoint = self.store.get(slice_id)
        vector = dict(checkpoint.vector) if checkpoint is not None else {}
        parked = 0
        dead_letters = self.runtime.dead_letters
        retention = self.runtime.retention
        if dead_letters is not None and retention is not None:
            for source, buffer in retention.channels_to(slice_id):
                events = buffer.suffix_after(vector.get(source, -1))
                if events:
                    dead_letters.push(slice_id, events, "unrecoverable")
                    parked += len(events)
        self.unrecoverable.append(slice_id)
        tracer = self._tracer
        if tracer is not None:
            tracer.event(
                "recovery.unrecoverable",
                parent=parent,
                slice=slice_id,
                dead_lettered=parked,
            )
        report = RecoveryReport(
            slice_id=slice_id,
            replacement_host=UNRECOVERABLE,
            restored_epoch=checkpoint.epoch if checkpoint else None,
            replayed_events=0,
            started_at=started_at,
            completed_at=self.env.now,
            dead_lettered=parked,
        )
        self.recovery_reports.append(report)
        return report

    def _recover_slice(self, slice_id: str, parent=None):
        from .instance import SliceInstance

        started_at = self.env.now
        replacement = self._replacement_host()
        if replacement is None:
            if self.runtime.dead_letters is None:
                raise RuntimeError("no replacement_host_fn configured")
            return self._abandon_slice(slice_id, started_at, parent=parent)
        logical = self.runtime.slices[slice_id]
        info = self.runtime.operators[logical.operator]
        checkpoint = self.store.get(slice_id)
        tracer = self._tracer
        span = None
        if tracer is not None:
            span = tracer.start_span(
                "recovery.slice",
                parent=parent,
                slice=slice_id,
                replacement=replacement.host_id,
            )

        instance = SliceInstance(
            self.runtime,
            slice_id,
            info.handler_factory(logical.index),
            replacement,
            parallelism=info.parallelism,
            buffering=True,
        )
        logical.active = instance  # new original events start flowing here

        vector: Dict[str, int] = {}
        if checkpoint is not None:
            # Fetch the state from stable storage and install it.
            fetched = self.env.event()
            self.runtime.network.send(
                STABLE_STORAGE,
                replacement.host_id,
                checkpoint.state_bytes,
                None,
                lambda _payload: fetched.succeed(),
            )
            yield fetched
            costs = self.runtime.migration_costs
            deserialize_cpu = checkpoint.state_bytes * costs.deserialize_s_per_byte
            if deserialize_cpu > 0:
                yield from replacement.cpu.run(deserialize_cpu, tag=slice_id)
            instance.handler.import_state(checkpoint.state)
            vector = dict(checkpoint.vector)
            self.runtime.restore_seq_counters(slice_id, checkpoint.seq_counters)

        # Replay the retained suffix of every inbound channel.  Replayed
        # events must be processed *before* any original events that were
        # buffered while the replacement was being set up: re-emissions
        # regenerate their original sequence numbers only if inputs are
        # reprocessed in their original per-source order.  The replay is
        # therefore spliced at the *front* of the inbox, and buffered
        # originals it covers (same source and sequence range — retention
        # recorded them too) are dropped as duplicates.
        replay_cutoffs: Dict[str, int] = {}
        replay_events = []
        replay_bytes_by_source: Dict[str, int] = {}
        retention = self.runtime.retention
        if retention is not None:
            for source, buffer in retention.channels_to(slice_id):
                events = buffer.suffix_after(vector.get(source, -1))
                if not events:
                    continue
                replay_cutoffs[source] = events[-1].seq
                replay_bytes_by_source[source] = sum(e.size_bytes for e in events)
                replay_events.extend(
                    dataclasses.replace(event, replayed=True) for event in events
                )

        # Charge the replay transfers (one bulk send per channel).
        transfers = []
        for source, size in replay_bytes_by_source.items():
            done = self.env.event()
            self.runtime.network.send(
                self.runtime._source_host_id(source),
                replacement.host_id,
                size,
                None,
                lambda _payload, _done=done: _done.succeed(),
            )
            transfers.append(done)
        for done in transfers:
            yield done

        surviving = [
            event
            for event in instance.inbox.items
            if event.seq > replay_cutoffs.get(event.source, -1)
        ]
        instance.inbox.items.clear()
        instance.inbox.items.extend(replay_events + surviving)

        instance.recovering = True
        instance.activate(vector)
        if replay_cutoffs:
            yield instance.wait_until_processed(replay_cutoffs)
        instance.recovering = False
        replayed = len(replay_events)

        report = RecoveryReport(
            slice_id=slice_id,
            replacement_host=replacement.host_id,
            restored_epoch=checkpoint.epoch if checkpoint else None,
            replayed_events=replayed,
            started_at=started_at,
            completed_at=self.env.now,
        )
        self.recovery_reports.append(report)
        if span is not None:
            tracer.finish_span(
                span,
                replayed_events=replayed,
                restored_epoch=report.restored_epoch,
            )
        return report

    # -- partition healing ---------------------------------------------------------

    def replay_missing(self, slice_ids: Optional[List[str]] = None):
        """Re-deliver retained suffixes after a network partition heals.

        A partition on the raw fabric (transport passthrough) silently
        drops in-flight messages, leaving per-channel sequence gaps that
        ``last_received`` — a high-water mark — cannot locate once
        post-heal traffic has advanced it.  Rather than track gaps, the
        coordinator replays *every* retained event of every inbound
        channel (``replayed=True``) and relies on receive-side duplicate
        suppression: channels with ``replay_dedup`` drop re-deliveries
        inside their dedup range, and the content-idempotent pub/sub
        operators let the hub's pub-id dedup suppress duplicate
        notifications (see RESILIENCE.md §non-goals for the limits).

        Retention is pruned at each checkpoint, so the replay volume is
        bounded by one checkpoint interval of traffic per channel.

        Returns the coordinating process (value: events re-delivered).
        """
        return self.env.process(self._replay_missing(slice_ids))

    def _replay_missing(self, slice_ids: Optional[List[str]]):
        retention = self.runtime.retention
        if retention is None:
            return 0
        if slice_ids is None:
            slice_ids = list(self.runtime.slices)
        tracer = self._tracer
        span = None
        if tracer is not None:
            span = tracer.start_span("recovery.replay", slices=len(slice_ids))
        redelivered = 0
        for slice_id in slice_ids:
            logical = self.runtime.slices.get(slice_id)
            if logical is None:
                continue
            for instance in logical.instances():
                if instance is None:
                    continue
                for source, buffer in retention.channels_to(slice_id):
                    events = buffer.suffix_after(-1)
                    if not events:
                        continue
                    src_host = self.runtime._source_host_id(source)
                    if self.runtime.network.is_partitioned(
                        src_host, instance.host.host_id
                    ):
                        continue  # still cut off; replay again after heal
                    size = sum(e.size_bytes for e in events)
                    done = self.env.event()
                    self.runtime.network.send(
                        src_host,
                        instance.host.host_id,
                        size,
                        None,
                        lambda _payload, _done=done: _done.succeed(),
                    )
                    yield done
                    for event in events:
                        instance.deliver(
                            dataclasses.replace(event, replayed=True)
                        )
                    redelivered += len(events)
        if span is not None:
            tracer.finish_span(span, redelivered=redelivered)
        return redelivered
