"""The engine runtime: operators, logical slices, routing, placement.

The runtime owns the operator DAG.  Operators have a *fixed* number of
logical slices (static partitioning, paper §IV): elasticity moves slices
between hosts but never changes their count, so the application never has
to split or merge state.

Routing follows the paper's two primitives: modulo hashing of a key onto
the destination operator's slices, or broadcast to all of them.  Sequence
numbers are assigned per (source, destination logical slice) channel at
emission time, and during a migration each event is transparently
duplicated to the destination instance.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from ..cluster import Host, Network
from ..sim import Environment
from .event import StreamEvent
from .handler import BROADCAST, SliceHandler

__all__ = ["EngineRuntime", "MigrationCosts", "OperatorInfo", "LogicalSlice"]


@dataclass(frozen=True)
class MigrationCosts:
    """Fixed costs of the migration protocol (see CostModel calibration).

    ``pre_s`` covers creating the destination instance and rewiring the DAG
    through the shared configuration; ``post_s`` covers the final
    configuration update and tear-down; the per-byte costs model state
    (de)serialization CPU on the origin/destination hosts.
    """

    pre_s: float = 0.11
    post_s: float = 0.11
    serialize_s_per_byte: float = 4.9e-9
    deserialize_s_per_byte: float = 4.9e-9


@dataclass
class OperatorInfo:
    """Static description of one operator."""

    name: str
    slice_count: int
    handler_factory: Callable[[int], SliceHandler]
    parallelism: int
    #: Receive-side deduplication of crash-replayed events by sequence
    #: range.  Operators whose handlers are content-idempotent (they
    #: tolerate duplicate deliveries semantically, like the pub/sub EP
    #: join) disable it, sidestepping the multi-channel sequence
    #: realignment caveat (see recovery.py).
    replay_dedup: bool = True


class LogicalSlice:
    """A logical slice: stable identity, one active (+ one pending) instance."""

    def __init__(self, operator: str, index: int):
        self.operator = operator
        self.index = index
        self.id = f"{operator}:{index}"
        self.active = None  # type: Optional[object]
        self.pending = None  # type: Optional[object]

    def instances(self):
        if self.pending is not None:
            return (self.active, self.pending)
        return (self.active,)


class EngineRuntime:
    """Deploys operators onto hosts and routes events between slices."""

    def __init__(
        self,
        env: Environment,
        network: Network,
        migration_costs: MigrationCosts = MigrationCosts(),
        transport_config=None,
    ):
        from ..transport import Transport

        self.env = env
        self.network = network
        #: Flow-controlled event-plane transport over the fabric; a pure
        #: passthrough with the default configuration.  ``None`` config
        #: reads the ``REPRO_NET_*`` environment, so existing deployments
        #: flip to adaptive flush / backpressure without code changes.
        self.transport = Transport(env, network, transport_config)
        self.migration_costs = migration_costs
        self.operators: Dict[str, OperatorInfo] = {}
        self.slices: Dict[str, LogicalSlice] = {}
        #: Sequence counters per (source key, destination logical slice id),
        #: indexed both ways so migration cutoffs (per destination) and
        #: recovery checkpoints (per source) read only their own channels
        #: instead of scanning every channel in the system.
        self._next_seq_by_src: Dict[str, Dict[str, int]] = {}
        self._next_seq_by_dst: Dict[str, Dict[str, int]] = {}
        self.migrations_completed = 0
        self.shard_ops_completed = 0
        self.migrations_aborted = 0
        self.shard_ops_aborted = 0
        #: Upstream retention for crash recovery; None unless enabled.
        self.retention = None
        #: Dead-letter queue for events whose destination slice is gone
        #: and unrecoverable (``None`` = strict mode: routing to an
        #: undeployed slice raises, the seed behaviour).
        self.dead_letters = None
        #: ``listener(slice_id, protocol, phase)`` callbacks fired at the
        #: start of every migration/reshard phase — the hook chaos plans
        #: use to crash a manager at a chosen protocol point.
        self.migration_phase_listeners: List[Callable[[str, str, str], None]] = []
        #: Observability bundle (:class:`repro.telemetry.Telemetry`), or
        #: ``None``.  Hot paths test the pre-resolved fields below so the
        #: unbound cost is a single ``is None`` check.
        self.telemetry = None
        self._routed_fam = None

    # -- observability -----------------------------------------------------------

    def bind_telemetry(self, telemetry) -> None:
        """Attach a :class:`repro.telemetry.Telemetry` bundle.

        Binding is idempotent and may happen before or after deployment.
        A disabled bundle binds too — its instruments are ``None`` and
        its tracer is the shared no-op, so the hot paths stay free.
        """
        self.telemetry = telemetry
        self._routed_fam = telemetry.events_routed if telemetry is not None else None
        self.transport.bind_telemetry(telemetry)

    # -- topology construction ---------------------------------------------------

    def add_operator(
        self,
        name: str,
        slice_count: int,
        handler_factory: Callable[[int], SliceHandler],
        parallelism: int = 8,
        replay_dedup: bool = True,
    ) -> None:
        """Declare an operator with a fixed number of logical slices."""
        if name in self.operators:
            raise ValueError(f"operator {name!r} already declared")
        if slice_count <= 0:
            raise ValueError("slice_count must be positive")
        self.operators[name] = OperatorInfo(
            name, slice_count, handler_factory, parallelism, replay_dedup
        )
        for index in range(slice_count):
            logical = LogicalSlice(name, index)
            self.slices[logical.id] = logical

    def deploy(self, slice_id: str, host: Host) -> None:
        """Place the (not yet deployed) logical slice on ``host``."""
        from .instance import SliceInstance

        logical = self._logical(slice_id)
        if logical.active is not None:
            raise RuntimeError(f"slice {slice_id} is already deployed; migrate instead")
        info = self.operators[logical.operator]
        handler = info.handler_factory(logical.index)
        logical.active = SliceInstance(
            self, slice_id, handler, host, parallelism=info.parallelism
        )

    def deploy_operator(self, name: str, hosts: List[Host]) -> None:
        """Round-robin all slices of ``name`` over ``hosts``."""
        if not hosts:
            raise ValueError("need at least one host")
        info = self.operators[name]
        for index in range(info.slice_count):
            self.deploy(f"{name}:{index}", hosts[index % len(hosts)])

    # -- introspection ------------------------------------------------------------

    def slice_count(self, operator: str) -> int:
        return self.operators[operator].slice_count

    def slice_ids(self, operator: Optional[str] = None) -> List[str]:
        if operator is None:
            return list(self.slices)
        info = self.operators[operator]
        return [f"{operator}:{i}" for i in range(info.slice_count)]

    def host_of(self, slice_id: str) -> Host:
        return self._active(slice_id).host

    def handler_of(self, slice_id: str) -> SliceHandler:
        return self._active(slice_id).handler

    def placement(self) -> Dict[str, str]:
        """slice id → host id for every deployed slice."""
        return {
            sid: logical.active.host.host_id
            for sid, logical in self.slices.items()
            if logical.active is not None
        }

    def slice_stats(self, slice_id: str) -> Dict[str, Any]:
        instance = self._active(slice_id)
        shard_count = getattr(instance.handler, "shard_count", None)
        return {
            "host": instance.host.host_id,
            "queue_length": instance.queue_length,
            "processed": instance.processed_count,
            "state_bytes": instance.handler.state_size_bytes(),
            "migrating": self._logical(slice_id).pending is not None,
            "shards": shard_count() if callable(shard_count) else 0,
        }

    # -- routing --------------------------------------------------------------------

    def route(
        self,
        source_key: str,
        operator: str,
        kind: str,
        payload: Any,
        size_bytes: int,
        key: Any,
    ) -> None:
        """Deliver an event to ``operator`` by modulo hash or broadcast.

        ``source_key`` is the logical id of the emitting slice, or any
        stable name for an external producer.
        """
        info = self.operators.get(operator)
        if info is None:
            raise KeyError(f"unknown operator {operator!r}")
        if key is BROADCAST:
            indices = range(info.slice_count)
        else:
            indices = (int(key) % info.slice_count,)
        src_host = self._source_host_id(source_key)
        now = self.env.now
        replayed = self._replaying(source_key)
        routed_fam = self._routed_fam
        if routed_fam is not None:
            routed_fam.labels(operator=operator).inc(len(indices))
        for index in indices:
            logical = self.slices[f"{operator}:{index}"]
            if logical.active is None and self.dead_letters is None:
                raise RuntimeError(f"slice {logical.id} is not deployed")
            by_dst = self._next_seq_by_src.setdefault(source_key, {})
            seq = by_dst.get(logical.id, 0)
            by_dst[logical.id] = seq + 1
            self._next_seq_by_dst.setdefault(logical.id, {})[source_key] = seq + 1
            event = StreamEvent(kind, payload, source_key, seq, size_bytes, now, replayed)
            if self.retention is not None:
                self.retention.record(source_key, logical.id, event)
            if logical.active is None:
                self.dead_letters.push(logical.id, [event], "undeployed")
                continue
            for instance in logical.instances():
                self.transport.send(source_key, src_host, instance, event)

    def route_batch(
        self,
        source_key: str,
        emissions: Sequence[Tuple[str, str, Any, int, Any]],
    ) -> None:
        """Route a batch of emissions, one transfer per destination group.

        ``emissions`` is a sequence of ``(operator, kind, payload,
        size_bytes, key)`` tuples in emission order (``key`` may be
        ``BROADCAST``).  Semantically equivalent to calling :meth:`route`
        once per tuple — identical destinations, sequence numbers,
        retention records and migration duplication — except that all
        events of the batch headed for the same destination logical slice
        travel as *one* simulated transfer (one latency charge, summed
        bandwidth cost; see ``Network.send_batch``), the per-sender
        channel micro-batching the paper's engine uses for throughput.
        Per-(source, destination) FIFO order is preserved: events of a
        group arrive in emission order, and the shared NIC watermark
        orders the groups themselves.
        """
        if not emissions:
            return
        src_host = self._source_host_id(source_key)
        now = self.env.now
        replayed = self._replaying(source_key)
        by_dst = self._next_seq_by_src.setdefault(source_key, {})
        groups: Dict[str, List[StreamEvent]] = {}
        for operator, kind, payload, size_bytes, key in emissions:
            info = self.operators.get(operator)
            if info is None:
                raise KeyError(f"unknown operator {operator!r}")
            if key is BROADCAST:
                indices = range(info.slice_count)
            else:
                indices = (int(key) % info.slice_count,)
            for index in indices:
                logical = self.slices[f"{operator}:{index}"]
                if logical.active is None and self.dead_letters is None:
                    raise RuntimeError(f"slice {logical.id} is not deployed")
                seq = by_dst.get(logical.id, 0)
                by_dst[logical.id] = seq + 1
                event = StreamEvent(
                    kind, payload, source_key, seq, size_bytes, now, replayed
                )
                if self.retention is not None:
                    self.retention.record(source_key, logical.id, event)
                groups.setdefault(logical.id, []).append(event)
        routed_fam = self._routed_fam
        for dest_id, events in groups.items():
            self._next_seq_by_dst.setdefault(dest_id, {})[source_key] = by_dst[dest_id]
            logical = self.slices[dest_id]
            if routed_fam is not None:
                routed_fam.labels(
                    operator=dest_id.split(":", 1)[0]
                ).inc(len(events))
            if logical.active is None:
                self.dead_letters.push(dest_id, events, "undeployed")
                continue
            for instance in logical.instances():
                self.transport.send_many(source_key, src_host, instance, events)

    def inject(
        self,
        source_key: str,
        operator: str,
        kind: str,
        payload: Any,
        size_bytes: int,
        key: Any,
    ) -> None:
        """External injection (clients); same routing surface as slices."""
        self.route(source_key, operator, kind, payload, size_bytes, key)

    def sent_cutoffs(self, slice_id: str) -> Dict[str, int]:
        """Last sequence number sent to ``slice_id`` per source, so far."""
        return {
            source: next_seq - 1
            for source, next_seq in self._next_seq_by_dst.get(slice_id, {}).items()
        }

    # -- crash-recovery support ----------------------------------------------

    def enable_retention(self) -> None:
        """Start retaining sent events for replay (passive replication)."""
        from .retention import RetentionLog

        if self.retention is None:
            self.retention = RetentionLog()

    def enable_dead_letters(self):
        """Park events for unrecoverable destinations instead of raising.

        Returns the :class:`~repro.engine.recovery.DeadLetterQueue`
        (idempotent) that :meth:`route`/:meth:`route_batch` feed when a
        destination slice has no active instance — the terminal shed
        point when recovery cannot find a replacement host.
        """
        from .recovery import DeadLetterQueue

        if self.dead_letters is None:
            self.dead_letters = DeadLetterQueue(self.env, self.telemetry)
        return self.dead_letters

    def _notify_migration_phase(self, slice_id: str, protocol: str, phase: str) -> None:
        for listener in list(self.migration_phase_listeners):
            listener(slice_id, protocol, phase)

    def seq_counters_from(self, slice_id: str) -> Dict[str, int]:
        """Outgoing sequence counters of ``slice_id`` (checkpointed so a
        recovered instance regenerates identical sequence numbers)."""
        return dict(self._next_seq_by_src.get(slice_id, {}))

    def restore_seq_counters(self, slice_id: str, counters: Dict[str, int]) -> None:
        """Reset ``slice_id``'s outgoing counters to a checkpointed value."""
        for dst in self._next_seq_by_src.get(slice_id, {}):
            self._next_seq_by_dst[dst].pop(slice_id, None)
        self._next_seq_by_src[slice_id] = dict(counters)
        for dst, next_seq in counters.items():
            self._next_seq_by_dst.setdefault(dst, {})[slice_id] = next_seq

    # -- migration --------------------------------------------------------------------

    def migrate(self, slice_id: str, dest_host: Host):
        """Start a live migration; returns the coordinating process.

        The process's value is a :class:`~repro.engine.migration.
        MigrationReport`.
        """
        from .migration import migrate_slice

        return self.env.process(migrate_slice(self, slice_id, dest_host))

    def reshard(
        self,
        slice_id: str,
        op: str,
        shard_index: Optional[int] = None,
        pivot_key: Optional[int] = None,
    ):
        """Start a same-host shard split/merge; returns the process.

        The process's value is a :class:`~repro.engine.migration.
        ShardOpReport`.
        """
        from .migration import reshard_slice

        return self.env.process(
            reshard_slice(
                self, slice_id, op, shard_index=shard_index, pivot_key=pivot_key
            )
        )

    # -- internals ----------------------------------------------------------------------

    def _logical(self, slice_id: str) -> LogicalSlice:
        logical = self.slices.get(slice_id)
        if logical is None:
            raise KeyError(f"unknown slice {slice_id!r}")
        return logical

    def _active(self, slice_id: str):
        logical = self._logical(slice_id)
        if logical.active is None:
            raise RuntimeError(f"slice {slice_id} is not deployed")
        return logical.active

    def _source_host_id(self, source_key: str) -> str:
        logical = self.slices.get(source_key)
        if logical is not None and logical.active is not None:
            return logical.active.host.host_id
        return f"ext:{source_key}"

    def _replaying(self, source_key: str) -> bool:
        # A recovering source regenerates emissions it already made before
        # the crash; flag them so receivers deduplicate (see recovery.py).
        logical = self.slices.get(source_key)
        return bool(
            logical is not None
            and logical.active is not None
            and logical.active.recovering
        )
