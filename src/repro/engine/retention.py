"""Upstream event retention for crash recovery (passive replication).

In the passive scheme, every sender keeps the events it sent on each
channel until the *receiver* has covered them with a checkpoint; after a
crash, the replacement instance is restored from the last checkpoint and
the retained suffix of every inbound channel is replayed to it.  Combined
with the per-channel sequence numbers and receive-side deduplication this
restores exactly-once processing across host crashes.

Retention is opt-in (``EngineRuntime.enable_retention()``): the paper's
elasticity experiments run without replication, and unbounded buffers
would otherwise grow for channels whose receiver never checkpoints.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Tuple

from .event import StreamEvent

__all__ = ["RetentionBuffer", "RetentionLog"]


class RetentionBuffer:
    """Retained events of one channel, ordered by sequence number."""

    def __init__(self) -> None:
        self._events: Deque[StreamEvent] = deque()

    def append(self, event: StreamEvent) -> None:
        """Retain ``event``; re-emissions of already retained sequence
        numbers (deterministic regeneration during recovery) are skipped."""
        if self._events and event.seq <= self._events[-1].seq:
            return
        self._events.append(event)

    def prune_through(self, seq: int) -> int:
        """Drop events with sequence numbers ≤ ``seq``; returns the count."""
        dropped = 0
        while self._events and self._events[0].seq <= seq:
            self._events.popleft()
            dropped += 1
        return dropped

    def suffix_after(self, seq: int) -> List[StreamEvent]:
        """Retained events with sequence numbers > ``seq``, in order."""
        return [e for e in self._events if e.seq > seq]

    def __len__(self) -> int:
        return len(self._events)

    @property
    def bytes_retained(self) -> int:
        return sum(e.size_bytes for e in self._events)

    @property
    def highest_seq(self) -> int:
        return self._events[-1].seq if self._events else -1


class RetentionLog:
    """All channels' retention buffers, keyed by (source, destination)."""

    def __init__(self) -> None:
        self._buffers: Dict[Tuple[str, str], RetentionBuffer] = {}

    def record(self, source: str, destination: str, event: StreamEvent) -> None:
        key = (source, destination)
        buffer = self._buffers.get(key)
        if buffer is None:
            buffer = self._buffers[key] = RetentionBuffer()
        buffer.append(event)

    def prune_for_destination(self, destination: str, vector: Dict[str, int]) -> int:
        """Apply a checkpoint vector of ``destination``; returns pruned count."""
        dropped = 0
        for (source, dst), buffer in self._buffers.items():
            if dst == destination and source in vector:
                dropped += buffer.prune_through(vector[source])
        return dropped

    def channels_to(self, destination: str) -> List[Tuple[str, RetentionBuffer]]:
        """(source, buffer) of every channel into ``destination``."""
        return [
            (source, buffer)
            for (source, dst), buffer in self._buffers.items()
            if dst == destination
        ]

    def total_events(self) -> int:
        return sum(len(b) for b in self._buffers.values())

    def total_bytes(self) -> int:
        return sum(b.bytes_retained for b in self._buffers.values())
