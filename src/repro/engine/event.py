"""Stream events flowing between operator slices.

Every event carries the identity of the *logical* slice (or external
source) that emitted it together with a per-(source, destination) sequence
number.  Sequence numbers are the backbone of the migration protocol: the
destination slice of a migration buffers duplicated events per source and
the copied state is tagged with the vector of last-processed sequence
numbers, letting the new instance discard obsolete events and preventing
duplicate processing (paper §IV-A).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

__all__ = ["StreamEvent"]


@dataclass(frozen=True, slots=True)
class StreamEvent:
    """One message on a slice-to-slice channel."""

    #: Application-level type tag (e.g. "publication", "subscription").
    kind: str
    #: Application payload (opaque to the engine).
    payload: Any
    #: Logical id of the sender ("AP:0", "source:2", "external").
    source: str
    #: Per (source, destination logical slice) sequence number, from 0.
    seq: int
    #: Wire size used for network accounting.
    size_bytes: int
    #: Simulated send time.
    sent_at: float
    #: True when re-delivered during crash recovery (enables receive-side
    #: deduplication against the per-channel received watermark).
    replayed: bool = False

    def __repr__(self) -> str:
        flag = " replayed" if self.replayed else ""
        return f"<{self.kind} #{self.seq} from {self.source}{flag}>"
