"""StreamMine3G-like stream-processing runtime with live slice migration.

Operators with a fixed number of logical slices are deployed over
simulated hosts; events are routed by modulo hashing or broadcast with
per-channel sequence numbers; slices can be migrated live between hosts
with minimal service interruption (paper §IV).
"""

from .event import StreamEvent
from .handler import BROADCAST, SliceContext, SliceHandler
from .instance import SliceInstance
from .locks import RWLock
from .migration import (
    MigrationError,
    MigrationReport,
    ShardOpReport,
    migrate_slice,
    reshard_slice,
)
from .runtime import EngineRuntime, LogicalSlice, MigrationCosts, OperatorInfo
from .retention import RetentionBuffer, RetentionLog
from .checkpoint import Checkpoint, CheckpointStore, MANAGER_STATE_KEY
from .recovery import DeadLetterQueue, RecoveryReport, ReliabilityCoordinator

__all__ = [
    "BROADCAST",
    "Checkpoint",
    "CheckpointStore",
    "DeadLetterQueue",
    "MANAGER_STATE_KEY",
    "EngineRuntime",
    "LogicalSlice",
    "MigrationCosts",
    "MigrationError",
    "MigrationReport",
    "OperatorInfo",
    "RWLock",
    "RecoveryReport",
    "ReliabilityCoordinator",
    "RetentionBuffer",
    "RetentionLog",
    "ShardOpReport",
    "SliceContext",
    "SliceHandler",
    "SliceInstance",
    "StreamEvent",
    "migrate_slice",
    "reshard_slice",
]
