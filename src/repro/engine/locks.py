"""Reader/writer lock guarding slice state.

StreamMine3G lets multiple threads of the per-host pool process events of
one slice concurrently when the processing is stateless or read-only; a
read/write lock serializes state-mutating events (paper §III).  Matching a
publication takes the lock in R mode, storing a subscription in W mode.

Grants are FIFO-fair: a waiting writer blocks later readers, preventing
writer starvation under continuous publication flow.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Tuple

from ..sim import Environment, Event

__all__ = ["RWLock"]


class RWLock:
    """FIFO-fair reader/writer lock built on simulation events."""

    def __init__(self, env: Environment):
        self.env = env
        self._readers = 0
        self._writer = False
        self._waiting: Deque[Tuple[str, Event]] = deque()

    @property
    def idle(self) -> bool:
        return self._readers == 0 and not self._writer and not self._waiting

    def try_acquire(self, mode: str) -> bool:
        """Fast path: take the lock immediately if possible (no sim events)."""
        if mode == "R":
            if not self._writer and not self._waiting:
                self._readers += 1
                return True
            return False
        if mode == "W":
            if not self._writer and self._readers == 0 and not self._waiting:
                self._writer = True
                return True
            return False
        raise ValueError(f"unknown lock mode {mode!r}")

    def acquire(self, mode: str) -> Event:
        """Slow path: returns an event that fires when the lock is granted."""
        if mode not in ("R", "W"):
            raise ValueError(f"unknown lock mode {mode!r}")
        event = Event(self.env)
        self._waiting.append((mode, event))
        self._grant()
        return event

    def release(self, mode: str) -> None:
        if mode == "R":
            if self._readers <= 0:
                raise RuntimeError("release of a reader lock that is not held")
            self._readers -= 1
        elif mode == "W":
            if not self._writer:
                raise RuntimeError("release of a writer lock that is not held")
            self._writer = False
        else:
            raise ValueError(f"unknown lock mode {mode!r}")
        self._grant()

    def _grant(self) -> None:
        while self._waiting:
            mode, event = self._waiting[0]
            if mode == "R":
                if self._writer:
                    return
                self._waiting.popleft()
                self._readers += 1
                event.succeed()
            else:
                if self._writer or self._readers > 0:
                    return
                self._waiting.popleft()
                self._writer = True
                event.succeed()
                return
