"""Live migration of an operator slice (paper §IV-A, Figure 3).

The protocol minimizes service interruption through slice duplication and
in-memory buffering of duplicated events:

1. The slice runs on the origin host.
2. A new, inactive instance is created on the destination host and the
   DAG is rewired so every incoming event is *duplicated* to it, where it
   is queued (one logical queue per originating slice, realized by the
   per-source sequence numbers on the shared inbox).
3. Once the destination queues are guaranteed to contain every event the
   origin has not yet processed (per-source sequence cutoffs taken at
   duplication start have been processed), processing stops on the origin.
4. The state — tagged with the origin's per-source timestamp vector — is
   serialized, transferred and installed; the new instance resumes,
   filtering obsolete events (seq ≤ vector) to prevent duplicate
   processing.
5. The origin instance is removed.

Stateless slices (AP) skip the copy phase entirely, hence their much lower
migration time (paper Table I).

When the runtime carries a :class:`repro.telemetry.Telemetry` bundle, the
coordinator emits one ``migration`` root span plus five contiguous phase
spans — ``migration.pre`` (destination creation and DAG rewiring),
``migration.sync`` (drain to the duplication cutoffs), ``migration.pause``
(origin halt to quiescence), ``migration.copy`` (serialize, transfer,
deserialize, resume) and ``migration.post`` (final configuration update).
The phases tile ``[started_at, completed_at]`` exactly, so their durations
sum to :attr:`MigrationReport.duration_s`, and the pause + copy phases
together equal :attr:`MigrationReport.interruption_s` — the Fig. 7 signal,
now visible per migration instead of only in aggregate.

:func:`reshard_slice` runs the same five-phase protocol for a *same-host*
reorganization: a key-range shard split or merge inside a slice whose
handler supports runtime resharding (see
:class:`~repro.filtering.ShardedAspeLibrary`).  The state is adopted by
reference — same process, same host — so the copy phase charges CPU only
for the rows the shard operation physically rewrites (zero for merges
and boundary-aligned splits) instead of serializing the whole partition.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..cluster import Host
from ..sim import Interrupt

__all__ = [
    "MigrationReport",
    "MigrationError",
    "ShardOpReport",
    "migrate_slice",
    "reshard_slice",
]


class MigrationError(RuntimeError):
    """A migration could not be performed.

    Raised synchronously by :func:`migrate_slice` for invalid requests:
    unknown or undeployed slices, a slice already migrating, a
    destination equal to the origin, or a destination host that has been
    released back to the provider.  Also raised *asynchronously* (the
    coordinating process fails with it) when an in-flight operation is
    interrupted — by a watchdog timeout or a crashing manager — and rolls
    back.
    """


def _undo_shard_op(handler, op: str, result) -> None:
    """Apply the inverse shard operation after an aborted reshard.

    The reshard "copy" adopts the origin's library by reference, so a
    split/merge that already ran has mutated state the origin will keep
    using after the rollback.  Reversing it (split ↔ merge at the same
    boundary) makes the rollback exact; if the inverse is not applicable
    (concurrent structural change) the slice keeps the applied op, which
    is semantically harmless — sharding never changes match results.
    """
    try:
        if op == "split":
            handler.reshard("merge", shard_index=result.shard_index)
        else:
            handler.reshard(
                "split",
                shard_index=result.shard_index,
                pivot_key=result.pivot_key,
            )
    except Exception:
        pass


def _rollback(runtime, logical, origin, destination, halted: bool) -> None:
    """Undo a partially executed migration/reshard after an interrupt.

    Reached only before the activation point (activation → origin
    destruction → completion happen in one synchronous block, which an
    interrupt cannot split).  The origin is still the active instance and
    received every event the destination did, so dropping the buffering
    destination loses nothing; a halted origin additionally gets its
    dequeued-but-dropped events spliced back and its workers woken
    (:meth:`SliceInstance.resume`).
    """
    if destination is not None:
        logical.pending = None
        destination.destroy()
    if halted:
        origin.resume()


@dataclass(frozen=True)
class MigrationReport:
    """Outcome of one completed slice migration.

    Returned as the value of the coordinating process started by
    :meth:`~repro.engine.runtime.EngineRuntime.migrate`; the manager
    collects these into its migration log and the Table I experiment
    aggregates their durations.
    """

    #: Logical id of the migrated slice (e.g. ``"M:3"``).
    slice_id: str
    #: Host the slice left.
    source_host: str
    #: Host the slice now runs on.
    destination_host: str
    #: Simulated time the coordinator started (phase 2 begins).
    started_at: float
    #: Simulated time the final configuration update finished.
    completed_at: float
    #: Serialized state size transferred (0 for stateless slices).
    state_bytes: int
    #: Duration of the stop-copy-resume window (actual interruption).
    interruption_s: float

    @property
    def duration_s(self) -> float:
        """Wall-to-wall migration time (``completed_at - started_at``)."""
        return self.completed_at - self.started_at


def migrate_slice(runtime, slice_id: str, dest_host: Host):
    """Coordinator process generator for one slice migration.

    Drive it with :meth:`EngineRuntime.migrate` (which wraps it in a
    simulation process); the process's value is a
    :class:`MigrationReport`.  The generator yields at every simulated
    wait of the §IV-A protocol: the fixed pre/post configuration
    overheads, the drain to the duplication cutoffs, origin quiescence,
    and the serialize/transfer/deserialize of the state copy.
    """
    from .instance import SliceInstance

    env = runtime.env
    costs = runtime.migration_costs
    logical = runtime.slices.get(slice_id)
    if logical is None:
        raise MigrationError(f"unknown slice {slice_id!r}")
    if logical.active is None:
        raise MigrationError(f"slice {slice_id} is not deployed")
    if logical.pending is not None:
        raise MigrationError(f"slice {slice_id} is already migrating")
    origin = logical.active
    if origin.host is dest_host:
        raise MigrationError(f"slice {slice_id} is already on {dest_host.host_id}")
    if dest_host.released:
        raise MigrationError(f"destination {dest_host.host_id} has been released")

    started_at = env.now
    info = runtime.operators[logical.operator]
    telemetry = runtime.telemetry
    tracer = telemetry.tracer if telemetry is not None else None
    root = phase = None
    if tracer is not None and tracer.enabled:
        root = tracer.start_span(
            "migration",
            slice=slice_id,
            from_host=origin.host.host_id,
            to_host=dest_host.host_id,
        )
        phase = tracer.start_span("migration.pre", parent=root)

    destination = None
    halted = activated = False
    try:
        # (2) Create the inactive destination instance and rewire the DAG
        # to duplicate incoming events.  The fixed pre-overhead models the
        # round-trips through the shared configuration service.
        runtime._notify_migration_phase(slice_id, "migration", "pre")
        yield env.timeout(costs.pre_s)
        destination = SliceInstance(
            runtime,
            slice_id,
            info.handler_factory(logical.index),
            dest_host,
            parallelism=info.parallelism,
            buffering=True,
        )
        logical.pending = destination
        cutoffs = runtime.sent_cutoffs(slice_id)
        if phase is not None:
            tracer.finish_span(phase)
            phase = tracer.start_span("migration.sync", parent=root)

        # (3) Wait until the origin processed everything sent before
        # duplication, then stop it and wait for in-flight work to finish.
        runtime._notify_migration_phase(slice_id, "migration", "sync")
        yield origin.wait_until_processed(cutoffs)
        interruption_start = env.now
        if phase is not None:
            tracer.finish_span(phase)
            phase = tracer.start_span("migration.pause", parent=root)
        runtime._notify_migration_phase(slice_id, "migration", "pause")
        halted = True
        yield origin.halt()
        if phase is not None:
            tracer.finish_span(phase)
            phase = tracer.start_span("migration.copy", parent=root)

        # (4) Copy the state with its timestamp vector.
        runtime._notify_migration_phase(slice_id, "migration", "copy")
        vector = dict(origin.last_processed)
        state = origin.handler.export_state()
        state_bytes = origin.handler.state_size_bytes()
        if state_bytes > 0:
            serialize_cpu = state_bytes * costs.serialize_s_per_byte
            if serialize_cpu > 0:
                yield from origin.host.cpu.run(serialize_cpu, tag=slice_id)
            transferred = env.event()
            runtime.network.send(
                origin.host.host_id,
                dest_host.host_id,
                state_bytes,
                None,
                lambda _payload: transferred.succeed(),
            )
            yield transferred
            deserialize_cpu = state_bytes * costs.deserialize_s_per_byte
            if deserialize_cpu > 0:
                yield from dest_host.cpu.run(deserialize_cpu, tag=slice_id)
        destination.handler.import_state(state)

        # Resume on the destination; obsolete duplicated events are
        # filtered via the timestamp vector inside the worker loop.
        destination.activate(vector)
        logical.active = destination
        logical.pending = None
        origin.destroy()
        activated = True
        interruption_end = env.now
        if phase is not None:
            tracer.finish_span(phase, state_bytes=state_bytes)
            phase = tracer.start_span("migration.post", parent=root)

        # (5) Final configuration update.
        runtime._notify_migration_phase(slice_id, "migration", "post")
        yield env.timeout(costs.post_s)
    except Interrupt as interrupt:
        if not activated:
            # The origin is still authoritative: drop the buffering twin,
            # splice back what the halt dropped, and fail the process so
            # the operation's waiter (manager, watchdog arm) sees the
            # abort.  Phase spans close at the abort instant, so they
            # still tile [started_at, now].
            _rollback(runtime, logical, origin, destination, halted)
            runtime.migrations_aborted += 1
            if phase is not None:
                tracer.finish_span(phase, outcome="aborted")
                tracer.finish_span(
                    root, outcome="aborted", resolution="rolled_back",
                    duration_s=env.now - started_at,
                )
            raise MigrationError(
                f"migration of {slice_id} aborted "
                f"({interrupt.cause}): rolled back to "
                f"{origin.host.host_id}"
            ) from None
        # Interrupted in the post phase: the destination is already live
        # and the origin destroyed — roll forward, reporting completion
        # at the abort instant (only the config-update tail was cut).
        if phase is not None:
            tracer.finish_span(phase, outcome="aborted")
            phase = None
            root.attrs["outcome"] = "aborted"
            root.attrs["resolution"] = "completed"
    runtime.migrations_completed += 1
    report = MigrationReport(
        slice_id=slice_id,
        source_host=origin.host.host_id,
        destination_host=dest_host.host_id,
        started_at=started_at,
        completed_at=env.now,
        state_bytes=state_bytes,
        interruption_s=interruption_end - interruption_start,
    )
    if root is not None:
        if phase is not None:
            tracer.finish_span(phase)
        tracer.finish_span(
            root,
            state_bytes=state_bytes,
            interruption_s=report.interruption_s,
            duration_s=report.duration_s,
        )
    if telemetry is not None and telemetry.migrations is not None:
        telemetry.migrations.inc()
        telemetry.migration_state_bytes.inc(state_bytes)
        telemetry.migration_duration.observe(report.duration_s)
        telemetry.migration_interruption.observe(report.interruption_s)
    return report


@dataclass(frozen=True)
class ShardOpReport:
    """Outcome of one completed runtime shard split or merge.

    Returned as the value of the coordinating process started by
    :meth:`~repro.engine.runtime.EngineRuntime.reshard`.
    """

    #: Logical id of the resharded slice (e.g. ``"M:3"``).
    slice_id: str
    #: ``"split"`` or ``"merge"``.
    op: str
    #: Host the slice runs on (resharding never changes placement).
    host: str
    #: Key the range was cut (split) or rejoined (merge) at.
    pivot_key: Optional[int]
    #: Shard count of the slice before/after the operation.
    shards_before: int
    shards_after: int
    #: Subscriptions whose shard assignment changed.
    moved_subscriptions: int
    #: Packed rows physically copied (0 for merges and boundary splits).
    rows_rewritten: int
    #: Bytes of those rows — the CPU-charged "state copy" of this protocol.
    state_bytes: int
    #: Simulated time the coordinator started / finished.
    started_at: float
    completed_at: float
    #: Duration of the stop-reshard-resume window (actual interruption).
    interruption_s: float

    @property
    def duration_s(self) -> float:
        """Wall-to-wall reshard time (``completed_at - started_at``)."""
        return self.completed_at - self.started_at


def reshard_slice(
    runtime,
    slice_id: str,
    op: str,
    shard_index: Optional[int] = None,
    pivot_key: Optional[int] = None,
):
    """Coordinator process generator for one same-host shard split/merge.

    Drive it with :meth:`EngineRuntime.reshard`; the process's value is a
    :class:`ShardOpReport`.  The protocol reuses the migration machinery
    (§IV-A) unchanged — duplicate-and-buffer, drain to cutoffs, halt,
    swap, resume with the timestamp vector — but the "copy" adopts the
    origin handler's state by reference on the same host, so the only
    state cost is the CPU for rows the shard operation rewrites.
    """
    from .instance import SliceInstance

    env = runtime.env
    costs = runtime.migration_costs
    if op not in ("split", "merge"):
        raise MigrationError(f"unknown shard operation {op!r}")
    logical = runtime.slices.get(slice_id)
    if logical is None:
        raise MigrationError(f"unknown slice {slice_id!r}")
    if logical.active is None:
        raise MigrationError(f"slice {slice_id} is not deployed")
    if logical.pending is not None:
        raise MigrationError(f"slice {slice_id} is already migrating")
    origin = logical.active
    handler = origin.handler
    if not getattr(handler, "can_reshard", lambda _op: False)(op):
        raise MigrationError(
            f"slice {slice_id} cannot {op}: handler does not support it "
            f"or the operation is not applicable right now"
        )

    started_at = env.now
    host = origin.host
    info = runtime.operators[logical.operator]
    telemetry = runtime.telemetry
    tracer = telemetry.tracer if telemetry is not None else None
    root = phase = None
    if tracer is not None and tracer.enabled:
        root = tracer.start_span(
            "reshard", slice=slice_id, op=op, host=host.host_id
        )
        phase = tracer.start_span("reshard.pre", parent=root)

    destination = None
    result = None
    halted = activated = False
    try:
        # (2) Same protocol as a migration: a buffering twin instance on
        # the *same* host receives duplicated events while the origin
        # drains.
        runtime._notify_migration_phase(slice_id, "reshard", "pre")
        yield env.timeout(costs.pre_s)
        destination = SliceInstance(
            runtime,
            slice_id,
            info.handler_factory(logical.index),
            host,
            parallelism=info.parallelism,
            buffering=True,
        )
        logical.pending = destination
        cutoffs = runtime.sent_cutoffs(slice_id)
        if phase is not None:
            tracer.finish_span(phase)
            phase = tracer.start_span("reshard.sync", parent=root)

        # (3) Drain to the duplication cutoffs, then quiesce the origin.
        runtime._notify_migration_phase(slice_id, "reshard", "sync")
        yield origin.wait_until_processed(cutoffs)
        interruption_start = env.now
        if phase is not None:
            tracer.finish_span(phase)
            phase = tracer.start_span("reshard.pause", parent=root)
        runtime._notify_migration_phase(slice_id, "reshard", "pause")
        halted = True
        yield origin.halt()
        if phase is not None:
            tracer.finish_span(phase)
            phase = tracer.start_span("reshard.copy", parent=root)

        # (4) Adopt the state by reference and perform the shard
        # operation.  Only the physically rewritten rows cost CPU — a
        # merge or a boundary-aligned split swaps chunk ownership and
        # charges nothing.
        runtime._notify_migration_phase(slice_id, "reshard", "copy")
        vector = dict(origin.last_processed)
        destination.handler.adopt_from(handler)
        result = destination.handler.reshard(
            op, shard_index=shard_index, pivot_key=pivot_key
        )
        state_bytes = result.bytes_rewritten
        rework_cpu = state_bytes * (
            costs.serialize_s_per_byte + costs.deserialize_s_per_byte
        )
        if rework_cpu > 0:
            yield from host.cpu.run(rework_cpu, tag=slice_id)
        destination.activate(vector)
        logical.active = destination
        logical.pending = None
        origin.destroy()
        activated = True
        interruption_end = env.now
        if phase is not None:
            tracer.finish_span(phase, rows_rewritten=result.rows_rewritten)
            phase = tracer.start_span("reshard.post", parent=root)

        # (5) Final configuration update.
        runtime._notify_migration_phase(slice_id, "reshard", "post")
        yield env.timeout(costs.post_s)
    except Interrupt as interrupt:
        if not activated:
            if result is not None:
                # The shard op already mutated the library, which the
                # twin adopted *by reference* — the origin shares it.
                # Undo with the inverse op so "rolled back" is true of
                # the state, not just of the instance swap.
                _undo_shard_op(destination.handler, op, result)
            _rollback(runtime, logical, origin, destination, halted)
            runtime.shard_ops_aborted += 1
            if phase is not None:
                tracer.finish_span(phase, outcome="aborted")
                tracer.finish_span(
                    root, outcome="aborted", resolution="rolled_back",
                    duration_s=env.now - started_at,
                )
            raise MigrationError(
                f"{op} of {slice_id} aborted ({interrupt.cause}): "
                f"rolled back"
            ) from None
        if phase is not None:
            tracer.finish_span(phase, outcome="aborted")
            phase = None
            root.attrs["outcome"] = "aborted"
            root.attrs["resolution"] = "completed"
    runtime.shard_ops_completed += 1
    report = ShardOpReport(
        slice_id=slice_id,
        op=op,
        host=host.host_id,
        pivot_key=result.pivot_key,
        shards_before=result.shards_before,
        shards_after=result.shards_after,
        moved_subscriptions=result.moved_subscriptions,
        rows_rewritten=result.rows_rewritten,
        state_bytes=state_bytes,
        started_at=started_at,
        completed_at=env.now,
        interruption_s=interruption_end - interruption_start,
    )
    if root is not None:
        if phase is not None:
            tracer.finish_span(phase)
        tracer.finish_span(
            root,
            op=op,
            shards_after=report.shards_after,
            rows_rewritten=report.rows_rewritten,
            interruption_s=report.interruption_s,
            duration_s=report.duration_s,
        )
    if telemetry is not None and telemetry.shard_operations is not None:
        telemetry.shard_operations.labels(op=op).inc()
    return report
