"""Live migration of an operator slice (paper §IV-A, Figure 3).

The protocol minimizes service interruption through slice duplication and
in-memory buffering of duplicated events:

1. The slice runs on the origin host.
2. A new, inactive instance is created on the destination host and the
   DAG is rewired so every incoming event is *duplicated* to it, where it
   is queued (one logical queue per originating slice, realized by the
   per-source sequence numbers on the shared inbox).
3. Once the destination queues are guaranteed to contain every event the
   origin has not yet processed (per-source sequence cutoffs taken at
   duplication start have been processed), processing stops on the origin.
4. The state — tagged with the origin's per-source timestamp vector — is
   serialized, transferred and installed; the new instance resumes,
   filtering obsolete events (seq ≤ vector) to prevent duplicate
   processing.
5. The origin instance is removed.

Stateless slices (AP) skip the copy phase entirely, hence their much lower
migration time (paper Table I).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..cluster import Host

__all__ = ["MigrationReport", "MigrationError", "migrate_slice"]


class MigrationError(RuntimeError):
    """A migration could not be performed."""


@dataclass(frozen=True)
class MigrationReport:
    """Outcome of one completed slice migration."""

    slice_id: str
    source_host: str
    destination_host: str
    started_at: float
    completed_at: float
    state_bytes: int
    #: Duration of the stop-copy-resume window (actual interruption).
    interruption_s: float

    @property
    def duration_s(self) -> float:
        return self.completed_at - self.started_at


def migrate_slice(runtime, slice_id: str, dest_host: Host):
    """Coordinator process generator for one slice migration."""
    from .instance import SliceInstance

    env = runtime.env
    costs = runtime.migration_costs
    logical = runtime.slices.get(slice_id)
    if logical is None:
        raise MigrationError(f"unknown slice {slice_id!r}")
    if logical.active is None:
        raise MigrationError(f"slice {slice_id} is not deployed")
    if logical.pending is not None:
        raise MigrationError(f"slice {slice_id} is already migrating")
    origin = logical.active
    if origin.host is dest_host:
        raise MigrationError(f"slice {slice_id} is already on {dest_host.host_id}")
    if dest_host.released:
        raise MigrationError(f"destination {dest_host.host_id} has been released")

    started_at = env.now
    info = runtime.operators[logical.operator]

    # (2) Create the inactive destination instance and rewire the DAG to
    # duplicate incoming events.  The fixed pre-overhead models the
    # round-trips through the shared configuration service.
    yield env.timeout(costs.pre_s)
    destination = SliceInstance(
        runtime,
        slice_id,
        info.handler_factory(logical.index),
        dest_host,
        parallelism=info.parallelism,
        buffering=True,
    )
    logical.pending = destination
    cutoffs = runtime.sent_cutoffs(slice_id)

    # (3) Wait until the origin processed everything sent before
    # duplication, then stop it and wait for in-flight work to finish.
    yield origin.wait_until_processed(cutoffs)
    interruption_start = env.now
    yield origin.halt()

    # (4) Copy the state with its timestamp vector.
    vector = dict(origin.last_processed)
    state = origin.handler.export_state()
    state_bytes = origin.handler.state_size_bytes()
    if state_bytes > 0:
        serialize_cpu = state_bytes * costs.serialize_s_per_byte
        if serialize_cpu > 0:
            yield from origin.host.cpu.run(serialize_cpu, tag=slice_id)
        transferred = env.event()
        runtime.network.send(
            origin.host.host_id,
            dest_host.host_id,
            state_bytes,
            None,
            lambda _payload: transferred.succeed(),
        )
        yield transferred
        deserialize_cpu = state_bytes * costs.deserialize_s_per_byte
        if deserialize_cpu > 0:
            yield from dest_host.cpu.run(deserialize_cpu, tag=slice_id)
    destination.handler.import_state(state)

    # Resume on the destination; obsolete duplicated events are filtered
    # via the timestamp vector inside the worker loop.
    destination.activate(vector)
    logical.active = destination
    logical.pending = None
    origin.destroy()
    interruption_end = env.now

    # (5) Final configuration update.
    yield env.timeout(costs.post_s)
    runtime.migrations_completed += 1
    return MigrationReport(
        slice_id=slice_id,
        source_host=origin.host.host_id,
        destination_host=dest_host.host_id,
        started_at=started_at,
        completed_at=env.now,
        state_bytes=state_bytes,
        interruption_s=interruption_end - interruption_start,
    )
