"""Application surface of an operator slice.

All slices of an operator run the same :class:`SliceHandler` code (paper
§III); the handler receives events, may mutate its private slice state and
emits events downstream through the :class:`SliceContext`.  A handler has
no access to the state of other slices, even of the same operator.

The handler additionally exposes:

* ``cost(event)`` — the CPU seconds the engine charges on the hosting
  host's cores before the event is processed (the calibrated service
  demand, e.g. matching cost proportional to stored subscriptions);
* ``lock_mode(event)`` — "R" or "W", deciding whether the event may be
  processed concurrently with others on the slice;
* state export/import — the explicit state management that makes slice
  migration application-agnostic (paper §IV).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any, TYPE_CHECKING

from .event import StreamEvent

if TYPE_CHECKING:  # pragma: no cover
    from .runtime import EngineRuntime

__all__ = ["SliceHandler", "SliceContext", "BROADCAST"]

#: Routing key requesting delivery to every slice of the target operator.
BROADCAST = object()


class SliceContext:
    """Handed to ``SliceHandler.process``; emits events downstream."""

    def __init__(self, runtime: "EngineRuntime", slice_id: str):
        self._runtime = runtime
        self.slice_id = slice_id

    @property
    def now(self) -> float:
        return self._runtime.env.now

    @property
    def telemetry(self):
        """The runtime's bound :class:`repro.telemetry.Telemetry`, or ``None``."""
        return self._runtime.telemetry

    def emit(self, operator: str, kind: str, payload: Any, size_bytes: int, key: int) -> None:
        """Send to the slice ``key mod n`` of ``operator`` (modulo hashing)."""
        self._runtime.route(self.slice_id, operator, kind, payload, size_bytes, key)

    def emit_broadcast(self, operator: str, kind: str, payload: Any, size_bytes: int) -> None:
        """Send a copy to every slice of ``operator``."""
        self._runtime.route(self.slice_id, operator, kind, payload, size_bytes, BROADCAST)

    def emit_batch(self, emissions) -> None:
        """Send many emissions at once, micro-batched per destination slice.

        ``emissions`` is a sequence of ``(operator, kind, payload,
        size_bytes, key)`` tuples (``key`` may be :data:`BROADCAST`).
        Equivalent to calling :meth:`emit` per tuple, but all events bound
        for the same destination slice share one network transfer.
        """
        self._runtime.route_batch(self.slice_id, emissions)

    def slice_index(self) -> int:
        """Index of this slice within its operator."""
        return int(self.slice_id.split(":", 1)[1])

    def operator_slice_count(self, operator: str) -> int:
        """Number of (logical) slices of ``operator`` — static by design."""
        return self._runtime.slice_count(operator)


class SliceHandler(ABC):
    """Per-slice application logic.  Subclasses own the slice state."""

    @abstractmethod
    def process(self, event: StreamEvent, ctx: SliceContext) -> None:
        """Handle one event, possibly emitting downstream via ``ctx``."""

    def cost(self, event: StreamEvent) -> float:
        """CPU seconds charged for processing ``event`` (default: free)."""
        return 0.0

    def lock_mode(self, event: StreamEvent) -> str:
        """Lock taken while processing: "R" (concurrent) or "W" (exclusive)."""
        return "R"

    # -- event coalescing (opt-in batching) -----------------------------------

    def coalesce_limit(self, event: StreamEvent) -> int:
        """Max events to coalesce into one batch headed by ``event``.

        Returning 1 (the default) disables batching for this event.  When
        greater, the engine drains consecutively queued events accepted by
        :meth:`coalesce_with` and hands them to :meth:`process_batch` under
        one lock acquisition, charging the *sum* of the per-event costs —
        total CPU accounting is unchanged, only the call count shrinks.
        """
        return 1

    def coalesce_with(self, head: StreamEvent, candidate: StreamEvent) -> bool:
        """May ``candidate`` join a batch headed by ``head``?

        Only called when ``coalesce_limit(head) > 1``.  Implementations
        must accept only events with the same :meth:`lock_mode` as the
        head (the whole batch runs under the head's lock).
        """
        return False

    def process_batch(self, events, ctx: "SliceContext") -> None:
        """Handle a coalesced batch (default: process events in order)."""
        for event in events:
            self.process(event, ctx)

    # -- real-work offload (parallel execution support) -----------------------

    def prepare_batch(self, events, ctx: "SliceContext") -> None:
        """Called at dequeue time, before the batch's CPU cost is charged.

        The hook where a handler may *submit* real host-side work (e.g.
        to a :mod:`repro.parallel` executor) so it overlaps with other
        slices' simulated processing; the result is collected in
        :meth:`process`/:meth:`process_batch`, which the engine invokes
        at the batch's already-scheduled virtual completion time.
        Implementations must not schedule simulation events or mutate
        simulation-visible state — the hook runs under the batch's lock
        and must leave the DES trajectory untouched.  Default: no-op.
        """

    def detach(self) -> None:
        """Called when the hosting slice instance is destroyed.

        Migration and crash recovery tear down the old instance and build
        a fresh handler from the operator's factory; this hook lets the
        outgoing handler release external resources (cancel in-flight
        executor work, close channels).  Default: no-op.
        """

    # -- explicit state management (migration support) -----------------------

    def export_state(self) -> Any:
        """Serializable snapshot of the slice state (None if stateless)."""
        return None

    def import_state(self, state: Any) -> None:
        """Install a snapshot produced by :meth:`export_state`."""
        if state is not None:
            raise NotImplementedError(
                f"{type(self).__name__} received state but does not implement "
                "import_state"
            )

    def state_size_bytes(self) -> int:
        """Serialized size of the state; drives migration transfer time."""
        return 0
