"""The parallel-matching knob group (``REPRO_MATCH_*``).

One of :class:`~repro.pubsub.HubConfig`'s grouped sub-configs: workers,
execution backend and chunking of the worker-pool ``match_batch`` path.
Validation messages intentionally name the historical flat knobs
(``match_workers`` etc.) — the flat ``HubConfig`` fields remain as
backward-compatible aliases of this group.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..config import env_int, env_str

__all__ = ["MatchConfig"]


@dataclass(frozen=True)
class MatchConfig:
    """Validated parallel-matching configuration."""

    #: Worker processes for parallel matching execution (0 = inline).
    workers: int = 0
    #: Execution backend: ``auto`` (shm where available, else pool),
    #: ``shm``, ``pool`` or ``inline``.
    backend: str = "auto"
    #: Minimum packed-matrix rows per worker chunk.
    chunk_rows: int = 4096

    def __post_init__(self):
        if self.workers < 0:
            raise ValueError(
                f"match_workers must be >= 0 (0 disables parallel matching), "
                f"got {self.workers}"
            )
        if self.chunk_rows < 1:
            raise ValueError(
                f"match_chunk_rows must be >= 1, got {self.chunk_rows}"
            )
        from . import BACKENDS

        if self.backend not in BACKENDS:
            raise ValueError(
                f"match_backend must be one of {BACKENDS}, "
                f"got {self.backend!r}"
            )

    @classmethod
    def from_env(cls) -> "MatchConfig":
        """Build from ``REPRO_MATCH_*`` (unset keeps the defaults)."""
        return cls(
            workers=env_int("REPRO_MATCH_WORKERS", 0),
            backend=env_str("REPRO_MATCH_BACKEND", "auto"),
            chunk_rows=env_int("REPRO_MATCH_CHUNK_ROWS", 4096),
        )
