"""Worker-process side of the parallel matching executors.

Both execution backends run the same pure computation —
:func:`repro.parallel.snapshot.match_span_range` over a
:class:`~repro.parallel.snapshot.PackedSnapshot` — they differ only in
how the snapshot reaches the worker:

* the **pool** backend (``ProcessPoolExecutor``) ships a pickled snapshot
  blob with every task and memoizes it per ``(channel key, epoch)`` in
  the worker process, so repeated tasks at one epoch unpickle once;
* the **shm** backend attaches ``multiprocessing.shared_memory`` segments
  written by the parent and rebuilds zero-copy array views over them,
  receiving only tiny metadata updates (epoch, row cursor, span offsets)
  when the matrix grows in place.

Everything here is a pure function of (snapshot state, publication
batch): no randomness, no clocks feeding results, no worker-local state
that outlives an epoch — the property the bit-determinism argument in
DESIGN.md rests on.  The wall-clock ``busy`` seconds returned alongside
each result feed telemetry only, never matching decisions.
"""

from __future__ import annotations

import os
import pickle
import time
from typing import Any, Dict, Optional, Tuple

import numpy as np

from .snapshot import PackedSnapshot, match_span_range

__all__ = ["pool_match_task", "shm_worker_main", "segment_layout"]


# -- ProcessPoolExecutor path -------------------------------------------------

#: Per-process snapshot memo: channel key -> (sync key, PackedSnapshot).
_POOL_CACHE: Dict[str, Tuple[Tuple[int, int], PackedSnapshot]] = {}


def pool_match_task(
    key: str,
    sync: Tuple[int, int],
    blob: Optional[bytes],
    span_lo: int,
    span_hi: int,
    batch: np.ndarray,
) -> Tuple[np.ndarray, int, float]:
    """One pool task: match ``batch`` against spans ``[span_lo, span_hi)``.

    ``blob`` is the pickled :class:`PackedSnapshot` for the ``sync``
    identity — the library's ``(instance token, epoch)`` pair, unique
    per matrix state process-wide; it is unpickled only when this worker
    process has not seen this (key, sync) yet.  Returns ``(ok, pid,
    busy_seconds)`` where ``ok`` is the ``(B, span_hi - span_lo)``
    boolean span-conjunction block.
    """
    started = time.perf_counter()
    cached = _POOL_CACHE.get(key)
    if cached is not None and cached[0] == sync:
        snapshot = cached[1]
    else:
        snapshot = pickle.loads(blob)
        _POOL_CACHE[key] = (sync, snapshot)
    ok = match_span_range(snapshot, span_lo, span_hi, batch)
    return ok, os.getpid(), time.perf_counter() - started


# -- shared-memory path -------------------------------------------------------


def segment_layout(capacity: int, width: int) -> Tuple[int, int, int]:
    """Byte offsets ``(tol_offset, strict_offset, total_bytes)``.

    One segment packs ``[matrix capacity×width f8][tol_signed capacity
    f8][strict capacity b1]``; the parent writes, workers map read-only
    views.  ``capacity`` is the row capacity of the segment, of which
    only the first ``rows`` (from the channel metadata) are live.
    """
    matrix_bytes = capacity * width * 8
    tol_bytes = capacity * 8
    return matrix_bytes, matrix_bytes + tol_bytes, matrix_bytes + tol_bytes + capacity


class _SegmentView:
    """A worker's read-only array views over one attached shm segment."""

    def __init__(self, shm, capacity: int, width: int):
        self.shm = shm
        tol_offset, strict_offset, _ = segment_layout(capacity, width)
        buffer = shm.buf
        self.matrix = np.frombuffer(
            buffer, dtype=np.float64, count=capacity * width
        ).reshape(capacity, width)
        self.tol_signed = np.frombuffer(
            buffer, dtype=np.float64, count=capacity, offset=tol_offset
        )
        self.strict = np.frombuffer(
            buffer, dtype=np.bool_, count=capacity, offset=strict_offset
        )

    def close(self) -> None:
        # Drop the array views before closing: an exported buffer keeps
        # the mapping alive and close() would raise.
        self.matrix = self.tol_signed = self.strict = None
        try:
            self.shm.close()
        except BufferError:
            # A stale reference still exports the buffer; the mapping is
            # reclaimed at process exit instead.  The parent has already
            # unlinked the segment, so nothing leaks past the worker.
            pass


def _attach_segment(name: str, capacity: int, width: int) -> _SegmentView:
    from multiprocessing import shared_memory, resource_tracker

    shm = shared_memory.SharedMemory(name=name)
    # Attaching registers the segment with this process's resource
    # tracker (fixed only in newer Pythons); unregister so the *parent*
    # stays the sole owner of unlinking and workers exiting do not
    # destroy segments still in use.
    try:
        resource_tracker.unregister(shm._name, "shared_memory")
    except Exception:
        pass
    return _SegmentView(shm, capacity, width)


def shm_worker_main(conn, worker_index: int) -> None:
    """Worker loop of the shared-memory backend.

    Speaks a tiny tagged-tuple protocol over its duplex pipe:

    * ``("sync", key, meta)`` — install channel metadata.  ``meta`` maps
      ``segment``/``capacity``/``width`` (attach target), ``epoch``,
      ``rows`` (live-row cursor) and ``starts``/``stops`` (sorted span
      offsets).  Attaches the segment on first sight; a changed segment
      name detaches the old one.
    * ``("task", task_id, key, span_lo, span_hi, batch)`` — evaluate and
      reply ``("result", task_id, ok, busy_seconds)``.
    * ``("close", key)`` — forget a channel (detach its segment if no
      other channel uses it).
    * ``("stop",)`` — exit.

    Errors are reported as ``("error", task_id, repr)`` so the parent can
    fail just the affected future instead of losing the worker.
    """
    segments: Dict[str, _SegmentView] = {}
    metas: Dict[str, Dict[str, Any]] = {}
    try:
        while True:
            message = conn.recv()
            tag = message[0]
            if tag == "task":
                # Helper call so segment-array references in task locals
                # die on return — a later detach can then really unmap.
                _run_task(conn, segments, metas, message)
            elif tag == "sync":
                _, key, meta = message
                name = meta["segment"]
                if name not in segments:
                    segments[name] = _attach_segment(
                        name, meta["capacity"], meta["width"]
                    )
                previous = metas.get(key)
                metas[key] = meta
                if previous is not None and previous["segment"] != name:
                    _maybe_detach(segments, metas, previous["segment"])
            elif tag == "close":
                _, key = message
                previous = metas.pop(key, None)
                if previous is not None:
                    _maybe_detach(segments, metas, previous["segment"])
            elif tag == "stop":
                return
    except (EOFError, OSError):  # parent went away
        return
    finally:
        for view in segments.values():
            try:
                view.close()
            except Exception:  # pragma: no cover - teardown best effort
                pass


def _run_task(conn, segments, metas, message) -> None:
    _, task_id, key, span_lo, span_hi, batch = message
    started = time.perf_counter()
    try:
        meta = metas[key]
        view = segments[meta["segment"]]
        rows = meta["rows"]
        snapshot = PackedSnapshot(
            epoch=meta["epoch"],
            generation=meta["generation"],
            rows=rows,
            width=meta["width"],
            matrix=view.matrix[:rows],
            strict=view.strict[:rows],
            tol_signed=view.tol_signed[:rows],
            starts=meta["starts"],
            stops=meta["stops"],
        )
        ok = match_span_range(snapshot, span_lo, span_hi, batch)
    except Exception as exc:  # pragma: no cover - defensive
        conn.send(("error", task_id, repr(exc)))
    else:
        conn.send(("result", task_id, ok, time.perf_counter() - started))


def _maybe_detach(segments, metas, name: str) -> None:
    if any(meta["segment"] == name for meta in metas.values()):
        return
    view = segments.pop(name, None)
    if view is not None:
        view.close()
