"""Parallel matching execution: real cores under a deterministic DES.

The paper's M operator is the engine's CPU bottleneck, and the discrete
event simulation runs on one thread — so until this package, concurrent
M slices only *pretended* to overlap.  ``repro.parallel`` dispatches the
slices' ``match_batch`` work to a pool of worker processes while leaving
the simulation bit-deterministic: workers are pure functions of (packed
matrix epoch, publication batch), submission happens at dequeue time via
the engine's ``prepare_batch`` hook, and results rejoin exactly at the
batch's already-scheduled virtual completion time.  Serial and parallel
runs therefore produce byte-identical notifications and CPU accounting;
only wall-clock time changes.

Select a backend through ``HubConfig(match_workers=..., match_backend=
...)`` or the ``REPRO_MATCH_WORKERS`` / ``REPRO_MATCH_BACKEND``
environment variables; DESIGN.md ("Parallel matching execution")
documents the epoch/delta protocol and the determinism argument, and
OBSERVABILITY.md the worker-pool metric families.
"""

from .executor import (
    BACKENDS,
    InlineMatchExecutor,
    MatchChannel,
    MatchExecutor,
    MatchFuture,
    ProcessPoolMatchExecutor,
    SharedMemoryMatchExecutor,
    available_backends,
    create_executor,
    plan_chunks,
    resolve_backend,
    shared_executor,
)
from .config import MatchConfig
from .rendezvous import CompletionRendezvous
from .snapshot import PackedSnapshot, encode_batch, match_span_range

__all__ = [
    "BACKENDS",
    "CompletionRendezvous",
    "InlineMatchExecutor",
    "MatchChannel",
    "MatchConfig",
    "MatchExecutor",
    "MatchFuture",
    "PackedSnapshot",
    "ProcessPoolMatchExecutor",
    "SharedMemoryMatchExecutor",
    "available_backends",
    "create_executor",
    "encode_batch",
    "match_span_range",
    "plan_chunks",
    "resolve_backend",
    "shared_executor",
]
