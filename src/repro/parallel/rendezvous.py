"""Completion rendezvous between submit-time and process-time.

The engine calls a handler twice per batch: once at dequeue time
(``prepare_batch``, where real work is *submitted* to the executor) and
once at the batch's already-scheduled virtual completion time
(``process``/``process_batch``, where the result is *collected*).  The
:class:`CompletionRendezvous` is the tiny mailbox between the two calls:
futures posted under the batch's head event are taken exactly once at
completion, and anything still pending when the slice is torn down
(migration destroys the old instance, recovery rebuilds handlers) is
cancelled so worker results for a dead slice are discarded, never
delivered.

Keys are ``id(head_event)``: the head StreamEvent object is alive and
referenced by the engine's worker loop for the whole submit→process
window, so its identity is stable and collision-free while the entry
exists.
"""

from __future__ import annotations

from typing import Dict, Optional

from .executor import MatchFuture

__all__ = ["CompletionRendezvous"]


class CompletionRendezvous:
    """In-flight futures keyed by the identity of their batch head event."""

    def __init__(self) -> None:
        self._pending: Dict[int, MatchFuture] = {}

    def __len__(self) -> int:
        return len(self._pending)

    def post(self, head_event, future: MatchFuture) -> None:
        """Register the future submitted for the batch headed by ``head_event``."""
        self._pending[id(head_event)] = future

    def take(self, head_event) -> Optional[MatchFuture]:
        """Claim (and forget) the future for ``head_event``, if one was posted."""
        return self._pending.pop(id(head_event), None)

    def cancel_all(self) -> int:
        """Cancel every pending future (slice teardown); returns the count."""
        pending = list(self._pending.values())
        self._pending.clear()
        for future in pending:
            future.cancel()
        return len(pending)
