"""Pluggable matching-execution backends for M-operator slices.

The DES kernel is single-threaded, so concurrent M slices never overlap
on hardware even though the simulated timeline says they do.  This module
closes that gap: a :class:`MatchExecutor` owns a pool of worker
processes, M slices open one :class:`MatchChannel` each, and every
coalesced publication batch is *submitted* at dequeue time (the engine's
``prepare_batch`` hook) and *collected* at the slice's already-scheduled
virtual completion time (inside ``process``/``process_batch``).  Workers
are pure functions of (packed matrix epoch, publication batch) — see
``repro.parallel.worker`` — so serial and parallel runs produce
byte-identical notifications; only wall-clock changes.

Two real backends, one calibration baseline:

* :class:`ProcessPoolMatchExecutor` (``pool``) — stdlib
  ``ProcessPoolExecutor``; the packed snapshot is pickled once per epoch
  parent-side but shipped with every task (stdlib pools cannot target
  workers), with a per-(channel, epoch) unpickle memo worker-side.
* :class:`SharedMemoryMatchExecutor` (``shm``) — dedicated worker
  processes over duplex pipes; the packed matrix lives in a
  ``multiprocessing.shared_memory`` segment written by the parent, and
  within a matrix generation only *appended rows* are copied (dirty-row
  delta) — steady-state tasks ship just the publication batch.
* :class:`InlineMatchExecutor` (``inline``) — same snapshot/chunk/merge
  pipeline, executed synchronously in-process; the equivalence baseline
  for tests and the ``workers=0`` benchmark point.

Batches are split across workers at span boundaries into contiguous
row-range chunks (see :func:`plan_chunks`); chunk results are merged
parent-side into exactly the match lists the inline path computes.
"""

from __future__ import annotations

import atexit
import itertools
import pickle
import threading
import time
from concurrent.futures import Future, ProcessPoolExecutor
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..filtering import PackedMatrixView
from .snapshot import PackedSnapshot, encode_batch, match_span_range
from .worker import pool_match_task, segment_layout, shm_worker_main

__all__ = [
    "BACKENDS",
    "InlineMatchExecutor",
    "MatchChannel",
    "MatchExecutor",
    "MatchFuture",
    "ProcessPoolMatchExecutor",
    "SharedMemoryMatchExecutor",
    "available_backends",
    "create_executor",
    "plan_chunks",
    "resolve_backend",
    "shared_executor",
]

#: Recognized backend names (``auto`` resolves to one of the others).
BACKENDS = ("auto", "inline", "pool", "shm")


def _mp_context():
    import multiprocessing

    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX fallback
        return multiprocessing.get_context("spawn")


def _shm_available() -> bool:
    import os

    if os.name != "posix":
        # The unlink-after-replace segment rotation relies on POSIX
        # keep-mapping-after-unlink semantics.
        return False
    try:
        import multiprocessing.shared_memory  # noqa: F401
    except ImportError:  # pragma: no cover - stdlib always has it >= 3.8
        return False
    return True


def available_backends() -> Tuple[str, ...]:
    """Backends usable on this platform (always includes ``pool``)."""
    names = ["inline", "pool"]
    if _shm_available():
        names.append("shm")
    return tuple(names)


def resolve_backend(backend: str) -> str:
    """Resolve ``auto`` and validate explicit backend names."""
    if backend not in BACKENDS:
        raise ValueError(
            f"unknown match backend {backend!r}; choose from {BACKENDS}"
        )
    if backend == "auto":
        return "shm" if _shm_available() else "pool"
    if backend == "shm" and not _shm_available():
        raise ValueError("shm match backend is not available on this platform")
    return backend


def plan_chunks(
    starts: np.ndarray, stops: np.ndarray, workers: int, chunk_rows: int
) -> List[Tuple[int, int]]:
    """Split the sorted span list into contiguous row-range chunks.

    Cuts only at span boundaries (a subscription's conjunction never
    straddles workers) and targets ``max(chunk_rows, ceil(total_rows /
    workers))`` rows per chunk, so small matrices are not shredded into
    per-task overhead and large ones produce at most ~``workers`` chunks.
    """
    spans = int(starts.size)
    total_rows = int(stops[-1]) - int(starts[0])
    target = max(chunk_rows, -(-total_rows // max(workers, 1)))
    chunks: List[Tuple[int, int]] = []
    lo = 0
    while lo < spans:
        hi = lo + 1
        row_lo = int(starts[lo])
        while hi < spans and int(stops[hi - 1]) - row_lo < target:
            hi += 1
        chunks.append((lo, hi))
        lo = hi
    return chunks


class MatchFuture:
    """Handle for one in-flight ``match_batch``; merges chunk results.

    ``result()`` blocks (wall-clock only — the simulation clock is not
    involved) until every chunk future resolved, then assembles the exact
    per-publication id lists the inline path computes: spans are scattered
    through ``positions`` into a vacuous-true matrix over stored ids, so
    empty-span subscriptions match and id order follows storage order.
    """

    def __init__(
        self,
        executor: Optional["MatchExecutor"],
        ids: Sequence[int],
        positions: Optional[np.ndarray],
        count: int,
        chunks: Sequence[Tuple[int, int, Future]],
        value: Optional[List[List[int]]] = None,
    ):
        self._executor = executor
        self._ids = ids
        self._positions = positions
        self._count = count
        self._chunks = chunks
        self._value = value
        self._done = value is not None

    def result(self) -> List[List[int]]:
        if self._done:
            return self._value
        ids = self._ids
        merged = np.ones((self._count, len(ids)), dtype=bool)
        for span_lo, span_hi, future in self._chunks:
            ok, worker, busy = future.result()
            if self._executor is not None:
                self._executor._record_busy(str(worker), busy)
            merged[:, self._positions[span_lo:span_hi]] = ok
        self._value = [
            [ids[i] for i in np.nonzero(row)[0]] for row in merged
        ]
        self._done = True
        if self._executor is not None:
            self._executor._batch_resolved(len(self._chunks))
        self._chunks = ()
        return self._value

    def cancel(self) -> None:
        """Drop an uncollected batch (slice teardown/migration drain).

        Chunk tasks already running are not interrupted — their results
        are simply discarded — but the executor's queue accounting is
        settled so gauges do not drift.
        """
        if self._done:
            return
        self._done = True
        self._value = []
        for _, _, future in self._chunks:
            future.cancel()
        if self._executor is not None:
            self._executor._batch_resolved(len(self._chunks))
        self._chunks = ()


class MatchChannel:
    """One M slice's lane into an executor.

    Channels isolate per-slice matrix synchronization state: each channel
    tracks which workers have seen which matrix epoch and ships deltas or
    full resyncs accordingly.  A fresh handler (slice migration builds new
    handlers from the factory) opens a fresh channel and naturally
    triggers a resync on its first submit.
    """

    def __init__(self, executor: "MatchExecutor", key: str):
        self.executor = executor
        self.key = key
        self.closed = False

    def submit(self, library, payloads: Sequence[Any]) -> MatchFuture:
        """Snapshot ``library`` and dispatch ``payloads`` to the workers.

        Must be called while the slice's read lock is held (the engine's
        ``prepare_batch`` hook), so the packed view is stable for the
        duration of the copy-out.
        """
        if self.closed:
            raise RuntimeError(f"match channel {self.key!r} is closed")
        if not payloads:
            return MatchFuture(None, [], None, 0, (), value=[])
        batch = encode_batch(payloads)
        view: PackedMatrixView = library.packed_view()
        if not view.ids:
            return MatchFuture(
                None, [], None, 0, (), value=[[] for _ in payloads]
            )
        if view.span_count == 0:
            # Only vacuously-true (empty) subscriptions are stored.
            return MatchFuture(
                None, [], None, 0, (), value=[list(view.ids) for _ in payloads]
            )
        chunks = plan_chunks(
            view.starts, view.stops, self.executor.workers, self.executor.chunk_rows
        )
        futures = self._dispatch(view, chunks, batch)
        self.executor._batch_submitted(len(futures))
        return MatchFuture(
            self.executor,
            view.ids,
            view.positions,
            batch.shape[0],
            [
                (lo, hi, future)
                for (lo, hi), future in zip(chunks, futures)
            ],
        )

    def _dispatch(
        self,
        view: PackedMatrixView,
        chunks: List[Tuple[int, int]],
        batch: np.ndarray,
    ) -> List[Future]:
        raise NotImplementedError

    def close(self) -> None:
        if not self.closed:
            self.closed = True
            self.executor._channel_closed(self)


class MatchExecutor:
    """Base: worker accounting, telemetry, the shared channel registry."""

    backend_name = "abstract"

    def __init__(self, workers: int, chunk_rows: int = 4096):
        if workers < 0:
            raise ValueError(f"match workers must be >= 0, got {workers}")
        if chunk_rows < 1:
            raise ValueError(f"match chunk rows must be >= 1, got {chunk_rows}")
        self.workers = workers
        self.chunk_rows = chunk_rows
        self._telemetry = None
        self._channels: Dict[str, MatchChannel] = {}
        self._channel_seq = itertools.count()
        self._inflight_batches = 0
        self._queued_tasks = 0
        self._busy_lock = threading.Lock()
        self._busy_seconds: Dict[str, float] = {}
        self._started_at = time.monotonic()
        self._shutdown = False
        #: Full matrix re-ships (new segment / new snapshot blob).
        self.resync_count = 0
        #: Dirty-row delta copies (shm backend only).
        self.delta_count = 0

    # -- channels -------------------------------------------------------------

    def open_channel(self, name: str) -> MatchChannel:
        """A fresh channel; ``name`` is decorated to stay globally unique
        (migrated slices build new handlers that must not alias the old
        channel's sync state)."""
        key = f"{name}#{next(self._channel_seq)}"
        channel = self._make_channel(key)
        self._channels[key] = channel
        return channel

    def _make_channel(self, key: str) -> MatchChannel:
        raise NotImplementedError

    def _channel_closed(self, channel: MatchChannel) -> None:
        self._channels.pop(channel.key, None)

    # -- lifecycle ------------------------------------------------------------

    def shutdown(self) -> None:
        """Drain and stop the pool; idempotent."""
        if self._shutdown:
            return
        self._shutdown = True
        for channel in list(self._channels.values()):
            channel.close()
        self._stop_workers()

    def _stop_workers(self) -> None:
        pass

    # -- telemetry ------------------------------------------------------------

    def bind_telemetry(self, telemetry) -> None:
        """Attach a :class:`repro.telemetry.Telemetry` bundle (or None)."""
        self._telemetry = telemetry
        self._push_gauges()

    def _batch_submitted(self, tasks: int) -> None:
        self._inflight_batches += 1
        self._queued_tasks += tasks
        self._push_gauges()

    def _batch_resolved(self, tasks: int) -> None:
        self._inflight_batches -= 1
        self._queued_tasks -= tasks
        self._push_gauges()

    def _count_resync(self) -> None:
        self.resync_count += 1
        t = self._telemetry
        if t is not None and getattr(t, "match_matrix_resyncs", None) is not None:
            t.match_matrix_resyncs.inc()

    def _record_busy(self, worker: str, busy: float) -> None:
        with self._busy_lock:
            total = self._busy_seconds.get(worker, 0.0) + busy
            self._busy_seconds[worker] = total
        t = self._telemetry
        if t is not None and t.match_worker_busy_fraction is not None:
            elapsed = time.monotonic() - self._started_at
            if elapsed > 0.0:
                t.match_worker_busy_fraction.labels(worker=worker).set(
                    total / elapsed
                )

    def _push_gauges(self) -> None:
        t = self._telemetry
        if t is None or getattr(t, "match_pool_inflight_batches", None) is None:
            return
        t.match_pool_inflight_batches.set(self._inflight_batches)
        t.match_pool_queued_tasks.set(self._queued_tasks)


# -- inline (workers=0 baseline) ----------------------------------------------


class _InlineChannel(MatchChannel):
    def _dispatch(self, view, chunks, batch):
        snapshot = PackedSnapshot.from_view(view)
        futures = []
        for lo, hi in chunks:
            started = time.perf_counter()
            ok = match_span_range(snapshot, lo, hi, batch)
            future: Future = Future()
            future.set_result((ok, "inline", time.perf_counter() - started))
            futures.append(future)
        return futures


class InlineMatchExecutor(MatchExecutor):
    """Synchronous in-process execution of the parallel pipeline.

    Runs the identical snapshot → chunk → merge path with zero processes;
    the ``workers=0`` benchmark point and the equivalence baseline in
    tests.  ``workers`` only shapes chunk planning (default 1 chunk).
    """

    backend_name = "inline"

    def __init__(self, workers: int = 0, chunk_rows: int = 4096):
        super().__init__(max(workers, 0), chunk_rows)

    def _make_channel(self, key: str) -> MatchChannel:
        return _InlineChannel(self, key)


# -- ProcessPoolExecutor backend ----------------------------------------------


class _PoolChannel(MatchChannel):
    def __init__(self, executor: "ProcessPoolMatchExecutor", key: str):
        super().__init__(executor, key)
        self._blob: Optional[bytes] = None
        self._blob_sync: Optional[Tuple[int, int]] = None

    def _dispatch(self, view, chunks, batch):
        executor: ProcessPoolMatchExecutor = self.executor
        pool = executor._ensure_started()
        # Epochs are per-library counters: the sync identity must include
        # the instance token or a different library reaching an equal
        # epoch (export/import clones) would reuse a stale snapshot.
        sync = (view.token, view.epoch)
        if self._blob_sync != sync:
            self._blob = pickle.dumps(
                PackedSnapshot.from_view(view), protocol=pickle.HIGHEST_PROTOCOL
            )
            self._blob_sync = sync
            executor._count_resync()
        return [
            pool.submit(
                pool_match_task, self.key, sync, self._blob, lo, hi, batch
            )
            for lo, hi in chunks
        ]


class ProcessPoolMatchExecutor(MatchExecutor):
    """``ProcessPoolExecutor`` backend: snapshot blob shipped per task.

    Correct and portable, but every task carries the full pickled matrix
    (stdlib pools cannot address individual workers); the worker-side
    per-epoch unpickle memo only saves deserialization, not transfer.
    The shm backend exists because of exactly this cost.
    """

    backend_name = "pool"

    def __init__(self, workers: int, chunk_rows: int = 4096):
        if workers < 1:
            raise ValueError(f"pool backend needs >= 1 worker, got {workers}")
        super().__init__(workers, chunk_rows)
        self._pool: Optional[ProcessPoolExecutor] = None

    def _ensure_started(self) -> ProcessPoolExecutor:
        if self._pool is None:
            self._pool = ProcessPoolExecutor(
                max_workers=self.workers, mp_context=_mp_context()
            )
        return self._pool

    def _make_channel(self, key: str) -> MatchChannel:
        return _PoolChannel(self, key)

    def _stop_workers(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True, cancel_futures=True)
            self._pool = None


# -- shared-memory backend ----------------------------------------------------


class _ShmChannel(MatchChannel):
    """Channel state of the shm backend: one segment + per-worker sync."""

    def __init__(self, executor: "SharedMemoryMatchExecutor", key: str):
        super().__init__(executor, key)
        self._shm = None
        self._capacity = 0
        self._width = 0
        self._token: Optional[int] = None
        self._generation: Optional[int] = None
        self._epoch: Optional[int] = None
        self._written_rows = 0
        self._meta: Optional[Dict[str, Any]] = None
        #: worker index -> last (token, epoch) that worker's metadata
        #: reflects (tokens disambiguate different library instances
        #: whose per-instance epoch counters collide).
        self._synced: Dict[int, Tuple[int, int]] = {}

    def _dispatch(self, view, chunks, batch):
        executor: SharedMemoryMatchExecutor = self.executor
        executor._ensure_started()
        self._sync_segment(view)
        sync = (view.token, view.epoch)
        futures = []
        for lo, hi in chunks:
            worker = executor._next_worker()
            if self._synced.get(worker) != sync:
                executor._send(worker, ("sync", self.key, self._meta))
                self._synced[worker] = sync
            futures.append(
                executor._submit_task(worker, self.key, lo, hi, batch)
            )
        return futures

    def _segment_arrays(self):
        capacity, width = self._capacity, self._width
        tol_offset, strict_offset, _ = segment_layout(capacity, width)
        buffer = self._shm.buf
        matrix = np.frombuffer(
            buffer, dtype=np.float64, count=capacity * width
        ).reshape(capacity, width)
        tol = np.frombuffer(
            buffer, dtype=np.float64, count=capacity, offset=tol_offset
        )
        strict = np.frombuffer(
            buffer, dtype=np.bool_, count=capacity, offset=strict_offset
        )
        return matrix, tol, strict

    def _sync_segment(self, view: PackedMatrixView) -> None:
        from multiprocessing import shared_memory

        rows, width = view.rows, view.width
        fresh = (
            self._shm is None
            or view.token != self._token
            or view.generation != self._generation
            or width != self._width
            or rows > self._capacity
        )
        if fresh:
            capacity = max(64, 2 * rows)
            _, _, total = segment_layout(capacity, width)
            segment = shared_memory.SharedMemory(create=True, size=max(total, 1))
            old = self._shm
            self._shm = segment
            self._capacity = capacity
            self._width = width
            matrix, tol, strict = self._segment_arrays()
            matrix[:rows] = view.matrix
            tol[:rows] = view.tol_signed
            strict[:rows] = view.strict
            del matrix, tol, strict
            self._token = view.token
            self._generation = view.generation
            self._written_rows = rows
            self._synced = {}
            self.executor._count_resync()
            if old is not None:
                # Unlink immediately: POSIX keeps existing worker mappings
                # alive until they detach on their next sync.
                old.close()
                old.unlink()
        elif view.epoch != self._epoch:
            written = self._written_rows
            if rows > written:
                matrix, tol, strict = self._segment_arrays()
                matrix[written:rows] = view.matrix[written:rows]
                tol[written:rows] = view.tol_signed[written:rows]
                strict[written:rows] = view.strict[written:rows]
                del matrix, tol, strict
                self._written_rows = rows
                self.executor.delta_count += 1
            # Span offsets changed (store/remove): every worker needs
            # fresh metadata even when no rows moved.
            self._synced = {}
        if view.epoch != self._epoch or fresh:
            self._epoch = view.epoch
            self._meta = {
                "segment": self._shm.name,
                "capacity": self._capacity,
                "width": self._width,
                "epoch": view.epoch,
                "generation": view.generation,
                "rows": rows,
                "starts": view.starts.copy(),
                "stops": view.stops.copy(),
            }

    def close(self) -> None:
        if self.closed:
            return
        super().close()
        executor: SharedMemoryMatchExecutor = self.executor
        for worker in list(self._synced):
            executor._send(worker, ("close", self.key), best_effort=True)
        if self._shm is not None:
            self._shm.close()
            try:
                self._shm.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass
            self._shm = None


class SharedMemoryMatchExecutor(MatchExecutor):
    """Dedicated worker processes + shared-memory matrix segments.

    The zero-copy path: the packed matrix crosses the process boundary
    through shm segments (full copy only on generation change or growth
    past capacity; appended-row deltas otherwise), and steady-state tasks
    ship just the publication batch over the worker's pipe.  Results come
    back on per-worker collector threads that resolve
    ``concurrent.futures.Future`` objects; a dead worker fails its
    pending futures instead of hanging the run.
    """

    backend_name = "shm"

    def __init__(self, workers: int, chunk_rows: int = 4096):
        if workers < 1:
            raise ValueError(f"shm backend needs >= 1 worker, got {workers}")
        super().__init__(workers, chunk_rows)
        self._processes: List = []
        self._pipes: List = []
        self._collectors: List[threading.Thread] = []
        self._pending: List[Dict[int, Future]] = []
        self._pending_lock = threading.Lock()
        self._task_seq = itertools.count()
        self._rr = 0
        self._started = False

    # -- pool lifecycle -------------------------------------------------------

    def _ensure_started(self) -> None:
        if self._started:
            return
        context = _mp_context()
        for index in range(self.workers):
            parent_end, child_end = context.Pipe(duplex=True)
            process = context.Process(
                target=shm_worker_main,
                args=(child_end, index),
                name=f"repro-match-{index}",
                daemon=True,
            )
            process.start()
            child_end.close()
            self._processes.append(process)
            self._pipes.append(parent_end)
            self._pending.append({})
            collector = threading.Thread(
                target=self._collect, args=(index,), daemon=True
            )
            collector.start()
            self._collectors.append(collector)
        self._started = True

    def _next_worker(self) -> int:
        worker = self._rr
        self._rr = (self._rr + 1) % self.workers
        return worker

    def _send(self, worker: int, message, best_effort: bool = False) -> None:
        try:
            self._pipes[worker].send(message)
        except (OSError, ValueError, BrokenPipeError):
            if not best_effort:
                raise RuntimeError(
                    f"match worker {worker} is gone (pipe closed)"
                )

    def _submit_task(
        self, worker: int, key: str, span_lo: int, span_hi: int, batch
    ) -> Future:
        task_id = next(self._task_seq)
        future: Future = Future()
        with self._pending_lock:
            self._pending[worker][task_id] = future
        try:
            self._send(worker, ("task", task_id, key, span_lo, span_hi, batch))
        except RuntimeError:
            with self._pending_lock:
                self._pending[worker].pop(task_id, None)
            raise
        return future

    def _collect(self, worker: int) -> None:
        pipe = self._pipes[worker]
        label = str(worker)
        while True:
            try:
                message = pipe.recv()
            except (EOFError, OSError):
                self._fail_pending(worker)
                return
            tag = message[0]
            if tag == "result":
                _, task_id, ok, busy = message
                with self._pending_lock:
                    future = self._pending[worker].pop(task_id, None)
                if future is not None:
                    try:
                        future.set_result((ok, label, busy))
                    except Exception:  # cancelled concurrently: discard
                        pass
            elif tag == "error":
                _, task_id, detail = message
                with self._pending_lock:
                    future = self._pending[worker].pop(task_id, None)
                if future is not None:
                    try:
                        future.set_exception(
                            RuntimeError(f"match worker {worker}: {detail}")
                        )
                    except Exception:  # cancelled concurrently: discard
                        pass

    def _fail_pending(self, worker: int) -> None:
        with self._pending_lock:
            pending = list(self._pending[worker].values())
            self._pending[worker].clear()
        for future in pending:
            try:
                future.set_exception(RuntimeError(f"match worker {worker} died"))
            except Exception:  # cancelled concurrently: discard
                pass

    def _make_channel(self, key: str) -> MatchChannel:
        return _ShmChannel(self, key)

    def _stop_workers(self) -> None:
        if not self._started:
            return
        for worker in range(self.workers):
            self._send(worker, ("stop",), best_effort=True)
        for process in self._processes:
            process.join(timeout=2.0)
            if process.is_alive():  # pragma: no cover - stuck worker
                process.terminate()
                process.join(timeout=1.0)
        for pipe in self._pipes:
            try:
                pipe.close()
            except OSError:  # pragma: no cover
                pass
        for worker in range(len(self._pending)):
            self._fail_pending(worker)
        self._processes = []
        self._pipes = []
        self._collectors = []
        self._started = False


# -- construction -------------------------------------------------------------


def create_executor(
    workers: int, backend: str = "auto", chunk_rows: int = 4096
) -> MatchExecutor:
    """Build an executor for ``workers`` processes (0 → inline)."""
    if workers < 0:
        raise ValueError(f"match workers must be >= 0, got {workers}")
    if chunk_rows < 1:
        raise ValueError(f"match chunk rows must be >= 1, got {chunk_rows}")
    if workers == 0 or backend == "inline":
        return InlineMatchExecutor(workers, chunk_rows)
    resolved = resolve_backend(backend)
    if resolved == "shm":
        return SharedMemoryMatchExecutor(workers, chunk_rows)
    return ProcessPoolMatchExecutor(workers, chunk_rows)


#: Process-wide executor registry keyed by (workers, backend, chunk_rows):
#: every hub with the same knobs shares one pool (a test suite running
#: with ``REPRO_MATCH_WORKERS=4`` must not fork 4 workers per hub).
_SHARED: Dict[Tuple[int, str, int], MatchExecutor] = {}
_SHARED_LOCK = threading.Lock()


def shared_executor(
    workers: int, backend: str = "auto", chunk_rows: int = 4096
) -> MatchExecutor:
    """The shared executor for these knobs, created on first use."""
    resolved = "inline" if workers == 0 or backend == "inline" else resolve_backend(backend)
    key = (workers, resolved, chunk_rows)
    with _SHARED_LOCK:
        executor = _SHARED.get(key)
        if executor is None:
            executor = create_executor(workers, resolved, chunk_rows)
            _SHARED[key] = executor
        return executor


@atexit.register
def _shutdown_shared() -> None:  # pragma: no cover - interpreter teardown
    with _SHARED_LOCK:
        executors = list(_SHARED.values())
        _SHARED.clear()
    for executor in executors:
        try:
            executor.shutdown()
        except Exception:
            pass
