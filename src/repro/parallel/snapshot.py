"""Self-contained snapshots of packed matching state for worker shipping.

A :class:`PackedSnapshot` freezes everything a worker process needs to
evaluate :func:`repro.filtering.match_packed` for a library at one epoch:
the direction-folded row matrix, the per-row strictness flags and
sign-folded tolerance bases, and the sorted span offsets.  Snapshots own
their arrays (C-contiguous copies of the library's live buffers), so they
stay valid after the library mutates and pickle without dragging along
workspace scratch or buffer tails.

The per-span merge metadata (``ids``/``positions``) deliberately stays
out of the snapshot: workers only produce span-conjunction booleans;
mapping spans back to subscription ids happens in the parent, which
captured the metadata at submission time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..filtering import PackedMatrixView, match_packed
from ..filtering.aspe import EncryptedPublication

__all__ = ["PackedSnapshot", "encode_batch", "match_span_range"]


@dataclass(frozen=True)
class PackedSnapshot:
    """Owned copy of a :class:`~repro.filtering.PackedMatrixView`."""

    epoch: int
    generation: int
    rows: int
    width: int
    matrix: np.ndarray  # (rows, width) float64, C-contiguous
    strict: np.ndarray  # (rows,) bool
    tol_signed: np.ndarray  # (rows,) float64
    starts: np.ndarray  # (spans,) int64, sorted
    stops: np.ndarray  # (spans,) int64

    @classmethod
    def from_view(cls, view: PackedMatrixView) -> "PackedSnapshot":
        if view.matrix is None or view.starts.size == 0:
            raise ValueError("cannot snapshot an empty packed view")
        return cls(
            epoch=view.epoch,
            generation=view.generation,
            rows=view.rows,
            width=view.width,
            matrix=np.ascontiguousarray(view.matrix),
            strict=view.strict.copy(),
            tol_signed=view.tol_signed.copy(),
            starts=view.starts.copy(),
            stops=view.stops.copy(),
        )

    @property
    def span_count(self) -> int:
        return int(self.starts.size)


def encode_batch(payloads: Sequence[EncryptedPublication]) -> np.ndarray:
    """Stack publication ciphertext vectors into the (B, n) batch matrix.

    Applies the same payload type check as ``AspeLibrary.match_batch`` so
    the parallel path rejects exactly what the inline path rejects.
    """
    for payload in payloads:
        if not isinstance(payload, EncryptedPublication):
            raise TypeError(
                f"expected EncryptedPublication, got {type(payload).__name__}"
            )
    return np.stack([payload.vector for payload in payloads])


def match_span_range(
    snapshot: PackedSnapshot, span_lo: int, span_hi: int, batch: np.ndarray
) -> np.ndarray:
    """Evaluate spans ``[span_lo, span_hi)`` of a snapshot against a batch.

    Slices the packed rows down to the contiguous ``[starts[lo],
    stops[hi-1])`` row range covering the requested spans and runs the
    shared kernel on that block.  Row-range chunking is bitwise-safe: the
    per-row decisions are row-independent, the span conjunction is an
    integer prefix-sum difference entirely inside the chunk's rows, and
    the BLAS product accumulates only over the (tiny) ciphertext width —
    never across chunked rows — so every chunk reproduces the exact
    columns the unchunked kernel would compute.
    """
    row_lo = int(snapshot.starts[span_lo])
    row_hi = int(snapshot.stops[span_hi - 1])
    return match_packed(
        snapshot.matrix[row_lo:row_hi],
        snapshot.strict[row_lo:row_hi],
        snapshot.tol_signed[row_lo:row_hi],
        snapshot.starts[span_lo:span_hi] - row_lo,
        snapshot.stops[span_lo:span_hi] - row_lo,
        batch,
    )
