"""STREAMHUB: the tiered content-based pub/sub engine (paper §III).

Assembles the AP → M → EP pipeline on the stream-processing engine, with a
client API (`subscribe` / `publish`), a source driver for rate-controlled
workloads and a sink operator measuring notification delays.
"""

from .messages import MatchList, Notification, Publication, Subscription
from .operators import (
    AccessPointHandler,
    ExitPointHandler,
    MatcherHandler,
    NotificationSinkHandler,
    KIND_MATCH_LIST,
    KIND_NOTIFICATION,
    KIND_NOTIFY,
    KIND_PUBLICATION,
    KIND_SUBSCRIPTION,
)
from .hub import HubConfig, StreamHub
from .source import SourceDriver

__all__ = [
    "AccessPointHandler",
    "ExitPointHandler",
    "HubConfig",
    "KIND_MATCH_LIST",
    "KIND_NOTIFICATION",
    "KIND_NOTIFY",
    "KIND_PUBLICATION",
    "KIND_SUBSCRIPTION",
    "MatchList",
    "MatcherHandler",
    "Notification",
    "NotificationSinkHandler",
    "Publication",
    "SourceDriver",
    "StreamHub",
    "Subscription",
]
