"""Message types flowing through the STREAMHUB pipeline."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List, Optional, Tuple

__all__ = ["Subscription", "Publication", "MatchList", "Notification"]


@dataclass(frozen=True)
class Subscription:
    """A subscriber's registered interest.

    ``filter_payload`` is whatever the configured filtering scheme needs:
    a plaintext :class:`~repro.filtering.PredicateSet`, an
    :class:`~repro.filtering.EncryptedSubscription`, or ``None`` in
    sampled-matching simulations.
    """

    sub_id: int
    subscriber: int
    filter_payload: Any = None


@dataclass(frozen=True)
class Publication:
    """A published event.

    ``payload`` is the plaintext attribute tuple or an
    :class:`~repro.filtering.EncryptedPublication` (or ``None`` when
    matching is sampled).  ``published_at`` is stamped by the source
    operator and carried end-to-end for delay measurement.
    """

    pub_id: int
    payload: Any = None
    published_at: float = 0.0


@dataclass(frozen=True)
class MatchList:
    """Partial list of matching subscribers from one M slice.

    ``subscriber_ids`` is ``None`` in sampled mode, where only ``count``
    is meaningful.
    """

    pub_id: int
    m_slice: int
    count: int
    subscriber_ids: Optional[Tuple[int, ...]]
    published_at: float


@dataclass(frozen=True)
class Notification:
    """Aggregated notification batch for one publication at one EP slice."""

    pub_id: int
    count: int
    subscriber_ids: Optional[Tuple[int, ...]]
    published_at: float
