"""The STREAMHUB façade: assembling the pub/sub pipeline on the engine.

A :class:`StreamHub` declares the AP → M → EP operator chain (plus a SINK
convenience operator standing in for subscriber connection points), deploys
the slices onto hosts, and offers the client API: ``subscribe`` and
``publish``.  Slice counts are fixed at construction — the static
partitioning that makes elastic migration application-agnostic.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional

from ..cluster import Host, Network
from ..config import env_int, env_str
from ..engine import EngineRuntime, MigrationCosts
from ..filtering import CostModel, MatchingBackend, SampledBackend, StoreConfig
from ..metrics import DelaySample, DelayTracker
from ..sim import Environment
from ..telemetry import Telemetry
from ..transport import TransportConfig
from .messages import Notification, Publication, Subscription
from .operators import (
    AccessPointHandler,
    ExitPointHandler,
    MatcherHandler,
    NotificationSinkHandler,
    KIND_PUBLICATION,
    KIND_SUBSCRIPTION,
)

__all__ = ["HubConfig", "StreamHub"]


def _default_match_workers() -> int:
    return env_int("REPRO_MATCH_WORKERS", 0)


def _default_match_backend() -> str:
    return env_str("REPRO_MATCH_BACKEND", "auto")


def _default_match_chunk_rows() -> int:
    return env_int("REPRO_MATCH_CHUNK_ROWS", 4096)


def _env_store_config() -> StoreConfig:
    return StoreConfig.from_env()


def _env_transport_config() -> TransportConfig:
    return TransportConfig.from_env()


@dataclass
class HubConfig:
    """Static configuration of a STREAMHUB deployment.

    Defaults mirror the paper's evaluation setup: 8 AP, 16 M and 8 EP
    slices (§VI-A), encrypted (ASPE-cost) filtering, slice thread pools
    sized to the 8-core hosts.

    Knobs are organized into grouped sub-configs — :attr:`match`
    (``REPRO_MATCH_*``), :attr:`store` (``REPRO_STORE_*``), :attr:`net`
    (``REPRO_NET_*``) and :attr:`policy` (``REPRO_POLICY_*``) — each
    defining its env/constructor precedence in one place.  The historical
    flat fields (``match_workers``, ``store_backend``, ``net_flush_mode``,
    …) remain as backward-compatible aliases: pass either form; an
    explicitly passed group wins over flat kwargs, and after construction
    the flat fields always mirror the resolved group.  The flat spellings
    are **deprecated** for new code — prefer the groups.
    """

    ap_slices: int = 8
    m_slices: int = 16
    ep_slices: int = 8
    sink_slices: int = 4
    parallelism: int = 8
    encrypted: bool = True
    cost_model: CostModel = field(default_factory=CostModel)
    #: Per-M-slice matching backend factory (index → backend).
    backend_factory: Optional[Callable[[int], MatchingBackend]] = None
    #: Max consecutively queued publications an M slice coalesces into one
    #: batched backend call (1 = no coalescing, the default).  Batching
    #: charges the same summed CPU cost and emits identical match lists in
    #: identical order, but collapses backend calls — worthwhile with
    #: exact (vectorized) backends under publication backlogs.
    matcher_batch_limit: int = 1
    #: Max consecutively queued events an AP slice coalesces into one
    #: routing pass with shared per-destination network transfers.
    ap_batch_limit: int = 1
    #: Max consecutively queued events an EP slice coalesces into one join
    #: pass; completed notifications of a batch dispatch together.
    ep_batch_limit: int = 1
    #: Optional :class:`repro.telemetry.Telemetry` bundle.  When set, the
    #: hub binds it to the engine runtime and the network fabric so every
    #: layer records into the same tracer/registry (see OBSERVABILITY.md).
    #: ``None`` (the default) keeps all hot paths on their no-op branch.
    telemetry: Optional["Telemetry"] = None
    #: Worker processes for parallel matching execution (0 = inline, the
    #: default).  Defaults from ``REPRO_MATCH_WORKERS`` so an existing
    #: deployment/test run flips to parallel without code changes.  Only
    #: engages for backends whose library speaks the packed protocol
    #: (``ExactBackend`` over ``AspeLibrary``); other backends stay inline.
    match_workers: int = field(default_factory=_default_match_workers)
    #: Execution backend: ``auto`` (shm where available, else pool),
    #: ``shm``, ``pool`` or ``inline``.  From ``REPRO_MATCH_BACKEND``.
    match_backend: str = field(default_factory=_default_match_backend)
    #: Minimum packed-matrix rows per worker chunk — keeps small matrices
    #: from being shredded into per-task overhead.  From
    #: ``REPRO_MATCH_CHUNK_ROWS``.
    match_chunk_rows: int = field(default_factory=_default_match_chunk_rows)
    #: Injected :class:`repro.parallel.MatchExecutor` instance (tests and
    #: benchmarks).  When ``None`` and ``match_workers > 0`` the hub uses
    #: the process-wide shared executor for its knobs.
    match_executor: Optional[object] = None
    #: Packed-row backing store of exact (ASPE) M-slice libraries:
    #: ``dense`` (flat in-RAM arrays, the default), ``chunked`` (in-RAM
    #: row chunks) or ``mmap`` (memmap-persisted chunks with an LRU
    #: resident set).  From ``REPRO_STORE_BACKEND``; sampled backends
    #: ignore it.  See DESIGN.md §8.
    store_backend: str = field(default_factory=lambda: _env_store_config().backend)
    #: Rows per store chunk.  From ``REPRO_STORE_CHUNK_ROWS``.
    store_chunk_rows: int = field(
        default_factory=lambda: _env_store_config().chunk_rows
    )
    #: Resident-set budget per library in MiB for the ``mmap`` backend
    #: (0 = unbounded).  From ``REPRO_STORE_MEMORY_BUDGET_MB``.
    store_memory_budget_mb: float = field(
        default_factory=lambda: _env_store_config().memory_budget_mb
    )
    #: Compact a library once dead rows exceed this fraction of the store
    #: (0 < ratio ≤ 1; 1 disables compaction).  From
    #: ``REPRO_STORE_COMPACT_DEAD_RATIO``.
    store_compact_dead_ratio: float = field(
        default_factory=lambda: _env_store_config().compact_dead_ratio
    )
    #: Directory for mmap chunk files (``None`` = a per-store temp dir).
    #: From ``REPRO_STORE_SPILL_DIR``.
    store_spill_dir: Optional[str] = field(
        default_factory=lambda: _env_store_config().spill_dir
    )
    #: Channel flush policy of the event-plane transport: ``eager`` (the
    #: default: hand emissions straight to the fabric), ``fixed`` (fabric
    #: flush epochs every ``net_flush_s``, the experiments' pre-transport
    #: micro-batching) or ``adaptive`` (per-channel latency-bounded flush:
    #: batch-full or ``net_flush_s`` delay budget, whichever first).  From
    #: ``REPRO_NET_FLUSH_MODE``.  See DESIGN.md §9.
    net_flush_mode: str = field(
        default_factory=lambda: _env_transport_config().flush_mode
    )
    #: Flush epoch (``fixed``) / per-channel delay budget (``adaptive``)
    #: in simulated seconds.  From ``REPRO_NET_FLUSH_S``.
    net_flush_s: float = field(
        default_factory=lambda: _env_transport_config().flush_s
    )
    #: Pending messages that force an adaptive channel to flush.  From
    #: ``REPRO_NET_FLUSH_MAX_BATCH``.
    net_flush_max_batch: int = field(
        default_factory=lambda: _env_transport_config().flush_max_batch
    )
    #: Credit-based backpressure: bounded receiver inboxes, credits
    #: granted back on consumption, senders shed to a spill queue when
    #: out of credits.  From ``REPRO_NET_BACKPRESSURE``.
    net_backpressure: bool = field(
        default_factory=lambda: _env_transport_config().backpressure
    )
    #: Send credits per channel.  From ``REPRO_NET_CREDIT_WINDOW``.
    net_credit_window: int = field(
        default_factory=lambda: _env_transport_config().credit_window
    )
    #: Parallel-matching knob group; built from the flat ``match_*``
    #: fields (and thus ``REPRO_MATCH_*``) when not passed explicitly.
    match: Optional["MatchConfig"] = None
    #: Packed-row store knob group; built from the flat ``store_*``
    #: fields (``REPRO_STORE_*``) when not passed explicitly.
    store: Optional[StoreConfig] = None
    #: Transport knob group; built from the flat ``net_*`` fields
    #: (``REPRO_NET_*``) when not passed explicitly.
    net: Optional[TransportConfig] = None
    #: Elasticity-policy knob group (``REPRO_POLICY_*``); the default
    #: policy of managers driving this hub.  Has no flat aliases — it is
    #: new with the signal-driven policy API.
    policy: Optional["PolicyConfig"] = None

    def __post_init__(self):
        if min(self.ap_slices, self.m_slices, self.ep_slices, self.sink_slices) <= 0:
            raise ValueError("slice counts must be positive")
        if self.matcher_batch_limit <= 0:
            raise ValueError("matcher_batch_limit must be positive")
        if self.ap_batch_limit <= 0:
            raise ValueError("ap_batch_limit must be positive")
        if self.ep_batch_limit <= 0:
            raise ValueError("ep_batch_limit must be positive")
        from ..elastic.policy import PolicyConfig
        from ..parallel.config import MatchConfig

        # Fold groups and flat aliases together: an explicit group wins
        # and is mirrored back into the flat fields; otherwise the group
        # is built (and validated) from the flat values.
        if self.match is None:
            self.match = MatchConfig(
                workers=self.match_workers,
                backend=self.match_backend,
                chunk_rows=self.match_chunk_rows,
            )
        else:
            self.match_workers = self.match.workers
            self.match_backend = self.match.backend
            self.match_chunk_rows = self.match.chunk_rows
        if self.store is None:
            self.store = StoreConfig(
                backend=self.store_backend,
                chunk_rows=self.store_chunk_rows,
                memory_budget_mb=self.store_memory_budget_mb,
                compact_dead_ratio=self.store_compact_dead_ratio,
                spill_dir=self.store_spill_dir,
            )
        else:
            self.store_backend = self.store.backend
            self.store_chunk_rows = self.store.chunk_rows
            self.store_memory_budget_mb = self.store.memory_budget_mb
            self.store_compact_dead_ratio = self.store.compact_dead_ratio
            self.store_spill_dir = self.store.spill_dir
        if self.net is None:
            self.net = TransportConfig(
                flush_mode=self.net_flush_mode,
                flush_s=self.net_flush_s,
                flush_max_batch=self.net_flush_max_batch,
                backpressure=self.net_backpressure,
                credit_window=self.net_credit_window,
            )
        else:
            self.net_flush_mode = self.net.flush_mode
            self.net_flush_s = self.net.flush_s
            self.net_flush_max_batch = self.net.flush_max_batch
            self.net_backpressure = self.net.backpressure
            self.net_credit_window = self.net.credit_window
        if self.policy is None:
            self.policy = PolicyConfig.from_env()

    def transport_config(self) -> TransportConfig:
        """The flow-control configuration of the event-plane transport.

        Deprecated alias: identical to reading :attr:`net` directly.
        """
        return self.net

    def store_config(self) -> StoreConfig:
        """The packed-row store configuration for exact M-slice libraries.

        Deprecated alias: identical to reading :attr:`store` directly.
        """
        return self.store

    @classmethod
    def sampled(cls, matching_rate: float = 0.01, **kwargs) -> "HubConfig":
        """Configuration with statistically sampled matching (see backends)."""
        return cls(
            backend_factory=lambda index: SampledBackend(matching_rate, seed=index),
            **kwargs,
        )

    def migration_costs(self) -> MigrationCosts:
        """Migration cost parameters derived from the cost model."""
        per_byte = (
            self.cost_model.migration_serialize_sub_s / self.cost_model.subscription_bytes
        )
        return MigrationCosts(
            pre_s=self.cost_model.migration_overhead_s / 2,
            post_s=self.cost_model.migration_overhead_s / 2,
            serialize_s_per_byte=per_byte,
            deserialize_s_per_byte=per_byte,
        )


class StreamHub:
    """A deployed pub/sub engine instance."""

    AP = "AP"
    M = "M"
    EP = "EP"
    SINK = "SINK"

    def __init__(self, env: Environment, network: Network, config: HubConfig):
        if config.backend_factory is None:
            raise ValueError(
                "HubConfig.backend_factory is required (use HubConfig.sampled() "
                "or provide ExactBackend factories)"
            )
        self.env = env
        self.config = config
        self.runtime = EngineRuntime(
            env,
            network,
            migration_costs=config.migration_costs(),
            transport_config=config.transport_config(),
        )
        #: The bound telemetry bundle (``config.telemetry``), or ``None``.
        self.telemetry = config.telemetry
        self._delay_hist = None
        if self.telemetry is not None:
            if self.telemetry.env is None:
                self.telemetry.bind_env(env)
            self.runtime.bind_telemetry(self.telemetry)
            network.bind_telemetry(self.telemetry)
            self._delay_hist = self.telemetry.notification_delay
        #: The matching executor backing this hub's M slices (``None``
        #: when matching runs inline).  Hubs with identical knobs share
        #: one process-wide pool unless ``config.match_executor`` injects
        #: a dedicated instance.
        self.match_executor = None
        if config.match_executor is not None:
            self.match_executor = config.match_executor
        elif config.match_workers > 0:
            from ..parallel import shared_executor

            self.match_executor = shared_executor(
                config.match_workers,
                config.match_backend,
                config.match_chunk_rows,
            )
        if self.match_executor is not None and self.telemetry is not None:
            self.match_executor.bind_telemetry(self.telemetry)
        self.delay_tracker = DelayTracker()
        #: Joined notifications in delivery order (subscriber ids are
        #: present in exact-matching mode, ``None`` in sampled mode).
        self.notification_log: List[Notification] = []
        #: Duplicate notifications suppressed at the connection point
        #: (at-least-once redelivery during crash recovery).
        self.duplicate_notifications = 0
        self._seen_pub_ids = set()
        self._published = 0
        self._subscribed = 0

        cost_model = config.cost_model
        # All pub/sub operators are content-idempotent (the EP join is
        # keyed by M slice, the sink deduplicates by publication id), so
        # crash-replay deduplication by sequence range is unnecessary and
        # disabled (see engine.recovery's multi-channel caveat).
        self.runtime.add_operator(
            self.AP,
            config.ap_slices,
            lambda index: AccessPointHandler(
                cost_model,
                matching_operator=self.M,
                batch_limit=config.ap_batch_limit,
            ),
            parallelism=config.parallelism,
            replay_dedup=False,
        )
        store_config = config.store_config()
        self.runtime.add_operator(
            self.M,
            config.m_slices,
            lambda index: MatcherHandler(
                index,
                config.backend_factory(index),
                cost_model,
                encrypted=config.encrypted,
                exit_operator=self.EP,
                batch_limit=config.matcher_batch_limit,
                executor=self.match_executor,
                store_config=store_config,
            ),
            parallelism=config.parallelism,
            replay_dedup=False,
        )
        self.runtime.add_operator(
            self.EP,
            config.ep_slices,
            lambda index: ExitPointHandler(
                cost_model,
                m_slice_count=config.m_slices,
                own_operator=self.EP,
                sink_operator=self.SINK,
                batch_limit=config.ep_batch_limit,
            ),
            parallelism=config.parallelism,
            replay_dedup=False,
        )
        self.runtime.add_operator(
            self.SINK,
            config.sink_slices,
            lambda index: NotificationSinkHandler(self._collect),
            parallelism=config.parallelism,
            replay_dedup=False,
        )

    # -- deployment -----------------------------------------------------------

    def deploy(
        self,
        ap_hosts: List[Host],
        m_hosts: List[Host],
        ep_hosts: List[Host],
        sink_hosts: List[Host],
    ) -> None:
        """Round-robin each operator's slices over its host group."""
        self.runtime.deploy_operator(self.AP, ap_hosts)
        self.runtime.deploy_operator(self.M, m_hosts)
        self.runtime.deploy_operator(self.EP, ep_hosts)
        self.runtime.deploy_operator(self.SINK, sink_hosts)

    def deploy_all_on(self, engine_hosts: List[Host], sink_hosts: List[Host]) -> None:
        """Place all engine slices round-robin on one host group."""
        for operator in (self.AP, self.M, self.EP):
            self.runtime.deploy_operator(operator, engine_hosts)
        self.runtime.deploy_operator(self.SINK, sink_hosts)

    def engine_slice_ids(self) -> List[str]:
        """The elastically managed slices (AP, M, EP — not the sink)."""
        return (
            self.runtime.slice_ids(self.AP)
            + self.runtime.slice_ids(self.M)
            + self.runtime.slice_ids(self.EP)
        )

    # -- client API --------------------------------------------------------------

    def subscribe(self, subscription: Subscription, source: str = "client") -> None:
        """Register a subscription (routed through the AP operator)."""
        self.runtime.inject(
            source,
            self.AP,
            KIND_SUBSCRIPTION,
            subscription,
            self.config.cost_model.subscription_bytes,
            key=subscription.sub_id,
        )
        self._subscribed += 1

    def publish(self, publication: Publication, source: str = "client") -> None:
        """Publish an event (routed through the AP operator)."""
        self.runtime.inject(
            source,
            self.AP,
            KIND_PUBLICATION,
            publication,
            self.config.cost_model.publication_bytes,
            key=publication.pub_id,
        )
        self._published += 1

    # -- measurement ----------------------------------------------------------------

    @property
    def published_count(self) -> int:
        return self._published

    @property
    def subscribed_count(self) -> int:
        return self._subscribed

    @property
    def notified_publications(self) -> int:
        return len(self.delay_tracker)

    def _collect(self, notification: Notification, now: float) -> None:
        if notification.pub_id in self._seen_pub_ids:
            self.duplicate_notifications += 1
            return
        self._seen_pub_ids.add(notification.pub_id)
        self.notification_log.append(notification)
        self.delay_tracker.add(
            DelaySample(
                pub_id=notification.pub_id,
                published_at=notification.published_at,
                delivered_at=now,
                notifications=notification.count,
            )
        )
        if self._delay_hist is not None:
            self._delay_hist.observe(now - notification.published_at)
