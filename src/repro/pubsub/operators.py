"""The three STREAMHUB operators as engine slice handlers (paper §III).

* :class:`AccessPointHandler` (AP) — stateless.  Partitions subscriptions
  over M slices by modulo hashing of the subscription id and broadcasts
  publications to all M slices.
* :class:`MatcherHandler` (M) — stateful.  Stores its partition of the
  subscriptions in a matching backend; on each publication, produces the
  partial list of matching subscribers and forwards it to the EP operator
  (modulo hashing on the publication id).
* :class:`ExitPointHandler` (EP) — small transient state.  Collects, per
  publication, the partial lists of *all* M slices; once complete,
  prepares and dispatches the notifications to the sink.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from ..engine import BROADCAST, SliceContext, SliceHandler, StreamEvent
from ..filtering import CostModel, MatchResult, MatchingBackend
from .messages import MatchList, Notification, Publication, Subscription

__all__ = [
    "AccessPointHandler",
    "MatcherHandler",
    "ExitPointHandler",
    "NotificationSinkHandler",
    "KIND_SUBSCRIPTION",
    "KIND_PUBLICATION",
    "KIND_MATCH_LIST",
    "KIND_NOTIFY",
    "KIND_NOTIFICATION",
]

KIND_SUBSCRIPTION = "subscription"
KIND_PUBLICATION = "publication"
KIND_MATCH_LIST = "match_list"
#: EP-internal completion event carrying the aggregated notification work.
KIND_NOTIFY = "notify"
KIND_NOTIFICATION = "notification"


class AccessPointHandler(SliceHandler):
    """AP operator: stateless subscription partitioning / pub broadcast."""

    def __init__(
        self,
        cost_model: CostModel,
        matching_operator: str = "M",
        batch_limit: int = 1,
    ):
        if batch_limit <= 0:
            raise ValueError("batch_limit must be positive")
        self.cost_model = cost_model
        self.matching_operator = matching_operator
        #: Max consecutively queued events coalesced into one routing pass
        #: whose emissions share per-destination network transfers.
        self.batch_limit = batch_limit
        self.publications_routed = 0
        self.subscriptions_routed = 0
        #: Events that arrived in coalesced batches of size > 1.
        self.events_batched = 0

    def cost(self, event: StreamEvent) -> float:
        return self.cost_model.ap_event_s

    def coalesce_limit(self, event: StreamEvent) -> int:
        return self.batch_limit

    def coalesce_with(self, head: StreamEvent, candidate: StreamEvent) -> bool:
        # AP work is stateless and uniformly "R"-locked; any mix of
        # subscriptions and publications may share a batch.
        return candidate.kind in (KIND_SUBSCRIPTION, KIND_PUBLICATION)

    def process(self, event: StreamEvent, ctx: SliceContext) -> None:
        operator, kind, payload, size_bytes, key = self._emission(event)
        if key is BROADCAST:
            ctx.emit_broadcast(operator, kind, payload, size_bytes)
        else:
            ctx.emit(operator, kind, payload, size_bytes, key=key)

    def process_batch(self, events, ctx: SliceContext) -> None:
        """Route a coalesced run of events with shared per-slice transfers.

        Emissions keep the events' queued order, so destination slices
        observe the exact sequence a non-batched AP would have produced;
        only the number of simulated network transfers shrinks.
        """
        ctx.emit_batch([self._emission(event) for event in events])
        if len(events) > 1:
            self.events_batched += len(events)

    def _emission(self, event: StreamEvent) -> Tuple[str, str, Any, int, Any]:
        if event.kind == KIND_SUBSCRIPTION:
            subscription: Subscription = event.payload
            self.subscriptions_routed += 1
            return (
                self.matching_operator,
                KIND_SUBSCRIPTION,
                subscription,
                self.cost_model.subscription_bytes,
                subscription.sub_id,
            )
        if event.kind == KIND_PUBLICATION:
            publication: Publication = event.payload
            self.publications_routed += 1
            return (
                self.matching_operator,
                KIND_PUBLICATION,
                publication,
                self.cost_model.publication_bytes,
                BROADCAST,
            )
        raise ValueError(f"AP cannot handle event kind {event.kind!r}")


class MatcherHandler(SliceHandler):
    """M operator: stores a subscription partition, filters publications.

    When constructed with a :class:`repro.parallel.MatchExecutor`, the
    matching work of each publication batch is *submitted* to the worker
    pool at dequeue time (:meth:`prepare_batch`) and collected at the
    batch's scheduled completion time — overlapping real CPU across
    concurrent M slices without touching the simulated trajectory.  The
    offload engages only when the backend's library supports the packed
    protocol (``ExactBackend.parallel_library()``); everything else, and
    ``executor=None``, matches inline exactly as before.
    """

    def __init__(
        self,
        slice_index: int,
        backend: MatchingBackend,
        cost_model: CostModel,
        encrypted: bool = True,
        exit_operator: str = "EP",
        batch_limit: int = 1,
        executor=None,
        store_config=None,
    ):
        if batch_limit <= 0:
            raise ValueError("batch_limit must be positive")
        self.slice_index = slice_index
        self.backend = backend
        self.cost_model = cost_model
        self.encrypted = encrypted
        self.exit_operator = exit_operator
        #: Max consecutively queued publications coalesced into one
        #: backend ``match_batch`` call (1 = no coalescing).
        self.batch_limit = batch_limit
        self.publications_matched = 0
        #: Publications that arrived in coalesced batches of size > 1.
        self.publications_batched = 0
        #: Batches whose matching ran on the worker pool.
        self.batches_offloaded = 0
        #: sub_id → subscriber, resolved when emitting match lists.
        self._subscribers: Dict[int, int] = {}
        self.executor = executor
        if store_config is not None:
            configure = getattr(
                getattr(backend, "library", None), "configure_store", None
            )
            if configure is not None:
                configure(store_config)
        self._telemetry_bound = False
        self._refresh_parallel_capability()

    def _refresh_parallel_capability(self) -> None:
        """(Re)detect whether the backend supports packed-pool offload."""
        parallel_library = None
        if self.executor is not None and hasattr(self.backend, "parallel_library"):
            parallel_library = self.backend.parallel_library()
        self._parallel_library = parallel_library
        self._channel = None
        self._rendezvous = None
        if parallel_library is not None:
            from ..parallel import CompletionRendezvous

            self._rendezvous = CompletionRendezvous()

    def _bind_store_telemetry(self, telemetry) -> None:
        """First-contact bind of the backing store's wall-clock metrics."""
        self._telemetry_bound = True
        if telemetry is None:
            return
        bind = getattr(
            getattr(self.backend, "library", None), "bind_telemetry", None
        )
        if bind is not None:
            bind(telemetry, f"M:{self.slice_index}")

    def cost(self, event: StreamEvent) -> float:
        if event.kind == KIND_PUBLICATION:
            return self.cost_model.match_cost_s(
                self.backend.subscription_count(), encrypted=self.encrypted
            )
        return self.cost_model.ap_event_s  # storing one subscription is cheap

    def lock_mode(self, event: StreamEvent) -> str:
        # Matching only reads the subscription store; storing mutates it.
        return "R" if event.kind == KIND_PUBLICATION else "W"

    def coalesce_limit(self, event: StreamEvent) -> int:
        # Only publications coalesce: they share the "R" lock mode and map
        # onto one vectorized match_batch call.
        return self.batch_limit if event.kind == KIND_PUBLICATION else 1

    def coalesce_with(self, head: StreamEvent, candidate: StreamEvent) -> bool:
        return candidate.kind == KIND_PUBLICATION

    def prepare_batch(self, events, ctx: SliceContext) -> None:
        """Submit the batch's matching work to the worker pool, if any.

        Runs at dequeue time under the batch's "R" lock — the library
        cannot mutate until every in-flight publication holder releases
        it, so the packed view copied out here is stable.  Schedules no
        simulation events; the future parks in the rendezvous until
        :meth:`process`/:meth:`process_batch` collects it at the batch's
        scheduled virtual completion time.
        """
        if self._rendezvous is None or events[0].kind != KIND_PUBLICATION:
            return
        if self._channel is None:
            self._channel = self.executor.open_channel(f"M:{self.slice_index}")
        future = self._channel.submit(
            self._parallel_library, [event.payload.payload for event in events]
        )
        self._rendezvous.post(events[0], future)

    def detach(self) -> None:
        """Slice teardown (migration/recovery): drop in-flight work."""
        if self._rendezvous is not None:
            self._rendezvous.cancel_all()
        if self._channel is not None:
            self._channel.close()
            self._channel = None

    def _collect(self, head_event, publications) -> Optional[List[Any]]:
        """Claim the offloaded results for the batch headed by ``head_event``.

        Returns one :class:`MatchResult` per publication, or ``None`` when
        the batch was never offloaded (no executor, subscription events,
        non-packed backend) — callers then match inline.
        """
        if self._rendezvous is None:
            return None
        future = self._rendezvous.take(head_event)
        if future is None:
            return None
        self.batches_offloaded += 1
        return [
            MatchResult(count=len(ids), ids=ids) for ids in future.result()
        ]

    def process(self, event: StreamEvent, ctx: SliceContext) -> None:
        if not self._telemetry_bound:
            self._bind_store_telemetry(getattr(ctx, "telemetry", None))
        if event.kind == KIND_SUBSCRIPTION:
            subscription: Subscription = event.payload
            self.backend.store(subscription.sub_id, subscription.filter_payload)
            self._subscribers[subscription.sub_id] = subscription.subscriber
        elif event.kind == KIND_PUBLICATION:
            publication: Publication = event.payload
            collected = self._collect(event, [publication])
            if collected is not None:
                result = collected[0]
            else:
                result = self.backend.match(publication.pub_id, publication.payload)
            telemetry = getattr(ctx, "telemetry", None)
            if telemetry is not None and telemetry.matcher_publications is not None:
                telemetry.matcher_publications.inc()
                telemetry.matcher_matches.inc(result.count)
            ctx.emit(*self._match_emission(publication, result))
        else:
            raise ValueError(f"M cannot handle event kind {event.kind!r}")

    def process_batch(self, events, ctx: SliceContext) -> None:
        """Match a coalesced run of publications in one backend call.

        Match lists keep the events' queued order and go out in one
        micro-batched routing pass, so the EP join and all cost/delay
        accounting observe the exact event stream a non-batched matcher
        would have produced — only the backend call count and the number
        of simulated network transfers shrink.
        """
        if not self._telemetry_bound:
            self._bind_store_telemetry(getattr(ctx, "telemetry", None))
        publications = [event.payload for event in events]
        results = self._collect(events[0], publications)
        if results is None:
            results = self.backend.match_batch(
                [publication.pub_id for publication in publications],
                [publication.payload for publication in publications],
            )
        telemetry = getattr(ctx, "telemetry", None)
        if telemetry is not None and telemetry.matcher_publications is not None:
            telemetry.matcher_publications.inc(len(results))
            telemetry.matcher_matches.inc(sum(result.count for result in results))
        ctx.emit_batch(
            [
                self._match_emission(publication, result)
                for publication, result in zip(publications, results)
            ]
        )
        if len(events) > 1:
            self.publications_batched += len(events)

    def _match_emission(
        self, publication: Publication, result
    ) -> Tuple[str, str, Any, int, Any]:
        ids: Optional[Tuple[int, ...]] = None
        if result.ids is not None:
            ids = tuple(
                self._subscribers.get(sub_id, sub_id) for sub_id in result.ids
            )
        match_list = MatchList(
            pub_id=publication.pub_id,
            m_slice=self.slice_index,
            count=result.count,
            subscriber_ids=ids,
            published_at=publication.published_at,
        )
        self.publications_matched += 1
        return (
            self.exit_operator,
            KIND_MATCH_LIST,
            match_list,
            self.cost_model.match_list_bytes(result.count),
            publication.pub_id,
        )

    def preload(self, subscription: Subscription) -> None:
        """Install a subscription directly, bypassing the pipeline.

        Equivalent to receiving it via the AP (the caller must respect the
        AP's partitioning: ``sub_id mod m_slices == slice_index``).  Used
        by large-scale experiments to skip the unmeasured storage phase.
        """
        self.backend.store(subscription.sub_id, subscription.filter_payload)
        self._subscribers[subscription.sub_id] = subscription.subscriber

    # -- runtime resharding ---------------------------------------------------

    def shard_count(self) -> int:
        """Key-range shards held by the backend (1 when unsharded)."""
        counter = getattr(getattr(self.backend, "library", None), "shard_count", None)
        return counter() if callable(counter) else 1

    def can_reshard(self, op: str) -> bool:
        """Whether a shard ``op`` ("split"/"merge") is applicable now."""
        library = getattr(self.backend, "library", None)
        if op == "split":
            check = getattr(library, "can_split", None)
        elif op == "merge":
            check = getattr(library, "can_merge", None)
        else:
            return False
        return bool(check()) if callable(check) else False

    def adopt_from(self, other: "MatcherHandler") -> None:
        """Take over ``other``'s state by reference (same-host reshard).

        Unlike :meth:`import_state` nothing is copied: the backend object
        itself changes owner, so adopting a terabyte-scale partition costs
        nothing — :func:`~repro.engine.migration.reshard_slice` relies on
        this to keep the copy phase proportional to rewritten rows only.
        """
        self.backend = other.backend
        self._subscribers = other._subscribers
        self.publications_matched = other.publications_matched
        self.publications_batched = other.publications_batched
        self.batches_offloaded = other.batches_offloaded
        self._telemetry_bound = other._telemetry_bound
        self._refresh_parallel_capability()

    def reshard(self, op: str, shard_index=None, pivot_key=None):
        """Run one shard split/merge on the backend's sharded library.

        Returns the library's :class:`~repro.filtering.ShardOpResult`.
        """
        library = self.backend.library
        if op == "split":
            return library.split_shard(index=shard_index, pivot_key=pivot_key)
        if op == "merge":
            return library.merge_shards(index=shard_index)
        raise ValueError(f"unknown shard operation {op!r}")

    # -- migration state ------------------------------------------------------

    def export_state(self) -> Any:
        return {
            "backend": self.backend.export_state(),
            "subscribers": dict(self._subscribers),
        }

    def import_state(self, state: Any) -> None:
        if state is not None:
            self.backend.import_state(state["backend"])
            self._subscribers = dict(state["subscribers"])

    def state_size_bytes(self) -> int:
        # The persistent state is the stored subscription partition.
        return self.backend.subscription_count() * self.cost_model.subscription_bytes


class ExitPointHandler(SliceHandler):
    """EP operator: joins the M slices' partial lists, dispatches."""

    def __init__(
        self,
        cost_model: CostModel,
        m_slice_count: int,
        own_operator: str = "EP",
        sink_operator: Optional[str] = "SINK",
        batch_limit: int = 1,
    ):
        if m_slice_count <= 0:
            raise ValueError("m_slice_count must be positive")
        if batch_limit <= 0:
            raise ValueError("batch_limit must be positive")
        self.cost_model = cost_model
        self.m_slice_count = m_slice_count
        self.own_operator = own_operator
        self.sink_operator = sink_operator
        #: Max consecutively queued events coalesced into one join pass;
        #: completed notifications of the whole batch dispatch together.
        self.batch_limit = batch_limit
        #: pub_id → [m-slices received, total matches, ids per m-slice,
        #: published_at].  Partial subscriber lists are kept *per M slice*
        #: and concatenated in M-slice index order at completion, so the
        #: notification content is independent of the arrival order of
        #: the partial lists — backpressured/adaptively-flushed runs emit
        #: byte-identical notifications to serial runs (DESIGN.md §9).
        self.pending: Dict[int, List[Any]] = {}
        self.notifications_sent = 0
        #: Events that arrived in coalesced batches of size > 1.
        self.events_batched = 0

    def cost(self, event: StreamEvent) -> float:
        if event.kind == KIND_MATCH_LIST:
            return self.cost_model.ep_partial_s
        if event.kind == KIND_NOTIFY:
            notification: Notification = event.payload
            return notification.count * self.cost_model.ep_notification_s
        return 0.0

    def lock_mode(self, event: StreamEvent) -> str:
        # Both joining and dispatch touch the pending table.
        return "W"

    def coalesce_limit(self, event: StreamEvent) -> int:
        return self.batch_limit

    def coalesce_with(self, head: StreamEvent, candidate: StreamEvent) -> bool:
        # Everything the EP handles runs under the "W" lock; partial lists
        # and self-addressed dispatch events may share a batch.
        return candidate.kind in (KIND_MATCH_LIST, KIND_NOTIFY)

    def process(self, event: StreamEvent, ctx: SliceContext) -> None:
        emission = self._handle(event)
        if emission is not None:
            ctx.emit(*emission)

    def process_batch(self, events, ctx: SliceContext) -> None:
        """Join a coalesced run of events, dispatching completions together.

        Partial lists accumulate across the whole batch before the
        resulting emissions go out in one micro-batched routing pass; the
        emissions keep the per-event order, so the downstream observes
        the same content and sequence numbers as the per-event path.
        """
        emissions = []
        for event in events:
            emission = self._handle(event)
            if emission is not None:
                emissions.append(emission)
        if emissions:
            ctx.emit_batch(emissions)
        if len(events) > 1:
            self.events_batched += len(events)

    def _handle(self, event: StreamEvent) -> Optional[Tuple[str, str, Any, int, Any]]:
        if event.kind == KIND_MATCH_LIST:
            return self._join(event.payload)
        if event.kind == KIND_NOTIFY:
            return self._dispatch(event.payload)
        raise ValueError(f"EP cannot handle event kind {event.kind!r}")

    def _join(self, match_list: MatchList) -> Optional[Tuple[str, str, Any, int, Any]]:
        entry = self.pending.get(match_list.pub_id)
        if entry is None:
            entry = [set(), 0, {} if match_list.subscriber_ids is not None else None,
                     match_list.published_at]
            self.pending[match_list.pub_id] = entry
        if match_list.m_slice in entry[0]:
            # Content-level idempotence: a duplicate delivery of the same
            # partial list (crash-recovery replay) is ignored, keyed by
            # the originating M slice.
            return None
        entry[0].add(match_list.m_slice)
        entry[1] += match_list.count
        if entry[2] is not None and match_list.subscriber_ids is not None:
            entry[2][match_list.m_slice] = match_list.subscriber_ids
        if len(entry[0]) < self.m_slice_count:
            return None
        del self.pending[match_list.pub_id]
        ids: Optional[Tuple[int, ...]] = None
        if entry[2] is not None:
            ids = tuple(
                subscriber
                for m_slice in sorted(entry[2])
                for subscriber in entry[2][m_slice]
            )
        notification = Notification(
            pub_id=match_list.pub_id,
            count=entry[1],
            subscriber_ids=ids,
            published_at=entry[3],
        )
        # Dispatching has its own CPU cost proportional to the number
        # of notifications; route it through a self-addressed event so
        # the engine charges it (same slice: key = pub_id).
        return (
            self.own_operator,
            KIND_NOTIFY,
            notification,
            self.cost_model.frame_bytes,
            match_list.pub_id,
        )

    def _dispatch(self, notification: Notification) -> Optional[Tuple[str, str, Any, int, Any]]:
        self.notifications_sent += notification.count
        if self.sink_operator is None:
            return None
        return (
            self.sink_operator,
            KIND_NOTIFICATION,
            notification,
            self.cost_model.frame_bytes
            + notification.count * self.cost_model.notification_bytes,
            notification.pub_id,
        )

    # -- migration state -----------------------------------------------------

    def export_state(self) -> Any:
        return {
            pub_id: [set(entry[0]), entry[1],
                     dict(entry[2]) if entry[2] is not None else None, entry[3]]
            for pub_id, entry in self.pending.items()
        }

    def import_state(self, state: Any) -> None:
        if state is not None:
            self.pending = {
                pub_id: [set(entry[0]), entry[1],
                         dict(entry[2]) if entry[2] is not None else None, entry[3]]
                for pub_id, entry in state.items()
            }

    def state_size_bytes(self) -> int:
        # Transient and expected to be small (paper §IV-A).
        return len(self.pending) * self.cost_model.ep_pending_bytes


class NotificationSinkHandler(SliceHandler):
    """Convenience sink operator slice: records notification delays."""

    def __init__(self, collector):
        """``collector`` is a callable ``(Notification, now) -> None``."""
        self.collector = collector
        self.received = 0

    def process(self, event: StreamEvent, ctx: SliceContext) -> None:
        if event.kind != KIND_NOTIFICATION:
            raise ValueError(f"sink cannot handle event kind {event.kind!r}")
        self.collector(event.payload, ctx.now)
        self.received += 1
