"""Source driver: pushes subscriptions and publications into the hub.

Stands in for the paper's *source* convenience operator, which pushes
pre-encrypted events from disk at a controlled rate (§VI-A).  Experiments
always begin with a subscription *storage phase*, after which publications
flow at a constant rate, a synthetic rate profile, or a replayed trace.
"""

from __future__ import annotations

import random
from typing import Any, Callable, Iterable, Optional

from ..sim import Environment, Process
from .hub import StreamHub
from .messages import Publication, Subscription

__all__ = ["SourceDriver"]


class SourceDriver:
    """Feeds one hub from a named external source."""

    def __init__(
        self,
        hub: StreamHub,
        name: str = "source:0",
        seed: int = 0,
        poisson: bool = False,
        pub_id_offset: int = 0,
        pub_id_stride: int = 1,
    ):
        """Multiple drivers feeding one hub must use disjoint publication
        id spaces (EP slices join partial match lists by publication id):
        give driver ``i`` of ``n`` ``pub_id_offset=i, pub_id_stride=n``.
        """
        if pub_id_stride <= 0 or not 0 <= pub_id_offset < pub_id_stride:
            raise ValueError("need 0 <= pub_id_offset < pub_id_stride")
        self.hub = hub
        self.env: Environment = hub.env
        self.name = name
        self.poisson = poisson
        self._rng = random.Random(seed)
        self._next_pub_id = pub_id_offset
        self._pub_id_stride = pub_id_stride
        self.publications_sent = 0

    # -- subscription storage phase ------------------------------------------------

    def load_subscriptions(
        self,
        subscriptions: Iterable[Subscription],
        rate_per_s: float = 20_000.0,
    ) -> Process:
        """Store subscriptions at ``rate_per_s``; returns the process."""
        if rate_per_s <= 0:
            raise ValueError("rate must be positive")

        def run():
            interval = 1.0 / rate_per_s
            for subscription in subscriptions:
                self.hub.subscribe(subscription, source=self.name)
                yield self.env.timeout(interval)

        return self.env.process(run())

    # -- publication phases -----------------------------------------------------------

    def publish_constant(
        self,
        rate_per_s: float,
        duration_s: float,
        payload_factory: Optional[Callable[[int], Any]] = None,
    ) -> Process:
        """Publish at a constant rate for ``duration_s``."""
        return self.publish_profile(lambda t: rate_per_s, duration_s, payload_factory)

    def publish_profile(
        self,
        rate_fn: Callable[[float], float],
        duration_s: float,
        payload_factory: Optional[Callable[[int], Any]] = None,
        idle_resolution_s: float = 1.0,
    ) -> Process:
        """Publish following ``rate_fn(t)`` (t relative to phase start).

        With ``poisson`` sourcing, inter-publication gaps are exponential
        with the instantaneous rate; otherwise they are deterministic
        ``1 / rate`` spacings.  While the rate is zero the driver idles in
        ``idle_resolution_s`` steps.
        """
        if duration_s <= 0:
            raise ValueError("duration must be positive")

        def run():
            start = self.env.now
            while self.env.now - start < duration_s:
                rate = max(0.0, rate_fn(self.env.now - start))
                if rate <= 0.0:
                    yield self.env.timeout(idle_resolution_s)
                    continue
                self._emit(payload_factory)
                gap = (
                    self._rng.expovariate(rate) if self.poisson else 1.0 / rate
                )
                yield self.env.timeout(gap)
            return self.publications_sent

        return self.env.process(run())

    def publish_now(self, payload: Any = None) -> Publication:
        """Publish a single event immediately; returns the publication."""
        publication = Publication(
            pub_id=self._next_pub_id, payload=payload, published_at=self.env.now
        )
        self._next_pub_id += self._pub_id_stride
        self.hub.publish(publication, source=self.name)
        self.publications_sent += 1
        return publication

    def _emit(self, payload_factory: Optional[Callable[[int], Any]]) -> None:
        payload = payload_factory(self._next_pub_id) if payload_factory else None
        self.publish_now(payload)
