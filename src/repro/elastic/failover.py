"""Manager failover harness: primary/standby behind a leader election.

The paper keeps the manager restartable by storing its whole state in
ZooKeeper (§IV-B).  :class:`ManagerFailover` packages the full pattern
the chaos scenarios exercise (see RESILIENCE.md):

* the primary :class:`~repro.elastic.ElasticityManager` runs with a
  ``checkpoint_store`` attached, so its decision history and the
  decision currently executing are always on stable storage;
* one or more standbys wait behind a
  :class:`~repro.coord.LeaderElection` (ephemeral-sequential nodes in
  the coordination kernel);
* :meth:`ManagerFailover.crash_active` kills the active manager —
  interrupting any in-flight migration, which rolls back via the
  engine's abort path — and closes its election session, so the next
  standby is promoted, rebuilds via
  :meth:`~repro.elastic.ElasticityManager.recover`, and settles the
  interrupted decision with
  :meth:`~repro.elastic.ElasticityManager.resume_inflight`.

The promoted manager resumes heartbeat collection immediately: elastic
control continues across the failover with at most one lost decision,
and that one is recorded as completed or rolled back — never silently
half-applied.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..cluster import CloudProvider, Host
from ..coord import CoordinationKernel, LeaderElection
from ..engine import CheckpointStore
from .manager import ElasticityManager

__all__ = ["ManagerFailover"]


class ManagerFailover:
    """Run elasticity managers as an elected primary with hot standbys."""

    def __init__(
        self,
        hub,
        cloud: CloudProvider,
        coord: Optional[CoordinationKernel] = None,
        checkpoint_store: Optional[CheckpointStore] = None,
        **manager_kwargs,
    ):
        """``manager_kwargs`` are forwarded to every manager built by
        the harness (``policy``, ``probe_interval_s``,
        ``migration_timeout_s``, ...)."""
        self.hub = hub
        self.cloud = cloud
        self.env = hub.env
        self.coord = coord or CoordinationKernel()
        # Explicit None check: an *empty* CheckpointStore is falsy
        # (``__len__`` is 0), and a caller-provided store must be used
        # even before the first checkpoint lands in it.
        self.store = (
            checkpoint_store if checkpoint_store is not None
            else CheckpointStore()
        )
        self.manager_kwargs = dict(manager_kwargs)
        #: Managers by candidate id, in promotion order.
        self.managers: Dict[str, ElasticityManager] = {}
        #: The currently elected manager (``None`` before the first
        #: election and between a crash and the next promotion).
        self.active: Optional[ElasticityManager] = None
        self.active_id: Optional[str] = None
        self.failovers = 0
        self._sessions: Dict[str, object] = {}
        self._elections: Dict[str, LeaderElection] = {}
        self._pending_orphans: List = []

    # -- membership ---------------------------------------------------------

    def start_primary(
        self, engine_hosts: List[Host], candidate_id: str = "primary"
    ) -> ElasticityManager:
        """Join ``candidate_id`` and start it as the initial manager."""
        self._join(candidate_id, initial_hosts=list(engine_hosts))
        manager = self.managers.get(candidate_id)
        if manager is None:
            raise RuntimeError(
                f"{candidate_id} joined but was not elected primary"
            )
        return manager

    def add_standby(self, candidate_id: str) -> None:
        """Join a standby; it builds its manager only when elected."""
        self._join(candidate_id, initial_hosts=None)

    def _join(self, candidate_id: str, initial_hosts) -> None:
        if candidate_id in self._elections:
            raise ValueError(f"candidate {candidate_id!r} already joined")
        session = self.coord.session()
        election = LeaderElection(
            self.coord, session, candidate_id=candidate_id
        )
        election.on_elected(
            lambda: self._on_elected(candidate_id, initial_hosts)
        )
        self._sessions[candidate_id] = session
        self._elections[candidate_id] = election
        election.join()

    def _on_elected(self, candidate_id: str, initial_hosts) -> None:
        takeover = self.active is not None or self.failovers > 0 or (
            initial_hosts is None
        )
        if initial_hosts is not None and not takeover:
            manager = ElasticityManager(
                self.hub,
                self.cloud,
                initial_hosts,
                coord=self.coord,
                checkpoint_store=self.store,
                **self.manager_kwargs,
            )
        else:
            manager = ElasticityManager.recover(
                self.hub,
                self.cloud,
                self.coord,
                checkpoint_store=self.store,
                **self.manager_kwargs,
            )
        self.managers[candidate_id] = manager
        self.active = manager
        self.active_id = candidate_id
        manager.start()
        if takeover:
            self.failovers += 1
            orphans, self._pending_orphans = self._pending_orphans, []
            manager.resume_inflight(orphans)

    # -- chaos entry point ---------------------------------------------------

    def crash_active(self, kill_inflight: bool = True) -> None:
        """Crash the elected manager and trigger the next election.

        The manager's in-flight operations are interrupted (rolled
        back) unless ``kill_inflight=False``, in which case they keep
        running as orphans and the promoted standby awaits them before
        settling the decision.
        """
        manager, candidate_id = self.active, self.active_id
        if manager is None:
            raise RuntimeError("no active manager to crash")
        self.active = None
        self.active_id = None
        self._pending_orphans = manager.crash(kill_inflight=kill_inflight)
        # Ephemeral election node disappears with the session; the next
        # candidate in line is promoted by its watch.
        self._sessions[candidate_id].close()

    #: Alias so a :class:`~repro.cluster.FaultPlan` can target the
    #: harness directly (``crash_manager_at(...)`` calls ``crash()``).
    crash = crash_active
