"""Slice placement: First Fit bin packing (paper §V, second step).

Hosts are bins whose capacity reflects the CPU resources still available
below the target utilization; each migrating slice is an item weighing its
measured CPU usage.  Slices are placed greedily in decreasing order of CPU
utilization (First Fit Decreasing); when the spare capacity of the running
hosts cannot accommodate an item, the enforcer derives an allocation
decision for a new host.  Memory acts as a placement constraint.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from .selection import SliceLoad

__all__ = ["HostBin", "Placement", "first_fit_decreasing", "NEW_HOST_PREFIX"]

#: Destination prefix for hosts that must be freshly provisioned.
NEW_HOST_PREFIX = "new-"


@dataclass
class HostBin:
    """Remaining capacity of one (existing or planned) host."""

    host_id: str
    cpu_capacity_cores: float
    memory_capacity_bytes: int
    cpu_used_cores: float = 0.0
    memory_used_bytes: int = 0

    def fits(self, item: SliceLoad) -> bool:
        """Whether ``item`` fits within the remaining CPU and memory."""
        return (
            self.cpu_used_cores + item.cpu_cores <= self.cpu_capacity_cores + 1e-12
            and self.memory_used_bytes + item.memory_bytes
            <= self.memory_capacity_bytes
        )

    def add(self, item: SliceLoad) -> None:
        """Account ``item``'s CPU and memory against this bin."""
        self.cpu_used_cores += item.cpu_cores
        self.memory_used_bytes += item.memory_bytes


@dataclass
class Placement:
    """Result of a packing round."""

    #: slice id → destination host id (possibly a ``new-<i>`` placeholder).
    assignments: Dict[str, str]
    #: Number of fresh hosts the plan requires.
    new_hosts: int

    @property
    def uses_new_hosts(self) -> bool:
        return self.new_hosts > 0


def first_fit_decreasing(
    items: Sequence[SliceLoad],
    bins: List[HostBin],
    new_host_cpu_capacity: float,
    new_host_memory_capacity: int,
    allow_new_hosts: bool = True,
    max_new_hosts: Optional[int] = None,
) -> Optional[Placement]:
    """Place ``items`` into ``bins``, opening new hosts when needed.

    Returns ``None`` when the items cannot be placed (new hosts exhausted
    or disallowed, or an item larger than any bin).
    """
    assignments: Dict[str, str] = {}
    new_bins: List[HostBin] = []
    ordered = sorted(items, key=lambda s: s.cpu_cores, reverse=True)
    for item in ordered:
        placed = False
        for host_bin in bins + new_bins:
            if host_bin.fits(item):
                host_bin.add(item)
                assignments[item.slice_id] = host_bin.host_id
                placed = True
                break
        if placed:
            continue
        if not allow_new_hosts:
            return None
        if max_new_hosts is not None and len(new_bins) >= max_new_hosts:
            return None
        fresh = HostBin(
            host_id=f"{NEW_HOST_PREFIX}{len(new_bins)}",
            cpu_capacity_cores=new_host_cpu_capacity,
            memory_capacity_bytes=new_host_memory_capacity,
        )
        if not fresh.fits(item):
            return None  # item larger than an empty host: unplaceable
        fresh.add(item)
        assignments[item.slice_id] = fresh.host_id
        new_bins.append(fresh)
    return Placement(assignments=assignments, new_hosts=len(new_bins))
