"""The elasticity enforcer: two-step resolution of policy violations.

Given a probe round and a violation, the enforcer produces a
:class:`ScalingDecision` — the set of slice migrations, the number of
hosts to provision and the hosts to release — using the paper's two-step
algorithm (§V):

1. *Slice selection*: subset-sum dynamic programming picks, from each
   overloaded host, a minimal-state set of slices whose combined CPU
   utilization is at least the difference between the host's utilization
   and the target (50%).
2. *Placement*: First Fit bin packing in decreasing order of slice CPU
   usage, over bins whose capacity is the CPU headroom below the target
   utilization, with memory as a constraint; new hosts are allocated when
   the spare capacity does not suffice.

Scale-in marks the least-loaded host for release, re-dispatches its slices
onto the remaining hosts and repeats until the computed number of hosts has
been released (aborting if a re-dispatch does not fit).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from .binpack import HostBin, first_fit_decreasing
from .policy import (
    SYMPTOM_KINDS,
    ElasticityPolicy,
    ScalingAction,
    Violation,
    ViolationKind,
)
from .probes import ProbeSet
from .selection import SliceLoad, select_slices

__all__ = [
    "PlannedMigration",
    "PlannedShardOp",
    "ScalingDecision",
    "ElasticityEnforcer",
]


@dataclass(frozen=True)
class PlannedMigration:
    """One slice movement of a scaling decision."""

    slice_id: str
    from_host: str
    #: Existing host id, or a ``new-<i>`` placeholder resolved by the manager.
    to_host: str


@dataclass(frozen=True)
class PlannedShardOp:
    """One same-host shard split/merge of a scaling decision."""

    slice_id: str
    #: ``"split"`` or ``"merge"``.
    op: str
    host_id: str


@dataclass
class ScalingDecision:
    """Everything the manager must execute for one violation."""

    kind: ViolationKind
    migrations: List[PlannedMigration] = field(default_factory=list)
    new_hosts: int = 0
    release_hosts: List[str] = field(default_factory=list)
    #: Same-host shard reconfigurations (executed after migrations).
    shard_ops: List[PlannedShardOp] = field(default_factory=list)
    #: Name of the policy signal whose violation produced the decision.
    signal: str = "cpu"

    @property
    def is_empty(self) -> bool:
        return (
            not self.migrations
            and not self.new_hosts
            and not self.release_hosts
            and not self.shard_ops
        )


class ElasticityEnforcer:
    """Stateless resolver from probe rounds to scaling decisions."""

    def __init__(
        self,
        policy: ElasticityPolicy,
        host_cores: int = 8,
        host_memory_bytes: int = 8 * 1024 ** 3,
        selector=select_slices,
        telemetry=None,
    ):
        """``selector(candidates, required_cores) -> chosen`` picks the
        slices to offload; the default is the paper's min-state-transfer
        subset sum.  Alternative strategies are used by the ablation
        benchmarks.

        ``telemetry`` is an optional :class:`repro.telemetry.Telemetry`
        bundle; every resolution then bumps the ``rule`` -labelled firing
        counter and records an ``enforcer.decision`` trace event carrying
        the decision's inputs and outputs (see :meth:`resolve`).
        """
        if host_cores <= 0 or host_memory_bytes <= 0:
            raise ValueError("host resources must be positive")
        self.policy = policy
        self.host_cores = host_cores
        self.host_memory_bytes = host_memory_bytes
        self.selector = selector
        self.telemetry = telemetry

    # -- public API -----------------------------------------------------------

    def resolve(
        self,
        probes: ProbeSet,
        violation: Violation,
        verdict=None,
    ) -> Optional[ScalingDecision]:
        """Turn one policy violation into a :class:`ScalingDecision`.

        Returns ``None`` when the two-step algorithm finds no useful move
        (nothing to select, or no feasible placement).  The violation's
        :attr:`~ViolationKind.action` picks the algorithm; symptom-kind
        scale-outs (SLO breach, spill pressure) pack toward a reduced
        utilization target (``target_utilization * symptom_target_fraction``)
        so capacity is provisioned before CPU evidence exists.

        With telemetry bound, each call records an ``enforcer.decision``
        event whose attributes capture the full decision context: the
        probe window (timestamp, width, average utilization, host count),
        the fired rule and its measured value, the selected slices and
        their placement, plus hosts provisioned/released — the record the
        OBSERVABILITY.md worked example walks through.  ``verdict`` is
        the optional :class:`~repro.elastic.signals.SignalVerdict` of the
        round; non-CPU verdicts extend the record with the winning
        signal, its typed evidence, and every contending/vetoed
        violation (CPU-only rounds keep the exact historical attribute
        set).
        """
        action = violation.kind.action
        if action is ScalingAction.SCALE_OUT:
            utilization_target = None
            if violation.kind in SYMPTOM_KINDS:
                utilization_target = (
                    self.policy.target_utilization
                    * self.policy.symptom_target_fraction
                )
            decision = self._scale_out(
                probes, kind=violation.kind, utilization_target=utilization_target
            )
        elif action is ScalingAction.SCALE_IN:
            decision = self._scale_in(probes, kind=violation.kind)
        else:
            decision = self._local_rebalance(probes, violation.host_id)
        if decision is not None:
            decision.signal = violation.signal
        telemetry = self.telemetry
        if telemetry is not None:
            self._record_decision(telemetry, probes, violation, decision, verdict)
        return decision

    def _record_decision(
        self,
        telemetry,
        probes: ProbeSet,
        violation: Violation,
        decision: Optional[ScalingDecision],
        verdict=None,
    ) -> None:
        rule = violation.kind.value
        if telemetry.rule_firings is not None:
            telemetry.rule_firings.labels(rule=rule).inc()
            if decision is not None and not decision.is_empty:
                telemetry.scaling_decisions.labels(kind=rule).inc()
        tracer = telemetry.tracer
        if tracer.enabled:
            attrs = {
                "rule": rule,
                "measured": violation.measured,
                "window_time": probes.time,
                "window_s": probes.window_s,
                "avg_utilization": probes.average_utilization(),
                "hosts": len(probes.hosts),
                "actionable": decision is not None and not decision.is_empty,
            }
            if violation.host_id:
                attrs["host_id"] = violation.host_id
            if decision is not None:
                attrs["selected_slices"] = [
                    m.slice_id for m in decision.migrations
                ]
                attrs["placement"] = {
                    m.slice_id: m.to_host for m in decision.migrations
                }
                attrs["new_hosts"] = decision.new_hosts
                attrs["release_hosts"] = list(decision.release_hosts)
                attrs["shard_ops"] = [
                    (s.slice_id, s.op) for s in decision.shard_ops
                ]
            # A lone CPU verdict keeps the historical attribute set
            # byte-for-byte; multi-signal rounds append their context.
            if verdict is not None and not verdict.legacy_shape:
                attrs["signal"] = violation.signal
                attrs.update(violation.evidence_attrs())
                contending = verdict.contending
                if contending:
                    attrs["contending"] = contending
                if verdict.suppressed:
                    attrs["vetoed"] = [
                        (v.signal, v.kind.value, vetoer, reason)
                        for v, vetoer, reason in verdict.suppressed
                    ]
            tracer.event("enforcer.decision", **attrs)

    # -- helpers ------------------------------------------------------------------

    def _target_capacity(self) -> float:
        return self.policy.target_utilization * self.host_cores

    def _slice_cores(self, probes: ProbeSet, slice_probe) -> float:
        """A slice's load for selection/packing purposes.

        With backlog-aware scaling, a backlogged slice weighs its estimated
        demand (capped at the per-host target capacity so it stays
        placeable on a fresh host).
        """
        if not self.policy.backlog_aware_scaling:
            return slice_probe.cpu_cores
        return min(
            slice_probe.demand_cores(probes.window_s), self._target_capacity()
        )

    def _host_load_cores(self, probes: ProbeSet, host) -> float:
        """A host's load: measured busy cores, or estimated demand.

        Uses the same per-slice cap as :meth:`_slice_cores` so host-level
        sizing and slice-level selection stay consistent.
        """
        measured = host.cpu_utilization * host.cores
        if not self.policy.backlog_aware_scaling:
            return measured
        demand = sum(
            self._slice_cores(probes, s) for s in probes.slices_on(host.host_id)
        )
        return max(measured, demand)

    def _slice_loads(
        self, probes: ProbeSet, host_id: str, scale: float = 1.0
    ) -> List[SliceLoad]:
        return [
            SliceLoad(s.slice_id, self._slice_cores(probes, s) * scale, s.memory_bytes)
            for s in probes.slices_on(host_id)
        ]

    def _bins(
        self,
        probes: ProbeSet,
        exclude_hosts: Optional[set] = None,
        removed_load: Optional[Dict[str, float]] = None,
        removed_memory: Optional[Dict[str, int]] = None,
        load_scale: float = 1.0,
        capacity: Optional[float] = None,
    ) -> List[HostBin]:
        """Bins for the running hosts at target capacity.

        ``capacity`` overrides the per-host CPU capacity (cores) —
        symptom-triggered scale-outs pack toward a reduced target.
        """
        exclude_hosts = exclude_hosts or set()
        removed_load = removed_load or {}
        removed_memory = removed_memory or {}
        if capacity is None:
            capacity = self._target_capacity()
        bins = []
        for host in probes.hosts.values():
            if host.host_id in exclude_hosts:
                continue
            memory_used = sum(
                s.memory_bytes for s in probes.slices_on(host.host_id)
            ) - removed_memory.get(host.host_id, 0)
            bins.append(
                HostBin(
                    host_id=host.host_id,
                    cpu_capacity_cores=capacity,
                    memory_capacity_bytes=self.host_memory_bytes,
                    cpu_used_cores=max(
                        0.0,
                        self._host_load_cores(probes, host) * load_scale
                        - removed_load.get(host.host_id, 0.0),
                    ),
                    memory_used_bytes=max(0, memory_used),
                )
            )
        return bins

    @staticmethod
    def _to_migrations(
        assignments: Dict[str, str], origins: Dict[str, str]
    ) -> List[PlannedMigration]:
        return [
            PlannedMigration(slice_id=s, from_host=origins[s], to_host=dest)
            for s, dest in assignments.items()
            if origins[s] != dest
        ]

    # -- scale out ---------------------------------------------------------------------

    def _scale_out(
        self,
        probes: ProbeSet,
        kind: ViolationKind = ViolationKind.GLOBAL_OVERLOAD,
        utilization_target: Optional[float] = None,
    ) -> Optional[ScalingDecision]:
        target = (
            self.policy.target_utilization
            if utilization_target is None
            else utilization_target
        )
        capacity = target * self.host_cores

        # Backlog-driven demand is unbounded while queues drain; bound the
        # step so the fleet grows by at most max_scale_out_factor at once.
        current_hosts = max(1, len(probes.hosts))
        step_cap_cores = (
            math.ceil(current_hosts * self.policy.max_scale_out_factor)
            * capacity
        )
        total_demand = sum(
            self._host_load_cores(probes, h) for h in probes.hosts.values()
        )
        demand_scale = min(1.0, step_cap_cores / total_demand) if total_demand else 1.0

        # Step 1: select slices from overloaded hosts (most loaded first).
        to_move: List[SliceLoad] = []
        origins: Dict[str, str] = {}
        removed_load: Dict[str, float] = {}
        removed_memory: Dict[str, int] = {}
        hosts = sorted(
            probes.hosts.values(),
            key=lambda h: self._host_load_cores(probes, h),
            reverse=True,
        )
        for host in hosts:
            load = self._host_load_cores(probes, host) * demand_scale
            if load <= target * host.cores:
                continue
            required = load - target * host.cores
            selected = self.selector(
                self._slice_loads(probes, host.host_id, scale=demand_scale), required
            )
            for item in selected:
                to_move.append(item)
                origins[item.slice_id] = host.host_id
            removed_load[host.host_id] = sum(s.cpu_cores for s in selected)
            removed_memory[host.host_id] = sum(s.memory_bytes for s in selected)
        if not to_move:
            return None

        # Step 2: First Fit placement; new hosts as needed.
        bins = self._bins(
            probes,
            removed_load=removed_load,
            removed_memory=removed_memory,
            load_scale=demand_scale,
            capacity=capacity,
        )
        placement = first_fit_decreasing(
            to_move,
            bins,
            new_host_cpu_capacity=capacity,
            new_host_memory_capacity=self.host_memory_bytes,
            allow_new_hosts=True,
        )
        if placement is None:
            return None
        migrations = self._to_migrations(placement.assignments, origins)
        if not migrations:
            return None
        return ScalingDecision(
            kind=kind,
            migrations=migrations,
            new_hosts=placement.new_hosts,
        )

    # -- scale in -----------------------------------------------------------------------

    def _scale_in(
        self,
        probes: ProbeSet,
        kind: ViolationKind = ViolationKind.GLOBAL_UNDERLOAD,
    ) -> Optional[ScalingDecision]:
        current = len(probes.hosts)
        total_load = sum(
            self._host_load_cores(probes, h) for h in probes.hosts.values()
        )
        minimum_needed = max(
            self.policy.min_hosts,
            int(math.ceil(total_load / self._target_capacity()))
            if total_load > 0
            else self.policy.min_hosts,
        )
        excess = min(current - minimum_needed, current - self.policy.min_hosts)
        if excess <= 0:
            return None

        # Mark the least-loaded hosts for release and re-dispatch all their
        # slices onto the *kept* hosts.  If the kept hosts cannot absorb
        # them within the target utilization, retry with fewer releases.
        by_load = sorted(probes.hosts.values(), key=lambda h: h.cpu_utilization)
        for release_count in range(excess, 0, -1):
            release = [h.host_id for h in by_load[:release_count]]
            released_set = set(release)
            items: List[SliceLoad] = []
            origins: Dict[str, str] = {}
            for host_id in release:
                for item in self._slice_loads(probes, host_id):
                    items.append(item)
                    origins[item.slice_id] = host_id
            bins = self._bins(probes, exclude_hosts=released_set)
            placement = first_fit_decreasing(
                items,
                bins,
                new_host_cpu_capacity=self._target_capacity(),
                new_host_memory_capacity=self.host_memory_bytes,
                allow_new_hosts=False,
            )
            if placement is None:
                continue  # kept hosts too full: release fewer
            return ScalingDecision(
                kind=kind,
                migrations=self._to_migrations(placement.assignments, origins),
                release_hosts=release,
            )
        return None

    # -- local rule ------------------------------------------------------------------------

    def _local_rebalance(
        self, probes: ProbeSet, host_id: str
    ) -> Optional[ScalingDecision]:
        host = probes.hosts.get(host_id)
        if host is None:
            return None
        required = (
            self._host_load_cores(probes, host)
            - self.policy.target_utilization * host.cores
        )
        if required <= 0:
            return None
        selected = self.selector(self._slice_loads(probes, host_id), required)
        if not selected:
            return self._split_fallback(probes, host_id)
        origins = {item.slice_id: host_id for item in selected}
        bins = self._bins(
            probes,
            exclude_hosts={host_id},
        )
        # Re-allocate among existing hosts; a new host only as a last resort.
        placement = first_fit_decreasing(
            selected,
            bins,
            new_host_cpu_capacity=self._target_capacity(),
            new_host_memory_capacity=self.host_memory_bytes,
            allow_new_hosts=True,
            max_new_hosts=1,
        )
        if placement is None:
            return self._split_fallback(probes, host_id)
        migrations = self._to_migrations(placement.assignments, origins)
        if not migrations:
            return self._split_fallback(probes, host_id)
        return ScalingDecision(
            kind=ViolationKind.LOCAL_OVERLOAD,
            migrations=migrations,
            new_hosts=placement.new_hosts,
        )

    def _split_fallback(
        self, probes: ProbeSet, host_id: str
    ) -> Optional[ScalingDecision]:
        """Split the hottest shardable slice when no migration helps.

        A local overload with no movable slice (nothing selectable, or no
        feasible placement) can still be relieved from inside: cutting the
        hot slice's key range in two bounds its largest shard and gives
        the next rounds finer-grained units to select from.  Only slices
        whose handlers expose runtime sharding qualify (probe
        ``shard_count >= 1``); applicability of the split itself is
        re-checked by the runtime at execution time.
        """
        candidates = [
            probe for probe in probes.slices_on(host_id) if probe.shard_count >= 1
        ]
        if not candidates:
            return None
        hottest = max(
            candidates, key=lambda probe: (probe.cpu_cores, probe.memory_bytes)
        )
        return ScalingDecision(
            kind=ViolationKind.LOCAL_OVERLOAD,
            shard_ops=[PlannedShardOp(hottest.slice_id, "split", host_id)],
        )
