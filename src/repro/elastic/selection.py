"""Slice selection for migration: subset sum minimizing state transfer.

First step of the enforcer's two-step resolution (paper §V): find a set of
slices on an overloaded host whose summed CPU utilization is at least the
load that must leave the host.  Among all feasible sets the enforcer picks
the one with the *minimal total memory* (as reported by the probes) so the
migration transfers as little state as possible.

The subset-sum search uses dynamic programming over discretized CPU load
(pseudo-polynomial, as in the paper): ``dp[c]`` holds the minimal memory
of any subset with discretized load exactly ``c``; the answer is the best
entry at or above the required load.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

__all__ = ["SliceLoad", "select_slices", "select_slices_greedy_cpu", "select_slices_arbitrary"]


@dataclass(frozen=True)
class SliceLoad:
    """Migration-relevant view of one slice."""

    #: Logical slice id (e.g. ``"M:3"``).
    slice_id: str
    #: Load to re-place: average cores over the probe window (possibly
    #: backlog-adjusted by the enforcer).
    cpu_cores: float
    #: State to transfer if migrated — the quantity selection minimizes.
    memory_bytes: int


def select_slices(
    candidates: Sequence[SliceLoad],
    required_cpu_cores: float,
    granularity_cores: float = 0.01,
) -> List[SliceLoad]:
    """Minimal-memory subset with summed CPU ≥ ``required_cpu_cores``.

    Returns all candidates when even the full set does not reach the
    requirement, and an empty list when nothing is required.
    """
    if granularity_cores <= 0:
        raise ValueError("granularity must be positive")
    if required_cpu_cores <= 0:
        return []
    total = sum(c.cpu_cores for c in candidates)
    if total < required_cpu_cores:
        return list(candidates)

    # Discretize: floor each slice load so a subset deemed sufficient in
    # discrete units is genuinely sufficient minus at most n·granularity;
    # compensate by ceiling the requirement.
    units = [max(1, int(round(c.cpu_cores / granularity_cores))) for c in candidates]
    required_units = max(1, int(-(-required_cpu_cores // granularity_cores)))
    max_units = sum(units)
    required_units = min(required_units, max_units)

    INF = float("inf")
    # dp[c] = minimal memory of any subset with discretized load exactly c;
    # sets[c] = the chosen candidate indices (n ≤ a few dozen keeps the
    # tuple bookkeeping cheap).
    dp: List[float] = [INF] * (max_units + 1)
    dp[0] = 0.0
    sets: List[Optional[Tuple[int, ...]]] = [None] * (max_units + 1)
    sets[0] = ()
    for index, (load_units, candidate) in enumerate(zip(units, candidates)):
        for c in range(max_units - load_units, -1, -1):
            if dp[c] == INF:
                continue
            new_c = c + load_units
            new_mem = dp[c] + candidate.memory_bytes
            if new_mem < dp[new_c]:
                dp[new_c] = new_mem
                sets[new_c] = sets[c] + (index,)

    best_c = None
    best_mem = INF
    for c in range(required_units, max_units + 1):
        if dp[c] < best_mem:
            best_mem = dp[c]
            best_c = c
    if best_c is None:
        return list(candidates)
    return [candidates[i] for i in sets[best_c]]


def select_slices_greedy_cpu(
    candidates: Sequence[SliceLoad], required_cpu_cores: float
) -> List[SliceLoad]:
    """Ablation baseline: take the heaviest-CPU slices until satisfied.

    Ignores state size entirely — moving the hottest slices first minimizes
    the *number* of migrations but tends to move the state-heavy M slices,
    which is exactly what the paper's min-memory selection avoids.
    """
    if required_cpu_cores <= 0:
        return []
    chosen: List[SliceLoad] = []
    total = 0.0
    for candidate in sorted(candidates, key=lambda c: c.cpu_cores, reverse=True):
        if total >= required_cpu_cores:
            break
        chosen.append(candidate)
        total += candidate.cpu_cores
    return chosen


def select_slices_arbitrary(
    candidates: Sequence[SliceLoad], required_cpu_cores: float
) -> List[SliceLoad]:
    """Ablation baseline: first slices in (arbitrary) probe order."""
    if required_cpu_cores <= 0:
        return []
    chosen: List[SliceLoad] = []
    total = 0.0
    for candidate in candidates:
        if total >= required_cpu_cores:
            break
        chosen.append(candidate)
        total += candidate.cpu_cores
    return chosen
