"""Load probes: per-slice and per-host resource usage (paper §IV-B).

Hosts send heartbeats carrying, for each slice, CPU, memory and network
usage; the manager aggregates them per slice and per host and forwards
them to the elasticity enforcer.  In the simulation the collector samples
the exact busy-time integrals of each host's CPU scheduler and the
engine's slice statistics at a fixed heartbeat interval.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from ..cluster import Host
from ..engine import EngineRuntime
from ..filtering import CostModel
from ..metrics import percentile

__all__ = [
    "SliceProbe",
    "HostProbe",
    "DelayWindow",
    "DelayWindowAggregator",
    "ProbeSet",
    "ProbeCollector",
]


@dataclass(frozen=True)
class SliceProbe:
    """Aggregated usage of one logical slice over the last window."""

    slice_id: str
    host_id: str
    #: Average CPU cores consumed by the slice during the window.
    cpu_cores: float
    #: State footprint (bytes) — the migration cost signal.
    memory_bytes: int
    queue_length: int
    #: Events processed during the window.
    processed_delta: int = 0
    #: Key-range shards the slice's handler holds (0 = not shardable).
    shard_count: int = 0
    #: Messages parked behind the slice's credit-starved outbound
    #: channels — upstream pressure: the slice's *receivers* are the
    #: bottleneck, so scaling this slice up would not help.
    spill_depth: int = 0
    #: Outbound channels currently waiting for credits.
    starved_channels: int = 0
    #: Send credits held by messages in flight toward this slice — how
    #: close its inbox is to the configured bound (0 when backpressure
    #: is off).
    credits_outstanding: int = 0

    def demand_cores(
        self, window_s: float, cap_cores: float = 16.0, drain_windows: float = 3.0
    ) -> float:
        """Estimated cores needed to keep up *and* drain the backlog.

        Under saturation the measured ``cpu_cores`` is capped by the host's
        capacity and under-reports the offered load; the queue length says
        how far behind the slice is.  The estimate adds the cores needed to
        drain the queued events within ``drain_windows`` probe windows
        (draining over several windows tempers over-provisioning spikes),
        using the slice's own measured per-event cost.
        """
        if self.queue_length == 0:
            return self.cpu_cores
        if self.processed_delta > 0:
            per_event_core_s = self.cpu_cores * window_s / self.processed_delta
            drain = self.queue_length * per_event_core_s / (window_s * drain_windows)
        else:
            # Nothing processed but a backlog exists: at least double.
            drain = max(self.cpu_cores, 0.5)
        return min(self.cpu_cores + drain, cap_cores)


@dataclass(frozen=True)
class HostProbe:
    """Aggregated usage of one host over the last window."""

    host_id: str
    cores: int
    #: Average utilization in [0, 1] across all cores.
    cpu_utilization: float
    memory_bytes: int
    net_bytes_sent: int
    net_bytes_received: int


@dataclass(frozen=True)
class DelayWindow:
    """Notification-delay summary over the trailing probe window.

    Attached to a :class:`ProbeSet` when the collector was given a delay
    tracker (the ``slo`` policy signal requires it); ``None`` otherwise.
    """

    #: Width of the sliding window (seconds).
    window_s: float
    #: Delay samples delivered inside the window.
    count: int
    p50_s: float
    p99_s: float
    max_s: float


class DelayWindowAggregator:
    """Sliding p50/p99 over a :class:`~repro.metrics.DelayTracker`.

    Consumes the tracker's append-only sample list incrementally (an
    index, never a rescan), keeps only samples delivered within the
    trailing ``window_s``, and summarizes on demand.  Purely an observer:
    it never mutates the tracker.
    """

    def __init__(self, tracker, window_s: float):
        if window_s <= 0:
            raise ValueError("window must be positive")
        self.tracker = tracker
        self.window_s = window_s
        self._next_index = 0
        self._window = deque()  # (delivered_at, delay) pairs, in order

    def window_at(self, now: float) -> Optional[DelayWindow]:
        """The delay window as of ``now`` (``None`` when it is empty)."""
        samples = self.tracker.samples
        while self._next_index < len(samples):
            sample = samples[self._next_index]
            self._next_index += 1
            self._window.append((sample.delivered_at, sample.delay))
        horizon = now - self.window_s
        window = self._window
        while window and window[0][0] < horizon:
            window.popleft()
        if not window:
            return None
        delays = sorted(delay for _, delay in window)
        return DelayWindow(
            window_s=self.window_s,
            count=len(delays),
            p50_s=percentile(delays, 0.50),
            p99_s=percentile(delays, 0.99),
            max_s=delays[-1],
        )


@dataclass(frozen=True)
class ProbeSet:
    """One complete heartbeat round: all hosts, all slices."""

    time: float
    window_s: float
    hosts: Dict[str, HostProbe]
    slices: Dict[str, SliceProbe]
    #: Trailing notification-delay window, when the collector aggregates
    #: one (see :class:`DelayWindowAggregator`); ``None`` otherwise.
    delay: Optional[DelayWindow] = None

    def average_utilization(self) -> float:
        """Average CPU load across hosts (the global-rule metric)."""
        if not self.hosts:
            return 0.0
        return sum(h.cpu_utilization for h in self.hosts.values()) / len(self.hosts)

    def total_load_cores(self) -> float:
        """Total busy cores across all hosts."""
        return sum(h.cpu_utilization * h.cores for h in self.hosts.values())

    def slices_on(self, host_id: str) -> List[SliceProbe]:
        return [s for s in self.slices.values() if s.host_id == host_id]


class ProbeCollector:
    """Samples hosts/slices every ``interval_s`` and notifies subscribers."""

    def __init__(
        self,
        runtime: EngineRuntime,
        managed_slices: List[str],
        hosts_fn: Callable[[], List[Host]],
        cost_model: Optional[CostModel] = None,
        interval_s: float = 5.0,
        telemetry=None,
        delay_tracker=None,
        delay_window_s: float = 30.0,
    ):
        """``telemetry`` is an optional :class:`repro.telemetry.Telemetry`
        bundle; each heartbeat then also refreshes the per-slice/per-host
        gauges and bumps ``heartbeats_total`` (see OBSERVABILITY.md).
        ``delay_tracker`` is an optional :class:`~repro.metrics.DelayTracker`;
        probe sets then carry a :class:`DelayWindow` over the trailing
        ``delay_window_s`` seconds (required by the ``slo`` policy signal)."""
        if interval_s <= 0:
            raise ValueError("interval must be positive")
        self.runtime = runtime
        self.env = runtime.env
        self.managed_slices = list(managed_slices)
        self.hosts_fn = hosts_fn
        self.cost_model = cost_model or CostModel()
        self.interval_s = interval_s
        self.telemetry = telemetry
        self.delay_aggregator = (
            DelayWindowAggregator(delay_tracker, delay_window_s)
            if delay_tracker is not None
            else None
        )
        self.subscribers: List[Callable[[ProbeSet], None]] = []
        self._cpu_snapshots: Dict[str, object] = {}
        self._net_snapshots: Dict[str, object] = {}
        self._processed_counts: Dict[str, int] = {}
        self._process = None

    def subscribe(self, callback: Callable[[ProbeSet], None]) -> None:
        self.subscribers.append(callback)

    def start(self) -> None:
        if self._process is not None:
            raise RuntimeError("collector already started")
        self._process = self.env.process(self._run())

    def stop(self) -> None:
        """Stop the heartbeat loop (manager shutdown/failure)."""
        if self._process is not None and self._process.is_alive:
            self._process.interrupt("stopped")
        self._process = None

    def collect_now(self) -> ProbeSet:
        """One heartbeat round (also used directly in tests)."""
        hosts = {}
        slice_cores: Dict[str, float] = {}
        for host in self.hosts_fn():
            cpu = host.cpu
            previous = self._cpu_snapshots.get(host.host_id)
            current = cpu.snapshot()
            if previous is not None:
                utilization = cpu.utilization_between(previous, current)
                per_tag = cpu.tag_core_usage_between(previous, current)
            else:
                utilization = 0.0
                per_tag = {}
            self._cpu_snapshots[host.host_id] = current
            slice_cores.update(per_tag)

            net = self.runtime.network.stats(host.host_id)
            previous_net = self._net_snapshots.get(host.host_id)
            sent = net.bytes_sent - (previous_net.bytes_sent if previous_net else 0)
            received = net.bytes_received - (
                previous_net.bytes_received if previous_net else 0
            )
            self._net_snapshots[host.host_id] = net.snapshot()

            hosts[host.host_id] = HostProbe(
                host_id=host.host_id,
                cores=host.spec.cores,
                cpu_utilization=min(1.0, utilization),
                memory_bytes=host.memory_used,
                net_bytes_sent=sent,
                net_bytes_received=received,
            )

        slices = {}
        transport = self.runtime.transport
        for slice_id in self.managed_slices:
            stats = self.runtime.slice_stats(slice_id)
            previous_processed = self._processed_counts.get(slice_id, 0)
            self._processed_counts[slice_id] = stats["processed"]
            flow = transport.outbound_stats(slice_id)
            slices[slice_id] = SliceProbe(
                slice_id=slice_id,
                host_id=stats["host"],
                cpu_cores=slice_cores.get(slice_id, 0.0),
                memory_bytes=stats["state_bytes"] + self.cost_model.slice_base_bytes,
                queue_length=stats["queue_length"],
                processed_delta=max(0, stats["processed"] - previous_processed),
                shard_count=stats.get("shards", 0),
                spill_depth=int(flow["spill_depth"]),
                starved_channels=int(flow["starved_channels"]),
                credits_outstanding=transport.inbound_credits_outstanding(
                    self.runtime._active(slice_id)
                ),
            )
        delay = (
            self.delay_aggregator.window_at(self.env.now)
            if self.delay_aggregator is not None
            else None
        )
        probe_set = ProbeSet(
            time=self.env.now,
            window_s=self.interval_s,
            hosts=hosts,
            slices=slices,
            delay=delay,
        )
        telemetry = self.telemetry
        if telemetry is not None and telemetry.heartbeats is not None:
            self._sample_telemetry(telemetry, probe_set)
        return probe_set

    def _sample_telemetry(self, telemetry, probe_set: ProbeSet) -> None:
        """Mirror one heartbeat round into the metric registry's gauges."""
        telemetry.heartbeats.inc()
        for host in probe_set.hosts.values():
            telemetry.host_cpu_utilization.labels(host=host.host_id).set(
                host.cpu_utilization
            )
        for probe in probe_set.slices.values():
            telemetry.slice_queue_depth.labels(slice=probe.slice_id).set(
                probe.queue_length
            )
            telemetry.slice_cpu_cores.labels(slice=probe.slice_id).set(
                probe.cpu_cores
            )
            telemetry.slice_state_bytes.labels(slice=probe.slice_id).set(
                probe.memory_bytes
            )
            telemetry.transport_spill_depth.labels(slice=probe.slice_id).set(
                probe.spill_depth
            )
            telemetry.transport_credits_outstanding.labels(
                slice=probe.slice_id
            ).set(probe.credits_outstanding)

    def _run(self):
        from ..sim import Interrupt

        # Prime the snapshots so the first delivered window is meaningful.
        self.collect_now()
        try:
            while True:
                yield self.env.timeout(self.interval_s)
                probe_set = self.collect_now()
                for subscriber in list(self.subscribers):
                    subscriber(probe_set)
        except Interrupt:
            return
