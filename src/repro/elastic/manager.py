"""The E-STREAMHUB manager: configuration, heartbeats, orchestration.

The manager (paper §IV-B) owns the system configuration, collects probes
from all hosts via heartbeats, forwards them to the elasticity enforcer
and orchestrates the resulting migrations, host allocations and releases.
The whole manager state — slice placement, the managed host set, and the
migration log — is mirrored into a ZooKeeper-like coordination kernel so a
failed manager can be restarted from the shared state.

Failover (see RESILIENCE.md): when a ``checkpoint_store`` is attached,
the manager additionally persists its decision history *and the decision
currently executing* under :data:`~repro.engine.MANAGER_STATE_KEY`
before touching the system.  A standby promoted after a
:meth:`crash` (typically via :class:`~repro.coord.LeaderElection`, see
:class:`~repro.elastic.failover.ManagerFailover`) rebuilds itself with
:meth:`recover` and calls :meth:`resume_inflight` to classify every
migration of the interrupted decision as completed or rolled back —
in-flight migrations a crash kills roll back on interrupt
(:mod:`repro.engine.migration`), so the system is never left halted.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Dict, List, Optional

from ..cluster import CloudProvider, Host, Watchdog
from ..coord import CoordinationKernel, NoNodeError
from ..engine import Checkpoint, CheckpointStore, MANAGER_STATE_KEY, MigrationReport
from ..sim import Environment, Interrupt
from .binpack import NEW_HOST_PREFIX
from .enforcer import ElasticityEnforcer, ScalingDecision
from .policy import ElasticityPolicy
from .probes import ProbeCollector, ProbeSet

__all__ = ["ElasticityManager", "ManagerRecord"]

_ROOT = "/estreamhub"


@dataclass
class ManagerRecord:
    """One entry of the manager's decision history."""

    #: Simulated time the decision finished executing.
    time: float
    #: The fired rule (a :class:`ViolationKind` value string).
    kind: str
    #: Migrations the decision planned (attempted, not necessarily done).
    migrations: int
    #: Hosts the decision asked to provision.
    new_hosts: int
    #: Hosts actually released back to the provider.
    released_hosts: int
    #: Failed steps: provisioning shortfalls, failed or untargetable
    #: migrations, releases blocked by still-occupied hosts.
    failures: int = 0
    #: Same-host shard splits/merges actually completed.
    shard_ops: int = 0
    #: Policy signal whose violation produced the decision.
    signal: str = "cpu"


class ElasticityManager:
    """Drives elastic scaling of one hub deployment."""

    def __init__(
        self,
        hub,
        cloud: CloudProvider,
        engine_hosts: List[Host],
        policy: Optional[ElasticityPolicy] = None,
        enforcer: Optional[ElasticityEnforcer] = None,
        coord: Optional[CoordinationKernel] = None,
        probe_interval_s: float = 5.0,
        checkpoint_store: Optional[CheckpointStore] = None,
        migration_timeout_s: Optional[float] = None,
    ):
        """Wire a manager to one deployed hub.

        ``engine_hosts`` is the initial managed host set (at least one);
        the manager owns membership from here on — provisioning into and
        releasing from ``cloud`` as the enforcer decides.  ``policy``
        defaults to the hub's configured policy group
        (``hub.config.policy``, the ``REPRO_POLICY_*`` knobs) when the
        hub carries one, else to the paper's policy; ``enforcer`` and
        ``coord`` default to the two-step enforcer sized to the
        provider's host spec and a fresh coordination kernel.
        ``probe_interval_s`` is the heartbeat period (paper: 5 s).  The
        hub's telemetry bundle, when present, is inherited and threaded
        into the collector, the signal stack and the enforcer.
        """
        self.hub = hub
        self.cloud = cloud
        self.env: Environment = hub.env
        if policy is None:
            policy_group = getattr(getattr(hub, "config", None), "policy", None)
            policy = (
                policy_group.policy()
                if policy_group is not None
                else ElasticityPolicy()
            )
        self.policy = policy
        #: Telemetry bundle inherited from the hub (``None`` when the hub
        #: runs without one); threaded into the collector and enforcer.
        self.telemetry = getattr(hub, "telemetry", None)
        #: The stateful signal stack of this control loop; one instance
        #: observes every probe round so sustain streaks stay honest.
        self.signal_stack = self.policy.signal_stack(telemetry=self.telemetry)
        self.enforcer = enforcer or ElasticityEnforcer(
            self.policy,
            host_cores=cloud.spec.cores,
            host_memory_bytes=cloud.spec.memory_bytes,
            telemetry=self.telemetry,
        )
        if self.enforcer.telemetry is None:
            self.enforcer.telemetry = self.telemetry
        self.coord = coord or CoordinationKernel()
        self.engine_hosts: List[Host] = list(engine_hosts)
        if not self.engine_hosts:
            raise ValueError("need at least one initial engine host")
        delay_tracker = (
            getattr(hub, "delay_tracker", None)
            if self.signal_stack.wants_delay_window
            else None
        )
        self.collector = ProbeCollector(
            hub.runtime,
            hub.engine_slice_ids(),
            hosts_fn=lambda: list(self.engine_hosts),
            cost_model=hub.config.cost_model,
            interval_s=probe_interval_s,
            telemetry=self.telemetry,
            delay_tracker=delay_tracker,
            delay_window_s=self.policy.slo_window_s,
        )
        self.collector.subscribe(self._on_probes)
        #: Extra probe listeners (experiment recorders).
        self.probe_listeners = []
        self.history: List[ManagerRecord] = []
        self.migration_reports: List[MigrationReport] = []
        #: Completed :class:`~repro.engine.ShardOpReport` records.
        self.shard_op_reports = []
        self._executing = False
        self._last_action_at = -float("inf")
        self._started = False
        #: Stable store for the manager's own state (enables failover).
        self.checkpoint_store = checkpoint_store
        self.migration_timeout_s = migration_timeout_s
        self._watchdog = (
            Watchdog(self.env, self.telemetry)
            if migration_timeout_s is not None
            else None
        )
        self._exec_process = None
        #: Migration/reshard processes of the decision being executed.
        self._inflight_ops: List = []
        self.manager_crashes = 0
        #: Fencing flag: once crashed, this manager instance may never
        #: write to the checkpoint store again (a promoted standby owns
        #: the epoch chain now).
        self.crashed = False
        #: ``(slice_id, outcome)`` pairs from :meth:`resume_inflight`.
        self.failover_outcomes: List = []
        self._manager_epoch = 0
        if checkpoint_store is not None:
            stored = checkpoint_store.get(MANAGER_STATE_KEY)
            if stored is not None:
                # Standby: continue the epoch chain and inherit the
                # decision history the crashed primary persisted.
                self._manager_epoch = stored.epoch
                self.history = [
                    ManagerRecord(**record)
                    for record in stored.state.get("history", [])
                ]
        self._init_config()

    # -- lifecycle ------------------------------------------------------------

    def start(self) -> None:
        """Begin heartbeat collection and policy enforcement."""
        if self._started:
            raise RuntimeError("manager already started")
        self._started = True
        self.collector.start()

    def stop(self) -> None:
        """Stop enforcing (manager shutdown or simulated failure)."""
        self.collector.stop()
        self._started = False

    @property
    def host_count(self) -> int:
        """Number of engine hosts currently managed."""
        return len(self.engine_hosts)

    @property
    def in_grace_period(self) -> bool:
        """Whether the post-action settle window is still running."""
        return (self.env.now - self._last_action_at) < self.policy.grace_period_s

    # -- probe handling -----------------------------------------------------------

    def _on_probes(self, probes: ProbeSet) -> None:
        telemetry = self.telemetry
        if telemetry is not None and telemetry.engine_hosts is not None:
            telemetry.engine_hosts.set(len(self.engine_hosts))
        for listener in list(self.probe_listeners):
            listener(probes)
        # The stack observes *every* round — sustained-trigger signals
        # count consecutive rounds, and evaluation never touches the
        # engine — but decisions are only acted on outside grace periods.
        verdict = self.signal_stack.evaluate(probes)
        if self._executing or self.in_grace_period:
            return
        violation = verdict.winner
        if violation is None:
            return
        decision = self.enforcer.resolve(probes, violation, verdict=verdict)
        if decision is None or decision.is_empty:
            return
        self._executing = True
        self._exec_process = self.env.process(self._execute(decision))

    # -- decision execution ----------------------------------------------------------

    def execute_decision(self, decision: ScalingDecision):
        """Execute ``decision`` outside the probe loop (operator action).

        The chaos scenarios use this to drive a *known* migration or
        reshard through the manager's full execution path — persistence,
        spans, failover accounting — at a deterministic time instead of
        waiting for the policy to fire.  Returns the execution process.
        """
        if self._executing:
            raise RuntimeError("a decision is already executing")
        self._executing = True
        self._exec_process = self.env.process(self._execute(decision))
        return self._exec_process

    def _execute(self, decision: ScalingDecision):
        failures = 0
        released = 0
        shard_ops_done = 0
        completed = False
        # Persist the decision *before* acting: a standby that takes
        # over mid-execution reads it back and classifies each planned
        # migration as completed or rolled back (resume_inflight).
        self._persist_state(inflight=self._decision_record(decision))
        tracer = self.telemetry.tracer if self.telemetry is not None else None
        span = None
        if tracer is not None and tracer.enabled:
            attrs = {
                "kind": decision.kind.value,
                "migrations": len(decision.migrations),
                "new_hosts": decision.new_hosts,
                "shard_ops": len(decision.shard_ops),
            }
            # CPU-driven decisions keep the historical span shape.
            if decision.signal != "cpu":
                attrs["signal"] = decision.signal
            span = tracer.start_span("enforcer.execute", **attrs)
        try:
            new_hosts: Dict[str, Host] = {}
            for index in range(decision.new_hosts):
                try:
                    host = yield from self.cloud.provision()
                except RuntimeError:
                    # Provider capacity exhausted: proceed with what we got;
                    # migrations targeting missing hosts count as failures.
                    failures += decision.new_hosts - index
                    break
                placeholder = f"{NEW_HOST_PREFIX}{index}"
                new_hosts[placeholder] = host
                self.engine_hosts.append(host)
                self._record_host(host)

            hosts_by_id = {h.host_id: h for h in self.engine_hosts}
            migrations = []
            for planned in decision.migrations:
                destination = new_hosts.get(planned.to_host) or hosts_by_id.get(
                    planned.to_host
                )
                if destination is None:
                    failures += 1
                    continue
                process = self.hub.runtime.migrate(planned.slice_id, destination)
                migrations.append(process)
                self._inflight_ops.append(process)
            disarms = []
            if self._watchdog is not None:
                disarms = [
                    self._watchdog.guard(
                        process,
                        self.migration_timeout_s,
                        cause="migration_timeout",
                    )
                    for process in migrations
                ]
            for process in migrations:
                try:
                    report = yield process
                except Interrupt:
                    # The manager itself was crashed/timed out — do NOT
                    # swallow this as a migration failure, or a zombie
                    # manager keeps executing (and persisting) after a
                    # standby has taken over.
                    raise
                except Exception:
                    failures += 1
                    continue
                self.migration_reports.append(report)
                self._record_migration(report)
            for disarm in disarms:
                disarm()

            for planned in decision.shard_ops:
                process = self.hub.runtime.reshard(planned.slice_id, planned.op)
                self._inflight_ops.append(process)
                try:
                    report = yield process
                except Interrupt:
                    raise  # manager crash — see the migration loop above
                except Exception:
                    # Not applicable anymore (e.g. a single-subscription
                    # shard) or the slice started migrating meanwhile.
                    failures += 1
                    continue
                shard_ops_done += 1
                self.shard_op_reports.append(report)

            released = 0
            placement = self.hub.runtime.placement()
            occupied = set(placement.values())
            for host_id in decision.release_hosts:
                host = hosts_by_id.get(host_id)
                if host is None or host_id in occupied:
                    failures += 1
                    continue
                self.engine_hosts.remove(host)
                self.cloud.release(host)
                self._unrecord_host(host_id)
                released += 1

            self._sync_placement()
            self.history.append(
                ManagerRecord(
                    time=self.env.now,
                    kind=decision.kind.value,
                    migrations=len(decision.migrations),
                    new_hosts=decision.new_hosts,
                    released_hosts=released,
                    failures=failures,
                    shard_ops=shard_ops_done,
                    signal=decision.signal,
                )
            )
            completed = True
            self._persist_state(inflight=None)
        finally:
            if span is not None:
                if not completed:
                    # A crash or watchdog interrupt unwound the decision
                    # mid-flight; close the span anyway so phase spans
                    # always tile the execution interval.
                    span.attrs["outcome"] = "aborted"
                tracer.finish_span(
                    span,
                    released_hosts=released,
                    failures=failures,
                    shard_ops=shard_ops_done,
                )
            self._last_action_at = self.env.now
            self._executing = False
            self._exec_process = None
            self._inflight_ops = []

    # -- failover (see RESILIENCE.md) ------------------------------------------------

    def _decision_record(self, decision: ScalingDecision) -> Dict:
        return {
            "kind": decision.kind.value,
            "signal": decision.signal,
            "migrations": [
                {
                    "slice": planned.slice_id,
                    "from": planned.from_host,
                    "to": planned.to_host,
                }
                for planned in decision.migrations
            ],
            "new_hosts": decision.new_hosts,
            "release_hosts": list(decision.release_hosts),
            "shard_ops": [
                {
                    "slice": planned.slice_id,
                    "op": planned.op,
                    "host": planned.host_id,
                    # Pre-op shard count: lets a standby classify the
                    # op as completed (count changed) or rolled back.
                    "shards_before": self._shard_count(planned.slice_id),
                }
                for planned in decision.shard_ops
            ],
            "started_at": self.env.now,
        }

    def _shard_count(self, slice_id: str) -> Optional[int]:
        try:
            return self.hub.runtime.slice_stats(slice_id)["shards"]
        except Exception:
            return None

    def _persist_state(self, inflight: Optional[Dict]) -> None:
        """Checkpoint history + the in-flight decision to stable storage."""
        if self.checkpoint_store is None or self.crashed:
            # A crashed instance is fenced off stable storage: only the
            # promoted standby may continue the epoch chain.
            return
        self._manager_epoch += 1
        self.checkpoint_store.put(
            Checkpoint(
                slice_id=MANAGER_STATE_KEY,
                epoch=self._manager_epoch,
                captured_at=self.env.now,
                state={
                    "history": [
                        dataclasses.asdict(record) for record in self.history
                    ],
                    "inflight": inflight,
                },
                vector={},
                seq_counters={},
                state_bytes=0,
            )
        )

    def crash(self, kill_inflight: bool = True) -> List:
        """Simulate a manager process crash (chaos scenarios).

        Stops the control loop mid-whatever-it-was-doing.  With
        ``kill_inflight`` (the default — the manager drives the
        migration protocol, so its death strands the operation) every
        in-flight migration/reshard is interrupted too and rolls back
        via :mod:`repro.engine.migration`'s abort path.  With
        ``kill_inflight=False`` the operations survive as orphans
        (modeling an engine that completes a handoff already in its
        final phase) and are returned so a standby can await them in
        :meth:`resume_inflight`.
        """
        self.manager_crashes += 1
        self.crashed = True
        self.collector.stop()
        self._started = False
        orphans: List = []
        exec_process = self._exec_process
        if exec_process is not None and exec_process.is_alive:
            ops = [p for p in self._inflight_ops if p.is_alive]
            exec_process.interrupt("manager_crash")
            exec_process.defuse()
            if kill_inflight:
                for process in ops:
                    if process.is_alive:
                        process.interrupt("manager_crash")
                        process.defuse()
            else:
                orphans = ops
        return orphans

    def resume_inflight(self, orphans: Optional[List] = None):
        """Settle the decision a crashed predecessor left executing.

        Awaits any orphaned operations handed over from
        :meth:`crash(kill_inflight=False) <crash>`, then reads the
        persisted in-flight decision back from the checkpoint store and
        classifies each planned migration against the live placement:
        ``completed`` (the slice moved off its origin) or
        ``rolled_back`` (still on the origin — the interrupt rolled it
        back).  Clears the in-flight record and re-syncs the placement
        mirror either way.

        Returns the coordinating process (value: list of
        ``(slice_id, outcome)`` pairs).
        """
        return self.env.process(self._resume_inflight(orphans or []))

    def _resume_inflight(self, orphans: List):
        tracer = self.telemetry.tracer if self.telemetry is not None else None
        span = None
        if tracer is not None and tracer.enabled:
            span = tracer.start_span("recovery.failover", orphans=len(orphans))
        for process in orphans:
            if not process.is_alive:
                continue
            try:
                report = yield process
            except Exception:
                continue  # interrupted elsewhere: rolled back
            if isinstance(report, MigrationReport):
                self.migration_reports.append(report)
                self._record_migration(report)
        stored = (
            self.checkpoint_store.get(MANAGER_STATE_KEY)
            if self.checkpoint_store is not None
            else None
        )
        inflight = stored.state.get("inflight") if stored is not None else None
        outcomes = []
        failures = 0
        if inflight is not None:
            placement = self.hub.runtime.placement()
            for planned in inflight["migrations"]:
                current = placement.get(planned["slice"])
                if current is not None and current != planned["from"]:
                    outcomes.append((planned["slice"], "completed"))
                else:
                    outcomes.append((planned["slice"], "rolled_back"))
                    failures += 1
            shard_ops_done = 0
            for planned in inflight.get("shard_ops", []):
                before = planned.get("shards_before")
                now = self._shard_count(planned["slice"])
                if before is None or now is None:
                    continue  # count unavailable: leave unclassified
                grew = now > before
                completed_op = grew if planned["op"] == "split" else now < before
                if completed_op:
                    outcomes.append((planned["slice"], "completed"))
                    shard_ops_done += 1
                else:
                    outcomes.append((planned["slice"], "rolled_back"))
                    failures += 1
            self.history.append(
                ManagerRecord(
                    time=self.env.now,
                    kind=inflight["kind"],
                    migrations=len(inflight["migrations"]),
                    new_hosts=inflight["new_hosts"],
                    released_hosts=0,
                    failures=failures,
                    shard_ops=shard_ops_done,
                    signal=inflight["signal"],
                )
            )
        self.failover_outcomes = outcomes
        telemetry = self.telemetry
        if telemetry is not None and telemetry.manager_failovers is not None:
            telemetry.manager_failovers.inc()
        self._persist_state(inflight=None)
        self._sync_placement()
        if span is not None:
            tracer.finish_span(
                span,
                migrations=len(outcomes),
                rolled_back=failures,
                completed=len(outcomes) - failures,
            )
        return outcomes

    # -- coordination-kernel mirror ------------------------------------------------------

    def _init_config(self) -> None:
        self.coord.ensure_path(f"{_ROOT}/placement")
        self.coord.ensure_path(f"{_ROOT}/hosts")
        self.coord.ensure_path(f"{_ROOT}/migrations")
        for host in self.engine_hosts:
            self._record_host(host)
        self._sync_placement()

    def _record_host(self, host: Host) -> None:
        try:
            self.coord.create(
                f"{_ROOT}/hosts/{host.host_id}", data={"cores": host.spec.cores}
            )
        except Exception:
            pass  # restart: node already present

    def _unrecord_host(self, host_id: str) -> None:
        try:
            self.coord.delete(f"{_ROOT}/hosts/{host_id}")
        except NoNodeError:
            pass

    def _sync_placement(self) -> None:
        placement = self.hub.runtime.placement()
        for slice_id, host_id in placement.items():
            path = f"{_ROOT}/placement/{slice_id.replace(':', '_')}"
            if self.coord.exists(path) is None:
                self.coord.create(path, data=host_id)
            else:
                self.coord.set(path, host_id)

    def _record_migration(self, report: MigrationReport) -> None:
        self.coord.create(
            f"{_ROOT}/migrations/m-",
            data={
                "slice": report.slice_id,
                "from": report.source_host,
                "to": report.destination_host,
                "duration_s": report.duration_s,
            },
            sequential=True,
        )

    # -- recovery --------------------------------------------------------------------------

    @classmethod
    def recover(
        cls,
        hub,
        cloud: CloudProvider,
        coord: CoordinationKernel,
        policy: Optional[ElasticityPolicy] = None,
        enforcer: Optional[ElasticityEnforcer] = None,
        probe_interval_s: float = 5.0,
        checkpoint_store: Optional[CheckpointStore] = None,
        migration_timeout_s: Optional[float] = None,
    ) -> "ElasticityManager":
        """Rebuild a manager from the configuration stored in ``coord``.

        Used after a manager failure (paper §IV-B): the managed host set
        and slice placement were mirrored into the coordination kernel, so
        a standby manager (typically promoted by a
        :class:`~repro.coord.LeaderElection`) resumes from shared state.
        Pass the primary's ``checkpoint_store`` to also inherit its
        decision history and settle any in-flight decision
        (:meth:`resume_inflight`).
        """
        host_ids = coord.get_children(f"{_ROOT}/hosts")
        engine_hosts = []
        for host_id in host_ids:
            host = cloud.host(host_id)
            if not host.released:
                engine_hosts.append(host)
        return cls(
            hub,
            cloud,
            engine_hosts,
            policy=policy,
            enforcer=enforcer,
            coord=coord,
            probe_interval_s=probe_interval_s,
            checkpoint_store=checkpoint_store,
            migration_timeout_s=migration_timeout_s,
        )

    def stored_placement(self) -> Dict[str, str]:
        """Slice placement as recorded in the coordination kernel.

        A restarted manager rebuilds its view of the system from this,
        tolerating a manager failure (paper §IV-B).
        """
        placement = {}
        for name in self.coord.get_children(f"{_ROOT}/placement"):
            data, _ = self.coord.get(f"{_ROOT}/placement/{name}")
            placement[name.replace("_", ":")] = data
        return placement

    def stored_hosts(self) -> List[str]:
        """Managed host ids as recorded in the coordination kernel."""
        return self.coord.get_children(f"{_ROOT}/hosts")
