"""The E-STREAMHUB manager: configuration, heartbeats, orchestration.

The manager (paper §IV-B) owns the system configuration, collects probes
from all hosts via heartbeats, forwards them to the elasticity enforcer
and orchestrates the resulting migrations, host allocations and releases.
The whole manager state — slice placement, the managed host set, and the
migration log — is mirrored into a ZooKeeper-like coordination kernel so a
failed manager can be restarted from the shared state.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..cluster import CloudProvider, Host
from ..coord import CoordinationKernel, NoNodeError
from ..engine import MigrationReport
from ..sim import Environment
from .binpack import NEW_HOST_PREFIX
from .enforcer import ElasticityEnforcer, ScalingDecision
from .policy import ElasticityPolicy
from .probes import ProbeCollector, ProbeSet

__all__ = ["ElasticityManager", "ManagerRecord"]

_ROOT = "/estreamhub"


@dataclass
class ManagerRecord:
    """One entry of the manager's decision history."""

    #: Simulated time the decision finished executing.
    time: float
    #: The fired rule (a :class:`ViolationKind` value string).
    kind: str
    #: Migrations the decision planned (attempted, not necessarily done).
    migrations: int
    #: Hosts the decision asked to provision.
    new_hosts: int
    #: Hosts actually released back to the provider.
    released_hosts: int
    #: Failed steps: provisioning shortfalls, failed or untargetable
    #: migrations, releases blocked by still-occupied hosts.
    failures: int = 0
    #: Same-host shard splits/merges actually completed.
    shard_ops: int = 0
    #: Policy signal whose violation produced the decision.
    signal: str = "cpu"


class ElasticityManager:
    """Drives elastic scaling of one hub deployment."""

    def __init__(
        self,
        hub,
        cloud: CloudProvider,
        engine_hosts: List[Host],
        policy: Optional[ElasticityPolicy] = None,
        enforcer: Optional[ElasticityEnforcer] = None,
        coord: Optional[CoordinationKernel] = None,
        probe_interval_s: float = 5.0,
    ):
        """Wire a manager to one deployed hub.

        ``engine_hosts`` is the initial managed host set (at least one);
        the manager owns membership from here on — provisioning into and
        releasing from ``cloud`` as the enforcer decides.  ``policy``
        defaults to the hub's configured policy group
        (``hub.config.policy``, the ``REPRO_POLICY_*`` knobs) when the
        hub carries one, else to the paper's policy; ``enforcer`` and
        ``coord`` default to the two-step enforcer sized to the
        provider's host spec and a fresh coordination kernel.
        ``probe_interval_s`` is the heartbeat period (paper: 5 s).  The
        hub's telemetry bundle, when present, is inherited and threaded
        into the collector, the signal stack and the enforcer.
        """
        self.hub = hub
        self.cloud = cloud
        self.env: Environment = hub.env
        if policy is None:
            policy_group = getattr(getattr(hub, "config", None), "policy", None)
            policy = (
                policy_group.policy()
                if policy_group is not None
                else ElasticityPolicy()
            )
        self.policy = policy
        #: Telemetry bundle inherited from the hub (``None`` when the hub
        #: runs without one); threaded into the collector and enforcer.
        self.telemetry = getattr(hub, "telemetry", None)
        #: The stateful signal stack of this control loop; one instance
        #: observes every probe round so sustain streaks stay honest.
        self.signal_stack = self.policy.signal_stack(telemetry=self.telemetry)
        self.enforcer = enforcer or ElasticityEnforcer(
            self.policy,
            host_cores=cloud.spec.cores,
            host_memory_bytes=cloud.spec.memory_bytes,
            telemetry=self.telemetry,
        )
        if self.enforcer.telemetry is None:
            self.enforcer.telemetry = self.telemetry
        self.coord = coord or CoordinationKernel()
        self.engine_hosts: List[Host] = list(engine_hosts)
        if not self.engine_hosts:
            raise ValueError("need at least one initial engine host")
        delay_tracker = (
            getattr(hub, "delay_tracker", None)
            if self.signal_stack.wants_delay_window
            else None
        )
        self.collector = ProbeCollector(
            hub.runtime,
            hub.engine_slice_ids(),
            hosts_fn=lambda: list(self.engine_hosts),
            cost_model=hub.config.cost_model,
            interval_s=probe_interval_s,
            telemetry=self.telemetry,
            delay_tracker=delay_tracker,
            delay_window_s=self.policy.slo_window_s,
        )
        self.collector.subscribe(self._on_probes)
        #: Extra probe listeners (experiment recorders).
        self.probe_listeners = []
        self.history: List[ManagerRecord] = []
        self.migration_reports: List[MigrationReport] = []
        #: Completed :class:`~repro.engine.ShardOpReport` records.
        self.shard_op_reports = []
        self._executing = False
        self._last_action_at = -float("inf")
        self._started = False
        self._init_config()

    # -- lifecycle ------------------------------------------------------------

    def start(self) -> None:
        """Begin heartbeat collection and policy enforcement."""
        if self._started:
            raise RuntimeError("manager already started")
        self._started = True
        self.collector.start()

    def stop(self) -> None:
        """Stop enforcing (manager shutdown or simulated failure)."""
        self.collector.stop()
        self._started = False

    @property
    def host_count(self) -> int:
        """Number of engine hosts currently managed."""
        return len(self.engine_hosts)

    @property
    def in_grace_period(self) -> bool:
        """Whether the post-action settle window is still running."""
        return (self.env.now - self._last_action_at) < self.policy.grace_period_s

    # -- probe handling -----------------------------------------------------------

    def _on_probes(self, probes: ProbeSet) -> None:
        telemetry = self.telemetry
        if telemetry is not None and telemetry.engine_hosts is not None:
            telemetry.engine_hosts.set(len(self.engine_hosts))
        for listener in list(self.probe_listeners):
            listener(probes)
        # The stack observes *every* round — sustained-trigger signals
        # count consecutive rounds, and evaluation never touches the
        # engine — but decisions are only acted on outside grace periods.
        verdict = self.signal_stack.evaluate(probes)
        if self._executing or self.in_grace_period:
            return
        violation = verdict.winner
        if violation is None:
            return
        decision = self.enforcer.resolve(probes, violation, verdict=verdict)
        if decision is None or decision.is_empty:
            return
        self._executing = True
        self.env.process(self._execute(decision))

    # -- decision execution ----------------------------------------------------------

    def _execute(self, decision: ScalingDecision):
        failures = 0
        released = 0
        shard_ops_done = 0
        tracer = self.telemetry.tracer if self.telemetry is not None else None
        span = None
        if tracer is not None and tracer.enabled:
            attrs = {
                "kind": decision.kind.value,
                "migrations": len(decision.migrations),
                "new_hosts": decision.new_hosts,
                "shard_ops": len(decision.shard_ops),
            }
            # CPU-driven decisions keep the historical span shape.
            if decision.signal != "cpu":
                attrs["signal"] = decision.signal
            span = tracer.start_span("enforcer.execute", **attrs)
        try:
            new_hosts: Dict[str, Host] = {}
            for index in range(decision.new_hosts):
                try:
                    host = yield from self.cloud.provision()
                except RuntimeError:
                    # Provider capacity exhausted: proceed with what we got;
                    # migrations targeting missing hosts count as failures.
                    failures += decision.new_hosts - index
                    break
                placeholder = f"{NEW_HOST_PREFIX}{index}"
                new_hosts[placeholder] = host
                self.engine_hosts.append(host)
                self._record_host(host)

            hosts_by_id = {h.host_id: h for h in self.engine_hosts}
            migrations = []
            for planned in decision.migrations:
                destination = new_hosts.get(planned.to_host) or hosts_by_id.get(
                    planned.to_host
                )
                if destination is None:
                    failures += 1
                    continue
                migrations.append(self.hub.runtime.migrate(planned.slice_id, destination))
            for process in migrations:
                try:
                    report = yield process
                except Exception:
                    failures += 1
                    continue
                self.migration_reports.append(report)
                self._record_migration(report)

            for planned in decision.shard_ops:
                process = self.hub.runtime.reshard(planned.slice_id, planned.op)
                try:
                    report = yield process
                except Exception:
                    # Not applicable anymore (e.g. a single-subscription
                    # shard) or the slice started migrating meanwhile.
                    failures += 1
                    continue
                shard_ops_done += 1
                self.shard_op_reports.append(report)

            released = 0
            placement = self.hub.runtime.placement()
            occupied = set(placement.values())
            for host_id in decision.release_hosts:
                host = hosts_by_id.get(host_id)
                if host is None or host_id in occupied:
                    failures += 1
                    continue
                self.engine_hosts.remove(host)
                self.cloud.release(host)
                self._unrecord_host(host_id)
                released += 1

            self._sync_placement()
            self.history.append(
                ManagerRecord(
                    time=self.env.now,
                    kind=decision.kind.value,
                    migrations=len(decision.migrations),
                    new_hosts=decision.new_hosts,
                    released_hosts=released,
                    failures=failures,
                    shard_ops=shard_ops_done,
                    signal=decision.signal,
                )
            )
        finally:
            if span is not None:
                tracer.finish_span(
                    span,
                    released_hosts=released,
                    failures=failures,
                    shard_ops=shard_ops_done,
                )
            self._last_action_at = self.env.now
            self._executing = False

    # -- coordination-kernel mirror ------------------------------------------------------

    def _init_config(self) -> None:
        self.coord.ensure_path(f"{_ROOT}/placement")
        self.coord.ensure_path(f"{_ROOT}/hosts")
        self.coord.ensure_path(f"{_ROOT}/migrations")
        for host in self.engine_hosts:
            self._record_host(host)
        self._sync_placement()

    def _record_host(self, host: Host) -> None:
        try:
            self.coord.create(
                f"{_ROOT}/hosts/{host.host_id}", data={"cores": host.spec.cores}
            )
        except Exception:
            pass  # restart: node already present

    def _unrecord_host(self, host_id: str) -> None:
        try:
            self.coord.delete(f"{_ROOT}/hosts/{host_id}")
        except NoNodeError:
            pass

    def _sync_placement(self) -> None:
        placement = self.hub.runtime.placement()
        for slice_id, host_id in placement.items():
            path = f"{_ROOT}/placement/{slice_id.replace(':', '_')}"
            if self.coord.exists(path) is None:
                self.coord.create(path, data=host_id)
            else:
                self.coord.set(path, host_id)

    def _record_migration(self, report: MigrationReport) -> None:
        self.coord.create(
            f"{_ROOT}/migrations/m-",
            data={
                "slice": report.slice_id,
                "from": report.source_host,
                "to": report.destination_host,
                "duration_s": report.duration_s,
            },
            sequential=True,
        )

    # -- recovery --------------------------------------------------------------------------

    @classmethod
    def recover(
        cls,
        hub,
        cloud: CloudProvider,
        coord: CoordinationKernel,
        policy: Optional[ElasticityPolicy] = None,
        enforcer: Optional[ElasticityEnforcer] = None,
        probe_interval_s: float = 5.0,
    ) -> "ElasticityManager":
        """Rebuild a manager from the configuration stored in ``coord``.

        Used after a manager failure (paper §IV-B): the managed host set
        and slice placement were mirrored into the coordination kernel, so
        a standby manager (typically promoted by a
        :class:`~repro.coord.LeaderElection`) resumes from shared state.
        """
        host_ids = coord.get_children(f"{_ROOT}/hosts")
        engine_hosts = []
        for host_id in host_ids:
            host = cloud.host(host_id)
            if not host.released:
                engine_hosts.append(host)
        return cls(
            hub,
            cloud,
            engine_hosts,
            policy=policy,
            enforcer=enforcer,
            coord=coord,
            probe_interval_s=probe_interval_s,
        )

    def stored_placement(self) -> Dict[str, str]:
        """Slice placement as recorded in the coordination kernel.

        A restarted manager rebuilds its view of the system from this,
        tolerating a manager failure (paper §IV-B).
        """
        placement = {}
        for name in self.coord.get_children(f"{_ROOT}/placement"):
            data, _ = self.coord.get(f"{_ROOT}/placement/{name}")
            placement[name.replace("_", ":")] = data
        return placement

    def stored_hosts(self) -> List[str]:
        """Managed host ids as recorded in the coordination kernel."""
        return self.coord.get_children(f"{_ROOT}/hosts")
