"""Pluggable policy signals: who may ask the enforcer to act, and why.

A **policy signal** looks at one probe round (:class:`ProbeSet` plus the
windowed telemetry it carries) and answers "is a rule being violated?"
with zero or more evidence-carrying :class:`Violation`\\s.  Three signals
ship:

* :class:`CpuBandSignal` (``cpu``) — the paper's §V global/local CPU band
  rules, extracted verbatim from the pre-signal ``ElasticityPolicy.check``.
* :class:`DelaySloSignal` (``slo``) — windowed p99 of
  ``notification_delay_seconds`` against a target SLO; fires *before* CPU
  saturates because tail delay climbs while queues build.
* :class:`SpillPressureSignal` (``spill``) — sustained transport
  spill/starvation pressure (DESIGN.md §9); upstream credit starvation
  appears before the bottleneck slice's CPU does.

**Arbitration** (:class:`SignalStack.evaluate`) is deterministic:

1. Every enabled signal evaluates the round, in stack order; all
   violations are recorded (telemetry + decision span), not just the
   winner.
2. Scale-in requests are dropped while any signal *vetoes* release
   (e.g. p99 still near the SLO, spill pressure still recent) — the
   "release later" half of symptom-driven elasticity.
3. The winner is the minimum of ``(action rank, stack position,
   intra-signal order)`` where scale-out < rebalance < scale-in: adding
   capacity under overload evidence always beats releasing it, ties go
   to the earlier signal in the configured stack.

Determinism: signals are pure functions of the probe round plus integer
round counters (sustain/clear streaks), probe rounds arrive at fixed
simulated times, and no wall-clock or randomness is consulted — two runs
with equal inputs produce equal verdicts.  With the default single-signal
``cpu`` stack, the verdict is exactly the pre-signal ``check()`` result.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Mapping, Optional, Tuple

from .policy import ScalingAction, Violation, ViolationKind
from .probes import ProbeSet

__all__ = [
    "SIGNAL_NAMES",
    "CpuBandEvidence",
    "DelaySloEvidence",
    "SpillEvidence",
    "CpuBandSignal",
    "DelaySloSignal",
    "SpillPressureSignal",
    "SignalVerdict",
    "SignalStack",
]

#: The registered signal names, in documentation order.
SIGNAL_NAMES = ("cpu", "slo", "spill")

#: Arbitration rank of each action class (lower wins).
_ACTION_RANK = {
    ScalingAction.SCALE_OUT: 0,
    ScalingAction.REBALANCE: 1,
    ScalingAction.SCALE_IN: 2,
}


@dataclass(frozen=True)
class CpuBandEvidence:
    """Why a CPU band rule fired."""

    #: The violating measurement — average (global rules) or single-host
    #: (local rule) CPU utilization, in [0, 1].
    utilization: float
    #: The band edge that was crossed.
    threshold: float
    #: Hosts that reported in the round.
    hosts: int

    @property
    def headline(self) -> float:
        return self.utilization

    def attrs(self) -> Mapping[str, object]:
        return {
            "cpu_utilization": self.utilization,
            "cpu_threshold": self.threshold,
            "cpu_hosts": self.hosts,
        }


@dataclass(frozen=True)
class DelaySloEvidence:
    """Why the delay-SLO signal fired."""

    #: Windowed p99 notification delay (seconds).
    p99_s: float
    #: The configured SLO target (seconds).
    slo_s: float
    #: Delay samples inside the window.
    samples: int
    #: Width of the sliding window (seconds).
    window_s: float
    #: Consecutive probe rounds the condition held.
    sustained_rounds: int

    @property
    def headline(self) -> float:
        return self.p99_s

    def attrs(self) -> Mapping[str, object]:
        return {
            "slo_p99_s": self.p99_s,
            "slo_target_s": self.slo_s,
            "slo_samples": self.samples,
            "slo_window_s": self.window_s,
            "slo_sustained_rounds": self.sustained_rounds,
        }


@dataclass(frozen=True)
class SpillEvidence:
    """Why the spill-pressure signal fired."""

    #: Messages parked in credit-starved spill queues, summed over slices.
    spill_depth: int
    #: Credit-starved outbound channels, summed over slices.
    starved_channels: int
    #: Slice with the deepest spill queue.
    worst_slice: str
    #: Consecutive probe rounds the pressure held.
    sustained_rounds: int

    @property
    def headline(self) -> float:
        return float(self.spill_depth)

    def attrs(self) -> Mapping[str, object]:
        return {
            "spill_depth": self.spill_depth,
            "spill_starved_channels": self.starved_channels,
            "spill_worst_slice": self.worst_slice,
            "spill_sustained_rounds": self.sustained_rounds,
        }


class CpuBandSignal:
    """The paper's §V global/local CPU band rules (``cpu``).

    Stateless; returns at most one violation per round, preserving the
    pre-signal priority order verbatim: global overload > global
    underload > local overload.
    """

    name = "cpu"

    def __init__(self, policy):
        self.policy = policy

    def evaluate(self, probes: ProbeSet) -> List[Violation]:
        policy = self.policy
        if not probes.hosts:
            return []
        average = probes.average_utilization()
        if average > policy.scale_out_threshold:
            return [
                Violation.from_evidence(
                    ViolationKind.GLOBAL_OVERLOAD,
                    CpuBandEvidence(
                        average, policy.scale_out_threshold, len(probes.hosts)
                    ),
                    signal=self.name,
                )
            ]
        if average < policy.scale_in_threshold and len(probes.hosts) > policy.min_hosts:
            return [
                Violation.from_evidence(
                    ViolationKind.GLOBAL_UNDERLOAD,
                    CpuBandEvidence(
                        average, policy.scale_in_threshold, len(probes.hosts)
                    ),
                    signal=self.name,
                )
            ]
        # Local rules only when no global rule is violated.
        worst_host = max(probes.hosts.values(), key=lambda h: h.cpu_utilization)
        if worst_host.cpu_utilization > policy.local_overload_threshold:
            return [
                Violation.from_evidence(
                    ViolationKind.LOCAL_OVERLOAD,
                    CpuBandEvidence(
                        worst_host.cpu_utilization,
                        policy.local_overload_threshold,
                        len(probes.hosts),
                    ),
                    signal=self.name,
                    host_id=worst_host.host_id,
                )
            ]
        return []

    def vetoes_scale_in(self, probes: ProbeSet) -> Optional[str]:
        return None


class DelaySloSignal:
    """Windowed p99 notification delay vs. a target SLO (``slo``).

    Stateful: :attr:`ViolationKind.SLO_BREACH` fires once the windowed
    p99 exceeds ``slo_p99_s`` for ``slo_sustain_rounds`` consecutive
    probe rounds with at least ``slo_min_samples`` samples in the window.
    While the p99 sits above ``slo_release_fraction * slo_p99_s`` the
    signal vetoes scale-in — capacity is released only once the tail has
    genuinely recovered.  In stacks without the ``cpu`` signal it also
    emits :attr:`ViolationKind.SLO_CLEAR` as the release trigger after a
    sustained deep-clear streak.
    """

    name = "slo"

    def __init__(self, policy, emit_release: bool = False):
        self.policy = policy
        self.emit_release = emit_release
        self._breach_rounds = 0
        self._clear_rounds = 0
        self._veto_rounds = 0
        self._last_p99: Optional[float] = None

    def evaluate(self, probes: ProbeSet) -> List[Violation]:
        policy = self.policy
        window = probes.delay
        if window is None or window.count < policy.slo_min_samples:
            # Not enough evidence either way: streaks reset, no veto.
            self._breach_rounds = 0
            self._clear_rounds = 0
            self._veto_rounds = 0
            self._last_p99 = None
            return []
        self._last_p99 = window.p99_s
        if window.p99_s > policy.slo_p99_s:
            self._breach_rounds += 1
            self._clear_rounds = 0
            self._veto_rounds = 0  # fresh breach re-arms the veto budget
            if self._breach_rounds >= policy.slo_sustain_rounds:
                return [
                    Violation.from_evidence(
                        ViolationKind.SLO_BREACH,
                        DelaySloEvidence(
                            p99_s=window.p99_s,
                            slo_s=policy.slo_p99_s,
                            samples=window.count,
                            window_s=window.window_s,
                            sustained_rounds=self._breach_rounds,
                        ),
                        signal=self.name,
                    )
                ]
            return []
        self._breach_rounds = 0
        if window.p99_s <= policy.slo_release_fraction * policy.slo_p99_s:
            self._clear_rounds += 1
            if (
                self.emit_release
                and self._clear_rounds >= policy.slo_sustain_rounds
                and len(probes.hosts) > policy.min_hosts
            ):
                return [
                    Violation.from_evidence(
                        ViolationKind.SLO_CLEAR,
                        DelaySloEvidence(
                            p99_s=window.p99_s,
                            slo_s=policy.slo_p99_s,
                            samples=window.count,
                            window_s=window.window_s,
                            sustained_rounds=self._clear_rounds,
                        ),
                        signal=self.name,
                    )
                ]
        else:
            self._clear_rounds = 0
        return []

    def vetoes_scale_in(self, probes: ProbeSet) -> Optional[str]:
        policy = self.policy
        floor = policy.slo_release_fraction * policy.slo_p99_s
        if self._last_p99 is None or self._last_p99 <= floor:
            self._veto_rounds = 0
            return None
        if (
            policy.slo_veto_max_rounds
            and self._veto_rounds >= policy.slo_veto_max_rounds
        ):
            # The floor has been unreachable for a whole veto budget with
            # no new breach: treat it as unachievable at this fleet size
            # (each extra hop adds a flush epoch to the baseline delay)
            # and let the release proceed rather than deadlock at max.
            return None
        self._veto_rounds += 1
        return (
            f"windowed p99 {self._last_p99:.3f}s above release floor "
            f"{floor:.3f}s"
        )


class SpillPressureSignal:
    """Sustained transport spill/starvation pressure (``spill``).

    Stateful: :attr:`ViolationKind.SPILL_PRESSURE` fires once the summed
    spill depth reaches ``spill_depth_limit`` *or* the summed starved
    channel count reaches ``spill_starved_limit`` for
    ``spill_sustain_rounds`` consecutive probe rounds.  Spill pressure is
    bursty — queues drain to zero between flush epochs, so adjacent probe
    rounds can read 70k and then 0 during one sustained overload — so up
    to ``spill_hold_rounds`` calm rounds neither reset the sustain streak
    nor lift the scale-in veto.  While pressure is present (or within the
    hold) the signal vetoes scale-in.  Spill signals are only nonzero
    with credit backpressure enabled (DESIGN.md §9); without it this
    signal never speaks.
    """

    name = "spill"

    def __init__(self, policy):
        self.policy = policy
        self._pressure_rounds = 0
        self._calm_rounds = 0

    def evaluate(self, probes: ProbeSet) -> List[Violation]:
        policy = self.policy
        depth = sum(s.spill_depth for s in probes.slices.values())
        starved = sum(s.starved_channels for s in probes.slices.values())
        pressured = (
            depth >= policy.spill_depth_limit
            or starved >= policy.spill_starved_limit
        )
        if not pressured:
            self._calm_rounds += 1
            if self._calm_rounds > policy.spill_hold_rounds:
                self._pressure_rounds = 0
            return []
        self._calm_rounds = 0
        self._pressure_rounds += 1
        if self._pressure_rounds < policy.spill_sustain_rounds:
            return []
        worst = max(
            probes.slices.values(),
            key=lambda s: (s.spill_depth, s.starved_channels),
        )
        return [
            Violation.from_evidence(
                ViolationKind.SPILL_PRESSURE,
                SpillEvidence(
                    spill_depth=depth,
                    starved_channels=starved,
                    worst_slice=worst.slice_id,
                    sustained_rounds=self._pressure_rounds,
                ),
                signal=self.name,
            )
        ]

    def vetoes_scale_in(self, probes: ProbeSet) -> Optional[str]:
        if self._pressure_rounds > 0:
            if self._calm_rounds:
                return (
                    f"spill pressure seen {self._calm_rounds} round(s) ago "
                    f"(hold {self.policy.spill_hold_rounds})"
                )
            return (
                f"spill pressure present for {self._pressure_rounds} "
                "consecutive rounds"
            )
        return None


@dataclass(frozen=True)
class SignalVerdict:
    """Outcome of one arbitration round across the signal stack."""

    #: Every violation any signal raised this round, in stack order.
    violations: Tuple[Violation, ...]
    #: The violation the enforcer should act on (``None``: all clear, or
    #: every request was vetoed).
    winner: Optional[Violation]
    #: Scale-in requests dropped by a veto: (violation, vetoing signal,
    #: reason).
    suppressed: Tuple[Tuple[Violation, str, str], ...] = ()

    @property
    def contending(self) -> List[Tuple[str, str]]:
        """(signal, kind) of every raised-but-not-winning violation."""
        return [
            (v.signal, v.kind.value)
            for v in self.violations
            if v is not self.winner
        ]

    @property
    def legacy_shape(self) -> bool:
        """Whether the round is indistinguishable from the pre-signal
        policy (a lone CPU verdict — decision spans then keep the exact
        historical attribute set)."""
        if self.suppressed:
            return False
        if not self.violations:
            return True
        return len(self.violations) == 1 and self.violations[0].signal == "cpu"


class SignalStack:
    """The enabled signals of one control loop, in arbitration order.

    Sustained-trigger signals carry round counters, so one stack instance
    must observe *every* probe round of one manager (build it once, via
    :meth:`ElasticityPolicy.signal_stack`).  Evaluation is a pure
    observer of the probe round — it never touches the engine — so
    running it during grace periods keeps sustain streaks honest without
    perturbing the simulation.
    """

    def __init__(self, policy, telemetry=None):
        self.policy = policy
        self.telemetry = telemetry
        signals = []
        for name in policy.signals:
            if name == "cpu":
                signals.append(CpuBandSignal(policy))
            elif name == "slo":
                signals.append(
                    DelaySloSignal(
                        policy, emit_release="cpu" not in policy.signals
                    )
                )
            elif name == "spill":
                signals.append(SpillPressureSignal(policy))
            else:  # pragma: no cover - rejected by policy validation
                raise ValueError(f"unknown policy signal {name!r}")
        self.signals: Tuple[object, ...] = tuple(signals)

    @property
    def wants_delay_window(self) -> bool:
        """Whether probe sets must carry a :class:`DelayWindow`."""
        return self.policy.wants_delay_window

    def evaluate(self, probes: ProbeSet) -> SignalVerdict:
        """Arbitrate one probe round (see the module docstring)."""
        found: List[Tuple[int, int, Violation]] = []
        for stack_index, signal in enumerate(self.signals):
            for intra_index, violation in enumerate(signal.evaluate(probes)):
                found.append((stack_index, intra_index, violation))
        self._observe(probes, found)

        kept: List[Tuple[int, int, Violation]] = []
        suppressed: List[Tuple[Violation, str, str]] = []
        for stack_index, intra_index, violation in found:
            veto = None
            if violation.kind.action is ScalingAction.SCALE_IN:
                veto = self._find_veto(probes, violation)
            if veto is not None:
                suppressed.append((violation, veto[0], veto[1]))
                telemetry = self.telemetry
                if telemetry is not None and telemetry.scale_in_vetoes is not None:
                    telemetry.scale_in_vetoes.labels(signal=veto[0]).inc()
            else:
                kept.append((stack_index, intra_index, violation))

        winner = None
        if kept:
            winner = min(
                kept,
                key=lambda entry: (
                    _ACTION_RANK[entry[2].kind.action],
                    entry[0],
                    entry[1],
                ),
            )[2]
        return SignalVerdict(
            violations=tuple(violation for _, _, violation in found),
            winner=winner,
            suppressed=tuple(suppressed),
        )

    def _find_veto(
        self, probes: ProbeSet, violation: Violation
    ) -> Optional[Tuple[str, str]]:
        """(signal name, reason) of the first veto against a scale-in."""
        for signal in self.signals:
            if signal.name == violation.signal:
                continue  # a signal cannot veto its own request
            reason = signal.vetoes_scale_in(probes)
            if reason is not None:
                return (signal.name, reason)
        return None

    def _observe(self, probes: ProbeSet, found) -> None:
        """Mirror the round into the metric registry (no-op when off)."""
        telemetry = self.telemetry
        if telemetry is None or telemetry.signal_violations is None:
            return
        for _, _, violation in found:
            telemetry.signal_violations.labels(
                signal=violation.signal, kind=violation.kind.value
            ).inc()
        if self.wants_delay_window and probes.delay is not None:
            telemetry.slo_margin.set(
                self.policy.slo_p99_s - probes.delay.p99_s
            )
