"""E-STREAMHUB elasticity: probes, policy, enforcer, manager (paper §IV–V)."""

from .probes import HostProbe, ProbeCollector, ProbeSet, SliceProbe
from .policy import ElasticityPolicy, Violation, ViolationKind
from .selection import (
    SliceLoad,
    select_slices,
    select_slices_arbitrary,
    select_slices_greedy_cpu,
)
from .binpack import HostBin, NEW_HOST_PREFIX, Placement, first_fit_decreasing
from .enforcer import (
    ElasticityEnforcer,
    PlannedMigration,
    PlannedShardOp,
    ScalingDecision,
)
from .manager import ElasticityManager, ManagerRecord

__all__ = [
    "ElasticityEnforcer",
    "ElasticityManager",
    "ElasticityPolicy",
    "HostBin",
    "HostProbe",
    "ManagerRecord",
    "NEW_HOST_PREFIX",
    "Placement",
    "PlannedMigration",
    "PlannedShardOp",
    "ProbeCollector",
    "ProbeSet",
    "ScalingDecision",
    "SliceLoad",
    "SliceProbe",
    "Violation",
    "ViolationKind",
    "first_fit_decreasing",
    "select_slices",
    "select_slices_arbitrary",
    "select_slices_greedy_cpu",
]
