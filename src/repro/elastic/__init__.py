"""E-STREAMHUB elasticity: probes, policy, enforcer, manager (paper §IV–V)."""

from .probes import (
    DelayWindow,
    DelayWindowAggregator,
    HostProbe,
    ProbeCollector,
    ProbeSet,
    SliceProbe,
)
from .policy import (
    ElasticityPolicy,
    PolicyConfig,
    ScalingAction,
    Violation,
    ViolationKind,
)
from .signals import (
    SIGNAL_NAMES,
    CpuBandSignal,
    DelaySloSignal,
    SignalStack,
    SignalVerdict,
    SpillPressureSignal,
)
from .selection import (
    SliceLoad,
    select_slices,
    select_slices_arbitrary,
    select_slices_greedy_cpu,
)
from .binpack import HostBin, NEW_HOST_PREFIX, Placement, first_fit_decreasing
from .enforcer import (
    ElasticityEnforcer,
    PlannedMigration,
    PlannedShardOp,
    ScalingDecision,
)
from .manager import ElasticityManager, ManagerRecord
from .failover import ManagerFailover

__all__ = [
    "CpuBandSignal",
    "DelaySloSignal",
    "DelayWindow",
    "DelayWindowAggregator",
    "ElasticityEnforcer",
    "ElasticityManager",
    "ElasticityPolicy",
    "HostBin",
    "ManagerFailover",
    "HostProbe",
    "ManagerRecord",
    "NEW_HOST_PREFIX",
    "Placement",
    "PlannedMigration",
    "PlannedShardOp",
    "PolicyConfig",
    "ProbeCollector",
    "ProbeSet",
    "SIGNAL_NAMES",
    "ScalingAction",
    "ScalingDecision",
    "SignalStack",
    "SignalVerdict",
    "SliceLoad",
    "SliceProbe",
    "SpillPressureSignal",
    "Violation",
    "ViolationKind",
    "first_fit_decreasing",
    "select_slices",
    "select_slices_arbitrary",
    "select_slices_greedy_cpu",
]
