"""Elasticity policy: pluggable signals around the paper's §V rules.

The paper scales purely on CPU bands; this module keeps those rules
verbatim (as :class:`~repro.elastic.signals.CpuBandSignal`) and opens the
control loop to other overload evidence the system already measures:

* **Global rule** — the *average* CPU load across running hosts must stay
  inside ``[scale_in_threshold, scale_out_threshold]`` (the paper
  evaluates with a 70% upper bound and a 50% ideal target).  Violations
  scale the system out (add hosts) or in (release hosts).
* **Local rule** — a *single* host exceeding ``local_overload`` triggers a
  re-allocation of its slices among the existing hosts (new hosts only as
  a last resort).  Local rules are evaluated only when no global rule is
  violated; global rules have the highest priority.
* A **grace period** (at least 30 s in the paper) separates consecutive
  enforcement actions, letting the system settle after migrations.

Beyond the paper, :attr:`ElasticityPolicy.signals` selects a stack of
:class:`~repro.elastic.signals.PolicySignal` evaluators — ``cpu`` (the
rules above), ``slo`` (p99 ``notification_delay_seconds`` over a sliding
probe window vs. a target SLO) and ``spill`` (sustained transport
spill/starvation pressure from the flow-controlled channels).  Symptom
signals fire *before* CPU saturates — queues spill and tail delay climbs
while the average utilization still sits inside the band — so SLO/spill
stacks provision earlier and (via scale-in vetoes) release later than the
CPU-only rules.  Arbitration across signals is deterministic; see
:class:`~repro.elastic.signals.SignalStack` and DESIGN.md §10.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, fields
from typing import Mapping, Optional, Sequence, Tuple

from ..config import env_bool, env_float, env_int, env_str
from .probes import ProbeSet

__all__ = [
    "ElasticityPolicy",
    "PolicyConfig",
    "ScalingAction",
    "Violation",
    "ViolationKind",
]


class ScalingAction(enum.Enum):
    """What a violation asks the enforcer to do (arbitration classes)."""

    SCALE_OUT = "scale_out"
    SCALE_IN = "scale_in"
    REBALANCE = "rebalance"


class ViolationKind(enum.Enum):
    """Which rule a probe round violated.

    The enum values double as the ``rule`` label on the telemetry
    counters and the ``enforcer.decision`` trace records.
    """

    #: Average CPU across hosts above ``scale_out_threshold``.
    GLOBAL_OVERLOAD = "global_overload"
    #: Average CPU across hosts below ``scale_in_threshold``.
    GLOBAL_UNDERLOAD = "global_underload"
    #: One host above ``local_overload_threshold`` (globals all hold).
    LOCAL_OVERLOAD = "local_overload"
    #: Windowed p99 notification delay above the configured SLO.
    SLO_BREACH = "slo_breach"
    #: Windowed p99 well below the SLO for several rounds (release
    #: trigger of SLO-only stacks; see :class:`DelaySloSignal`).
    SLO_CLEAR = "slo_clear"
    #: Sustained transport spill/starvation pressure (DESIGN.md §9).
    SPILL_PRESSURE = "spill_pressure"

    @property
    def action(self) -> ScalingAction:
        """The enforcer action class this kind maps to."""
        return _KIND_ACTIONS[self]


_KIND_ACTIONS = {
    ViolationKind.GLOBAL_OVERLOAD: ScalingAction.SCALE_OUT,
    ViolationKind.GLOBAL_UNDERLOAD: ScalingAction.SCALE_IN,
    ViolationKind.LOCAL_OVERLOAD: ScalingAction.REBALANCE,
    ViolationKind.SLO_BREACH: ScalingAction.SCALE_OUT,
    ViolationKind.SLO_CLEAR: ScalingAction.SCALE_IN,
    ViolationKind.SPILL_PRESSURE: ScalingAction.SCALE_OUT,
}

#: Kinds whose scale-out is symptom-triggered (queues/delay, not CPU
#: bands): the enforcer packs toward a reduced utilization target so the
#: decision provisions headroom before CPU evidence exists.
SYMPTOM_KINDS = frozenset(
    {ViolationKind.SLO_BREACH, ViolationKind.SPILL_PRESSURE}
)


@dataclass(frozen=True)
class Violation:
    """A detected policy violation, with the evidence that triggered it.

    ``Violation(kind, measured, host_id)`` — the historical shape — stays
    constructible and readable: ``measured`` remains the headline scalar
    (average or single-host CPU for the band rules, windowed p99 seconds
    for the SLO, spill depth for spill pressure).  Signal-produced
    violations additionally carry the producing signal's name and a typed
    evidence record (see :mod:`repro.elastic.signals`); both default to
    the CPU band signal so pre-signal call sites and trace records are
    unchanged.
    """

    #: Which rule fired.
    kind: ViolationKind
    #: The violating headline measurement (see class docstring).
    measured: float
    #: The violating host for :attr:`ViolationKind.LOCAL_OVERLOAD`;
    #: empty for global rules.
    host_id: str = ""
    #: Name of the policy signal that produced the violation.
    signal: str = "cpu"
    #: Typed evidence record (``None`` for shim-constructed violations).
    evidence: Optional[object] = None

    @classmethod
    def from_evidence(
        cls, kind: ViolationKind, evidence, signal: str, host_id: str = ""
    ) -> "Violation":
        """Build the evidence-carrying form; ``measured`` is derived."""
        return cls(
            kind,
            evidence.headline,
            host_id=host_id,
            signal=signal,
            evidence=evidence,
        )

    def evidence_attrs(self) -> Mapping[str, object]:
        """The evidence as flat trace attributes (empty for the shim)."""
        if self.evidence is None:
            return {}
        return self.evidence.attrs()


def _normalize_signals(value) -> Tuple[str, ...]:
    """Accept ``"cpu,slo"``, lists or tuples; always store a tuple."""
    if isinstance(value, str):
        parts = [part.strip() for part in value.split(",")]
        return tuple(part for part in parts if part)
    return tuple(value)


@dataclass(frozen=True)
class ElasticityPolicy:
    """Thresholds of the policy signals (paper §V plus SLO/spill)."""

    #: Utilization the enforcer packs hosts toward (the paper's 50%).
    target_utilization: float = 0.50
    #: Global rule: scale out when the average utilization exceeds this.
    scale_out_threshold: float = 0.70
    #: Global rule: scale in when the average utilization drops below
    #: this (and more than ``min_hosts`` hosts are running).
    scale_in_threshold: float = 0.30
    #: Local rule: re-balance a single host above this utilization.
    local_overload_threshold: float = 0.85
    #: Minimum simulated seconds between consecutive enforcement actions.
    grace_period_s: float = 30.0
    #: Never release below this many engine hosts.
    min_hosts: int = 1
    #: Estimate offered load from CPU *and* queue backlog when sizing a
    #: scale-out (see :meth:`SliceProbe.demand_cores`).  Plain measured CPU
    #: saturates at host capacity, which makes the enforcer climb one small
    #: step per grace period during steep load ramps while queues explode.
    #: Extension over the paper's CPU-only metric; set False for the
    #: paper's literal behavior (ablated in benchmarks).
    backlog_aware_scaling: bool = True
    #: Upper bound on one scale-out step: the fleet may at most grow by
    #: this factor per decision (backlog-driven demand estimates can be
    #: arbitrarily large while a backlog is draining; unbounded steps
    #: would exhaust the provider).
    max_scale_out_factor: float = 4.0
    #: Enabled policy signals, in stack (arbitration) order.  ``cpu`` is
    #: the paper's global/local band rules; ``slo`` triggers on windowed
    #: p99 notification delay; ``spill`` on sustained transport
    #: spill/starvation pressure.  The default reproduces the paper.
    signals: Tuple[str, ...] = ("cpu",)
    #: Target p99 notification delay (seconds) of the ``slo`` signal.
    slo_p99_s: float = 1.0
    #: Sliding window (seconds) the p99 is computed over.
    slo_window_s: float = 30.0
    #: Minimum delay samples in the window before the SLO signal speaks.
    slo_min_samples: int = 20
    #: Consecutive breached probe rounds before :attr:`SLO_BREACH` fires.
    slo_sustain_rounds: int = 1
    #: Scale-in is vetoed while the windowed p99 exceeds this fraction of
    #: the SLO — the "release later" half of SLO-driven elasticity.
    slo_release_fraction: float = 0.5
    #: A veto can suppress at most this many *consecutive* scale-in
    #: requests before it expires (0 = never expires).  A larger fleet
    #: pays more per-hop flush epochs, so its quiescent p99 can sit above
    #: the release floor forever; the expiry turns an unachievable floor
    #: into a bounded release delay instead of a deadlock at max fleet.
    slo_veto_max_rounds: int = 12
    #: Spilled messages (summed over slices) that count as pressure.
    spill_depth_limit: int = 50
    #: Credit-starved channels (summed over slices) that count as pressure.
    spill_starved_limit: int = 1
    #: Consecutive pressured rounds before :attr:`SPILL_PRESSURE` fires.
    spill_sustain_rounds: int = 2
    #: Calm probe rounds the spill signal tolerates before its sustain
    #: streak resets and its scale-in veto lifts.  Spill pressure is
    #: bursty round-to-round (queues drain between flush epochs); the
    #: hold keeps one quiet heartbeat from hiding sustained pressure.
    spill_hold_rounds: int = 3
    #: Symptom-triggered scale-outs pack toward
    #: ``target_utilization * symptom_target_fraction`` — a reduced target
    #: that lets the two-step algorithm select and place slices before any
    #: host crosses the CPU band (provisioning headroom early).
    symptom_target_fraction: float = 0.75

    def __post_init__(self):
        object.__setattr__(self, "signals", _normalize_signals(self.signals))
        if not (
            0.0
            < self.scale_in_threshold
            < self.target_utilization
            < self.scale_out_threshold
            <= 1.0
        ):
            raise ValueError(
                "thresholds must satisfy 0 < in < target < out <= 1, got "
                f"in={self.scale_in_threshold}, target={self.target_utilization}, "
                f"out={self.scale_out_threshold}"
            )
        if self.local_overload_threshold < self.scale_out_threshold:
            raise ValueError("local overload threshold below the global one is unstable")
        if self.grace_period_s < 0:
            raise ValueError("grace period must be non-negative")
        if self.min_hosts < 1:
            raise ValueError("min_hosts must be at least 1")
        if self.max_scale_out_factor <= 1.0:
            raise ValueError("max_scale_out_factor must exceed 1")
        from .signals import SIGNAL_NAMES

        if not self.signals:
            raise ValueError("at least one policy signal must be enabled")
        for name in self.signals:
            if name not in SIGNAL_NAMES:
                raise ValueError(
                    f"unknown policy signal {name!r}; "
                    f"choose from {tuple(SIGNAL_NAMES)}"
                )
        if len(set(self.signals)) != len(self.signals):
            raise ValueError(f"duplicate policy signal in {self.signals}")
        if self.slo_p99_s <= 0:
            raise ValueError(f"slo_p99_s must be positive, got {self.slo_p99_s}")
        if self.slo_window_s <= 0:
            raise ValueError(f"slo_window_s must be positive, got {self.slo_window_s}")
        if self.slo_min_samples < 1:
            raise ValueError(
                f"slo_min_samples must be >= 1, got {self.slo_min_samples}"
            )
        if self.slo_sustain_rounds < 1:
            raise ValueError(
                f"slo_sustain_rounds must be >= 1, got {self.slo_sustain_rounds}"
            )
        if not 0.0 <= self.slo_release_fraction <= 1.0:
            raise ValueError(
                "slo_release_fraction must be in [0, 1], got "
                f"{self.slo_release_fraction}"
            )
        if self.slo_veto_max_rounds < 0:
            raise ValueError(
                "slo_veto_max_rounds must be >= 0 (0 disables expiry), got "
                f"{self.slo_veto_max_rounds}"
            )
        if self.spill_depth_limit < 1:
            raise ValueError(
                f"spill_depth_limit must be >= 1, got {self.spill_depth_limit}"
            )
        if self.spill_starved_limit < 1:
            raise ValueError(
                f"spill_starved_limit must be >= 1, got {self.spill_starved_limit}"
            )
        if self.spill_sustain_rounds < 1:
            raise ValueError(
                f"spill_sustain_rounds must be >= 1, got {self.spill_sustain_rounds}"
            )
        if self.spill_hold_rounds < 0:
            raise ValueError(
                f"spill_hold_rounds must be >= 0, got {self.spill_hold_rounds}"
            )
        if not 0.0 < self.symptom_target_fraction <= 1.0:
            raise ValueError(
                "symptom_target_fraction must be in (0, 1], got "
                f"{self.symptom_target_fraction}"
            )

    @property
    def wants_delay_window(self) -> bool:
        """Whether the probe collector must aggregate a delay window."""
        return "slo" in self.signals

    def signal_stack(self, telemetry=None):
        """A fresh (stateful) :class:`~repro.elastic.signals.SignalStack`.

        Sustained-trigger signals count consecutive probe rounds, so one
        stack instance must observe every round of one control loop — the
        manager builds exactly one at construction.
        """
        from .signals import SignalStack

        return SignalStack(self, telemetry=telemetry)

    def check(self, probes: ProbeSet) -> Optional[Violation]:
        """Highest-priority *CPU band* violation in this probe round.

        The paper's §V rules, verbatim: global rules outrank the local
        rule; returns ``None`` when all rules hold or no hosts reported.
        This is the historical single-signal entry point — stacks with
        SLO/spill signals are evaluated through :meth:`signal_stack`.
        """
        from .signals import CpuBandSignal

        found = CpuBandSignal(self).evaluate(probes)
        return found[0] if found else None


#: ``PolicyConfig`` field → environment variable, in display order.
_POLICY_ENV_VARS = {
    "signals": "REPRO_POLICY_SIGNALS",
    "target_utilization": "REPRO_POLICY_TARGET_UTILIZATION",
    "scale_out_threshold": "REPRO_POLICY_SCALE_OUT_THRESHOLD",
    "scale_in_threshold": "REPRO_POLICY_SCALE_IN_THRESHOLD",
    "local_overload_threshold": "REPRO_POLICY_LOCAL_OVERLOAD_THRESHOLD",
    "grace_period_s": "REPRO_POLICY_GRACE_PERIOD_S",
    "min_hosts": "REPRO_POLICY_MIN_HOSTS",
    "backlog_aware_scaling": "REPRO_POLICY_BACKLOG_AWARE",
    "max_scale_out_factor": "REPRO_POLICY_MAX_SCALE_OUT_FACTOR",
    "slo_p99_s": "REPRO_POLICY_SLO_P99_S",
    "slo_window_s": "REPRO_POLICY_SLO_WINDOW_S",
    "slo_min_samples": "REPRO_POLICY_SLO_MIN_SAMPLES",
    "slo_sustain_rounds": "REPRO_POLICY_SLO_SUSTAIN_ROUNDS",
    "slo_release_fraction": "REPRO_POLICY_SLO_RELEASE_FRACTION",
    "slo_veto_max_rounds": "REPRO_POLICY_SLO_VETO_MAX_ROUNDS",
    "spill_depth_limit": "REPRO_POLICY_SPILL_DEPTH_LIMIT",
    "spill_starved_limit": "REPRO_POLICY_SPILL_STARVED_LIMIT",
    "spill_sustain_rounds": "REPRO_POLICY_SPILL_SUSTAIN_ROUNDS",
    "spill_hold_rounds": "REPRO_POLICY_SPILL_HOLD_ROUNDS",
    "symptom_target_fraction": "REPRO_POLICY_SYMPTOM_TARGET_FRACTION",
}


@dataclass(frozen=True)
class PolicyConfig:
    """The elasticity-policy knob group (``REPRO_POLICY_*``).

    One of :class:`~repro.pubsub.HubConfig`'s grouped sub-configs.  The
    precedence is defined here, once: an explicit constructor argument
    (CLI flags resolve to these via :meth:`from_env` overrides) beats the
    environment variable, which beats the built-in default.  Field names
    and defaults mirror :class:`ElasticityPolicy`; :meth:`policy` builds
    the validated policy object.
    """

    signals: Tuple[str, ...] = ("cpu",)
    target_utilization: float = 0.50
    scale_out_threshold: float = 0.70
    scale_in_threshold: float = 0.30
    local_overload_threshold: float = 0.85
    grace_period_s: float = 30.0
    min_hosts: int = 1
    backlog_aware_scaling: bool = True
    max_scale_out_factor: float = 4.0
    slo_p99_s: float = 1.0
    slo_window_s: float = 30.0
    slo_min_samples: int = 20
    slo_sustain_rounds: int = 1
    slo_release_fraction: float = 0.5
    slo_veto_max_rounds: int = 12
    spill_depth_limit: int = 50
    spill_starved_limit: int = 1
    spill_sustain_rounds: int = 2
    spill_hold_rounds: int = 3
    symptom_target_fraction: float = 0.75

    def __post_init__(self):
        object.__setattr__(self, "signals", _normalize_signals(self.signals))
        self.policy()  # validate every knob through the policy rules

    def policy(self) -> ElasticityPolicy:
        """The :class:`ElasticityPolicy` these knobs configure."""
        return ElasticityPolicy(
            **{f.name: getattr(self, f.name) for f in fields(self)}
        )

    @classmethod
    def from_env(cls, **overrides) -> "PolicyConfig":
        """Build from ``REPRO_POLICY_*`` with explicit ``overrides`` on top.

        ``overrides`` with value ``None`` are ignored (unset CLI flags),
        so callers can forward an argparse namespace verbatim.
        """
        values = {
            "signals": env_str(_POLICY_ENV_VARS["signals"], "cpu"),
            "target_utilization": env_float(
                _POLICY_ENV_VARS["target_utilization"], cls.target_utilization
            ),
            "scale_out_threshold": env_float(
                _POLICY_ENV_VARS["scale_out_threshold"], cls.scale_out_threshold
            ),
            "scale_in_threshold": env_float(
                _POLICY_ENV_VARS["scale_in_threshold"], cls.scale_in_threshold
            ),
            "local_overload_threshold": env_float(
                _POLICY_ENV_VARS["local_overload_threshold"],
                cls.local_overload_threshold,
            ),
            "grace_period_s": env_float(
                _POLICY_ENV_VARS["grace_period_s"], cls.grace_period_s
            ),
            "min_hosts": env_int(_POLICY_ENV_VARS["min_hosts"], cls.min_hosts),
            "backlog_aware_scaling": env_bool(
                _POLICY_ENV_VARS["backlog_aware_scaling"],
                cls.backlog_aware_scaling,
            ),
            "max_scale_out_factor": env_float(
                _POLICY_ENV_VARS["max_scale_out_factor"], cls.max_scale_out_factor
            ),
            "slo_p99_s": env_float(_POLICY_ENV_VARS["slo_p99_s"], cls.slo_p99_s),
            "slo_window_s": env_float(
                _POLICY_ENV_VARS["slo_window_s"], cls.slo_window_s
            ),
            "slo_min_samples": env_int(
                _POLICY_ENV_VARS["slo_min_samples"], cls.slo_min_samples
            ),
            "slo_sustain_rounds": env_int(
                _POLICY_ENV_VARS["slo_sustain_rounds"], cls.slo_sustain_rounds
            ),
            "slo_release_fraction": env_float(
                _POLICY_ENV_VARS["slo_release_fraction"], cls.slo_release_fraction
            ),
            "slo_veto_max_rounds": env_int(
                _POLICY_ENV_VARS["slo_veto_max_rounds"], cls.slo_veto_max_rounds
            ),
            "spill_depth_limit": env_int(
                _POLICY_ENV_VARS["spill_depth_limit"], cls.spill_depth_limit
            ),
            "spill_starved_limit": env_int(
                _POLICY_ENV_VARS["spill_starved_limit"], cls.spill_starved_limit
            ),
            "spill_sustain_rounds": env_int(
                _POLICY_ENV_VARS["spill_sustain_rounds"], cls.spill_sustain_rounds
            ),
            "spill_hold_rounds": env_int(
                _POLICY_ENV_VARS["spill_hold_rounds"], cls.spill_hold_rounds
            ),
            "symptom_target_fraction": env_float(
                _POLICY_ENV_VARS["symptom_target_fraction"],
                cls.symptom_target_fraction,
            ),
        }
        for name, value in overrides.items():
            if name not in values:
                raise TypeError(f"unknown policy knob {name!r}")
            if value is not None:
                values[name] = value
        return cls(**values)

    @classmethod
    def provenance(cls, **overrides) -> Sequence[Tuple[str, object, str]]:
        """(knob, resolved value, source) rows for every policy knob.

        The source is ``cli`` for a non-``None`` override, ``env:<VAR>``
        for a set environment variable, else ``default`` — the record the
        ``repro policy`` subcommand prints.
        """
        import os

        resolved = cls.from_env(**overrides)
        rows = []
        for name, env_var in _POLICY_ENV_VARS.items():
            if overrides.get(name) is not None:
                source = "cli"
            elif (os.environ.get(env_var) or "").strip():
                source = f"env:{env_var}"
            else:
                source = "default"
            value = getattr(resolved, name)
            if name == "signals":
                value = ",".join(value)
            rows.append((name, value, source))
        return rows
