"""Elasticity policy: global and local rules (paper §V).

The policy's primary metric is CPU utilization; network bandwidth and
memory act only as constraints during migration decisions.

* **Global rule** — the *average* CPU load across running hosts must stay
  inside ``[scale_in_threshold, scale_out_threshold]`` (the paper
  evaluates with a 70% upper bound and a 50% ideal target).  Violations
  scale the system out (add hosts) or in (release hosts).
* **Local rule** — a *single* host exceeding ``local_overload`` triggers a
  re-allocation of its slices among the existing hosts (new hosts only as
  a last resort).  Local rules are evaluated only when no global rule is
  violated; global rules have the highest priority.
* A **grace period** (at least 30 s in the paper) separates consecutive
  enforcement actions, letting the system settle after migrations.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

from .probes import ProbeSet

__all__ = ["ElasticityPolicy", "Violation", "ViolationKind"]


class ViolationKind(enum.Enum):
    """Which rule a probe round violated.

    The enum values double as the ``rule`` label on the telemetry
    counters and the ``enforcer.decision`` trace records.
    """

    #: Average CPU across hosts above ``scale_out_threshold``.
    GLOBAL_OVERLOAD = "global_overload"
    #: Average CPU across hosts below ``scale_in_threshold``.
    GLOBAL_UNDERLOAD = "global_underload"
    #: One host above ``local_overload_threshold`` (globals all hold).
    LOCAL_OVERLOAD = "local_overload"


@dataclass(frozen=True)
class Violation:
    """A detected policy violation, with the metric that triggered it."""

    #: Which rule fired.
    kind: ViolationKind
    #: The violating measurement — average (global rules) or single-host
    #: (local rule) CPU utilization, in [0, 1].
    measured: float
    #: The violating host for :attr:`ViolationKind.LOCAL_OVERLOAD`;
    #: empty for global rules.
    host_id: str = ""


@dataclass(frozen=True)
class ElasticityPolicy:
    """Thresholds of the global/local rules."""

    #: Utilization the enforcer packs hosts toward (the paper's 50%).
    target_utilization: float = 0.50
    #: Global rule: scale out when the average utilization exceeds this.
    scale_out_threshold: float = 0.70
    #: Global rule: scale in when the average utilization drops below
    #: this (and more than ``min_hosts`` hosts are running).
    scale_in_threshold: float = 0.30
    #: Local rule: re-balance a single host above this utilization.
    local_overload_threshold: float = 0.85
    #: Minimum simulated seconds between consecutive enforcement actions.
    grace_period_s: float = 30.0
    #: Never release below this many engine hosts.
    min_hosts: int = 1
    #: Estimate offered load from CPU *and* queue backlog when sizing a
    #: scale-out (see :meth:`SliceProbe.demand_cores`).  Plain measured CPU
    #: saturates at host capacity, which makes the enforcer climb one small
    #: step per grace period during steep load ramps while queues explode.
    #: Extension over the paper's CPU-only metric; set False for the
    #: paper's literal behavior (ablated in benchmarks).
    backlog_aware_scaling: bool = True
    #: Upper bound on one scale-out step: the fleet may at most grow by
    #: this factor per decision (backlog-driven demand estimates can be
    #: arbitrarily large while a backlog is draining; unbounded steps
    #: would exhaust the provider).
    max_scale_out_factor: float = 4.0

    def __post_init__(self):
        if not (
            0.0
            < self.scale_in_threshold
            < self.target_utilization
            < self.scale_out_threshold
            <= 1.0
        ):
            raise ValueError(
                "thresholds must satisfy 0 < in < target < out <= 1, got "
                f"in={self.scale_in_threshold}, target={self.target_utilization}, "
                f"out={self.scale_out_threshold}"
            )
        if self.local_overload_threshold < self.scale_out_threshold:
            raise ValueError("local overload threshold below the global one is unstable")
        if self.grace_period_s < 0:
            raise ValueError("grace period must be non-negative")
        if self.min_hosts < 1:
            raise ValueError("min_hosts must be at least 1")
        if self.max_scale_out_factor <= 1.0:
            raise ValueError("max_scale_out_factor must exceed 1")

    def check(self, probes: ProbeSet) -> Optional[Violation]:
        """Highest-priority violation in this probe round, if any.

        Global rules outrank the local rule (paper §V); returns ``None``
        when all rules hold or no hosts reported.
        """
        if not probes.hosts:
            return None
        average = probes.average_utilization()
        if average > self.scale_out_threshold:
            return Violation(ViolationKind.GLOBAL_OVERLOAD, average)
        if average < self.scale_in_threshold and len(probes.hosts) > self.min_hosts:
            return Violation(ViolationKind.GLOBAL_UNDERLOAD, average)
        # Local rules only when no global rule is violated.
        worst_host = max(probes.hosts.values(), key=lambda h: h.cpu_utilization)
        if worst_host.cpu_utilization > self.local_overload_threshold:
            return Violation(
                ViolationKind.LOCAL_OVERLOAD,
                worst_host.cpu_utilization,
                host_id=worst_host.host_id,
            )
        return None
