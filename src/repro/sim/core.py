"""Core of the discrete-event simulation kernel.

The kernel follows the classic event-loop design (as popularized by SimPy):
an :class:`Environment` owns the simulation clock and a priority queue of
scheduled events.  Processes are Python generators that yield events; when a
yielded event is *triggered* and then *processed* by the event loop, the
generator is resumed with the event's value (or an exception is thrown into
it if the event failed).

The kernel is deterministic: ties in time are broken first by scheduling
priority, then by a monotonically increasing sequence number.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, Iterable, List, Optional

__all__ = [
    "Environment",
    "Event",
    "Timeout",
    "ReusableTimeout",
    "Process",
    "Interrupt",
    "AllOf",
    "AnyOf",
    "ConditionValue",
    "StopSimulation",
    "URGENT",
    "NORMAL",
]

#: Scheduling priority for events that must run before ordinary events
#: scheduled at the same simulated time (e.g. interrupts, resource wakeups).
URGENT = 0

#: Default scheduling priority.
NORMAL = 1


class StopSimulation(Exception):
    """Raised internally to stop the event loop from ``Environment.run``."""

    def __init__(self, value: Any = None):
        super().__init__(value)
        self.value = value


# Sentinel stored in ``Event._value`` while the event is untriggered.
_PENDING = object()


class Event:
    """An event that may happen at some point in simulated time.

    An event goes through up to three states:

    * *pending* — freshly created, not yet triggered;
    * *triggered* — has a value (or an exception) and is scheduled to be
      processed by the event loop;
    * *processed* — its callbacks have run.

    Callbacks are plain callables receiving the event itself.
    """

    __slots__ = ("env", "callbacks", "_value", "_ok", "_defused")

    def __init__(self, env: "Environment"):
        self.env = env
        self.callbacks: Optional[List[Callable[["Event"], None]]] = []
        self._value: Any = _PENDING
        self._ok: bool = True
        #: Set on failed events once a callback (or process) consumed the
        #: exception; unhandled failures crash the simulation.
        self._defused = False

    @property
    def triggered(self) -> bool:
        """Whether the event has a value and is (or was) scheduled."""
        return self._value is not _PENDING

    @property
    def processed(self) -> bool:
        """Whether the event's callbacks have already been run."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """Whether the event succeeded.  Only meaningful once triggered."""
        if not self.triggered:
            raise RuntimeError(f"{self!r} has not been triggered yet")
        return self._ok

    @property
    def value(self) -> Any:
        """The value of the event, or the exception of a failed event."""
        if self._value is _PENDING:
            raise RuntimeError(f"{self!r} has not been triggered yet")
        return self._value

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self.triggered:
            raise RuntimeError(f"{self!r} has already been triggered")
        self._ok = True
        self._value = value
        self.env.schedule(self)
        return self

    def defuse(self) -> "Event":
        """Mark a failed event as handled out of band.

        The event loop crashes the simulation when a failed event is
        processed with no waiter having consumed its exception.  An
        interrupter that deliberately kills a process nobody is waiting
        on (a fault injector crashing a manager, say) defuses the
        process event first so the intended failure is not mistaken for
        an unhandled one.
        """
        self._defused = True
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event as failed with ``exception``."""
        if self.triggered:
            raise RuntimeError(f"{self!r} has already been triggered")
        if not isinstance(exception, BaseException):
            raise TypeError(f"{exception!r} is not an exception")
        self._ok = False
        self._value = exception
        self.env.schedule(self)
        return self

    def trigger(self, event: "Event") -> None:
        """Trigger this event with the state of another event.

        Used as a callback to chain events.
        """
        self._ok = event._ok
        self._value = event._value
        self.env.schedule(self)

    def __repr__(self) -> str:
        state = (
            "processed" if self.processed
            else "triggered" if self.triggered
            else "pending"
        )
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class Timeout(Event):
    """An event that triggers after a ``delay`` of simulated time."""

    __slots__ = ("delay",)

    def __init__(self, env: "Environment", delay: float, value: Any = None):
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        super().__init__(env)
        self.delay = delay
        self._ok = True
        self._value = value
        env.schedule(self, delay=delay)


class ReusableTimeout(Event):
    """A timeout event that can be re-armed after it has been processed.

    Ordinary :class:`Timeout` objects are single-shot; hot loops that sleep
    once per unit of work (the CPU scheduler charges one timeout per task)
    would allocate one per iteration.  A reusable timeout is acquired from
    the environment's pool (:meth:`Environment.pooled_timeout`), waited on
    exactly like a timeout, and returned with
    :meth:`Environment.recycle_timeout` once processed.
    """

    __slots__ = ()

    def __init__(self, env: "Environment"):
        super().__init__(env)

    def fire(self, delay: float, value: Any = None) -> "ReusableTimeout":
        """(Re-)arm the timeout ``delay`` time units from now."""
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        if self.callbacks is None:
            # Processed earlier: reset to a fresh pending event.
            self.callbacks = []
        elif self._value is not _PENDING:
            raise RuntimeError(f"{self!r} is still scheduled; cannot re-arm")
        self._ok = True
        self._value = value
        self.env.schedule(self, delay=delay)
        return self


class _DeferredCall(Event):
    """Pre-triggered event invoking a stored callable when processed.

    Backs :meth:`Environment.call_later`; ``__slots__`` plus a bound-method
    callback keep a deferred call down to a single small allocation (no
    closure), which matters because the network schedules one per transfer.
    """

    __slots__ = ("_fn", "_args")

    def __init__(self, env: "Environment", fn: Callable[..., Any], args, delay: float):
        super().__init__(env)
        self._fn = fn
        self._args = args
        self._ok = True
        self._value = None
        self.callbacks.append(self._invoke)
        env.schedule(self, delay=delay)

    def _invoke(self, _event: Event) -> None:
        self._fn(*self._args)


class Initialize(Event):
    """Starts a process when processed (scheduled urgently at creation)."""

    __slots__ = ()

    def __init__(self, env: "Environment", process: "Process"):
        super().__init__(env)
        self.callbacks.append(process._resume)
        self._ok = True
        self._value = None
        env.schedule(self, priority=URGENT)


class Interrupt(Exception):
    """Thrown into a process when it is interrupted.

    :attr:`cause` carries the value passed to :meth:`Process.interrupt`.
    """

    @property
    def cause(self) -> Any:
        return self.args[0]


class _InterruptEvent(Event):
    """Immediate event that resumes an interrupted process with a throw."""

    __slots__ = ("process",)

    def __init__(self, env: "Environment", process: "Process", cause: Any):
        super().__init__(env)
        self._ok = False
        self._value = Interrupt(cause)
        self._defused = True
        self.process = process
        self.callbacks.append(process._resume_interrupt)
        env.schedule(self, priority=URGENT)


class Process(Event):
    """A process is a running generator wrapped as an event.

    The process event triggers when the generator returns (value = return
    value) or raises (failure).
    """

    __slots__ = ("_generator", "_target")

    def __init__(self, env: "Environment", generator: Generator):
        if not hasattr(generator, "throw"):
            raise TypeError(f"{generator!r} is not a generator")
        super().__init__(env)
        self._generator = generator
        #: The event the process is currently waiting for (None if resuming).
        self._target: Optional[Event] = None
        Initialize(env, self)

    @property
    def is_alive(self) -> bool:
        """Whether the underlying generator has not terminated yet."""
        return self._value is _PENDING

    def interrupt(self, cause: Any = None) -> None:
        """Interrupt the process, raising :class:`Interrupt` inside it."""
        if not self.is_alive:
            raise RuntimeError(f"{self!r} has terminated; cannot interrupt")
        if self is self.env.active_process:
            raise RuntimeError("a process cannot interrupt itself")
        _InterruptEvent(self.env, self, cause)

    # -- internal ---------------------------------------------------------

    def _resume_interrupt(self, event: Event) -> None:
        if not self.is_alive:
            return
        # Unsubscribe from the event we were waiting on: we resume via the
        # interrupt instead.  The old target may still fire later; the
        # process simply no longer listens.
        if self._target is not None and self._target.callbacks is not None:
            try:
                self._target.callbacks.remove(self._resume)
            except ValueError:
                pass
        self._resume(event)

    def _resume(self, event: Event) -> None:
        self.env._active_process = self
        while True:
            self._target = None
            try:
                if event._ok:
                    next_event = self._generator.send(event._value)
                else:
                    event._defused = True
                    next_event = self._generator.throw(event._value)
            except StopIteration as exc:
                self._ok = True
                self._value = exc.value
                self.env.schedule(self)
                break
            except BaseException as exc:
                self._ok = False
                self._value = exc
                self.env.schedule(self)
                break

            if not isinstance(next_event, Event):
                self._generator.throw(
                    TypeError(f"process yielded a non-event: {next_event!r}")
                )
                continue
            if next_event.env is not self.env:
                raise RuntimeError("cannot wait for an event from another environment")

            if next_event.callbacks is not None:
                # The event is pending or triggered-but-unprocessed: wait.
                next_event.callbacks.append(self._resume)
                self._target = next_event
                break
            # Already processed: resume immediately with its outcome.
            event = next_event
            if not event._ok and not event._defused:
                event._defused = True
        self.env._active_process = None


class ConditionValue:
    """Result of a condition: an ordered mapping of fired events to values."""

    def __init__(self, events: List[Event]):
        self.events = events

    def __getitem__(self, event: Event) -> Any:
        if event not in self.events:
            raise KeyError(str(event))
        return event._value

    def __contains__(self, event: Event) -> bool:
        return event in self.events

    def __eq__(self, other: object) -> bool:
        if isinstance(other, ConditionValue):
            return self.todict() == other.todict()
        if isinstance(other, dict):
            return self.todict() == other
        return NotImplemented

    def __repr__(self) -> str:
        return f"<ConditionValue {self.todict()!r}>"

    def keys(self) -> List[Event]:
        return list(self.events)

    def values(self) -> List[Any]:
        return [e._value for e in self.events]

    def items(self):
        return [(e, e._value) for e in self.events]

    def todict(self):
        return dict(self.items())


class Condition(Event):
    """Waits for a combination of events (see :class:`AllOf`/:class:`AnyOf`)."""

    __slots__ = ("_evaluate", "_events", "_count")

    def __init__(
        self,
        env: "Environment",
        evaluate: Callable[[List[Event], int], bool],
        events: Iterable[Event],
    ):
        super().__init__(env)
        self._evaluate = evaluate
        self._events = list(events)
        self._count = 0

        for event in self._events:
            if event.env is not env:
                raise RuntimeError("events from multiple environments")

        if not self._events or self._evaluate(self._events, 0):
            self.succeed(ConditionValue([]))
            return

        for event in self._events:
            if event.callbacks is None:
                self._check(event)
            else:
                event.callbacks.append(self._check)

    def _fired(self) -> List[Event]:
        return [e for e in self._events if e.triggered]

    def _check(self, event: Event) -> None:
        if self.triggered:
            if not event._ok:
                event._defused = True
            return
        self._count += 1
        if not event._ok:
            event._defused = True
            self.fail(event._value)
        elif self._evaluate(self._events, self._count):
            self.succeed(ConditionValue(self._fired()))


class AllOf(Condition):
    """Condition that triggers when all of the given events have fired."""

    __slots__ = ()

    def __init__(self, env: "Environment", events: Iterable[Event]):
        super().__init__(env, lambda events, count: count >= len(events), events)


class AnyOf(Condition):
    """Condition that triggers when any of the given events has fired."""

    __slots__ = ()

    def __init__(self, env: "Environment", events: Iterable[Event]):
        super().__init__(env, lambda events, count: count > 0 or not events, events)


class Environment:
    """The simulation environment: clock plus event queue."""

    #: Upper bound on pooled reusable timeouts kept for reuse.
    _TIMEOUT_POOL_LIMIT = 1024

    def __init__(self, initial_time: float = 0.0):
        self._now = float(initial_time)
        self._queue: List = []
        self._seq = 0
        self._active_process: Optional[Process] = None
        self._timeout_pool: List[ReusableTimeout] = []

    @property
    def now(self) -> float:
        """Current simulated time (seconds by convention in this project)."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently being resumed, if any."""
        return self._active_process

    # -- event factories ---------------------------------------------------

    def event(self) -> Event:
        """Create a fresh, untriggered :class:`Event`."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create a :class:`Timeout` firing ``delay`` time units from now."""
        return Timeout(self, delay, value)

    def pooled_timeout(self, delay: float, value: Any = None) -> ReusableTimeout:
        """Acquire an armed :class:`ReusableTimeout` from the pool.

        Return it with :meth:`recycle_timeout` after waiting on it so hot
        loops sleep without allocating a fresh event per iteration.
        """
        if self._timeout_pool:
            return self._timeout_pool.pop().fire(delay, value)
        return ReusableTimeout(self).fire(delay, value)

    def recycle_timeout(self, timeout: ReusableTimeout) -> None:
        """Return a *processed* pooled timeout for reuse.

        A timeout that is still scheduled (e.g. its waiter was interrupted
        and abandoned it in the queue) is silently dropped — re-arming it
        while queued would corrupt the schedule.
        """
        if timeout.callbacks is None and len(self._timeout_pool) < self._TIMEOUT_POOL_LIMIT:
            self._timeout_pool.append(timeout)

    def process(self, generator: Generator) -> Process:
        """Start a new :class:`Process` running ``generator``."""
        return Process(self, generator)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    def call_later(self, delay: float, function: Callable[..., Any], *args: Any) -> Event:
        """Invoke ``function(*args)`` after ``delay`` time units.

        A lightweight alternative to spawning a process: costs a single
        queue entry.  The returned event fires right before the call.
        """
        return _DeferredCall(self, function, args, delay)

    # -- scheduling and the event loop --------------------------------------

    def schedule(self, event: Event, priority: int = NORMAL, delay: float = 0.0) -> None:
        """Schedule ``event`` to be processed after ``delay`` time units."""
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        self._seq += 1
        heapq.heappush(self._queue, (self._now + delay, priority, self._seq, event))

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        return self._queue[0][0] if self._queue else float("inf")

    def step(self) -> None:
        """Process the next scheduled event.

        Raises :class:`IndexError` ("empty schedule") if none is left.
        """
        if not self._queue:
            raise IndexError("empty schedule")
        when, _prio, _seq, event = heapq.heappop(self._queue)
        self._now = when

        callbacks, event.callbacks = event.callbacks, None
        for callback in callbacks:
            callback(event)

        if not event._ok and not event._defused:
            # An unhandled failure crashes the whole simulation, loudly.
            exc = event._value
            raise exc

    def run(self, until: Any = None) -> Any:
        """Run the event loop.

        ``until`` may be ``None`` (run until no events are left), a number
        (run until that simulated time), or an :class:`Event` (run until it
        is processed; its value is returned).
        """
        at: Optional[float] = None
        stop_event: Optional[Event] = None
        if until is not None:
            if isinstance(until, Event):
                stop_event = until
                if stop_event.callbacks is None:
                    return stop_event._value
                stop_event.callbacks.append(self._stop)
            else:
                at = float(until)
                if at <= self._now:
                    raise ValueError(f"until={at} must lie in the future (now={self._now})")

        try:
            while self._queue:
                if at is not None and self._queue[0][0] >= at:
                    self._now = at
                    break
                self.step()
        except StopSimulation as stop:
            return stop.value

        if stop_event is not None and not stop_event.triggered:
            raise RuntimeError("no more events scheduled but the until-event never fired")
        if at is not None and not self._queue:
            # Ran out of events before reaching the deadline: advance clock.
            self._now = max(self._now, at)
        return None

    def _stop(self, event: Event) -> None:
        raise StopSimulation(event._value)
