"""Shared resources for the simulation kernel.

:class:`Resource` models a pool of identical servers (e.g. CPU cores): a
process *requests* a unit, holds it for some time, and *releases* it.
Requests are granted FIFO (optionally by priority).  Requests are context
managers so a typical usage is::

    with cpu.request() as req:
        yield req
        yield env.timeout(service_time)

:class:`Container` models a homogeneous bulk quantity (e.g. bytes of memory).
"""

from __future__ import annotations

from typing import List, Optional

from .core import Environment, Event

__all__ = ["Resource", "Request", "Release", "PriorityRequest", "Container"]


class Request(Event):
    """Request one unit of a :class:`Resource`; succeeds when granted."""

    __slots__ = ("resource", "usage_since")

    def __init__(self, resource: "Resource"):
        super().__init__(resource.env)
        self.resource = resource
        self.usage_since: Optional[float] = None
        resource._do_request(self)

    def __enter__(self) -> "Request":
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        self.cancel()

    def cancel(self) -> None:
        """Release the unit if granted, or withdraw a still-queued request."""
        self.resource._do_cancel(self)


class PriorityRequest(Request):
    """A request with a priority (lower value = served earlier)."""

    __slots__ = ("priority", "time")

    def __init__(self, resource: "Resource", priority: int = 0):
        self.priority = priority
        self.time = resource.env.now
        super().__init__(resource)

    def _sort_key(self):
        return (self.priority, self.time)


class Release(Event):
    """Explicit release of a granted request (alternative to ``cancel``)."""

    __slots__ = ("request",)

    def __init__(self, resource: "Resource", request: Request):
        super().__init__(resource.env)
        self.request = request
        resource._do_cancel(request)
        self.succeed()


class Resource:
    """A pool of ``capacity`` identical units granted FIFO.

    ``capacity`` may be changed at runtime via :meth:`set_capacity`, which
    is how the cluster models host core counts.
    """

    def __init__(self, env: Environment, capacity: int = 1):
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.env = env
        self._capacity = capacity
        self.users: List[Request] = []
        self.queue: List[Request] = []

    @property
    def capacity(self) -> int:
        return self._capacity

    @property
    def count(self) -> int:
        """Number of units currently in use."""
        return len(self.users)

    def set_capacity(self, capacity: int) -> None:
        """Resize the pool; queued requests are granted if room appeared."""
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self._capacity = capacity
        self._trigger_queued()

    def request(self) -> Request:
        return Request(self)

    def priority_request(self, priority: int = 0) -> PriorityRequest:
        return PriorityRequest(self, priority)

    def release(self, request: Request) -> Release:
        return Release(self, request)

    # -- internal ---------------------------------------------------------

    def _do_request(self, request: Request) -> None:
        if len(self.users) < self._capacity and not self.queue:
            self._grant(request)
        else:
            self.queue.append(request)
            if isinstance(request, PriorityRequest):
                self.queue.sort(
                    key=lambda r: r._sort_key()
                    if isinstance(r, PriorityRequest)
                    else (0, r.env.now)
                )

    def _grant(self, request: Request) -> None:
        self.users.append(request)
        request.usage_since = self.env.now
        request.succeed()

    def _do_cancel(self, request: Request) -> None:
        if request in self.users:
            self.users.remove(request)
            self._trigger_queued()
        elif request in self.queue:
            self.queue.remove(request)
        # else: already cancelled; releasing twice is a no-op by design.

    def _trigger_queued(self) -> None:
        while self.queue and len(self.users) < self._capacity:
            self._grant(self.queue.pop(0))


class Container:
    """A bulk quantity with blocking ``get`` and non-blocking ``put``."""

    def __init__(self, env: Environment, capacity: float = float("inf"), init: float = 0.0):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        if not 0 <= init <= capacity:
            raise ValueError("init must lie within [0, capacity]")
        self.env = env
        self.capacity = capacity
        self._level = float(init)
        self._getters: List = []  # (amount, event)

    @property
    def level(self) -> float:
        return self._level

    def put(self, amount: float) -> None:
        """Add ``amount`` immediately (raises if it would overflow)."""
        if amount < 0:
            raise ValueError("amount must be non-negative")
        if self._level + amount > self.capacity:
            raise ValueError("container overflow")
        self._level += amount
        self._serve_getters()

    def get(self, amount: float) -> Event:
        """Return an event that fires once ``amount`` could be removed."""
        if amount < 0:
            raise ValueError("amount must be non-negative")
        event = Event(self.env)
        self._getters.append((amount, event))
        self._serve_getters()
        return event

    def _serve_getters(self) -> None:
        while self._getters and self._getters[0][0] <= self._level:
            amount, event = self._getters.pop(0)
            self._level -= amount
            event.succeed(amount)
