"""Deterministic random-number streams.

Every stochastic component of the simulation draws from its own named
stream derived from a single experiment seed, so results are reproducible
and components are statistically independent of each other regardless of
the order in which they draw.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict

__all__ = ["RngRegistry", "derive_seed"]


def derive_seed(root_seed: int, name: str) -> int:
    """Derive a 64-bit child seed for ``name`` from ``root_seed``."""
    digest = hashlib.sha256(f"{root_seed}:{name}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class RngRegistry:
    """Factory of named, independently seeded ``random.Random`` streams."""

    def __init__(self, root_seed: int = 0):
        self.root_seed = root_seed
        self._streams: Dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """Return the stream for ``name``, creating it on first use."""
        if name not in self._streams:
            self._streams[name] = random.Random(derive_seed(self.root_seed, name))
        return self._streams[name]

    def reseed(self, root_seed: int) -> None:
        """Reset the registry with a new root seed (drops all streams)."""
        self.root_seed = root_seed
        self._streams.clear()
