"""Discrete-event simulation kernel (SimPy-like, self-contained).

Public surface::

    env = Environment()
    env.process(my_generator())
    env.run(until=100.0)
"""

from .core import (
    AllOf,
    AnyOf,
    ConditionValue,
    Environment,
    Event,
    Interrupt,
    Process,
    ReusableTimeout,
    StopSimulation,
    Timeout,
    NORMAL,
    URGENT,
)
from .resources import Container, PriorityRequest, Release, Request, Resource
from .store import Store, StoreGet, StorePut
from .rng import RngRegistry, derive_seed

__all__ = [
    "AllOf",
    "AnyOf",
    "ConditionValue",
    "Container",
    "Environment",
    "Event",
    "Interrupt",
    "NORMAL",
    "PriorityRequest",
    "Process",
    "Release",
    "Request",
    "Resource",
    "ReusableTimeout",
    "RngRegistry",
    "StopSimulation",
    "Store",
    "StoreGet",
    "StorePut",
    "Timeout",
    "URGENT",
    "derive_seed",
]
