"""FIFO stores (unbounded or bounded mailboxes) for the simulation kernel.

Channels between operator slices, migration queues and probe mailboxes are
all built on :class:`Store`.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Deque, List, Optional

from .core import Environment, Event

__all__ = ["Store", "StoreGet", "StorePut"]


class StorePut(Event):
    """Succeeds once the item has been accepted by the store."""

    __slots__ = ("item",)

    def __init__(self, store: "Store", item: Any):
        super().__init__(store.env)
        self.item = item
        store._do_put(self)


class StoreGet(Event):
    """Succeeds with the next matching item in FIFO order."""

    __slots__ = ("predicate", "_store")

    def __init__(self, store: "Store", predicate: Optional[Callable[[Any], bool]] = None):
        super().__init__(store.env)
        self.predicate = predicate
        store._do_get(self)

    def cancel(self) -> None:
        """Withdraw a pending get (no-op if already satisfied)."""
        try:
            self.env  # keep attribute access explicit
            store_getters = self._store._getters
        except AttributeError:
            return
        if self in store_getters:
            store_getters.remove(self)


class Store:
    """A FIFO buffer of items with blocking ``get`` and ``put``.

    ``put`` blocks only when a finite ``capacity`` is given and reached.
    ``get`` optionally takes a predicate, turning the store into a filter
    store (items are scanned in FIFO order).
    """

    def __init__(self, env: Environment, capacity: float = float("inf")):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.env = env
        self.capacity = capacity
        self.items: Deque[Any] = deque()
        self._putters: List[StorePut] = []
        self._getters: List[StoreGet] = []

    def __len__(self) -> int:
        return len(self.items)

    def put(self, item: Any) -> StorePut:
        return StorePut(self, item)

    def put_nowait(self, item: Any) -> None:
        """Fast path for unbounded stores: no event machinery.

        Hands the item directly to the oldest waiting getter when one can
        take it, otherwise appends to the buffer.  Raises on bounded
        stores — those need the blocking :meth:`put`.
        """
        if self.capacity != float("inf"):
            raise RuntimeError("put_nowait requires an unbounded store")
        if self._getters:
            for getter in self._getters:
                if getter.predicate is None or getter.predicate(item):
                    self._getters.remove(getter)
                    getter.succeed(item)
                    return
        self.items.append(item)

    def try_get(self, predicate: Optional[Callable[[Any], bool]] = None) -> Any:
        """Fast path: pop the next matching item now, or return None."""
        item = self._find_item(predicate)
        if item is _NOTHING:
            return None
        self._admit_putters()
        return item

    def get(self, predicate: Optional[Callable[[Any], bool]] = None) -> StoreGet:
        event = StoreGet(self, predicate)
        event._store = self
        return event

    def peek_all(self) -> List[Any]:
        """Snapshot of buffered items (used by probes; does not consume)."""
        return list(self.items)

    # -- internal ---------------------------------------------------------

    def _do_put(self, event: StorePut) -> None:
        if len(self.items) < self.capacity:
            self.items.append(event.item)
            event.succeed()
            self._serve_getters()
        else:
            self._putters.append(event)

    def _do_get(self, event: StoreGet) -> None:
        self._getters.append(event)
        self._serve_getters()

    def _serve_getters(self) -> None:
        # Repeatedly try to match the oldest getter with the oldest
        # acceptable item.  Predicated getters that match nothing stay queued.
        progress = True
        while progress:
            progress = False
            for getter in list(self._getters):
                item = self._find_item(getter.predicate)
                if item is _NOTHING:
                    continue
                self._getters.remove(getter)
                getter.succeed(item)
                self._admit_putters()
                progress = True

    def _find_item(self, predicate: Optional[Callable[[Any], bool]]):
        if predicate is None:
            if self.items:
                return self.items.popleft()
            return _NOTHING
        for index, item in enumerate(self.items):
            if predicate(item):
                del self.items[index]
                return item
        return _NOTHING

    def _admit_putters(self) -> None:
        while self._putters and len(self.items) < self.capacity:
            put = self._putters.pop(0)
            self.items.append(put.item)
            put.succeed()


_NOTHING = object()
