"""Telemetry exporters: Prometheus text format and JSON snapshots.

Complements the generic writers in :mod:`repro.metrics.export` with the
Prometheus 0.0.4 text exposition format, so a registry snapshot can be
scraped (or diffed) by standard tooling.  Output is deterministic:
families sort by name, children by label values, and numbers render via
``repr``-stable formatting — two identical runs produce byte-identical
scrapes.
"""

from __future__ import annotations

import os
import tempfile
from typing import List

from .registry import MetricFamily, MetricsRegistry

__all__ = ["to_prometheus", "write_prometheus", "write_snapshot_json"]


def _fmt(value: float) -> str:
    """Prometheus sample value: integral floats render without exponent."""
    if isinstance(value, int):
        return str(value)
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def _labels_text(labels: dict) -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{key}="{_escape(value)}"' for key, value in sorted(labels.items())
    )
    return "{" + inner + "}"


def _escape(value: str) -> str:
    return str(value).replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _family_lines(family: MetricFamily) -> List[str]:
    lines = []
    if family.help:
        help_text = family.help + (f" [{family.unit}]" if family.unit else "")
        lines.append(f"# HELP {family.name} {_escape(help_text)}")
    lines.append(f"# TYPE {family.name} {family.kind}")
    for labels, child in family.samples():
        if family.kind == "histogram":
            for bound, cumulative in child.cumulative_buckets():
                bucket_labels = dict(labels)
                bucket_labels["le"] = _fmt(bound)
                lines.append(
                    f"{family.name}_bucket{_labels_text(bucket_labels)} {cumulative}"
                )
            inf_labels = dict(labels)
            inf_labels["le"] = "+Inf"
            lines.append(
                f"{family.name}_bucket{_labels_text(inf_labels)} {child.count}"
            )
            lines.append(f"{family.name}_sum{_labels_text(labels)} {_fmt(child.sum)}")
            lines.append(f"{family.name}_count{_labels_text(labels)} {child.count}")
        else:
            lines.append(f"{family.name}{_labels_text(labels)} {_fmt(child.value)}")
    return lines


def to_prometheus(registry: MetricsRegistry) -> str:
    """Render the whole registry in the Prometheus text format."""
    lines: List[str] = []
    for family in registry:
        lines.extend(_family_lines(family))
    return "\n".join(lines) + ("\n" if lines else "")


def write_prometheus(path: str, registry: MetricsRegistry) -> str:
    """Write :func:`to_prometheus` output atomically; returns ``path``."""
    directory = os.path.dirname(os.path.abspath(path)) or "."
    os.makedirs(directory, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=directory, prefix=".prom-", suffix=".tmp")
    try:
        with os.fdopen(fd, "w") as handle:
            handle.write(to_prometheus(registry))
        os.replace(tmp, path)
    except BaseException:
        if os.path.exists(tmp):
            os.unlink(tmp)
        raise
    return path


def write_snapshot_json(path: str, registry: MetricsRegistry) -> str:
    """Write :meth:`MetricsRegistry.snapshot` as JSON (atomic rename)."""
    from ..metrics.export import write_json

    return write_json(path, registry.snapshot())
