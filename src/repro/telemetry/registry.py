"""Metric registry: counters, gauges and histograms with label families.

The registry is the process-wide (per-deployment) catalog of everything
the engine counts while it runs: events routed, batches coalesced, queue
depths, matcher match rates, migration state bytes, enforcer rule
firings.  Instruments are registered once by name — re-registering with
an identical signature returns the existing family, so independent
modules can share a metric without coordination — and are sampled either
continuously (counters incremented at the instrumented call site) or on
the heartbeat path (gauges set by :class:`~repro.elastic.probes.
ProbeCollector` each probe round).

Design constraints, in order:

* **Zero cost when unused.**  Instrumented call sites hold either a
  family (or pre-resolved child) or ``None``; the disabled path is a
  single ``is None`` test.  Nothing here starts threads, reads clocks or
  touches the simulation — values are plain Python numbers.
* **Deterministic.**  Snapshots and renderings are sorted by metric name
  and label values, so two identical simulation runs produce
  byte-identical exports.
* **Prometheus-compatible.**  The type/label model maps 1:1 onto the
  Prometheus text exposition format (see :mod:`repro.telemetry.export`).
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricFamily",
    "MetricsRegistry",
    "DEFAULT_BUCKETS",
]

#: Default histogram bucket upper bounds (seconds) — sized for the delays
#: this system produces: sub-millisecond hops up to multi-second
#: migrations.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)


class Counter:
    """A monotonically increasing count (events, bytes, firings)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, amount: float = 1) -> None:
        """Add ``amount`` (must be non-negative) to the counter."""
        if amount < 0:
            raise ValueError("counters only go up")
        self.value += amount


class Gauge:
    """A point-in-time measurement (queue depth, host count, utilization)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        """Replace the gauge's value."""
        self.value = value

    def add(self, amount: float) -> None:
        """Shift the gauge by ``amount`` (may be negative)."""
        self.value += amount


class Histogram:
    """A distribution summarized by cumulative buckets, count and sum."""

    __slots__ = ("bounds", "bucket_counts", "count", "sum")

    def __init__(self, buckets: Sequence[float] = DEFAULT_BUCKETS):
        bounds = tuple(sorted(buckets))
        if not bounds:
            raise ValueError("need at least one bucket bound")
        self.bounds = bounds
        #: Per-bound counts of observations <= bound, plus one overflow slot.
        self.bucket_counts = [0] * (len(bounds) + 1)
        self.count = 0
        self.sum = 0.0

    def observe(self, value: float) -> None:
        """Record one observation."""
        self.bucket_counts[bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.sum += value

    @property
    def mean(self) -> float:
        """Average of all observations (0 when empty)."""
        return self.sum / self.count if self.count else 0.0

    def cumulative_buckets(self) -> List[Tuple[float, int]]:
        """``(upper_bound, cumulative_count)`` pairs, Prometheus-style."""
        out: List[Tuple[float, int]] = []
        running = 0
        for bound, bucket in zip(self.bounds, self.bucket_counts):
            running += bucket
            out.append((bound, running))
        return out


_KINDS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class MetricFamily:
    """All children of one named metric, one child per label combination.

    A family declared without labels acts directly as its single child:
    ``family.inc()`` / ``family.set()`` / ``family.observe()`` forward to
    the label-less child, which keeps hot call sites free of ``labels()``
    lookups.
    """

    __slots__ = ("kind", "name", "help", "unit", "label_names", "buckets",
                 "_children", "_default")

    def __init__(
        self,
        kind: str,
        name: str,
        help: str = "",
        unit: str = "",
        label_names: Sequence[str] = (),
        buckets: Optional[Sequence[float]] = None,
    ):
        if kind not in _KINDS:
            raise ValueError(f"unknown metric kind {kind!r}")
        self.kind = kind
        self.name = name
        self.help = help
        self.unit = unit
        self.label_names = tuple(label_names)
        self.buckets = tuple(buckets) if buckets is not None else None
        self._children: Dict[Tuple[str, ...], Any] = {}
        self._default = None if self.label_names else self._make()

    def _make(self):
        if self.kind == "histogram":
            return Histogram(self.buckets or DEFAULT_BUCKETS)
        return _KINDS[self.kind]()

    def labels(self, **labels: str):
        """The child for one label combination (created on first use)."""
        if set(labels) != set(self.label_names):
            raise ValueError(
                f"{self.name} requires labels {self.label_names}, got "
                f"{tuple(sorted(labels))}"
            )
        key = tuple(str(labels[name]) for name in self.label_names)
        child = self._children.get(key)
        if child is None:
            child = self._children[key] = self._make()
        return child

    def samples(self) -> Iterator[Tuple[Dict[str, str], Any]]:
        """``(labels, child)`` pairs sorted by label values."""
        if self._default is not None:
            yield {}, self._default
            return
        for key in sorted(self._children):
            yield dict(zip(self.label_names, key)), self._children[key]

    # -- label-less convenience surface ---------------------------------------

    def _only(self):
        if self._default is None:
            raise ValueError(f"{self.name} is labelled; use .labels(...)")
        return self._default

    def inc(self, amount: float = 1) -> None:
        self._only().inc(amount)

    def set(self, value: float) -> None:
        self._only().set(value)

    def add(self, amount: float) -> None:
        self._only().add(amount)

    def observe(self, value: float) -> None:
        self._only().observe(value)

    @property
    def value(self):
        """Value of the label-less child (counters and gauges only)."""
        return self._only().value

    @property
    def count(self) -> int:
        """Observation count of the label-less child (histograms only)."""
        return self._only().count

    @property
    def sum(self) -> float:
        """Observation sum of the label-less child (histograms only)."""
        return self._only().sum

    @property
    def mean(self) -> float:
        """Observation mean of the label-less child (histograms only)."""
        return self._only().mean


class MetricsRegistry:
    """Named catalog of metric families; the unit exporters consume."""

    def __init__(self) -> None:
        self._families: Dict[str, MetricFamily] = {}

    def __iter__(self) -> Iterator[MetricFamily]:
        for name in sorted(self._families):
            yield self._families[name]

    def __len__(self) -> int:
        return len(self._families)

    def get(self, name: str) -> Optional[MetricFamily]:
        """The family registered under ``name``, or ``None``."""
        return self._families.get(name)

    def _register(
        self,
        kind: str,
        name: str,
        help: str,
        unit: str,
        labels: Sequence[str],
        buckets: Optional[Sequence[float]] = None,
    ) -> MetricFamily:
        existing = self._families.get(name)
        if existing is not None:
            if existing.kind != kind or existing.label_names != tuple(labels):
                raise ValueError(
                    f"metric {name!r} already registered as {existing.kind} "
                    f"with labels {existing.label_names}"
                )
            return existing
        family = MetricFamily(kind, name, help, unit, labels, buckets)
        self._families[name] = family
        return family

    def counter(
        self, name: str, help: str = "", unit: str = "", labels: Sequence[str] = ()
    ) -> MetricFamily:
        """Register (or fetch) a counter family."""
        return self._register("counter", name, help, unit, labels)

    def gauge(
        self, name: str, help: str = "", unit: str = "", labels: Sequence[str] = ()
    ) -> MetricFamily:
        """Register (or fetch) a gauge family."""
        return self._register("gauge", name, help, unit, labels)

    def histogram(
        self,
        name: str,
        help: str = "",
        unit: str = "",
        labels: Sequence[str] = (),
        buckets: Optional[Sequence[float]] = None,
    ) -> MetricFamily:
        """Register (or fetch) a histogram family."""
        return self._register("histogram", name, help, unit, labels, buckets)

    # -- read-out ---------------------------------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        """Deterministic plain-data view of every family (for JSON export)."""
        out: Dict[str, Any] = {}
        for family in self:
            samples = []
            for labels, child in family.samples():
                if family.kind == "histogram":
                    samples.append({
                        "labels": labels,
                        "count": child.count,
                        "sum": child.sum,
                        "buckets": [list(b) for b in child.cumulative_buckets()],
                    })
                else:
                    samples.append({"labels": labels, "value": child.value})
            out[family.name] = {
                "kind": family.kind,
                "help": family.help,
                "unit": family.unit,
                "samples": samples,
            }
        return out

    def render(self) -> str:
        """Human-readable table of every sample (the ``repro metrics`` view)."""
        from ..metrics.report import format_table

        rows = []
        for family in self:
            for labels, child in family.samples():
                label_text = ",".join(f"{k}={v}" for k, v in labels.items())
                if family.kind == "histogram":
                    value = (
                        f"count={child.count} sum={child.sum:.6g} "
                        f"mean={child.mean:.6g}"
                    )
                else:
                    value = f"{child.value:g}"
                rows.append([family.name, family.kind, label_text, value,
                             family.unit])
        return format_table(["metric", "kind", "labels", "value", "unit"], rows)
